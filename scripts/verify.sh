#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
# Always build before ctest — running ctest against a stale or empty build
# tree registers "<suite>_NOT_BUILT" placeholder tests instead of real ones.
# This script (and the `check` target it drives) makes that ordering
# impossible to get wrong.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
jobs="${JOBS:-$(nproc)}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
