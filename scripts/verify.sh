#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
# Always build before ctest — running ctest against a stale or empty build
# tree registers "<suite>_NOT_BUILT" placeholder tests instead of real ones.
# This script (and the `check` target it drives) makes that ordering
# impossible to get wrong.
#
# Modes:
#   scripts/verify.sh          full tier-1: configure + build + ctest
#   scripts/verify.sh --unit   fast lane: build + run only tests labelled
#                              `unit` (the pure in-process suites; skips the
#                              integration workflows and the fault soak)
#   scripts/verify.sh --tsan   ThreadSanitizer pass over the concurrency
#                              layer: builds test_dpp (scheduler + the
#                              concurrent-dispatch/nesting/stealing stress
#                              tests), test_comm (mailbox + incremental
#                              all-to-all sessions + payload pool), test_fft
#                              (pipelined transpose: concurrent
#                              pack/exchange/unpack), test_faults (fault
#                              injection on the comm/listener/staging hot
#                              paths, including the coordinated-abort
#                              collectives), and test_halo_parallel (the
#                              per-halo fan-out, parallel FOF linking and
#                              parallel k-d tree build racing nested
#                              dispatches) with -DCOSMO_TSAN=ON in
#                              build-tsan/ and fails on any reported race.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"

if [[ "${1:-}" == "--tsan" ]]; then
  build_dir="${BUILD_DIR:-$repo_root/build-tsan}"
  cmake -B "$build_dir" -S "$repo_root" -DCOSMO_TSAN=ON
  cmake --build "$build_dir" --target test_dpp test_comm test_fft test_faults \
    test_halo_parallel -j "$jobs"
  # TSAN_OPTIONS: any race is fatal (non-zero exit), second_deadlock_stack
  # makes lock-order reports actionable.
  for t in test_dpp test_comm test_fft test_faults test_halo_parallel; do
    TSAN_OPTIONS="halt_on_error=0 exitcode=66 second_deadlock_stack=1" \
      "$build_dir/tests/$t"
  done
  echo "TSan pass clean."
  exit 0
fi

build_dir="${BUILD_DIR:-$repo_root/build}"
cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$jobs"

if [[ "${1:-}" == "--unit" ]]; then
  ctest --test-dir "$build_dir" -L unit --output-on-failure -j "$jobs"
else
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
fi
