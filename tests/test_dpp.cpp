// Tests for the data-parallel primitives (PISTON stand-in).
//
// Every primitive is exercised on both backends via TEST_P; the ThreadPool
// results must be bit-identical to Serial for the deterministic primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "comm/comm.h"
#include "dpp/primitives.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace {

using namespace cosmo;
using dpp::Backend;

class DppBackends : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, DppBackends,
                         ::testing::Values(Backend::Serial,
                                           Backend::ThreadPool),
                         [](const auto& info) {
                           return dpp::to_string(info.param);
                         });

TEST_P(DppBackends, TabulateFillsEveryIndex) {
  std::vector<std::int64_t> out(10007);
  dpp::tabulate<std::int64_t>(GetParam(), out,
                              [](std::size_t i) { return 3 * static_cast<std::int64_t>(i) + 1; });
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], 3 * static_cast<std::int64_t>(i) + 1);
}

TEST_P(DppBackends, TabulateEmptyIsNoop) {
  std::vector<int> out;
  dpp::tabulate<int>(GetParam(), out, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST_P(DppBackends, ReduceMatchesStdAccumulate) {
  Rng rng(5);
  std::vector<std::int64_t> v(54321);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.below(1000));
  const auto expect = std::accumulate(v.begin(), v.end(), std::int64_t{0});
  EXPECT_EQ(dpp::reduce<std::int64_t>(GetParam(), v), expect);
}

TEST_P(DppBackends, TransformReduceMax) {
  std::vector<double> v(9999);
  Rng rng(6);
  for (auto& x : v) x = rng.uniform();
  v[1234] = 7.5;
  const double m = dpp::transform_reduce(
      GetParam(), v.size(), -1.0,
      [](double a, double b) { return a > b ? a : b; },
      [&](std::size_t i) { return v[i]; });
  EXPECT_DOUBLE_EQ(m, 7.5);
}

TEST_P(DppBackends, ArgminFindsGlobalMinimum) {
  std::vector<double> v(20011);
  Rng rng(7);
  for (auto& x : v) x = rng.uniform(1.0, 2.0);
  v[15000] = 0.25;
  EXPECT_EQ(dpp::argmin(GetParam(), v.size(),
                        [&](std::size_t i) { return v[i]; }),
            15000u);
}

TEST_P(DppBackends, ArgminBreaksTiesToLowestIndex) {
  std::vector<double> v(10000, 1.0);
  v[100] = 0.0;
  v[9000] = 0.0;
  EXPECT_EQ(dpp::argmin(GetParam(), v.size(),
                        [&](std::size_t i) { return v[i]; }),
            100u);
}

TEST_P(DppBackends, ExclusiveScanMatchesReference) {
  Rng rng(8);
  std::vector<std::uint64_t> v(33333), out(33333);
  for (auto& x : v) x = rng.below(50);
  const auto total = dpp::exclusive_scan<std::uint64_t>(GetParam(), v, out);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(out[i], acc) << "at index " << i;
    acc += v[i];
  }
  EXPECT_EQ(total, acc);
}

TEST_P(DppBackends, ExclusiveScanAliasedInOut) {
  std::vector<std::uint32_t> v(12345, 1);
  const auto total = dpp::exclusive_scan<std::uint32_t>(
      GetParam(), std::span<const std::uint32_t>(v), std::span<std::uint32_t>(v));
  EXPECT_EQ(total, 12345u);
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], i);
}

TEST_P(DppBackends, InclusiveScanMatchesReference) {
  std::vector<int> v(4096, 2), out(4096);
  dpp::inclusive_scan<int>(GetParam(), v, out);
  for (std::size_t i = 0; i < v.size(); ++i)
    ASSERT_EQ(out[i], 2 * static_cast<int>(i + 1));
}

TEST_P(DppBackends, GatherPermutes) {
  std::vector<double> in{10, 20, 30, 40, 50};
  std::vector<std::uint32_t> map{4, 3, 2, 1, 0};
  std::vector<double> out(5);
  dpp::gather<double, std::uint32_t>(GetParam(), in, map, out);
  EXPECT_EQ(out, (std::vector<double>{50, 40, 30, 20, 10}));
}

TEST_P(DppBackends, ScatterInvertsGather) {
  Rng rng(9);
  const std::size_t n = 8192;
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::size_t i = n; i > 1; --i)
    std::swap(perm[i - 1], perm[rng.below(i)]);
  std::vector<float> in(n), mid(n), back(n);
  for (auto& x : in) x = static_cast<float>(rng.uniform());
  dpp::gather<float, std::uint32_t>(GetParam(), in, perm, mid);
  dpp::scatter<float, std::uint32_t>(GetParam(), mid, perm, back);
  EXPECT_EQ(in, back);
}

TEST_P(DppBackends, SortIndicesByKeyIsStableSorted) {
  Rng rng(10);
  std::vector<std::uint32_t> keys(30000);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.below(100));
  std::vector<std::uint32_t> idx;
  dpp::sort_indices_by_key<std::uint32_t>(GetParam(), keys, idx);
  ASSERT_EQ(idx.size(), keys.size());
  for (std::size_t i = 1; i < idx.size(); ++i) {
    ASSERT_LE(keys[idx[i - 1]], keys[idx[i]]);
    if (keys[idx[i - 1]] == keys[idx[i]]) {
      ASSERT_LT(idx[i - 1], idx[i]) << "stability violated";
    }
  }
  // Must be a permutation.
  std::vector<std::uint32_t> sorted_idx = idx;
  std::sort(sorted_idx.begin(), sorted_idx.end());
  for (std::size_t i = 0; i < sorted_idx.size(); ++i)
    ASSERT_EQ(sorted_idx[i], i);
}

TEST_P(DppBackends, BucketCountMatchesManualCounts) {
  Rng rng(11);
  std::vector<std::uint16_t> keys(44100);
  for (auto& k : keys) k = static_cast<std::uint16_t>(rng.below(37));
  auto counts = dpp::bucket_count<std::uint16_t>(GetParam(), keys, 37);
  std::vector<std::uint64_t> expect(37, 0);
  for (auto k : keys) ++expect[k];
  EXPECT_EQ(counts, expect);
}

TEST_P(DppBackends, BucketCountRejectsOutOfRangeKey) {
  std::vector<std::uint16_t> keys{0, 5, 36, 37};
  EXPECT_THROW(dpp::bucket_count<std::uint16_t>(GetParam(), keys, 37),
               Error);
}

TEST_P(DppBackends, CopyIfIndexKeepsOrder) {
  const std::size_t n = 25000;
  auto evens =
      dpp::copy_if_index(GetParam(), n, [](std::size_t i) { return i % 2 == 0; });
  ASSERT_EQ(evens.size(), n / 2);
  for (std::size_t i = 0; i < evens.size(); ++i)
    ASSERT_EQ(evens[i], 2 * i);
}

TEST_P(DppBackends, CopyIfIndexEmptyResult) {
  auto none = dpp::copy_if_index(GetParam(), 1000, [](std::size_t) { return false; });
  EXPECT_TRUE(none.empty());
}

TEST(DppPool, WorkersAtLeastTwo) {
  EXPECT_GE(dpp::ThreadPool::instance().workers(), 2u);
}

TEST(DppPool, BackendsAgreeOnLargeReduction) {
  Rng rng(12);
  std::vector<std::int64_t> v(200000);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.below(1 << 20));
  EXPECT_EQ(dpp::reduce<std::int64_t>(Backend::Serial, v),
            dpp::reduce<std::int64_t>(Backend::ThreadPool, v));
}

TEST(DppPool, ArgminEmptyThrows) {
  EXPECT_THROW(
      dpp::argmin(Backend::Serial, 0, [](std::size_t) { return 0.0; }),
      Error);
}

// The documented pitfall (thread_pool.h): parallel_for dispatches serialize
// on one mutex, so concurrent calls from several SPMD ranks queue. The pool
// must stay CORRECT under that contention — every dispatch runs to
// completion with exclusive pool ownership (chunks never interleave across
// concurrent callers) — and the contention itself must now be measurable
// via the dpp.dispatch_wait metrics.
TEST(DppPool, ConcurrentDispatchFromRanksIsSerializedButCorrect) {
  constexpr int kRanks = 4;
  constexpr int kIters = 8;
  constexpr std::size_t kN = 100000;
#ifndef COSMO_OBS_DISABLED
  const std::uint64_t dispatches_before =
      obs::MetricsRegistry::instance().counter("dpp.dispatches").total();
#endif
  comm::run_spmd(kRanks, [&](comm::Comm& c) {
    for (int iter = 0; iter < kIters; ++iter) {
      // Each rank marks its own array; exactly-once per index proves the
      // dispatch it observed was wholly its own.
      std::vector<std::atomic<std::uint32_t>> marks(kN);
      std::atomic<std::size_t> active_chunks{0};
      std::atomic<bool> interleaved{false};
      dpp::ThreadPool::instance().parallel_for(
          kN, [&](std::size_t lo, std::size_t hi) {
            active_chunks.fetch_add(1);
            for (std::size_t i = lo; i < hi; ++i)
              marks[i].fetch_add(1, std::memory_order_relaxed);
            // Concurrent chunks must all belong to THIS dispatch: never
            // more in flight than the pool has workers.
            if (active_chunks.load() >
                dpp::ThreadPool::instance().workers())
              interleaved.store(true);
            active_chunks.fetch_sub(1);
          });
      EXPECT_FALSE(interleaved.load());
      for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(marks[i].load(), 1u) << "index " << i << " on rank "
                                       << c.rank() << " iter " << iter;
    }
    c.barrier();
  });
#ifndef COSMO_OBS_DISABLED
  const std::uint64_t dispatches_after =
      obs::MetricsRegistry::instance().counter("dpp.dispatches").total();
  EXPECT_GE(dispatches_after - dispatches_before,
            static_cast<std::uint64_t>(kRanks * kIters));
  // The wait-time distribution was recorded.
  EXPECT_TRUE(obs::MetricsRegistry::instance().has_histogram(
      "dpp.dispatch_wait_ms"));
#endif
}

}  // namespace
