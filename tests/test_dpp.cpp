// Tests for the data-parallel primitives (PISTON stand-in).
//
// Every primitive is exercised on both backends via TEST_P; the ThreadPool
// results must be bit-identical to Serial for the deterministic primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "comm/comm.h"
#include "dpp/primitives.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace {

using namespace cosmo;
using dpp::Backend;

class DppBackends : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, DppBackends,
                         ::testing::Values(Backend::Serial,
                                           Backend::ThreadPool),
                         [](const auto& info) {
                           return dpp::to_string(info.param);
                         });

TEST_P(DppBackends, TabulateFillsEveryIndex) {
  std::vector<std::int64_t> out(10007);
  dpp::tabulate<std::int64_t>(GetParam(), out,
                              [](std::size_t i) { return 3 * static_cast<std::int64_t>(i) + 1; });
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], 3 * static_cast<std::int64_t>(i) + 1);
}

TEST_P(DppBackends, TabulateEmptyIsNoop) {
  std::vector<int> out;
  dpp::tabulate<int>(GetParam(), out, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST_P(DppBackends, ReduceMatchesStdAccumulate) {
  Rng rng(5);
  std::vector<std::int64_t> v(54321);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.below(1000));
  const auto expect = std::accumulate(v.begin(), v.end(), std::int64_t{0});
  EXPECT_EQ(dpp::reduce<std::int64_t>(GetParam(), v), expect);
}

TEST_P(DppBackends, TransformReduceMax) {
  std::vector<double> v(9999);
  Rng rng(6);
  for (auto& x : v) x = rng.uniform();
  v[1234] = 7.5;
  const double m = dpp::transform_reduce(
      GetParam(), v.size(), -1.0,
      [](double a, double b) { return a > b ? a : b; },
      [&](std::size_t i) { return v[i]; });
  EXPECT_DOUBLE_EQ(m, 7.5);
}

TEST_P(DppBackends, ArgminFindsGlobalMinimum) {
  std::vector<double> v(20011);
  Rng rng(7);
  for (auto& x : v) x = rng.uniform(1.0, 2.0);
  v[15000] = 0.25;
  EXPECT_EQ(dpp::argmin(GetParam(), v.size(),
                        [&](std::size_t i) { return v[i]; }),
            15000u);
}

TEST_P(DppBackends, ArgminBreaksTiesToLowestIndex) {
  std::vector<double> v(10000, 1.0);
  v[100] = 0.0;
  v[9000] = 0.0;
  EXPECT_EQ(dpp::argmin(GetParam(), v.size(),
                        [&](std::size_t i) { return v[i]; }),
            100u);
}

TEST_P(DppBackends, ExclusiveScanMatchesReference) {
  Rng rng(8);
  std::vector<std::uint64_t> v(33333), out(33333);
  for (auto& x : v) x = rng.below(50);
  const auto total = dpp::exclusive_scan<std::uint64_t>(GetParam(), v, out);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(out[i], acc) << "at index " << i;
    acc += v[i];
  }
  EXPECT_EQ(total, acc);
}

TEST_P(DppBackends, ExclusiveScanAliasedInOut) {
  std::vector<std::uint32_t> v(12345, 1);
  const auto total = dpp::exclusive_scan<std::uint32_t>(
      GetParam(), std::span<const std::uint32_t>(v), std::span<std::uint32_t>(v));
  EXPECT_EQ(total, 12345u);
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], i);
}

TEST_P(DppBackends, InclusiveScanMatchesReference) {
  std::vector<int> v(4096, 2), out(4096);
  dpp::inclusive_scan<int>(GetParam(), v, out);
  for (std::size_t i = 0; i < v.size(); ++i)
    ASSERT_EQ(out[i], 2 * static_cast<int>(i + 1));
}

TEST_P(DppBackends, GatherPermutes) {
  std::vector<double> in{10, 20, 30, 40, 50};
  std::vector<std::uint32_t> map{4, 3, 2, 1, 0};
  std::vector<double> out(5);
  dpp::gather<double, std::uint32_t>(GetParam(), in, map, out);
  EXPECT_EQ(out, (std::vector<double>{50, 40, 30, 20, 10}));
}

TEST_P(DppBackends, ScatterInvertsGather) {
  Rng rng(9);
  const std::size_t n = 8192;
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::size_t i = n; i > 1; --i)
    std::swap(perm[i - 1], perm[rng.below(i)]);
  std::vector<float> in(n), mid(n), back(n);
  for (auto& x : in) x = static_cast<float>(rng.uniform());
  dpp::gather<float, std::uint32_t>(GetParam(), in, perm, mid);
  dpp::scatter<float, std::uint32_t>(GetParam(), mid, perm, back);
  EXPECT_EQ(in, back);
}

TEST_P(DppBackends, SortIndicesByKeyIsStableSorted) {
  Rng rng(10);
  std::vector<std::uint32_t> keys(30000);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.below(100));
  std::vector<std::uint32_t> idx;
  dpp::sort_indices_by_key<std::uint32_t>(GetParam(), keys, idx);
  ASSERT_EQ(idx.size(), keys.size());
  for (std::size_t i = 1; i < idx.size(); ++i) {
    ASSERT_LE(keys[idx[i - 1]], keys[idx[i]]);
    if (keys[idx[i - 1]] == keys[idx[i]]) {
      ASSERT_LT(idx[i - 1], idx[i]) << "stability violated";
    }
  }
  // Must be a permutation.
  std::vector<std::uint32_t> sorted_idx = idx;
  std::sort(sorted_idx.begin(), sorted_idx.end());
  for (std::size_t i = 0; i < sorted_idx.size(); ++i)
    ASSERT_EQ(sorted_idx[i], i);
}

TEST_P(DppBackends, BucketCountMatchesManualCounts) {
  Rng rng(11);
  std::vector<std::uint16_t> keys(44100);
  for (auto& k : keys) k = static_cast<std::uint16_t>(rng.below(37));
  auto counts = dpp::bucket_count<std::uint16_t>(GetParam(), keys, 37);
  std::vector<std::uint64_t> expect(37, 0);
  for (auto k : keys) ++expect[k];
  EXPECT_EQ(counts, expect);
}

TEST_P(DppBackends, BucketCountRejectsOutOfRangeKey) {
  std::vector<std::uint16_t> keys{0, 5, 36, 37};
  EXPECT_THROW(dpp::bucket_count<std::uint16_t>(GetParam(), keys, 37),
               Error);
}

TEST_P(DppBackends, CopyIfIndexKeepsOrder) {
  const std::size_t n = 25000;
  auto evens =
      dpp::copy_if_index(GetParam(), n, [](std::size_t i) { return i % 2 == 0; });
  ASSERT_EQ(evens.size(), n / 2);
  for (std::size_t i = 0; i < evens.size(); ++i)
    ASSERT_EQ(evens[i], 2 * i);
}

TEST_P(DppBackends, CopyIfIndexEmptyResult) {
  auto none = dpp::copy_if_index(GetParam(), 1000, [](std::size_t) { return false; });
  EXPECT_TRUE(none.empty());
}

// ------------------------------------------------- deposit_reduce (scatter)

// CIC-shaped scatter used by the deposit tests: item i adds fractional
// weights to two adjacent cells of a wrapping 1-D grid.
struct TestScatter {
  std::size_t cells;
  std::span<const double> pos;  // fractional grid positions
  void operator()(std::span<double> buf, std::size_t i) const {
    const auto c = static_cast<std::size_t>(pos[i]);
    const double frac = pos[i] - static_cast<double>(c);
    buf[c % cells] += 1.0 - frac;
    buf[(c + 1) % cells] += frac;
  }
};

TEST_P(DppBackends, DepositReduceConservesScatteredWeight) {
  Rng rng(21);
  constexpr std::size_t kCells = 257;
  std::vector<double> pos(60011);
  for (auto& p : pos) p = rng.uniform(0.0, static_cast<double>(kCells));
  std::vector<double> grid(kCells, 0.0);
  dpp::deposit_reduce<double>(GetParam(), pos.size(), grid,
                              TestScatter{kCells, pos});
  const double total = std::accumulate(grid.begin(), grid.end(), 0.0);
  EXPECT_NEAR(total, static_cast<double>(pos.size()), 1e-6);
}

TEST_P(DppBackends, DepositReduceExactWithIntegerWeights) {
  // Integer-valued doubles are exact under any summation order, so the
  // result must match a plain serial count regardless of decomposition.
  Rng rng(22);
  constexpr std::size_t kCells = 100;
  std::vector<std::size_t> target(50000);
  for (auto& t : target) t = rng.below(kCells);
  std::vector<double> grid(kCells, 0.0);
  dpp::deposit_reduce<double>(
      GetParam(), target.size(), grid,
      [&](std::span<double> buf, std::size_t i) { buf[target[i]] += 1.0; });
  std::vector<double> expect(kCells, 0.0);
  for (auto t : target) expect[t] += 1.0;
  EXPECT_EQ(grid, expect);
}

TEST_P(DppBackends, DepositReduceAccumulatesOntoExistingDest) {
  std::vector<double> grid(8, 10.0);
  dpp::deposit_reduce<double>(
      GetParam(), 16, grid,
      [](std::span<double> buf, std::size_t i) { buf[i % 8] += 1.0; });
  for (const auto v : grid) EXPECT_DOUBLE_EQ(v, 12.0);
}

TEST_P(DppBackends, DepositReduceEmptyIsNoop) {
  std::vector<double> grid(4, 1.0);
  dpp::deposit_reduce<double>(
      GetParam(), 0, grid,
      [](std::span<double> buf, std::size_t) { buf[0] += 1.0; });
  EXPECT_EQ(grid, (std::vector<double>{1.0, 1.0, 1.0, 1.0}));
}

// The determinism contract: for every grain, the ThreadPool result is
// bit-identical to Serial — the block decomposition and merge order depend
// only on (n, grain, pool width), never on which thread ran which block.
TEST(DppDeposit, BackendsBitIdenticalAcrossGrains) {
  Rng rng(23);
  constexpr std::size_t kCells = 513;
  std::vector<double> pos(40009);
  for (auto& p : pos) p = rng.uniform(0.0, static_cast<double>(kCells));
  for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                  std::size_t{37}, std::size_t{4096},
                                  std::size_t{1000000}}) {
    std::vector<double> serial(kCells, 0.0), pooled(kCells, 0.0);
    dpp::deposit_reduce<double>(Backend::Serial, pos.size(), serial,
                                TestScatter{kCells, pos}, grain);
    dpp::deposit_reduce<double>(Backend::ThreadPool, pos.size(), pooled,
                                TestScatter{kCells, pos}, grain);
    for (std::size_t c = 0; c < kCells; ++c)
      ASSERT_EQ(serial[c], pooled[c]) << "cell " << c << " grain " << grain;
    // Same-backend reruns are bit-stable too.
    std::vector<double> again(kCells, 0.0);
    dpp::deposit_reduce<double>(Backend::ThreadPool, pos.size(), again,
                                TestScatter{kCells, pos}, grain);
    ASSERT_EQ(pooled, again) << "grain " << grain;
  }
}

// Concurrent SPMD ranks each running their own deposit must neither race
// nor cross-contaminate accumulators (the TSan-covered dispatch shape the
// parallel CIC deposit adds: scatter blocks plus the plane-sliced merge).
TEST(DppDeposit, ConcurrentRankDepositsStayExact) {
  constexpr int kRanks = 4;
  constexpr int kIters = 6;
  constexpr std::size_t kCells = 1024;
  constexpr std::size_t kItems = 60000;
  comm::run_spmd(kRanks, [&](comm::Comm& c) {
    Rng rng(31 + static_cast<std::uint64_t>(c.rank()));
    std::vector<std::size_t> target(kItems);
    for (auto& t : target) t = rng.below(kCells);
    std::vector<double> expect(kCells, 0.0);
    for (auto t : target) expect[t] += 1.0;
    for (int iter = 0; iter < kIters; ++iter) {
      std::vector<double> grid(kCells, 0.0);
      dpp::deposit_reduce<double>(
          Backend::ThreadPool, kItems, grid,
          [&](std::span<double> buf, std::size_t i) {
            buf[target[i]] += 1.0;
          });
      ASSERT_EQ(grid, expect) << "rank " << c.rank() << " iter " << iter;
    }
    c.barrier();
  });
}

// A fail-fast guard inside a dispatched kernel must surface as an ordinary
// exception at the dispatch site — not std::terminate on a worker thread.
// (The parallel deposit and the CIC interpolation guard both rely on this.)
TEST(DppPool, ParallelForPropagatesWorkerExceptions) {
  constexpr std::size_t kN = 100000;
  auto throwing = [&] {
    dpp::ThreadPool::instance().parallel_for(
        kN,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i)
            COSMO_REQUIRE(i != kN - 7, "poisoned item");
        },
        /*grain=*/64);
  };
  EXPECT_THROW(throwing(), Error);
  // The pool must stay fully usable afterwards.
  std::vector<std::uint64_t> out(kN);
  dpp::ThreadPool::instance().parallel_for(
      kN, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) out[i] = 2 * i;
      });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(out[i], 2 * i);
}

// Exceptions propagate through deposit_reduce's pooled path as well (the
// scatter phase runs on workers).
TEST(DppDeposit, ScatterExceptionPropagates) {
  std::vector<double> grid(16, 0.0);
  auto bad = [&] {
    dpp::deposit_reduce<double>(
        Backend::ThreadPool, 100000, grid,
        [](std::span<double> buf, std::size_t i) {
          COSMO_REQUIRE(i != 99999, "poisoned scatter");
          buf[i % 16] += 1.0;
        });
  };
  EXPECT_THROW(bad(), Error);
}

TEST(DppPool, WorkersAtLeastTwo) {
  EXPECT_GE(dpp::ThreadPool::instance().workers(), 2u);
}

TEST(DppPool, BackendsAgreeOnLargeReduction) {
  Rng rng(12);
  std::vector<std::int64_t> v(200000);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.below(1 << 20));
  EXPECT_EQ(dpp::reduce<std::int64_t>(Backend::Serial, v),
            dpp::reduce<std::int64_t>(Backend::ThreadPool, v));
}

TEST(DppPool, ArgminEmptyThrows) {
  EXPECT_THROW(
      dpp::argmin(Backend::Serial, 0, [](std::size_t) { return 0.0; }),
      Error);
}

// Concurrent-dispatch stress: N SPMD ranks × M dispatches each drive the
// pool simultaneously. The work-stealing scheduler runs the groups
// concurrently (no global dispatch lock), so the only invariant is
// correctness: every index of every rank's dispatch executes exactly once,
// and the dispatch/wait metrics keep recording.
TEST(DppPool, ConcurrentDispatchStressIsExactlyOnce) {
  constexpr int kRanks = 4;
  constexpr int kIters = 8;
  constexpr std::size_t kN = 100000;
#ifndef COSMO_OBS_DISABLED
  const std::uint64_t dispatches_before =
      obs::MetricsRegistry::instance().counter("dpp.dispatches").total();
#endif
  comm::run_spmd(kRanks, [&](comm::Comm& c) {
    for (int iter = 0; iter < kIters; ++iter) {
      // Each rank marks its own array; exactly-once per index proves its
      // group's chunks were neither lost nor double-claimed while other
      // ranks' groups ran on the same workers.
      std::vector<std::atomic<std::uint32_t>> marks(kN);
      dpp::ThreadPool::instance().parallel_for(
          kN, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
              marks[i].fetch_add(1, std::memory_order_relaxed);
          });
      for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(marks[i].load(), 1u) << "index " << i << " on rank "
                                       << c.rank() << " iter " << iter;
    }
    c.barrier();
  });
#ifndef COSMO_OBS_DISABLED
  const std::uint64_t dispatches_after =
      obs::MetricsRegistry::instance().counter("dpp.dispatches").total();
  EXPECT_GE(dispatches_after - dispatches_before,
            static_cast<std::uint64_t>(kRanks * kIters));
  // The straggler-wait distribution was recorded.
  EXPECT_TRUE(obs::MetricsRegistry::instance().has_histogram(
      "dpp.dispatch_wait_ms"));
#endif
}

// Regression for the old scheduler's latent deadlock: a parallel_for issued
// from INSIDE a dispatched function (worker context) used to block on the
// global dispatch mutex forever. The task-group scheduler help-executes
// instead, so nesting must complete.
TEST(DppPool, NestedParallelForFromWorkerCompletes) {
  constexpr std::size_t kOuter = 64;
  constexpr std::size_t kInner = 4096;
  constexpr int kMaxAttempts = 50;
  const std::uint64_t expect = kInner * (kInner - 1) / 2;
#ifndef COSMO_OBS_DISABLED
  const std::uint64_t nested_before =
      obs::MetricsRegistry::instance().counter("dpp.nested_dispatches").total();
#endif
  // The dispatching thread help-executes, so on an oversubscribed host it
  // can claim every grain-1 outer chunk before a pool worker wakes. Repeat
  // until at least one outer item genuinely ran on a worker thread — that
  // is the configuration whose nested dispatch used to deadlock.
  std::uint64_t worker_items = 0;
  for (int attempt = 0; attempt < kMaxAttempts && worker_items == 0;
       ++attempt) {
    std::vector<std::atomic<std::uint64_t>> sums(kOuter);
    std::atomic<std::uint64_t> from_worker{0};
    dpp::ThreadPool::instance().parallel_for(
        kOuter,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t o = lo; o < hi; ++o) {
            if (dpp::ThreadPool::in_worker())
              from_worker.fetch_add(1, std::memory_order_relaxed);
            std::atomic<std::uint64_t> inner{0};
            dpp::ThreadPool::instance().parallel_for(
                kInner, [&](std::size_t ilo, std::size_t ihi) {
                  std::uint64_t acc = 0;
                  for (std::size_t i = ilo; i < ihi; ++i) acc += i;
                  inner.fetch_add(acc, std::memory_order_relaxed);
                });
            sums[o].store(inner.load(), std::memory_order_relaxed);
          }
        },
        /*grain=*/1);
    for (std::size_t o = 0; o < kOuter; ++o)
      ASSERT_EQ(sums[o].load(), expect) << "outer " << o;
    worker_items += from_worker.load();
  }
  EXPECT_GT(worker_items, 0u) << "no outer chunk ever landed on a worker";
#ifndef COSMO_OBS_DISABLED
  // Each worker-run outer item issues exactly one inner dispatch from
  // worker context; help-run outer items (main thread) are not nested.
  EXPECT_EQ(obs::MetricsRegistry::instance()
                    .counter("dpp.nested_dispatches")
                    .total() -
                nested_before,
            worker_items);
#endif
}

// Dynamic chunking must honor an explicit grain: no chunk larger than the
// grain, full exactly-once coverage.
TEST(DppPool, ExplicitGrainBoundsChunks) {
  constexpr std::size_t kN = 10000;
  constexpr std::size_t kGrain = 128;
  std::vector<std::atomic<std::uint8_t>> seen(kN);
  std::atomic<std::size_t> max_chunk{0};
  dpp::ThreadPool::instance().parallel_for(
      kN,
      [&](std::size_t lo, std::size_t hi) {
        std::size_t prev = max_chunk.load(std::memory_order_relaxed);
        while (hi - lo > prev &&
               !max_chunk.compare_exchange_weak(prev, hi - lo)) {
        }
        for (std::size_t i = lo; i < hi; ++i)
          seen[i].fetch_add(1, std::memory_order_relaxed);
      },
      kGrain);
  EXPECT_LE(max_chunk.load(), kGrain);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(seen[i].load(), 1u);
}

// Scan with a non-commutative (but associative) +=: composition of affine
// maps x -> a*x + b over a small modulus. Dynamic chunking must combine
// blocks strictly left-to-right for this to match Serial exactly.
struct Affine {
  // Identity by default; integer arithmetic mod 1e9+7 keeps it exact.
  std::uint64_t a = 1, b = 0;
  static constexpr std::uint64_t kMod = 1000000007ULL;
  Affine& operator+=(const Affine& o) {
    // (this ∘ then o): x -> o.a*(a*x + b) + o.b
    const std::uint64_t na = (o.a * a) % kMod;
    const std::uint64_t nb = (o.a * b + o.b) % kMod;
    a = na;
    b = nb;
    return *this;
  }
  bool operator==(const Affine&) const = default;
};

TEST(DppPool, NonCommutativeScanMatchesSerial) {
  Rng rng(13);
  std::vector<Affine> v(30011);
  for (auto& f : v) f = Affine{1 + rng.below(97), rng.below(1009)};
  std::vector<Affine> serial(v.size()), pooled(v.size());
  const Affine ts = dpp::exclusive_scan<Affine>(Backend::Serial, v, serial);
  const Affine tp =
      dpp::exclusive_scan<Affine>(Backend::ThreadPool, v, pooled);
  EXPECT_EQ(ts, tp);
  for (std::size_t i = 0; i < v.size(); ++i)
    ASSERT_EQ(serial[i], pooled[i]) << "at index " << i;
  // Also with an explicit small grain, which changes the block structure.
  std::vector<Affine> fine(v.size());
  const Affine tf = dpp::exclusive_scan<Affine>(Backend::ThreadPool, v, fine,
                                                /*grain=*/64);
  EXPECT_EQ(ts, tf);
  for (std::size_t i = 0; i < v.size(); ++i)
    ASSERT_EQ(serial[i], fine[i]) << "at index " << i;
}

// Work-stealing imbalance: one rank dispatches 10x the items of the other.
// Both ranks' results must be exact, and (with groups spread across worker
// deques) steals must actually happen so the big rank's chunks spill onto
// every worker.
TEST(DppPool, WorkStealingBalancesImbalancedRanks) {
  constexpr int kRanks = 2;
  constexpr int kIters = 16;
  constexpr int kMaxAttempts = 25;
  constexpr std::size_t kSmall = 20000;
  auto run_imbalanced = [&] {
    comm::run_spmd(kRanks, [&](comm::Comm& c) {
      const std::size_t mine = c.rank() == 0 ? 10 * kSmall : kSmall;
      std::vector<std::uint64_t> out(mine);
      for (int iter = 0; iter < kIters; ++iter) {
        dpp::ThreadPool::instance().parallel_for(
            mine, [&](std::size_t lo, std::size_t hi) {
              for (std::size_t i = lo; i < hi; ++i) out[i] = 3 * i + 1;
            });
        for (std::size_t i = 0; i < mine; ++i)
          ASSERT_EQ(out[i], 3 * i + 1)
              << "rank " << c.rank() << " iter " << iter;
      }
      c.barrier();
    });
  };
#ifndef COSMO_OBS_DISABLED
  // Whether a worker gets to steal (rather than the dispatching rank
  // threads help-executing everything themselves) depends on OS
  // scheduling; on a loaded host a single run can legitimately see none.
  // Correctness is asserted every attempt; retry until a steal shows up.
  const std::uint64_t steals_before =
      obs::MetricsRegistry::instance().counter("dpp.steals").total();
  auto steals = [] {
    return obs::MetricsRegistry::instance().counter("dpp.steals").total();
  };
  for (int attempt = 0; attempt < kMaxAttempts && steals() == steals_before;
       ++attempt)
    run_imbalanced();
  EXPECT_GT(steals(), steals_before);
#else
  run_imbalanced();
#endif
}

// ---- steal-aware grain auto-tuning -----------------------------------------

// Deterministically produces a zero-steal regime on a private pool: every
// worker (and one helper dispatcher) is pinned inside a spinning dispatch, so
// auto-grain dispatches issued from the test thread are drained entirely by
// help-execution — no sibling ever steals a chunk. The feedback must read
// that as "no balancing slack" and halve the effective grain.
TEST(DppAutotune, ZeroStealRegimeHalvesAutoGrain) {
  dpp::ThreadPool pool(2);
  ASSERT_EQ(pool.grain_shift(), 0);

  std::atomic<bool> release{false};
  std::atomic<int> pinned{0};
  const std::size_t spinners = pool.workers() + 1;  // workers + dispatcher
  std::thread occupier([&] {
    pool.parallel_for(
        spinners,
        [&](std::size_t, std::size_t) {
          pinned.fetch_add(1, std::memory_order_relaxed);
          while (!release.load(std::memory_order_relaxed))
            std::this_thread::yield();
        },
        /*grain=*/1);
  });
  while (pinned.load(std::memory_order_relaxed) <
         static_cast<int>(spinners))
    std::this_thread::yield();

  // Every worker is spinning: each auto-grain dispatch below runs entirely
  // on this thread (zero steals). 4 chunks/worker × 2 workers = 8 chunks per
  // dispatch; 80 dispatches ≫ the 512-chunk feedback window.
  std::vector<std::uint64_t> out(64);
  for (int iter = 0; iter < 80 && pool.grain_shift() == 0; ++iter)
    pool.parallel_for(out.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) out[i] = i;
    });
  EXPECT_GE(pool.grain_shift(), 1);

  release.store(true, std::memory_order_relaxed);
  occupier.join();
}

// The shift doubles the chunk count of subsequent auto-grain dispatches
// (the slack an imbalanced workload needs), and never perturbs results.
TEST(DppAutotune, ShiftRefinesChunkingForImbalancedDispatch) {
  dpp::ThreadPool pool(2);
  auto chunks_of_dispatch = [&](std::size_t n) {
    std::atomic<std::uint64_t> chunks{0};
    std::vector<std::uint64_t> out(n);
    pool.parallel_for(n, [&](std::size_t lo, std::size_t hi) {
      chunks.fetch_add(1, std::memory_order_relaxed);
      // Imbalanced cost profile: early indices are ~100× heavier.
      for (std::size_t i = lo; i < hi; ++i) {
        std::uint64_t acc = i;
        const int reps = i < n / 8 ? 100 : 1;
        for (int r = 0; r < reps; ++r) acc = acc * 2862933555777941757ULL + 1;
        out[i] = acc;
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t acc = i;
      const int reps = i < n / 8 ? 100 : 1;
      for (int r = 0; r < reps; ++r) acc = acc * 2862933555777941757ULL + 1;
      EXPECT_EQ(out[i], acc) << "index " << i;
    }
    return chunks.load();
  };

  const std::uint64_t base = chunks_of_dispatch(4096);
  EXPECT_EQ(base, 8u);  // kChunksPerWorker × 2 workers

  // Force the zero-steal regime as above until the feedback reacts.
  std::atomic<bool> release{false};
  std::atomic<int> pinned{0};
  const std::size_t spinners = pool.workers() + 1;
  std::thread occupier([&] {
    pool.parallel_for(
        spinners,
        [&](std::size_t, std::size_t) {
          pinned.fetch_add(1, std::memory_order_relaxed);
          while (!release.load(std::memory_order_relaxed))
            std::this_thread::yield();
        },
        /*grain=*/1);
  });
  while (pinned.load(std::memory_order_relaxed) <
         static_cast<int>(spinners))
    std::this_thread::yield();
  std::vector<std::uint64_t> filler(64);
  for (int iter = 0; iter < 200 && pool.grain_shift() == 0; ++iter)
    pool.parallel_for(filler.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) filler[i] = i;
    });
  release.store(true, std::memory_order_relaxed);
  occupier.join();
  ASSERT_GE(pool.grain_shift(), 1);

  // The imbalanced dispatch now gets at least twice the chunks — restored
  // balancing slack — with identical output (asserted inside the helper).
  EXPECT_GE(chunks_of_dispatch(4096), 2 * base);

  pool.reset_autotune();
  EXPECT_EQ(pool.grain_shift(), 0);
  EXPECT_EQ(chunks_of_dispatch(4096), base);
}

// Explicit grains are a caller contract — the feedback must never override
// them (deterministic block structure is what the deposit's bit-exactness
// rests on).
TEST(DppAutotune, ExplicitGrainIsNeverOverridden) {
  dpp::ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> pinned{0};
  const std::size_t spinners = pool.workers() + 1;
  std::thread occupier([&] {
    pool.parallel_for(
        spinners,
        [&](std::size_t, std::size_t) {
          pinned.fetch_add(1, std::memory_order_relaxed);
          while (!release.load(std::memory_order_relaxed))
            std::this_thread::yield();
        },
        /*grain=*/1);
  });
  while (pinned.load(std::memory_order_relaxed) <
         static_cast<int>(spinners))
    std::this_thread::yield();
  std::vector<std::uint64_t> filler(64);
  for (int iter = 0; iter < 200 && pool.grain_shift() == 0; ++iter)
    pool.parallel_for(filler.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) filler[i] = i;
    });
  release.store(true, std::memory_order_relaxed);
  occupier.join();
  ASSERT_GE(pool.grain_shift(), 1);

  std::atomic<std::uint64_t> chunks{0};
  std::vector<std::uint64_t> out(1000);
  pool.parallel_for(
      out.size(),
      [&](std::size_t lo, std::size_t hi) {
        chunks.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t i = lo; i < hi; ++i) out[i] = i;
      },
      /*grain=*/100);
  EXPECT_EQ(chunks.load(), 10u);  // 1000 / 100, shift ignored
}

}  // namespace
