// COSMO_OBS_DISABLED build: the macros must compile to nothing and the
// runtime must still work. This binary is compiled with the flag set
// (tests/CMakeLists.txt); everything here asserts the *absence* of
// observability side effects.
#include <gtest/gtest.h>

#ifndef COSMO_OBS_DISABLED
#error "test_obs_disabled must be compiled with COSMO_OBS_DISABLED"
#endif

#include <chrono>
#include <thread>

#include "comm/comm.h"
#include "obs/obs.h"

using namespace cosmo;

namespace {

TEST(ObsDisabled, CompileTimeFlagIsVisible) {
  EXPECT_FALSE(obs::kObsEnabled);
}

TEST(ObsDisabled, MacrosAreNoOps) {
  obs::Tracer::instance().clear();
  { COSMO_TRACE_SPAN("disabled.span"); }
  { COSMO_TRACE_SPAN_CAT("disabled.span_cat", "cat"); }
  COSMO_COUNT("disabled.counter", 5);
  COSMO_GAUGE_SET("disabled.gauge", 1.0);
  COSMO_HISTOGRAM("disabled.hist", 0.0, 1.0, 4, 0.5);

  EXPECT_TRUE(obs::Tracer::instance().snapshot().empty());
  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_FALSE(reg.has_counter("disabled.counter"));
  EXPECT_FALSE(reg.has_histogram("disabled.hist"));
}

TEST(ObsDisabled, TimedSpanStillMeasures) {
  obs::TimedSpan t("disabled.timed", "cat");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(t.seconds(), 0.0);
  const double d = t.finish();
  EXPECT_GE(d, 0.004);
  // ...without recording anything.
  EXPECT_TRUE(obs::Tracer::instance().snapshot().empty());
}

TEST(ObsDisabled, SpmdRuntimeRecordsNothing) {
  obs::Tracer::instance().clear();
  comm::run_spmd(4, [&](comm::Comm& c) {
    c.barrier();
    const int total = c.allreduce_value(1, comm::ReduceOp::Sum);
    EXPECT_EQ(total, 4);
  });
  EXPECT_TRUE(obs::Tracer::instance().snapshot().empty());
  EXPECT_FALSE(
      obs::MetricsRegistry::instance().has_counter("comm.barrier"));
  // Rank context still works (it is not part of the compile-out).
  EXPECT_EQ(obs::current_rank(), -1);
}

}  // namespace
