// Integration tests: all five workflow variants end to end on a small
// synthetic universe. The central invariant — the reason the combined
// workflow is *correct*, not just cheaper — is that every variant produces
// the same complete halo catalog.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "core/workflows.h"
#include "obs/obs.h"

namespace {

using namespace cosmo;
using namespace cosmo::core;
namespace fs = std::filesystem;

WorkflowProblem small_problem(const std::string& tag) {
  WorkflowProblem p;
  p.universe.box = 32.0;
  p.universe.seed = 4242;
  p.universe.halo_count = 20;
  p.universe.min_particles = 60;
  p.universe.max_particles = 2500;
  p.universe.background_particles = 600;
  p.universe.subclump_fraction = 0.0;
  p.ranks = 4;
  p.analysis_ranks = 2;
  p.ranks_per_file = 2;
  p.linking_length = 0.3;
  p.min_halo_size = 40;
  p.overload = 2.5;
  p.threshold = 150;  // several found (FOF-core) halos exceed this
  p.compute_so_mass = true;
  p.compute_subhalos = false;
  p.workdir = fs::temp_directory_path() /
              ("wf_" + std::to_string(::getpid()) + "_" + tag);
  return p;
}

void expect_same_catalog(const stats::HaloCatalog& a,
                         const stats::HaloCatalog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].count, b[i].count);
    EXPECT_FLOAT_EQ(a[i].cx, b[i].cx);
    EXPECT_FLOAT_EQ(a[i].cy, b[i].cy);
    EXPECT_FLOAT_EQ(a[i].cz, b[i].cz);
    EXPECT_FLOAT_EQ(a[i].potential, b[i].potential);
    EXPECT_FLOAT_EQ(a[i].so_mass, b[i].so_mass);
  }
}

class WorkflowEnd2End : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& d : dirs_) {
      std::error_code ec;
      fs::remove_all(d, ec);
    }
  }
  WorkflowProblem make(const std::string& tag) {
    auto p = small_problem(tag + "_" +
                           ::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->name());
    dirs_.push_back(p.workdir);
    return p;
  }
  std::vector<fs::path> dirs_;
};

TEST_F(WorkflowEnd2End, InSituProducesCompleteCatalog) {
  auto p = make("insitu");
  auto r = run_workflow(WorkflowKind::InSitu, p);
  EXPECT_GT(r.catalog.size(), 5u);
  EXPECT_EQ(r.deferred_halos, 0u);
  EXPECT_EQ(r.level1_bytes, 0u);  // no Level 1 I/O in-situ
  EXPECT_EQ(r.level2_bytes, 0u);
  EXPECT_GT(r.level3_bytes, 0u);
  EXPECT_GT(r.times.sim, 0.0);
  EXPECT_GT(r.times.analysis, 0.0);
  EXPECT_EQ(r.times.read, 0.0);
  EXPECT_EQ(r.times.redistribute, 0.0);
  // Catalog sorted by id, unique.
  for (std::size_t i = 1; i < r.catalog.size(); ++i)
    EXPECT_LT(r.catalog[i - 1].id, r.catalog[i].id);
  EXPECT_EQ(r.times.find_per_rank.size(), 4u);
  EXPECT_EQ(r.times.center_per_rank.size(), 4u);
}

TEST_F(WorkflowEnd2End, OffLineMatchesInSitu) {
  auto pi = make("ref");
  auto ri = run_workflow(WorkflowKind::InSitu, pi);
  auto po = make("offline");
  auto ro = run_workflow(WorkflowKind::OffLine, po);
  expect_same_catalog(ri.catalog, ro.catalog);
  EXPECT_GT(ro.level1_bytes, 0u);  // paid the full Level 1 I/O
  EXPECT_GT(ro.times.read, 0.0);
  EXPECT_GT(ro.times.redistribute, 0.0);
  EXPECT_GT(ro.times.post_analysis, 0.0);
  EXPECT_EQ(ro.times.analysis, 0.0);  // no in-situ analysis
}

TEST_F(WorkflowEnd2End, CombinedSimpleMatchesInSitu) {
  auto pi = make("ref");
  auto ri = run_workflow(WorkflowKind::InSitu, pi);
  auto pc = make("combined");
  auto rc = run_workflow(WorkflowKind::CombinedSimple, pc);
  expect_same_catalog(ri.catalog, rc.catalog);
  EXPECT_GT(rc.deferred_halos, 0u) << "test problem must defer some halos";
  EXPECT_GT(rc.level2_bytes, 0u);
  EXPECT_EQ(rc.level1_bytes, 0u);  // combined never writes Level 1
  // Level 2 is a reduction of Level 1.
  const std::uint64_t level1 =
      sim::synthetic_total_particles(pc.universe) *
      sim::ParticleSet::kBytesPerParticle;
  EXPECT_LT(rc.level2_bytes, level1);
  EXPECT_GT(rc.times.post_analysis, 0.0);
}

TEST_F(WorkflowEnd2End, CombinedCoScheduledMatchesAndListens) {
  auto pi = make("ref");
  auto ri = run_workflow(WorkflowKind::InSitu, pi);
  auto pc = make("cosched");
  auto rc = run_workflow(WorkflowKind::CombinedCoScheduled, pc);
  expect_same_catalog(ri.catalog, rc.catalog);
  // The listener saw one trigger per simulation rank's Level 2 file.
  EXPECT_EQ(rc.listener_triggers, static_cast<std::uint64_t>(pc.ranks));
  EXPECT_GT(rc.listener_polls, 0u);
}

TEST_F(WorkflowEnd2End, CombinedInTransitMatchesWithoutLevel2Files) {
  auto pi = make("ref");
  auto ri = run_workflow(WorkflowKind::InSitu, pi);
  auto pc = make("intransit");
  auto rc = run_workflow(WorkflowKind::CombinedInTransit, pc);
  expect_same_catalog(ri.catalog, rc.catalog);
  // No Level 2 files were written (data went through the staging area).
  bool found_level2_file = false;
  for (const auto& e : fs::directory_iterator(pc.workdir))
    if (e.path().string().find("level2") != std::string::npos)
      found_level2_file = true;
  EXPECT_FALSE(found_level2_file);
  EXPECT_GT(rc.level2_bytes, 0u);  // ...but Level 2 data still moved
}

TEST_F(WorkflowEnd2End, ThresholdControlsDeferredWork) {
  auto p_low = make("low");
  p_low.threshold = 100;  // defer almost everything
  auto r_low = run_workflow(WorkflowKind::CombinedSimple, p_low);
  auto p_high = make("high");
  p_high.threshold = 100000;  // defer nothing
  auto r_high = run_workflow(WorkflowKind::CombinedSimple, p_high);
  EXPECT_GT(r_low.deferred_halos, r_high.deferred_halos);
  EXPECT_EQ(r_high.deferred_halos, 0u);
  expect_same_catalog(r_low.catalog, r_high.catalog);
}

TEST_F(WorkflowEnd2End, InSituCenterTimeDominatedByBigHalos) {
  // The load-imbalance story: per-rank center time spread must exceed the
  // find time spread when a monster halo exists (Table 2's signature).
  // Wall-clock per-rank times are noisy on a loaded host — the shared
  // work-stealing pool lets a light rank's dispatch interleave with the
  // monster's chunks, occasionally inflating the cheap ranks — so retry a
  // few times before declaring the imbalance gone.
  double cmax = 0.0, cmin = 0.0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    auto p = make("imbalance" + std::to_string(attempt));
    p.universe.halo_count = 12;
    p.universe.max_particles = 4000;
    p.threshold = 0;
    auto r = run_workflow(WorkflowKind::InSitu, p);
    const auto& center = r.times.center_per_rank;
    ASSERT_EQ(center.size(), 4u);
    cmax = *std::max_element(center.begin(), center.end());
    cmin = *std::min_element(center.begin(), center.end());
    if (cmax > 2.0 * (cmin + 1e-4)) break;
  }
  EXPECT_GT(cmax, cmin) << "center finding should be imbalanced";
  EXPECT_GT(cmax, 2.0 * (cmin + 1e-4));
}

TEST_F(WorkflowEnd2End, LedgerConsistentWithTracerForAllVariants) {
  // The reported PhaseTimes and the tracer's phase spans are the same
  // measurement (TimedSpan::finish feeds both), so the ledger must be
  // reconstructible from the trace: per-rank phases reduce by max (the
  // paper's node maxima), rank-less phases (the in-situ Level 3 write on
  // the driver thread) add on top.
  const WorkflowKind kinds[] = {
      WorkflowKind::InSitu, WorkflowKind::OffLine, WorkflowKind::CombinedSimple,
      WorkflowKind::CombinedCoScheduled, WorkflowKind::CombinedInTransit};
  for (const auto kind : kinds) {
    SCOPED_TRACE(to_string(kind));
    auto p = make(std::string("ledger_") +
                  std::to_string(static_cast<int>(kind)));
#ifndef COSMO_OBS_DISABLED
    obs::Tracer::instance().set_enabled(true);
    obs::Tracer::instance().clear();
#endif
    auto r = run_workflow(kind, p);
    EXPECT_GT(r.times.sim, 0.0);
    EXPECT_GT(r.catalog.size(), 0u);
#ifndef COSMO_OBS_DISABLED
    const auto spans = obs::Tracer::instance().snapshot();
    const std::string cat = to_string(kind);
    // max over rank spans + sum of rank-less spans for one phase name.
    auto from_trace = [&](const std::string& phase) {
      double rank_max = 0.0, rankless_sum = 0.0;
      std::size_t n = 0;
      for (const auto& s : spans) {
        if (s.cat != cat || s.name != phase) continue;
        ++n;
        if (s.rank >= 0)
          rank_max = std::max(rank_max, s.seconds());
        else
          rankless_sum += s.seconds();
      }
      return std::pair<double, std::size_t>(rank_max + rankless_sum, n);
    };
    constexpr double kTol = 1e-4;  // finish() sub-µs clock-tick fallback
    const struct {
      const char* phase;
      double ledger;
    } rows[] = {
        {"phase.sim", r.times.sim},
        {"phase.analysis", r.times.analysis},
        {"phase.write", r.times.write},
        {"phase.read", r.times.read},
        {"phase.redistribute", r.times.redistribute},
        {"phase.post_analysis", r.times.post_analysis},
        {"phase.post_write", r.times.post_write},
    };
    double trace_total = 0.0, ledger_total = 0.0;
    for (const auto& row : rows) {
      const auto [derived, count] = from_trace(row.phase);
      SCOPED_TRACE(row.phase);
      if (row.ledger > 0.0)
        EXPECT_GT(count, 0u) << "ledger has time but trace has no span";
      EXPECT_NEAR(derived, row.ledger, kTol);
      trace_total += derived;
      ledger_total += row.ledger;
    }
    // The grand totals agree too (the Table 4 row sums).
    EXPECT_NEAR(trace_total, ledger_total, 7 * kTol);
    EXPECT_NEAR(ledger_total, r.times.sim_total() + r.times.post_total(),
                1e-9);
    // Every rank of the simulation job produced a phase.sim span.
    const auto [_, sim_spans] = from_trace("phase.sim");
    EXPECT_EQ(sim_spans, static_cast<std::size_t>(p.ranks));
#endif
  }
}

TEST_F(WorkflowEnd2End, SubhalosReportedWhenEnabled) {
  auto p = make("subhalos");
  p.universe.halo_count = 4;
  p.universe.min_particles = 5200;
  p.universe.max_particles = 8000;
  p.universe.background_particles = 0;
  p.universe.subclump_fraction = 0.25;
  p.universe.subclump_min_host = 5000;
  p.compute_subhalos = true;
  p.subhalo_min_host = 5000;
  p.threshold = 0;
  p.overload = 3.5;
  auto r = run_workflow(WorkflowKind::InSitu, p);
  std::uint32_t subs = 0;
  for (const auto& rec : r.catalog) subs += rec.subhalos;
  EXPECT_GT(subs, 0u) << "planted substructure not reported in catalog";
}

}  // namespace
