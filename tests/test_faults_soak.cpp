// Seed-replay soak: a short co-scheduled campaign under N random fault
// plans, each with moderate (always-recoverable) fault pressure on comm,
// I/O, and the Listener. Every plan must leave the per-step catalogs
// identical to a fault-free reference run; on failure the offending seed is
// in the gtest trace, ready to be pinned and replayed.
//
// The base seed comes from COSMO_FAULT_SOAK_SEED when set (CI's fault
// matrix), otherwise a pinned default, so a plain local run is fully
// deterministic.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/workflows.h"
#include "faults/faults.h"
#include "stats/catalog.h"

namespace {

using namespace cosmo;
using namespace cosmo::core;
namespace fs = std::filesystem;

constexpr std::uint64_t kDefaultBaseSeed = 20260808;

std::uint64_t base_seed() {
  if (const char* env = std::getenv("COSMO_FAULT_SOAK_SEED"))
    return std::strtoull(env, nullptr, 10);
  return kDefaultBaseSeed;
}

CampaignConfig small_campaign(const std::string& tag) {
  CampaignConfig cfg;
  cfg.base.universe.box = 32.0;
  cfg.base.universe.seed = 4242;
  cfg.base.universe.halo_count = 16;
  cfg.base.universe.min_particles = 60;
  cfg.base.universe.max_particles = 2000;
  cfg.base.universe.background_particles = 500;
  cfg.base.universe.subclump_fraction = 0.0;
  cfg.base.ranks = 4;
  cfg.base.analysis_ranks = 2;
  cfg.base.linking_length = 0.3;
  cfg.base.overload = 2.5;
  cfg.base.threshold = 150;
  cfg.base.compute_so_mass = true;
  cfg.base.workdir = fs::temp_directory_path() /
                     ("faultsoak_" + std::to_string(::getpid()) + "_" + tag);
  cfg.timesteps = 2;
  cfg.growth_per_step = 1.4;
  return cfg;
}

/// The soak fault mix: every site recoverable by design. comm drops are
/// absorbed by redelivery (comm.redeliver stays clean, so a drop can never
/// be permanent), write failures by the whole-file retry, submit failures by
/// the retry policy or step degradation, missed polls by the next sweep.
void configure_soak_plan(faults::Plan& plan) {
  // One scheduled injection guarantees every plan exercises at least one
  // site regardless of how the probabilistic coins land (a missed first
  // poll is harmless: pending triggers surface on the next sweep).
  plan.schedule(faults::at("listener.poll", 0));
  plan.set_rate("comm.delay", 0.03);
  plan.set_param("comm.delay", 1);
  plan.set_rate("comm.send", 0.03);
  plan.set_rate("io.write_fail", 0.05);
  plan.set_rate("io.write_slow", 0.05);
  plan.set_param("io.write_slow", 1);
  plan.set_rate("listener.submit", 0.25);
  plan.set_rate("listener.poll", 0.10);
}

void expect_same_catalog(const stats::HaloCatalog& a,
                         const stats::HaloCatalog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].count, b[i].count);
    EXPECT_FLOAT_EQ(a[i].cx, b[i].cx);
    EXPECT_FLOAT_EQ(a[i].cy, b[i].cy);
    EXPECT_FLOAT_EQ(a[i].cz, b[i].cz);
    EXPECT_FLOAT_EQ(a[i].so_mass, b[i].so_mass);
  }
}

class FaultSoak : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& d : dirs_) {
      std::error_code ec;
      fs::remove_all(d, ec);
    }
  }
  CampaignConfig make(const std::string& tag) {
    auto cfg = small_campaign(tag);
    dirs_.push_back(cfg.base.workdir);
    return cfg;
  }
  std::vector<fs::path> dirs_;
};

TEST_F(FaultSoak, RandomFaultPlansNeverCorruptTheCampaign) {
  const auto r_ref = run_campaign(make("ref"));
  ASSERT_EQ(r_ref.degraded_steps, 0u);

  constexpr int kPlans = 4;
  const std::uint64_t base = base_seed();
  for (int i = 0; i < kPlans; ++i) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(i);
    SCOPED_TRACE("fault plan seed " + std::to_string(seed) +
                 " (replay: COSMO_FAULT_SOAK_SEED=" + std::to_string(seed) +
                 ")");
    faults::Plan plan(seed);
    configure_soak_plan(plan);
    const auto cfg = make("seed" + std::to_string(seed));
    CampaignResult r;
    {
      faults::ScopedPlan armed(plan);
      r = run_campaign(cfg);
    }
    EXPECT_GT(plan.injected_total(), 0u)
        << "the soak mix should exercise at least one site";
    ASSERT_EQ(r.steps.size(), r_ref.steps.size());
    for (std::size_t s = 0; s < r.steps.size(); ++s) {
      SCOPED_TRACE("step " + std::to_string(s));
      expect_same_catalog(r_ref.steps[s].catalog, r.steps[s].catalog);
    }
  }
}

// Outcome-level golden replay at campaign scale: occurrence counts on the
// listener thread are shared between concurrently discovered triggers, so
// the exact injection log is not asserted here (that lives in test_faults on
// the sequential workflow) — but the recovery DECISIONS are deterministic:
// the same seed must degrade the same number of steps and produce the same
// catalogs.
TEST_F(FaultSoak, PinnedSeedCampaignReplaysSameOutcome) {
  const std::uint64_t seed = base_seed();
  auto run_once = [&](const std::string& tag) {
    faults::Plan plan(seed);
    configure_soak_plan(plan);
    faults::ScopedPlan armed(plan);
    return run_campaign(make(tag));
  };
  const auto r1 = run_once("replay1");
  const auto r2 = run_once("replay2");
  EXPECT_EQ(r1.degraded_steps, r2.degraded_steps);
  EXPECT_EQ(r1.dead_letter_submits, r2.dead_letter_submits);
  ASSERT_EQ(r1.steps.size(), r2.steps.size());
  for (std::size_t s = 0; s < r1.steps.size(); ++s)
    EXPECT_EQ(stats::catalog_to_bytes(r1.steps[s].catalog),
              stats::catalog_to_bytes(r2.steps[s].catalog));
}

}  // namespace
