// Tests for the co-scheduling substrate: batch scheduler (queue policies,
// charge accounting), the real filesystem Listener, job templates, and the
// in-transit staging area.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "sched/batch_scheduler.h"
#include "sched/listener.h"
#include "sched/staging.h"

namespace {

using namespace cosmo;
using namespace cosmo::sched;
namespace fs = std::filesystem;
using namespace std::chrono_literals;

// ---------------------------------------------------------------- scheduler

TEST(Scheduler, SingleJobRunsImmediately) {
  BatchScheduler s({"test", 16, 1.0, 1.0, true, {}});
  auto id = s.submit("job", 4, 100.0, 0.0);
  s.run_to_completion();
  EXPECT_DOUBLE_EQ(s.job(id).start_time, 0.0);
  EXPECT_DOUBLE_EQ(s.job(id).end_time, 100.0);
  EXPECT_DOUBLE_EQ(s.job(id).wait_s(), 0.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 100.0);
}

TEST(Scheduler, JobsQueueWhenMachineFull) {
  BatchScheduler s({"test", 8, 1.0, 1.0, true, {}});
  auto a = s.submit("a", 8, 50.0, 0.0);
  auto b = s.submit("b", 8, 50.0, 0.0);
  s.run_to_completion();
  EXPECT_DOUBLE_EQ(s.job(a).start_time, 0.0);
  EXPECT_DOUBLE_EQ(s.job(b).start_time, 50.0);  // waits for a
  EXPECT_DOUBLE_EQ(s.job(b).wait_s(), 50.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 100.0);
}

TEST(Scheduler, ParallelJobsShareTheMachine) {
  BatchScheduler s({"test", 8, 1.0, 1.0, true, {}});
  auto a = s.submit("a", 4, 50.0, 0.0);
  auto b = s.submit("b", 4, 80.0, 0.0);
  s.run_to_completion();
  EXPECT_DOUBLE_EQ(s.job(a).start_time, 0.0);
  EXPECT_DOUBLE_EQ(s.job(b).start_time, 0.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 80.0);
}

TEST(Scheduler, BackfillLetsSmallJobSkipAhead) {
  // 8-node machine: big job running (6 nodes), then a 6-node job queued,
  // then a 2-node job. Backfill starts the 2-node job immediately.
  BatchScheduler s({"test", 8, 1.0, 1.0, true, {}});
  s.submit("big-running", 6, 100.0, 0.0);
  auto blocked = s.submit("big-queued", 6, 10.0, 1.0);
  auto small = s.submit("small", 2, 10.0, 2.0);
  s.run_to_completion();
  EXPECT_DOUBLE_EQ(s.job(small).start_time, 2.0);
  EXPECT_DOUBLE_EQ(s.job(blocked).start_time, 100.0);
}

TEST(Scheduler, StrictFifoBlocksBackfill) {
  BatchScheduler s({"test", 8, 1.0, 1.0, true, {0x7fffffff, 0, true}});
  s.submit("big-running", 6, 100.0, 0.0);
  s.submit("big-queued", 6, 10.0, 1.0);
  auto small = s.submit("small", 2, 10.0, 2.0);
  s.run_to_completion();
  // The small job cannot pass the queued big job.
  EXPECT_GE(s.job(small).start_time, 100.0);
}

TEST(Scheduler, TitanSmallJobPolicyLimitsConcurrency) {
  // Titan: at most 2 jobs under 125 nodes running simultaneously.
  BatchScheduler s(MachineProfile::titan());
  std::vector<JobId> ids;
  for (int i = 0; i < 5; ++i)
    ids.push_back(s.submit("analysis" + std::to_string(i), 4, 60.0, 0.0));
  s.run_to_completion();
  // With 2 at a time, batch k starts at 60*floor(k/2).
  std::vector<double> starts;
  for (auto id : ids) starts.push_back(s.job(id).start_time);
  std::sort(starts.begin(), starts.end());
  EXPECT_DOUBLE_EQ(starts[0], 0.0);
  EXPECT_DOUBLE_EQ(starts[1], 0.0);
  EXPECT_DOUBLE_EQ(starts[2], 60.0);
  EXPECT_DOUBLE_EQ(starts[3], 60.0);
  EXPECT_DOUBLE_EQ(starts[4], 120.0);
}

TEST(Scheduler, LargeJobsExemptFromSmallJobLimit) {
  BatchScheduler s(MachineProfile::titan());
  auto big1 = s.submit("sim", 4096, 100.0, 0.0);
  auto big2 = s.submit("sim2", 4096, 100.0, 0.0);
  auto big3 = s.submit("sim3", 4096, 100.0, 0.0);
  s.run_to_completion();
  EXPECT_DOUBLE_EQ(s.job(big1).start_time, 0.0);
  EXPECT_DOUBLE_EQ(s.job(big2).start_time, 0.0);
  EXPECT_DOUBLE_EQ(s.job(big3).start_time, 0.0);
}

TEST(Scheduler, TitanChargePolicyIs30PerNodeHour) {
  BatchScheduler s(MachineProfile::titan());
  s.submit("sim", 32, 3600.0, 0.0);  // 32 nodes for 1 hour
  s.run_to_completion();
  EXPECT_NEAR(s.total_core_hours(), 32 * 30.0, 1e-9);
}

TEST(Scheduler, CoreHourConservation) {
  // Total charge is independent of queueing order/delays.
  BatchScheduler s({"t", 4, 2.0, 1.0, true, {}});
  double expected = 0.0;
  for (int i = 0; i < 10; ++i) {
    const int nodes = 1 + i % 4;
    const double dur = 100.0 * (i + 1);
    s.submit("j" + std::to_string(i), nodes, dur, 10.0 * i);
    expected += nodes * dur / 3600.0 * 2.0;
  }
  s.run_to_completion();
  EXPECT_NEAR(s.total_core_hours(), expected, 1e-9);
}

TEST(Scheduler, RejectsOversizedAndPastJobs) {
  BatchScheduler s({"t", 4, 1.0, 1.0, true, {}});
  EXPECT_THROW(s.submit("too-big", 5, 10.0, 0.0), Error);
  EXPECT_THROW(s.submit("negative", 1, -1.0, 0.0), Error);
  s.submit("ok", 1, 10.0, 5.0);
  s.run_to_completion();
  EXPECT_THROW(s.submit("past", 1, 1.0, 0.0), Error);
}

TEST(Scheduler, SubmitAfterCompletionContinues) {
  BatchScheduler s({"t", 4, 1.0, 1.0, true, {}});
  s.submit("first", 2, 10.0, 0.0);
  s.run_to_completion();
  auto second = s.submit("second", 2, 10.0, s.now() + 5.0);
  s.run_to_completion();
  EXPECT_DOUBLE_EQ(s.job(second).start_time, 15.0);
}

TEST(Scheduler, MachineProfilesMatchPaperParameters) {
  const auto titan = MachineProfile::titan();
  EXPECT_EQ(titan.nodes, 18688);
  EXPECT_DOUBLE_EQ(titan.charge_per_node_hour, 30.0);
  EXPECT_EQ(titan.policy.max_small_jobs_running, 2);
  EXPECT_EQ(titan.policy.small_job_threshold, 125);
  const auto moonlight = MachineProfile::moonlight();
  EXPECT_DOUBLE_EQ(moonlight.analysis_speed, 0.55);  // Titan = 0.55× Moonlight
  const auto rhea = MachineProfile::rhea();
  EXPECT_FALSE(rhea.has_gpus);
}

// ---------------------------------------------------------------- templates

TEST(JobTemplate, SubstitutesPlaceholders) {
  JobTemplate t("#!/bin/bash\nanalyze --step {step} --file {file}\n");
  const auto script = t.instantiate({{"step", "42"}, {"file", "snap.7.cosmo"}});
  EXPECT_NE(script.find("--step 42"), std::string::npos);
  EXPECT_NE(script.find("--file snap.7.cosmo"), std::string::npos);
}

TEST(JobTemplate, RepeatedPlaceholders) {
  JobTemplate t("{x}{x}{x}");
  EXPECT_EQ(t.instantiate({{"x", "ab"}}), "ababab");
}

TEST(JobTemplate, UnresolvedPlaceholderThrows) {
  JobTemplate t("run --file {file} --mode {mode}");
  EXPECT_THROW(t.instantiate({{"file", "a"}}), Error);
}

// ----------------------------------------------------------------- listener

class ListenerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("listener_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

TEST_F(ListenerTest, FiresOncePerTriggerFile) {
  std::atomic<int> fired{0};
  std::vector<std::string> paths;
  std::mutex m;
  Listener listener({dir_, ".done", 5ms}, [&](const fs::path& p) {
    ++fired;
    std::lock_guard lock(m);
    paths.push_back(p.filename().string());
  });
  listener.start();
  // Simulate the simulation writing data + trigger for 3 timesteps.
  for (int step = 0; step < 3; ++step) {
    std::ofstream(dir_ / ("snap." + std::to_string(step) + ".cosmo")) << "x";
    std::ofstream(dir_ / ("snap." + std::to_string(step) + ".cosmo.done"))
        << "ok";
    std::this_thread::sleep_for(15ms);
  }
  ASSERT_TRUE(listener.wait_for_triggers(3, 2000ms));
  listener.stop();
  EXPECT_EQ(fired.load(), 3);
  // Data files must NOT fire (only .done).
  for (const auto& p : paths)
    EXPECT_NE(p.find(".done"), std::string::npos);
}

TEST_F(ListenerTest, PollsMuchFasterThanOutputRate) {
  Listener listener({dir_, ".done", 2ms}, [](const fs::path&) {});
  listener.start();
  std::this_thread::sleep_for(100ms);
  listener.stop();
  // §3.2: the listener checks much more often than data appears.
  EXPECT_GE(listener.stats().polls, 10u);
}

TEST_F(ListenerTest, FinalSweepCatchesLateFiles) {
  std::atomic<int> fired{0};
  Listener listener({dir_, ".done", 1000ms},  // long interval: thread asleep
                    [&](const fs::path&) { ++fired; });
  listener.start();
  std::this_thread::sleep_for(20ms);
  // File appears "at the very end of the main application's execution".
  std::ofstream(dir_ / "last.done") << "ok";
  listener.stop();  // stop() runs the extra final sweep
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(ListenerTest, TriggersDriveJobSubmission) {
  // The full co-scheduling loop: trigger -> template -> scheduler submit.
  BatchScheduler cluster(MachineProfile::rhea());
  JobTemplate tmpl("analyze {file}");
  std::mutex m;
  std::vector<std::string> scripts;
  Listener listener({dir_, ".done", 5ms}, [&](const fs::path& p) {
    std::lock_guard lock(m);
    scripts.push_back(tmpl.instantiate({{"file", p.stem().string()}}));
    cluster.submit("analysis", 4, 60.0, cluster.now());
  });
  listener.start();
  std::ofstream(dir_ / "snap.0.cosmo.done") << "ok";
  std::ofstream(dir_ / "snap.1.cosmo.done") << "ok";
  ASSERT_TRUE(listener.wait_for_triggers(2, 2000ms));
  listener.stop();
  cluster.run_to_completion();
  EXPECT_EQ(cluster.job_count(), 2u);
  EXPECT_EQ(scripts.size(), 2u);
  for (const auto& s : scripts) EXPECT_EQ(s.find('{'), std::string::npos);
}

// ------------------------------------------------------------------ staging

TEST(Staging, PutTakeRoundTrip) {
  StagingArea area(1024);
  std::vector<std::byte> data(100, std::byte{42});
  EXPECT_TRUE(area.put("step7", data));
  EXPECT_EQ(area.used_bytes(), 100u);
  EXPECT_EQ(area.staged_count(), 1u);
  auto got = area.take("step7");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, data);
  EXPECT_EQ(area.used_bytes(), 0u);
  EXPECT_FALSE(area.take("step7").has_value());
}

TEST(Staging, CapacityIsEnforced) {
  StagingArea area(150);
  EXPECT_TRUE(area.put("a", std::vector<std::byte>(100)));
  EXPECT_FALSE(area.put("b", std::vector<std::byte>(100)));  // would overflow
  EXPECT_EQ(area.staged_count(), 1u);
  area.take("a");
  EXPECT_TRUE(area.put("b", std::vector<std::byte>(100)));
}

TEST(Staging, DuplicateNameThrows) {
  StagingArea area(1024);
  area.put("x", std::vector<std::byte>(8));
  EXPECT_THROW(area.put("x", std::vector<std::byte>(8)), Error);
}

TEST(Staging, BlockingTakeWaitsForProducer) {
  StagingArea area(1 << 20);
  std::thread producer([&] {
    std::this_thread::sleep_for(30ms);
    area.put("late", std::vector<std::byte>(64, std::byte{7}));
  });
  auto got = area.take_blocking("late", 2000ms);
  producer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 64u);
}

TEST(Staging, BlockingTakeTimesOut) {
  StagingArea area(1024);
  const auto got = area.take_blocking("never", 20ms);
  EXPECT_FALSE(got.has_value());
}

}  // namespace
