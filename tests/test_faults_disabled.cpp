// Compiled with COSMO_FAULTS_DISABLED: every fault point in the library is
// the constant `false`, so an armed plan — even one demanding a fault on
// every query — must inject nothing and change nothing. This is the
// zero-overhead compile-out guarantee: the failure branches are dead code.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/workflows.h"
#include "faults/faults.h"
#include "sched/staging.h"

namespace {

using namespace cosmo;
using namespace cosmo::core;
namespace fs = std::filesystem;

TEST(FaultsDisabled, MacrosCompileToConstants) {
  // Arm a plan that would fire on every query if the sites were live.
  faults::Plan plan(1);
  plan.set_rate("any.site", 1.0);
  plan.set_param("any.site", 99);
  faults::ScopedPlan armed(plan);
  EXPECT_FALSE(COSMO_FAULT_POINT("any.site"));
  EXPECT_EQ(COSMO_FAULT_PARAM("any.site", 7), 7u);
  EXPECT_EQ(plan.injected_total(), 0u) << "the macro never reached the plan";
}

TEST(FaultsDisabled, StagingIgnoresArmedPlan) {
  faults::Plan plan(2);
  plan.set_rate("staging.put", 1.0);
  plan.set_rate("staging.take", 1.0);
  faults::ScopedPlan armed(plan);
  sched::StagingArea area(1 << 20);
  EXPECT_TRUE(area.put("a", std::vector<std::byte>(64)));
  auto buf = area.take_blocking("a", std::chrono::milliseconds(100));
  ASSERT_TRUE(buf.has_value());
  EXPECT_EQ(buf->size(), 64u);
  EXPECT_EQ(plan.injected_total(), 0u);
}

TEST(FaultsDisabled, WorkflowRunsUnchangedUnderHostilePlan) {
  faults::Plan plan(3);
  for (const char* site :
       {"comm.send", "comm.delay", "io.write_fail", "io.write_partial",
        "io.read_fail", "listener.submit", "listener.poll", "staging.put",
        "workflow.intransit_consumer"})
    plan.set_rate(site, 1.0);
  faults::ScopedPlan armed(plan);

  WorkflowProblem p;
  p.universe.box = 32.0;
  p.universe.seed = 4242;
  p.universe.halo_count = 12;
  p.universe.min_particles = 60;
  p.universe.max_particles = 1500;
  p.universe.background_particles = 400;
  p.universe.subclump_fraction = 0.0;
  p.ranks = 4;
  p.analysis_ranks = 2;
  p.linking_length = 0.3;
  p.overload = 2.5;
  p.threshold = 150;
  p.workdir = fs::temp_directory_path() /
              ("faults_off_" + std::to_string(::getpid()));
  const auto r = run_workflow(WorkflowKind::CombinedCoScheduled, p);

  EXPECT_GT(r.total_halos, 5u);
  EXPECT_EQ(r.degraded_steps, 0u);
  EXPECT_EQ(r.staging_fallbacks, 0u);
  EXPECT_EQ(r.dead_letter_submits, 0u);
  EXPECT_EQ(r.submit_retries, 0u);
  EXPECT_EQ(plan.injected_total(), 0u);
  std::error_code ec;
  fs::remove_all(p.workdir, ec);
}

}  // namespace
