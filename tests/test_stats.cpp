// Tests for the stats module: power spectrum (against the input linear
// spectrum and across rank counts), mass function, and catalog
// reconciliation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "comm/comm.h"
#include "sim/cosmology.h"
#include "sim/ic.h"
#include "stats/catalog.h"
#include "stats/mass_function.h"
#include "stats/power_spectrum.h"
#include "util/rng.h"

namespace {

using namespace cosmo;
using namespace cosmo::stats;

TEST(PowerSpectrum, RandomFieldIsShotNoise) {
  // Pure Poisson particles: P(k) ≈ V/N, so with shot-noise subtraction the
  // result should be consistent with zero (small compared to V/N).
  comm::run_spmd(2, [&](comm::Comm& c) {
    const double box = 64.0;
    const std::size_t n_per_rank = 20000;
    sim::SlabDecomposition decomp(2, box);
    sim::ParticleSet p;
    Rng rng(7 + static_cast<std::uint64_t>(c.rank()));
    for (std::size_t i = 0; i < n_per_rank; ++i)
      p.push_back(static_cast<float>(rng.uniform(0, box)),
                  static_cast<float>(rng.uniform(0, box)),
                  static_cast<float>(rng.uniform(decomp.z_lo(c.rank()),
                                                 decomp.z_hi(c.rank()))),
                  0, 0, 0, 0);
    PowerSpectrumConfig cfg;
    cfg.grid = 32;
    cfg.bins = 8;
    auto ps = measure_power_spectrum(c, p, box, 2 * n_per_rank, cfg);
    const double shot = box * box * box / (2.0 * n_per_rank);
    ASSERT_FALSE(ps.k.empty());
    for (std::size_t b = 0; b < ps.k.size(); ++b)
      EXPECT_LT(std::abs(ps.power[b]), 0.5 * shot)
          << "bin " << b << " k=" << ps.k[b];
  });
}

TEST(PowerSpectrum, ZeldovichFieldMatchesLinearTheoryShape) {
  // Measure P(k) of Zel'dovich ICs and compare against D²(a) P_lin(k).
  comm::run_spmd(2, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    sim::IcConfig ic;
    ic.ng = 32;
    ic.box = 128.0;
    ic.z_init = 5.0;  // late start: signal well above shot noise
    ic.seed = 31;
    auto p = sim::zeldovich_ics(c, cosmo, ic);
    PowerSpectrumConfig cfg;
    cfg.grid = 32;
    cfg.bins = 6;
    // Lattice ICs carry no Poisson shot noise — subtracting V/N would bias
    // the estimate low (it exceeds the signal at these scales).
    cfg.subtract_shot_noise = false;
    const std::uint64_t ntot = 32ull * 32ull * 32ull;
    auto ps = measure_power_spectrum(c, p, ic.box, ntot, cfg);
    const double d = cosmo.growth(sim::Cosmology::a_of_z(ic.z_init));
    ASSERT_GE(ps.k.size(), 4u);
    for (std::size_t b = 0; b < 4; ++b) {
      const double expect = d * d * cosmo.linear_power(ps.k[b]);
      EXPECT_GT(ps.power[b], 0.5 * expect) << "k=" << ps.k[b];
      EXPECT_LT(ps.power[b], 2.0 * expect) << "k=" << ps.k[b];
    }
  });
}

TEST(PowerSpectrum, RankCountInvariant) {
  sim::Cosmology cosmo;
  sim::IcConfig ic;
  ic.ng = 16;
  ic.box = 64.0;
  ic.z_init = 10.0;
  ic.seed = 55;
  PowerSpectrumConfig cfg;
  cfg.grid = 16;
  cfg.bins = 5;
  const std::uint64_t ntot = 16ull * 16ull * 16ull;

  std::vector<double> p1, p4;
  comm::run_spmd(1, [&](comm::Comm& c) {
    auto p = sim::zeldovich_ics(c, cosmo, ic);
    auto ps = measure_power_spectrum(c, p, ic.box, ntot, cfg);
    if (c.rank() == 0) p1 = ps.power;
  });
  comm::run_spmd(4, [&](comm::Comm& c) {
    auto p = sim::zeldovich_ics(c, cosmo, ic);
    auto ps = measure_power_spectrum(c, p, ic.box, ntot, cfg);
    if (c.rank() == 0) p4 = ps.power;
  });
  ASSERT_EQ(p1.size(), p4.size());
  for (std::size_t b = 0; b < p1.size(); ++b)
    EXPECT_NEAR(p4[b], p1[b], 1e-6 * std::abs(p1[b]) + 1e-12);
}

// The deposit is the only particle-count-dependent stage; with the
// scatter-reduce deposit being backend-bit-identical and the FFT/binning
// deterministic, the measured spectrum must be EXACTLY equal on both
// backends — the in-situ measurement can share the pool for free.
TEST(PowerSpectrum, BackendInvariantBitExact) {
  sim::Cosmology cosmo;
  sim::IcConfig ic;
  ic.ng = 16;
  ic.box = 64.0;
  ic.z_init = 10.0;
  ic.seed = 77;
  const std::uint64_t ntot = 16ull * 16ull * 16ull;
  comm::run_spmd(2, [&](comm::Comm& c) {
    auto p = sim::zeldovich_ics(c, cosmo, ic);
    PowerSpectrumConfig cfg;
    cfg.grid = 16;
    cfg.bins = 5;
    cfg.backend = cosmo::dpp::Backend::Serial;
    auto serial = measure_power_spectrum(c, p, ic.box, ntot, cfg);
    cfg.backend = cosmo::dpp::Backend::ThreadPool;
    auto pooled = measure_power_spectrum(c, p, ic.box, ntot, cfg);
    ASSERT_EQ(serial.power.size(), pooled.power.size());
    EXPECT_EQ(serial.modes, pooled.modes);
    for (std::size_t b = 0; b < serial.power.size(); ++b) {
      ASSERT_EQ(serial.k[b], pooled.k[b]) << "bin " << b;
      ASSERT_EQ(serial.power[b], pooled.power[b]) << "bin " << b;
    }
  });
}

TEST(PowerSpectrum, ExchangeModeInvariantBitExact) {
  // The measurement FFT defaults to the pipelined transpose; the spectrum
  // must not move by a bit relative to the batched reference exchange.
  sim::Cosmology cosmo;
  sim::IcConfig ic;
  ic.ng = 16;
  ic.box = 64.0;
  ic.z_init = 10.0;
  ic.seed = 78;
  const std::uint64_t ntot = 16ull * 16ull * 16ull;
  comm::run_spmd(4, [&](comm::Comm& c) {
    auto p = sim::zeldovich_ics(c, cosmo, ic);
    PowerSpectrumConfig cfg;
    cfg.grid = 16;
    cfg.bins = 5;
    cfg.backend = cosmo::dpp::Backend::ThreadPool;
    cfg.fft_exchange = fft::DistributedFft::ExchangeMode::Batched;
    auto batched = measure_power_spectrum(c, p, ic.box, ntot, cfg);
    cfg.fft_exchange = fft::DistributedFft::ExchangeMode::Pipelined;
    auto piped = measure_power_spectrum(c, p, ic.box, ntot, cfg);
    ASSERT_EQ(batched.power.size(), piped.power.size());
    EXPECT_EQ(batched.modes, piped.modes);
    for (std::size_t b = 0; b < batched.power.size(); ++b) {
      ASSERT_EQ(batched.k[b], piped.k[b]) << "bin " << b;
      ASSERT_EQ(batched.power[b], piped.power[b]) << "bin " << b;
    }
  });
}

TEST(MassFunction, SplitsAtThreshold) {
  HaloCatalog cat;
  for (std::uint64_t n : {50u, 100u, 400u, 100000u, 400000u, 2000000u}) {
    HaloRecord h;
    h.id = static_cast<std::int64_t>(n);
    h.count = n;
    cat.push_back(h);
  }
  auto mf = mass_function(cat, 300000);
  EXPECT_EQ(mf.total_halos, 6u);
  EXPECT_EQ(mf.total_off_loaded, 2u);  // 400k and 2M
  std::uint64_t in_situ = 0, off = 0;
  for (std::size_t b = 0; b < mf.bin_lo.size(); ++b) {
    in_situ += mf.in_situ[b];
    off += mf.off_loaded[b];
  }
  EXPECT_EQ(in_situ, 4u);
  EXPECT_EQ(off, 2u);
}

TEST(MassFunction, PowerLawShapeDecreases) {
  // dn/dm ∝ m^-2: counts per log bin must fall with mass.
  Rng rng(3);
  HaloCatalog cat;
  for (int i = 0; i < 20000; ++i) {
    const double m = 40.0 / (1.0 - rng.uniform() * (1.0 - 40.0 / 1e6));
    HaloRecord h;
    h.id = i;
    h.count = static_cast<std::uint64_t>(m);
    cat.push_back(h);
  }
  auto mf = mass_function(cat, 300000, 12, 10.0, 1e7);
  // First populated bins must dominate the tail.
  ASSERT_GE(mf.bin_lo.size(), 3u);
  EXPECT_GT(mf.in_situ.front() + mf.off_loaded.front(),
            10 * (mf.in_situ.back() + mf.off_loaded.back()));
}

TEST(Catalog, ReconcileMergesDisjointParts) {
  HaloCatalog small, large;
  for (int i = 0; i < 5; ++i) {
    HaloRecord h;
    h.id = i;
    h.count = 100;
    small.push_back(h);
  }
  for (int i = 5; i < 8; ++i) {
    HaloRecord h;
    h.id = i;
    h.count = 1000000;
    large.push_back(h);
  }
  auto merged = reconcile_catalogs(small, large);
  ASSERT_EQ(merged.size(), 8u);
  for (std::size_t i = 0; i < merged.size(); ++i)
    EXPECT_EQ(merged[i].id, static_cast<std::int64_t>(i));  // sorted by id
}

TEST(Catalog, ReconcileRejectsOverlap) {
  HaloCatalog a, b;
  HaloRecord h;
  h.id = 42;
  a.push_back(h);
  b.push_back(h);
  EXPECT_THROW(reconcile_catalogs(a, b), Error);
}

TEST(Catalog, BytesRoundTrip) {
  HaloCatalog cat;
  for (int i = 0; i < 17; ++i) {
    HaloRecord h;
    h.id = 1000 + i;
    h.count = static_cast<std::uint64_t>(i * i);
    h.cx = static_cast<float>(i);
    h.so_mass = 3.5f * i;
    h.subhalos = static_cast<std::uint32_t>(i % 3);
    cat.push_back(h);
  }
  auto bytes = catalog_to_bytes(cat);
  auto back = catalog_from_bytes(bytes);
  ASSERT_EQ(back.size(), cat.size());
  for (std::size_t i = 0; i < cat.size(); ++i) {
    EXPECT_EQ(back[i].id, cat[i].id);
    EXPECT_EQ(back[i].count, cat[i].count);
    EXPECT_FLOAT_EQ(back[i].cx, cat[i].cx);
    EXPECT_FLOAT_EQ(back[i].so_mass, cat[i].so_mass);
    EXPECT_EQ(back[i].subhalos, cat[i].subhalos);
  }
}

TEST(Catalog, FromBytesRejectsBadLength) {
  std::vector<std::byte> bad(sizeof(HaloRecord) + 3);
  EXPECT_THROW(catalog_from_bytes(bad), Error);
}

TEST(Catalog, SummaryStatistics) {
  HaloCatalog cat;
  for (std::uint64_t n : {40u, 100u, 2000000u}) {
    HaloRecord h;
    h.count = n;
    cat.push_back(h);
  }
  auto s = summarize(cat);
  EXPECT_EQ(s.halos, 3u);
  EXPECT_EQ(s.particles_in_halos, 2000140u);
  EXPECT_EQ(s.largest, 2000000u);
}

}  // namespace
