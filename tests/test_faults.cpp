// Fault-injection test suite: every injection site exercised per layer, each
// asserting both the recovery outcome AND the emitted metrics; plus the
// replay acceptance test — a pinned-seed fault plan re-runs bit-identically
// (same injected faults, same retry counts, same degradation decisions, same
// final ledger).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "comm/comm.h"
#include "core/campaign.h"
#include "core/workflows.h"
#include "faults/faults.h"
#include "io/cosmo_io.h"
#include "io/fs_model.h"
#include "obs/obs.h"
#include "sched/batch_scheduler.h"
#include "sched/listener.h"
#include "sched/staging.h"
#include "stats/catalog.h"
#include "util/crc32.h"
#include "util/error.h"

namespace {

using namespace cosmo;
using namespace cosmo::core;
namespace fs = std::filesystem;

std::uint64_t counter_total(const std::string& name) {
  return obs::MetricsRegistry::instance().counter(name).total();
}

/// Metric delta helper: records totals at construction, reports growth.
class CounterDelta {
 public:
  explicit CounterDelta(std::string name)
      : name_(std::move(name)), before_(counter_total(name_)) {}
  std::uint64_t get() const { return counter_total(name_) - before_; }

 private:
  std::string name_;
  std::uint64_t before_;
};

WorkflowProblem small_problem(const std::string& tag) {
  WorkflowProblem p;
  p.universe.box = 32.0;
  p.universe.seed = 4242;
  p.universe.halo_count = 20;
  p.universe.min_particles = 60;
  p.universe.max_particles = 2500;
  p.universe.background_particles = 600;
  p.universe.subclump_fraction = 0.0;
  p.ranks = 4;
  p.analysis_ranks = 2;
  p.ranks_per_file = 2;
  p.linking_length = 0.3;
  p.min_halo_size = 40;
  p.overload = 2.5;
  p.threshold = 150;  // several halos exceed this → Level 2 is non-trivial
  p.compute_so_mass = true;
  p.compute_subhalos = false;
  p.workdir = fs::temp_directory_path() /
              ("faults_" + std::to_string(::getpid()) + "_" + tag);
  return p;
}

/// Field-wise catalog equality (FLOAT_EQ tolerance) — right for comparing a
/// degraded run against a fault-free reference, where the analysis ran on
/// different ranks/backends but must find the same physics.
void expect_same_catalog(const stats::HaloCatalog& a,
                         const stats::HaloCatalog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].count, b[i].count);
    EXPECT_FLOAT_EQ(a[i].cx, b[i].cx);
    EXPECT_FLOAT_EQ(a[i].cy, b[i].cy);
    EXPECT_FLOAT_EQ(a[i].cz, b[i].cz);
    EXPECT_FLOAT_EQ(a[i].potential, b[i].potential);
    EXPECT_FLOAT_EQ(a[i].so_mass, b[i].so_mass);
  }
}

std::uint32_t file_crc32(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  EXPECT_TRUE(f.good()) << p;
  std::vector<char> bytes((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
  return cosmo::crc32(bytes.data(), bytes.size());
}

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& d : dirs_) {
      std::error_code ec;
      fs::remove_all(d, ec);
    }
  }
  WorkflowProblem make(const std::string& tag) {
    auto p = small_problem(tag + "_" +
                           ::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->name());
    dirs_.push_back(p.workdir);
    return p;
  }
  fs::path make_dir(const std::string& tag) {
    auto d = fs::temp_directory_path() /
             ("faults_" + std::to_string(::getpid()) + "_" + tag + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(d);
    dirs_.push_back(d);
    return d;
  }
  std::vector<fs::path> dirs_;
};

// ---------------------------------------------------------------------------
// Plan mechanics
// ---------------------------------------------------------------------------

TEST(FaultPlan, ScheduledInjectionFiresAtExactOccurrence) {
  faults::Plan plan(1);
  plan.schedule(faults::at("unit.site", 2));
  faults::ScopedPlan armed(plan);
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) fired.push_back(faults::should_inject("unit.site"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false}));
  const auto log = plan.injections();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].site, "unit.site");
  EXPECT_EQ(log[0].occurrence, 2u);
  EXPECT_EQ(log[0].rank, -1);  // main thread is rank-less
}

TEST(FaultPlan, RateOneFiresUntilCapThenStops) {
  faults::Plan plan(2);
  plan.set_rate("unit.capped", 1.0, 3);
  faults::ScopedPlan armed(plan);
  CounterDelta injected("faults.injected");
  int fired = 0;
  for (int i = 0; i < 10; ++i)
    if (faults::should_inject("unit.capped")) ++fired;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(plan.injected_total(), 3u);
  EXPECT_EQ(injected.get(), 3u);
}

TEST(FaultPlan, UnconfiguredSiteAndDisarmedPlanNeverInject) {
  // No plan armed at all:
  EXPECT_FALSE(faults::should_inject("unit.anything"));
  // Plan armed but site not configured:
  faults::Plan plan(3);
  plan.set_rate("unit.other", 1.0);
  faults::ScopedPlan armed(plan);
  EXPECT_FALSE(faults::should_inject("unit.not_configured"));
  EXPECT_EQ(plan.injected_total(), 0u);
}

TEST(FaultPlan, SameSeedReplaysIdenticalLog) {
  auto run_sequence = [](faults::Plan& plan) {
    faults::ScopedPlan armed(plan);
    for (int i = 0; i < 200; ++i) (void)faults::should_inject("unit.coin");
  };
  faults::Plan a(77), b(77), c(78);
  for (auto* p : {&a, &b, &c}) p->set_rate("unit.coin", 0.25);
  run_sequence(a);
  run_sequence(b);
  run_sequence(c);
  EXPECT_EQ(a.injections(), b.injections());
  EXPECT_GT(a.injected_total(), 20u);  // ~50 expected of 200
  EXPECT_LT(a.injected_total(), 100u);
  EXPECT_NE(a.injections(), c.injections());  // different seed, different plan
}

TEST(FaultPlan, ParamRoundTripsAndFallsBack) {
  faults::Plan plan(4);
  plan.set_param("unit.param", 42);
  faults::ScopedPlan armed(plan);
  EXPECT_EQ(faults::site_param("unit.param", 7), 42u);
  EXPECT_EQ(faults::site_param("unit.no_param", 7), 7u);
}

TEST(FaultPlan, JitterIsPureAndBounded) {
  for (std::uint64_t attempt = 0; attempt < 8; ++attempt) {
    const auto j = faults::Plan::jitter_for(99, "unit.jitter", attempt, 10);
    EXPECT_LT(j, 10u);
    EXPECT_EQ(j, faults::Plan::jitter_for(99, "unit.jitter", attempt, 10));
  }
  EXPECT_EQ(faults::Plan::jitter_for(99, "unit.jitter", 0, 1), 0u);
  EXPECT_EQ(faults::Plan::jitter_for(99, "unit.jitter", 0, 0), 0u);
}

// ---------------------------------------------------------------------------
// comm: dropped / delayed payload delivery
// ---------------------------------------------------------------------------

TEST(CommFaults, DroppedDeliveryIsRedeliveredTransparently) {
  faults::Plan plan(11);
  plan.schedule(faults::at("comm.send", 0, 0));  // rank 0's first send
  faults::ScopedPlan armed(plan);
  CounterDelta drops("comm.delivery_drops"), redeliveries("comm.redeliveries");
  comm::run_spmd(2, [](comm::Comm& c) {
    if (c.rank() == 0)
      c.send_value<int>(1, 7, 99);
    else
      EXPECT_EQ((c.recv_value<int>(0, 7)), 99);
  });
  EXPECT_EQ(drops.get(), 1u);
  EXPECT_EQ(redeliveries.get(), 1u);
  ASSERT_EQ(plan.injections().size(), 1u);
  EXPECT_EQ(plan.injections()[0].site, "comm.send");
  EXPECT_EQ(plan.injections()[0].rank, 0);
}

TEST(CommFaults, PermanentDeliveryLossThrowsAfterRedeliveryBudget) {
  faults::Plan plan(12);
  plan.schedule(faults::at("comm.send", 0, 0));
  for (std::uint64_t occ = 0;
       occ < static_cast<std::uint64_t>(comm::Comm::kMaxRedeliveries); ++occ)
    plan.schedule(faults::at("comm.redeliver", occ, 0));
  faults::ScopedPlan armed(plan);
  CounterDelta drops("comm.delivery_drops");
  // Single-rank self-send: the failure surfaces on the sending rank with no
  // peer left blocked in recv.
  EXPECT_THROW(
      comm::run_spmd(1, [](comm::Comm& c) { c.send_value<int>(0, 1, 5); }),
      Error);
  // Initial drop + every redelivery dropped.
  EXPECT_EQ(drops.get(),
            1u + static_cast<std::uint64_t>(comm::Comm::kMaxRedeliveries));
}

TEST(CommFaults, DelayedSendsStillDeliverCorrectly) {
  faults::Plan plan(13);
  plan.set_rate("comm.delay", 1.0);
  plan.set_param("comm.delay", 1);  // 1 ms per send, keep the test fast
  faults::ScopedPlan armed(plan);
  CounterDelta delayed("comm.delayed_sends");
  comm::run_spmd(4, [](comm::Comm& c) {
    const int sum = c.allreduce_value(c.rank() + 1, comm::ReduceOp::Sum);
    EXPECT_EQ(sum, 10);
  });
  EXPECT_GT(delayed.get(), 0u);
}

TEST(CommFaults, CollectivesSurviveRandomDrops) {
  faults::Plan plan(14);
  plan.set_rate("comm.send", 0.2);  // redelivery absorbs every drop
  faults::ScopedPlan armed(plan);
  comm::run_spmd(4, [](comm::Comm& c) {
    for (int round = 0; round < 5; ++round) {
      const int sum = c.allreduce_value(c.rank(), comm::ReduceOp::Sum);
      EXPECT_EQ(sum, 6);
      auto all = c.allgather_value(c.rank() * 10);
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) EXPECT_EQ(all[r], r * 10);
    }
  });
  EXPECT_GT(plan.injected_total(), 0u) << "rate 0.2 should have fired";
}

// ---------------------------------------------------------------------------
// io: failed / partial / slow writes, failed reads, degraded filesystem
// ---------------------------------------------------------------------------

TEST_F(FaultTest, WriteFailThrowsAndCounts) {
  const auto dir = make_dir("io");
  faults::Plan plan(21);
  plan.schedule(faults::at("io.write_fail", 0));
  faults::ScopedPlan armed(plan);
  CounterDelta faults_seen("io.write_faults");
  io::CosmoIoWriter w(dir / "fail.cosmo", {32.0, 1.0, 16, 0});
  sim::ParticleSet p(16);
  EXPECT_THROW(w.write_block(p), Error);
  EXPECT_EQ(faults_seen.get(), 1u);
}

TEST_F(FaultTest, PartialWriteLeavesFileTheReaderRejects) {
  const auto dir = make_dir("io");
  const auto path = dir / "partial.cosmo";
  faults::Plan plan(22);
  plan.schedule(faults::at("io.write_partial", 0));
  faults::ScopedPlan armed(plan);
  CounterDelta faults_seen("io.write_faults");
  {
    io::CosmoIoWriter w(path, {32.0, 1.0, 16, 0});
    sim::ParticleSet p(16);
    EXPECT_THROW(w.write_block(p), Error);
    // Writer destroyed unfinalized: table_offset stays 0.
  }
  EXPECT_EQ(faults_seen.get(), 1u);
  EXPECT_TRUE(fs::exists(path)) << "partial write leaves bytes on disk";
  EXPECT_THROW({ io::CosmoIoReader r(path); }, Error)
      << "reader must reject an unfinalized file";
}

TEST_F(FaultTest, SlowWriteLandsAndIsCounted) {
  const auto dir = make_dir("io");
  const auto path = dir / "slow.cosmo";
  faults::Plan plan(23);
  plan.set_rate("io.write_slow", 1.0);
  plan.set_param("io.write_slow", 1);
  faults::ScopedPlan armed(plan);
  CounterDelta slow("io.slow_writes");
  {
    io::CosmoIoWriter w(path, {32.0, 1.0, 8, 0});
    sim::ParticleSet p(8);
    for (std::size_t i = 0; i < p.size(); ++i)
      p.tag[i] = static_cast<std::int64_t>(i);
    w.write_block(p);
    w.finalize();
  }
  EXPECT_EQ(slow.get(), 1u);
  io::CosmoIoReader r(path);  // slow ≠ broken: the file is valid
  ASSERT_EQ(r.num_blocks(), 1u);
  EXPECT_EQ(r.read_block(0).size(), 8u);
}

TEST_F(FaultTest, ReadFailThrowsAndCounts) {
  const auto dir = make_dir("io");
  const auto path = dir / "read.cosmo";
  {
    io::CosmoIoWriter w(path, {32.0, 1.0, 8, 0});
    sim::ParticleSet p(8);
    w.write_block(p);
    w.finalize();
  }
  faults::Plan plan(24);
  plan.schedule(faults::at("io.read_fail", 0));
  faults::ScopedPlan armed(plan);
  CounterDelta faults_seen("io.read_faults");
  io::CosmoIoReader r(path);
  EXPECT_THROW(r.read_block(0), Error);
  EXPECT_EQ(faults_seen.get(), 1u);
  EXPECT_EQ(r.read_block(0).size(), 8u) << "next attempt succeeds";
}

TEST(IoFaults, DegradedFilesystemMultipliesModeledTime) {
  io::FilesystemModel model{1.0e9, 1.0};
  const double nominal = model.write_seconds(1000000000);  // 1 + 1 = 2 s
  faults::Plan plan(25);
  plan.set_rate("fs.degraded", 1.0);
  plan.set_param("fs.degraded", 10);
  faults::ScopedPlan armed(plan);
  CounterDelta degraded("io.fs_degraded");
  EXPECT_DOUBLE_EQ(model.write_seconds(1000000000), nominal * 10.0);
  EXPECT_DOUBLE_EQ(model.read_seconds(1000000000), nominal * 10.0);
  EXPECT_EQ(degraded.get(), 2u);
}

// ---------------------------------------------------------------------------
// sched::Listener: missed polls, submit retry, dead letters
// ---------------------------------------------------------------------------

TEST_F(FaultTest, ListenerSubmitRetryAbsorbsTransientFailure) {
  const auto dir = make_dir("listener");
  faults::Plan plan(31);
  plan.schedule(faults::at("listener.submit", 0));  // first attempt bounces
  faults::ScopedPlan armed(plan);
  CounterDelta retries("sched.listener_submit_retries");
  CounterDelta dead("sched.listener_dead_letters");
  std::atomic<int> submitted{0};
  sched::Listener listener({dir, ".done", std::chrono::milliseconds(2)},
                           [&](const fs::path&) { ++submitted; });
  listener.start();
  std::ofstream(dir / "out.done") << "ok\n";
  ASSERT_TRUE(listener.wait_for_triggers(1, std::chrono::milliseconds(2000)));
  listener.stop();
  const auto stats = listener.stats();
  EXPECT_EQ(submitted.load(), 1);
  EXPECT_EQ(stats.triggers, 1u);
  EXPECT_EQ(stats.submit_retries, 1u);
  EXPECT_EQ(stats.dead_letters, 0u);
  EXPECT_EQ(retries.get(), 1u);
  EXPECT_EQ(dead.get(), 0u);
}

TEST_F(FaultTest, ListenerPermanentSubmitFailureIsDeadLettered) {
  const auto dir = make_dir("listener");
  faults::Plan plan(32);
  plan.set_rate("listener.submit", 1.0);  // every attempt fails
  faults::ScopedPlan armed(plan);
  CounterDelta dead("sched.listener_dead_letters");
  std::atomic<int> submitted{0};
  sched::Listener listener({dir, ".done", std::chrono::milliseconds(2)},
                           [&](const fs::path&) { ++submitted; });
  listener.start();
  const auto trigger = dir / "out.done";
  std::ofstream(trigger) << "ok\n";
  ASSERT_TRUE(listener.wait_for_triggers(1, std::chrono::milliseconds(2000)));
  listener.stop();
  const auto stats = listener.stats();
  EXPECT_EQ(submitted.load(), 0) << "callback must never run";
  EXPECT_EQ(stats.dead_letters, 1u);
  EXPECT_EQ(stats.submit_retries, 2u) << "3 attempts = 2 retries";
  const auto letters = listener.dead_letters();
  ASSERT_EQ(letters.size(), 1u);
  EXPECT_EQ(letters[0], trigger);
  EXPECT_EQ(dead.get(), 1u);
}

TEST_F(FaultTest, ListenerMissedPollsDelayButDoNotLoseTriggers) {
  const auto dir = make_dir("listener");
  std::ofstream(dir / "early.done") << "ok\n";  // present before the listener
  faults::Plan plan(33);
  plan.schedule(faults::at("listener.poll", 0));  // first two sweeps fail
  plan.schedule(faults::at("listener.poll", 1));
  faults::ScopedPlan armed(plan);
  CounterDelta missed("sched.listener_missed_polls");
  std::atomic<int> submitted{0};
  sched::Listener listener({dir, ".done", std::chrono::milliseconds(2)},
                           [&](const fs::path&) { ++submitted; });
  listener.start();
  ASSERT_TRUE(listener.wait_for_triggers(1, std::chrono::milliseconds(2000)));
  listener.stop();
  const auto stats = listener.stats();
  EXPECT_EQ(submitted.load(), 1);
  EXPECT_EQ(stats.triggers, 1u);
  EXPECT_EQ(stats.missed_polls, 2u);
  EXPECT_EQ(missed.get(), 2u);
}

// ---------------------------------------------------------------------------
// sched::StagingArea: device faults, lost handoffs, dead consumer
// ---------------------------------------------------------------------------

TEST(StagingFaults, InjectedDeviceFaultRejectsPutDespiteCapacity) {
  sched::StagingArea area(1 << 20);
  faults::Plan plan(41);
  plan.set_rate("staging.put", 1.0);
  faults::ScopedPlan armed(plan);
  CounterDelta device("sched.staging_faults"), rejects("sched.staging_rejects");
  EXPECT_FALSE(area.put("a", std::vector<std::byte>(64)));
  EXPECT_EQ(area.used_bytes(), 0u);
  EXPECT_EQ(device.get(), 1u);
  EXPECT_EQ(rejects.get(), 1u);
}

TEST(StagingFaults, LostHandoffCanBeRecoveredByPlainTake) {
  sched::StagingArea area(1 << 20);
  ASSERT_TRUE(area.put("a", std::vector<std::byte>(64)));
  faults::Plan plan(42);
  plan.schedule(faults::at("staging.take", 0));
  faults::ScopedPlan armed(plan);
  CounterDelta lost("sched.staging_take_faults");
  // The injected lost handoff returns empty even though the data is there…
  EXPECT_FALSE(
      area.take_blocking("a", std::chrono::milliseconds(50)).has_value());
  EXPECT_EQ(lost.get(), 1u);
  // …so the buffer is still resident and a plain take recovers it.
  auto buf = area.take("a");
  ASSERT_TRUE(buf.has_value());
  EXPECT_EQ(buf->size(), 64u);
}

TEST(StagingFaults, ClosedAreaRejectsPutsAndReleasesBlockedTakers) {
  sched::StagingArea area(1 << 20);
  CounterDelta closed("sched.staging_closed");
  std::optional<std::vector<std::byte>> taken;
  std::thread consumer([&] {
    taken = area.take_blocking("never", std::chrono::milliseconds(5000));
  });
  area.close();  // dead consumer / torn-down device
  consumer.join();
  EXPECT_FALSE(taken.has_value()) << "close must wake the blocked taker";
  EXPECT_TRUE(area.closed());
  EXPECT_FALSE(area.put("a", std::vector<std::byte>(8)));
  EXPECT_EQ(closed.get(), 1u);
}

// ---------------------------------------------------------------------------
// sched::BatchScheduler: job failure and requeue
// ---------------------------------------------------------------------------

TEST(BatchFaults, FailedJobIsRequeuedAndBilledPerAttempt) {
  faults::Plan plan(51);
  plan.schedule(faults::at("batch.job", 0));  // first completion check fails
  faults::ScopedPlan armed(plan);
  CounterDelta failed("sched.jobs_failed"), requeued("sched.jobs_requeued");
  sched::MachineProfile m{"Test", 16, 1.0, 1.0, true, {}};
  sched::BatchScheduler s(m);
  const auto id = s.submit("analysis", 4, 100.0, 0.0);
  s.run_to_completion();
  const auto& j = s.job(id);
  EXPECT_EQ(j.requeues, 1);
  EXPECT_FALSE(j.failed);
  EXPECT_DOUBLE_EQ(j.end_time, 200.0) << "requeued run starts at t=100";
  EXPECT_EQ(failed.get(), 1u);
  EXPECT_EQ(requeued.get(), 1u);
  // The facility bills both attempts: 4 nodes × 200 s.
  EXPECT_DOUBLE_EQ(s.total_core_hours(), 4 * (100.0 * 2 / 3600.0));
}

TEST(BatchFaults, RequeueBudgetExhaustionMarksJobFailed) {
  faults::Plan plan(52);
  plan.set_rate("batch.job", 1.0);  // every run dies
  faults::ScopedPlan armed(plan);
  CounterDelta failed("sched.jobs_failed"), requeued("sched.jobs_requeued");
  sched::MachineProfile m{"Test", 16, 1.0, 1.0, true, {}};
  m.policy.max_requeues = 1;
  sched::BatchScheduler s(m);
  const auto id = s.submit("analysis", 4, 50.0, 0.0);
  s.run_to_completion();
  const auto& j = s.job(id);
  EXPECT_TRUE(j.failed);
  EXPECT_EQ(j.requeues, 1);
  EXPECT_DOUBLE_EQ(j.end_time, 100.0);
  EXPECT_EQ(failed.get(), 2u) << "both runs checked and failed";
  EXPECT_EQ(requeued.get(), 1u) << "only one requeue allowed";
  EXPECT_DOUBLE_EQ(s.makespan(), 100.0);
}

TEST(BatchFaults, RequeueCoexistsWithQueuePolicy) {
  faults::Plan plan(53);
  plan.schedule(faults::at("batch.job", 0));  // first completion overall
  faults::ScopedPlan armed(plan);
  auto m = sched::MachineProfile::titan();
  sched::BatchScheduler s(m);
  // Three small jobs under Titan's ≤2-small-jobs policy; the requeued one
  // re-enters the same policy-constrained queue.
  const auto a = s.submit("a", 4, 10.0, 0.0);
  const auto b = s.submit("b", 4, 10.0, 0.0);
  const auto c = s.submit("c", 4, 10.0, 0.0);
  s.run_to_completion();
  EXPECT_EQ(s.job(a).requeues + s.job(b).requeues + s.job(c).requeues, 1);
  for (const auto id : {a, b, c}) {
    EXPECT_TRUE(s.job(id).finished());
    EXPECT_FALSE(s.job(id).failed);
  }
}

// ---------------------------------------------------------------------------
// Workflow-level recovery: fallback routing and graceful degradation
// ---------------------------------------------------------------------------

TEST_F(FaultTest, StagingDeviceFaultRoutesLevel2ThroughFilesystem) {
  auto p_ref = make("ref");
  const auto r_ref = run_workflow(WorkflowKind::CombinedInTransit, p_ref);

  faults::Plan plan(61);
  plan.set_rate("staging.put", 1.0);  // burst buffer dead for every rank
  faults::ScopedPlan armed(plan);
  CounterDelta fallbacks("workflow.staging_fallbacks");
  auto p = make("faulty");
  const auto r = run_workflow(WorkflowKind::CombinedInTransit, p);

  EXPECT_EQ(r.staging_fallbacks, static_cast<std::uint64_t>(p.ranks));
  EXPECT_EQ(fallbacks.get(), static_cast<std::uint64_t>(p.ranks));
  EXPECT_EQ(r.degraded_steps, 0u) << "rerouted, not degraded";
  expect_same_catalog(r_ref.catalog, r.catalog);
}

TEST_F(FaultTest, Level2WriteFaultIsRetriedTransparently) {
  auto p_ref = make("ref");
  const auto r_ref = run_workflow(WorkflowKind::CombinedSimple, p_ref);

  faults::Plan plan(62);
  // Every rank's first Level 2 block write fails; the whole-file retry
  // rewrites from the in-memory halos (only ranks with deferred halos ever
  // call write_block, so the injection count varies with the decomposition).
  plan.schedule(faults::at("io.write_fail", 0));
  faults::ScopedPlan armed(plan);
  CounterDelta write_retries("workflow.write_retries");
  CounterDelta retry_attempts("retry.attempts");
  auto p = make("faulty");
  const auto r = run_workflow(WorkflowKind::CombinedSimple, p);

  EXPECT_GE(write_retries.get(), 1u);
  EXPECT_EQ(write_retries.get(), plan.injected_total())
      << "each injected write failure costs exactly one whole-file retry";
  EXPECT_GT(retry_attempts.get(), static_cast<std::uint64_t>(p.ranks));
  expect_same_catalog(r_ref.catalog, r.catalog);
}

TEST_F(FaultTest, DeadLetteredSubmitDegradesStepToInSitu) {
  auto p_ref = make("ref");
  const auto r_ref = run_workflow(WorkflowKind::CombinedCoScheduled, p_ref);

  faults::Plan plan(63);
  plan.set_rate("listener.submit", 1.0);  // co-scheduled analysis unavailable
  faults::ScopedPlan armed(plan);
  CounterDelta degraded("workflow.degraded");
  auto p = make("faulty");
  const auto r = run_workflow(WorkflowKind::CombinedCoScheduled, p);

  EXPECT_EQ(r.degraded_steps, 1u);
  EXPECT_EQ(r.dead_letter_submits, static_cast<std::uint64_t>(p.ranks));
  EXPECT_EQ(degraded.get(), 1u);
  // The fallback job ran on the simulation side's resources and still
  // produced the complete, correct Level 3 catalog.
  expect_same_catalog(r_ref.catalog, r.catalog);
  EXPECT_GT(r.total_halos, 5u);
}

TEST_F(FaultTest, TransientSubmitFailureDoesNotDegrade) {
  faults::Plan plan(64);
  plan.schedule(faults::at("listener.submit", 0));  // one bounce, then fine
  faults::ScopedPlan armed(plan);
  auto p = make("transient");
  const auto r = run_workflow(WorkflowKind::CombinedCoScheduled, p);
  EXPECT_EQ(r.degraded_steps, 0u);
  EXPECT_EQ(r.dead_letter_submits, 0u);
  EXPECT_EQ(r.submit_retries, 1u);
  EXPECT_EQ(r.listener_triggers, static_cast<std::uint64_t>(p.ranks));
}

TEST_F(FaultTest, InTransitConsumerDeathDegradesAndDrainsStaging) {
  auto p_ref = make("ref");
  const auto r_ref = run_workflow(WorkflowKind::CombinedInTransit, p_ref);

  faults::Plan plan(65);
  plan.schedule(faults::at("workflow.intransit_consumer", 0));
  faults::ScopedPlan armed(plan);
  CounterDelta degraded("workflow.degraded");
  CounterDelta consumer("workflow.consumer_faults");
  auto p = make("faulty");
  const auto r = run_workflow(WorkflowKind::CombinedInTransit, p);

  EXPECT_EQ(r.degraded_steps, 1u);
  EXPECT_EQ(degraded.get(), 1u);
  EXPECT_EQ(consumer.get(), 1u);
  expect_same_catalog(r_ref.catalog, r.catalog);
}

TEST_F(FaultTest, CampaignWithPermanentSubmitFailureCompletesDegraded) {
  CampaignConfig ref_cfg;
  ref_cfg.base = make("ref");
  ref_cfg.timesteps = 2;
  ref_cfg.growth_per_step = 1.4;
  const auto r_ref = run_campaign(ref_cfg);
  ASSERT_EQ(r_ref.degraded_steps, 0u);

  faults::Plan plan(66);
  plan.set_rate("listener.submit", 1.0);
  faults::ScopedPlan armed(plan);
  CounterDelta degraded("workflow.degraded");
  CampaignConfig cfg = ref_cfg;
  cfg.base = make("faulty");
  const auto r = run_campaign(cfg);

  EXPECT_EQ(r.degraded_steps, 2u);
  EXPECT_EQ(r.dead_letter_submits, 2u);
  EXPECT_EQ(degraded.get(), 2u);
  ASSERT_EQ(r.steps.size(), r_ref.steps.size());
  for (std::size_t s = 0; s < r.steps.size(); ++s) {
    EXPECT_TRUE(r.steps[s].degraded);
    expect_same_catalog(r_ref.steps[s].catalog, r.steps[s].catalog);
  }
}

TEST_F(FaultTest, CampaignAbsorbsAnalysisJobDeath) {
  CampaignConfig ref_cfg;
  ref_cfg.base = make("ref");
  ref_cfg.timesteps = 2;
  ref_cfg.growth_per_step = 1.4;
  const auto r_ref = run_campaign(ref_cfg);

  faults::Plan plan(67);
  // Exactly one Level 2 read fails, ever: one rank of one co-scheduled
  // analysis job loses its reads, the job's ranks abort in a coordinated
  // way (no peer left blocked in a collective), the job dies, and the
  // post-drain fallback (whose reads come later) absorbs that step.
  plan.set_rate("io.read_fail", 1.0, 1);
  faults::ScopedPlan armed(plan);
  CounterDelta job_failures("campaign.analysis_job_failures");
  CampaignConfig cfg = ref_cfg;
  cfg.base = make("faulty");
  const auto r = run_campaign(cfg);

  EXPECT_EQ(r.analysis_job_failures, 1u);
  EXPECT_EQ(job_failures.get(), 1u);
  EXPECT_EQ(r.degraded_steps, 1u) << "the dead job's step fell back";
  ASSERT_EQ(r.steps.size(), r_ref.steps.size());
  for (std::size_t s = 0; s < r.steps.size(); ++s)
    expect_same_catalog(r_ref.steps[s].catalog, r.steps[s].catalog);
}

// ---------------------------------------------------------------------------
// Replay: the acceptance criterion. A pinned-seed plan over a deterministic
// workload re-runs bit-identically — same injection log, same retry counts,
// same degradation decisions, same catalog bytes and Level 3 CRC.
// ---------------------------------------------------------------------------

void configure_replay_plan(faults::Plan& plan) {
  plan.set_rate("comm.delay", 0.05);
  plan.set_param("comm.delay", 1);
  plan.set_rate("comm.send", 0.02);            // drops; redelivery recovers
  plan.schedule(faults::at("io.write_fail", 0, 1));   // rank 1 retries Level 2
  plan.schedule(faults::at("listener.submit", 0));    // one submit bounce
}

TEST_F(FaultTest, PinnedSeedFaultPlanReplaysBitIdentically) {
  constexpr std::uint64_t kSeed = 20260808;

  struct RunRecord {
    WorkflowResult result;
    std::vector<faults::Injection> log;
    std::uint64_t retry_attempts = 0;
    std::uint64_t injected = 0;
    std::uint32_t level3_crc = 0;
  };
  auto run_once = [&](const std::string& tag) {
    faults::Plan plan(kSeed);
    configure_replay_plan(plan);
    auto p = make(tag);
    CounterDelta retry_attempts("retry.attempts");
    RunRecord rec;
    {
      faults::ScopedPlan armed(plan);
      rec.result = run_workflow(WorkflowKind::CombinedCoScheduled, p);
    }
    rec.log = plan.injections();
    rec.retry_attempts = retry_attempts.get();
    rec.injected = plan.injected_total();
    rec.level3_crc = file_crc32(p.workdir / "level3.catalog");
    return rec;
  };

  const auto r1 = run_once("replay1");
  const auto r2 = run_once("replay2");

  // Same injected faults (site, rank, occurrence — the whole log)…
  EXPECT_GT(r1.injected, 0u) << "the pinned plan must actually inject";
  EXPECT_EQ(r1.log, r2.log);
  EXPECT_EQ(r1.injected, r2.injected);
  // …same retry counts and degradation decisions…
  EXPECT_EQ(r1.retry_attempts, r2.retry_attempts);
  EXPECT_EQ(r1.result.degraded_steps, r2.result.degraded_steps);
  EXPECT_EQ(r1.result.dead_letter_submits, r2.result.dead_letter_submits);
  EXPECT_EQ(r1.result.submit_retries, r2.result.submit_retries);
  EXPECT_EQ(r1.result.staging_fallbacks, r2.result.staging_fallbacks);
  // …and a bit-identical final ledger.
  EXPECT_EQ(stats::catalog_to_bytes(r1.result.catalog),
            stats::catalog_to_bytes(r2.result.catalog));
  EXPECT_EQ(r1.level3_crc, r2.level3_crc);

  // The faulted-but-recovered runs also match the fault-free product.
  auto p_ref = make("ref");
  const auto r_ref = run_workflow(WorkflowKind::CombinedCoScheduled, p_ref);
  expect_same_catalog(r_ref.catalog, r1.result.catalog);
}

TEST_F(FaultTest, DifferentSeedsProduceDifferentInjectionLogs) {
  auto log_for = [&](std::uint64_t seed, const std::string& tag) {
    faults::Plan plan(seed);
    plan.set_rate("comm.send", 0.1);
    auto p = make(tag);
    faults::ScopedPlan armed(plan);
    (void)run_workflow(WorkflowKind::CombinedSimple, p);
    return plan.injections();
  };
  const auto a = log_for(1001, "seed_a");
  const auto b = log_for(1002, "seed_b");
  EXPECT_FALSE(a.empty());
  EXPECT_FALSE(b.empty());
  EXPECT_NE(a, b);
}

}  // namespace
