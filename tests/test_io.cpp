// Tests for CosmoIO: round trips, CRC corruption detection, truncation
// rejection, aggregated multi-rank files, and the filesystem cost models.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "comm/comm.h"
#include "io/aggregated.h"
#include "io/cosmo_io.h"
#include "io/fs_model.h"
#include "sim/particles.h"
#include "util/rng.h"

namespace {

using namespace cosmo;
using namespace cosmo::io;
using sim::ParticleSet;
namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cosmoio_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

ParticleSet sample_particles(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  ParticleSet p;
  for (std::size_t i = 0; i < n; ++i)
    p.push_back(static_cast<float>(rng.uniform(0, 64)),
                static_cast<float>(rng.uniform(0, 64)),
                static_cast<float>(rng.uniform(0, 64)),
                static_cast<float>(rng.normal()),
                static_cast<float>(rng.normal()),
                static_cast<float>(rng.normal()),
                static_cast<std::int64_t>(seed * 100000 + i),
                static_cast<float>(-rng.uniform()));
  return p;
}

void expect_equal(const ParticleSet& a, const ParticleSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tag[i], b.tag[i]);
    EXPECT_FLOAT_EQ(a.x[i], b.x[i]);
    EXPECT_FLOAT_EQ(a.y[i], b.y[i]);
    EXPECT_FLOAT_EQ(a.z[i], b.z[i]);
    EXPECT_FLOAT_EQ(a.vx[i], b.vx[i]);
    EXPECT_FLOAT_EQ(a.vy[i], b.vy[i]);
    EXPECT_FLOAT_EQ(a.vz[i], b.vz[i]);
    EXPECT_FLOAT_EQ(a.phi[i], b.phi[i]);
  }
}

TEST_F(IoTest, SingleBlockRoundTrip) {
  const fs::path file = dir_ / "one.cosmo";
  ParticleSet p = sample_particles(1000, 1);
  {
    CosmoIoWriter w(file, {64.0, 1.0, 1000, 0});
    w.write_block(p, 0);
    w.finalize();
  }
  CosmoIoReader r(file);
  EXPECT_EQ(r.num_blocks(), 1u);
  EXPECT_EQ(r.block_particles(0), 1000u);
  EXPECT_DOUBLE_EQ(r.info().box, 64.0);
  EXPECT_DOUBLE_EQ(r.info().scale_factor, 1.0);
  EXPECT_EQ(r.info().total_particles, 1000u);
  expect_equal(r.read_block(0), p);
}

TEST_F(IoTest, MultiBlockPreservesBlockIdentity) {
  const fs::path file = dir_ / "multi.cosmo";
  std::vector<ParticleSet> blocks;
  for (std::uint64_t b = 0; b < 5; ++b)
    blocks.push_back(sample_particles(100 + 50 * b, b));
  {
    CosmoIoWriter w(file, {64.0, 0.5, 0, 0});
    for (std::size_t b = 0; b < blocks.size(); ++b)
      w.write_block(blocks[b], static_cast<std::uint32_t>(10 + b));
    w.finalize();
  }
  CosmoIoReader r(file);
  ASSERT_EQ(r.num_blocks(), 5u);
  for (std::uint32_t b = 0; b < 5; ++b) {
    EXPECT_EQ(r.block_writer_rank(b), 10 + b);
    expect_equal(r.read_block(b), blocks[b]);
  }
  // read_all concatenates in block order.
  ParticleSet all = r.read_all();
  std::size_t expected = 0;
  for (const auto& b : blocks) expected += b.size();
  EXPECT_EQ(all.size(), expected);
}

TEST_F(IoTest, EmptyBlockIsValid) {
  const fs::path file = dir_ / "empty.cosmo";
  {
    CosmoIoWriter w(file, {64.0, 1.0, 0, 0});
    w.write_block(ParticleSet{}, 0);
    w.finalize();
  }
  CosmoIoReader r(file);
  EXPECT_EQ(r.read_block(0).size(), 0u);
}

TEST_F(IoTest, UnfinalizedFileIsRejected) {
  const fs::path file = dir_ / "crashed.cosmo";
  {
    CosmoIoWriter w(file, {64.0, 1.0, 100, 0});
    w.write_block(sample_particles(100, 2), 0);
    // no finalize — simulates a writer crash
  }
  EXPECT_THROW(CosmoIoReader r(file), Error);
}

TEST_F(IoTest, CorruptedDataFailsCrc) {
  const fs::path file = dir_ / "corrupt.cosmo";
  {
    CosmoIoWriter w(file, {64.0, 1.0, 500, 0});
    w.write_block(sample_particles(500, 3), 0);
    w.finalize();
  }
  // Flip one byte in the middle of the particle payload.
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200);
    char c;
    f.seekg(200);
    f.get(c);
    f.seekp(200);
    f.put(static_cast<char>(c ^ 0x10));
  }
  CosmoIoReader r(file);
  EXPECT_THROW(r.read_block(0), Error);
}

TEST_F(IoTest, GarbageFileIsRejected) {
  const fs::path file = dir_ / "garbage.cosmo";
  {
    std::ofstream f(file, std::ios::binary);
    f << "this is not a cosmo file at all, not even close.............";
  }
  EXPECT_THROW(CosmoIoReader r(file), Error);
}

TEST_F(IoTest, BlockIndexOutOfRangeThrows) {
  const fs::path file = dir_ / "range.cosmo";
  {
    CosmoIoWriter w(file, {64.0, 1.0, 10, 0});
    w.write_block(sample_particles(10, 4), 0);
    w.finalize();
  }
  CosmoIoReader r(file);
  EXPECT_THROW(r.read_block(1), Error);
  EXPECT_THROW(r.block_particles(7), Error);
}

class AggRanks : public ::testing::TestWithParam<std::pair<int, int>> {};
INSTANTIATE_TEST_SUITE_P(
    Layouts, AggRanks,
    ::testing::Values(std::pair{4, 2}, std::pair{4, 4}, std::pair{4, 1},
                      std::pair{6, 4}, std::pair{1, 1}),
    [](const auto& info) {
      return "P" + std::to_string(info.param.first) + "per" +
             std::to_string(info.param.second);
    });

TEST_P(AggRanks, AggregatedRoundTripThroughRedistribution) {
  const auto [P, per_file] = GetParam();
  const double box = 64.0;
  const auto dir = fs::temp_directory_path() /
                   ("cosmoagg_" + std::to_string(::getpid()) + "_" +
                    std::to_string(P) + "_" + std::to_string(per_file));
  fs::create_directories(dir);
  const auto base = dir / "snap";

  std::vector<std::int64_t> written_tags, read_tags;
  std::mutex m;
  comm::run_spmd(P, [&, P = P, per_file = per_file](comm::Comm& c) {
    sim::SlabDecomposition decomp(P, box);
    // Each rank owns particles in its slab.
    ParticleSet local;
    Rng rng(900 + static_cast<std::uint64_t>(c.rank()));
    for (int i = 0; i < 200; ++i)
      local.push_back(static_cast<float>(rng.uniform(0, box)),
                      static_cast<float>(rng.uniform(0, box)),
                      static_cast<float>(rng.uniform(decomp.z_lo(c.rank()),
                                                     decomp.z_hi(c.rank()))),
                      0, 0, 0, c.rank() * 1000 + i);
    {
      std::lock_guard lock(m);
      for (const auto t : local.tag) written_tags.push_back(t);
    }
    auto wr = write_aggregated(c, base, local, {box, 1.0, 0, 0}, per_file);
    // Expected file count: ceil(P / per_file), written by group leaders.
    const int expected_files = (P + per_file - 1) / per_file;
    const auto files_here = static_cast<int>(wr.files.size());
    const int total_files =
        c.allreduce_value(files_here, comm::ReduceOp::Sum);
    EXPECT_EQ(total_files, expected_files);
    c.barrier();

    // Read back: every group leader's file, all ranks participate.
    std::vector<fs::path> files;
    for (int g = 0; g < expected_files; ++g)
      files.push_back(aggregated_file_path(base, g));
    for (const auto& f : files) {
      EXPECT_TRUE(fs::exists(f));
      EXPECT_TRUE(fs::exists(trigger_path(f)));
    }
    ParticleSet owned = read_aggregated(c, files, decomp);
    for (std::size_t i = 0; i < owned.size(); ++i)
      EXPECT_EQ(decomp.owner_of(owned.z[i]), c.rank());
    std::lock_guard lock(m);
    for (const auto t : owned.tag) read_tags.push_back(t);
  });
  std::sort(written_tags.begin(), written_tags.end());
  std::sort(read_tags.begin(), read_tags.end());
  EXPECT_EQ(written_tags, read_tags);
  fs::remove_all(dir);
}

TEST(FsModel, TitanProfileMatchesPaperIoTime) {
  // §4.1: reading one 20 TB snapshot takes roughly 10 minutes.
  const auto titan = FilesystemModel::titan_lustre();
  const double t = titan.read_seconds(20e12);
  EXPECT_GT(t, 8 * 60.0);
  EXPECT_LT(t, 12 * 60.0);
}

TEST(FsModel, TimeScalesWithBytes) {
  FilesystemModel m{1e9, 0.5};
  EXPECT_NEAR(m.write_seconds(0), 0.5, 1e-12);
  EXPECT_NEAR(m.write_seconds(2e9), 2.5, 1e-9);
  EXPECT_DOUBLE_EQ(m.read_seconds(12345), m.write_seconds(12345));
}

TEST(InterconnectModel, RedistributionTimeSane) {
  const auto g = InterconnectModel::titan_gemini();
  // 20 TB redistribution ≈ 10 minutes (§4.1).
  const double t = g.redistribute_seconds(20e12);
  EXPECT_GT(t, 7 * 60.0);
  EXPECT_LT(t, 13 * 60.0);
}

}  // namespace
