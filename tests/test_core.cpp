// Tests for the core module: parameter parsing, the CosmoTools framework,
// the concrete algorithms, the split auto-tuner, and machine models.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/algorithms.h"
#include "core/cosmotools.h"
#include "core/machine_model.h"
#include "core/params.h"
#include "core/split_tuner.h"
#include "sim/synthetic.h"

namespace {

using namespace cosmo;
using namespace cosmo::core;

// ------------------------------------------------------------------ params

TEST(ParameterMap, TypedAccessAndFallbacks) {
  ParameterMap p;
  p.set("count", "42");
  p.set("ratio", "2.5");
  p.set("flag", "true");
  p.set("name", "halo finder");
  EXPECT_EQ(p.get_int("count", 0), 42);
  EXPECT_DOUBLE_EQ(p.get_double("ratio", 0.0), 2.5);
  EXPECT_TRUE(p.get_bool("flag", false));
  EXPECT_EQ(p.get_string("name"), "halo finder");
  EXPECT_EQ(p.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(p.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(p.get_bool("missing", false));
  EXPECT_EQ(p.get_string("missing", "dflt"), "dflt");
}

TEST(ParameterMap, BadValuesThrow) {
  ParameterMap p;
  p.set("count", "not-a-number");
  p.set("flag", "maybe");
  EXPECT_THROW(p.get_int("count", 0), Error);
  EXPECT_THROW(p.get_bool("flag", false), Error);
  EXPECT_THROW(p.get_string("missing"), Error);
}

TEST(CosmoToolsConfig, ParsesSectionsCommentsAndValues) {
  const std::string text = R"(
# global
output_dir /tmp/run1

[halofinder]
linking_length 0.28   # FOF b
min_size 40

[centerfinder]
threshold 300000
method astar
)";
  auto cfg = CosmoToolsConfig::parse(text);
  EXPECT_TRUE(cfg.has_section("halofinder"));
  EXPECT_TRUE(cfg.has_section("centerfinder"));
  EXPECT_FALSE(cfg.has_section("nonexistent"));
  EXPECT_EQ(cfg.section("").get_string("output_dir"), "/tmp/run1");
  EXPECT_DOUBLE_EQ(cfg.section("halofinder").get_double("linking_length", 0),
                   0.28);
  EXPECT_EQ(cfg.section("halofinder").get_int("min_size", 0), 40);
  EXPECT_EQ(cfg.section("centerfinder").get_int("threshold", 0), 300000);
  EXPECT_EQ(cfg.section("centerfinder").get_string("method"), "astar");
}

TEST(CosmoToolsConfig, RejectsMalformedInput) {
  EXPECT_THROW(CosmoToolsConfig::parse("[unclosed\nx 1\n"), Error);
  EXPECT_THROW(CosmoToolsConfig::parse("keywithoutvalue\n"), Error);
}

// -------------------------------------------------------------- cosmotools

/// Test double recording framework interactions.
class ProbeAlgorithm : public InSituAlgorithm {
 public:
  explicit ProbeAlgorithm(std::size_t cadence) : cadence_(cadence) {}
  void SetParameters(const ParameterMap& p) override {
    configured_ = true;
    label_ = p.get_string("label", "none");
  }
  bool ShouldExecute(const sim::StepContext& s) const override {
    return s.step % cadence_ == 0;
  }
  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    ++executions_;
    last_particle_count_ = ctx.particles->size();
  }
  std::string Name() const override { return "probe"; }

  bool configured_ = false;
  std::string label_;
  int executions_ = 0;
  std::size_t last_particle_count_ = 0;

 private:
  std::size_t cadence_;
};

TEST(InSituAnalysisManager, ConfiguresAndRunsOnCadence) {
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::SlabDecomposition decomp(1, 64.0);
    InSituAnalysisManager manager(c, decomp, 64.0, 100);
    auto probe = std::make_unique<ProbeAlgorithm>(2);
    auto* raw = probe.get();
    manager.add(std::move(probe));
    manager.configure(CosmoToolsConfig::parse("[probe]\nlabel hello\n"));
    EXPECT_TRUE(raw->configured_);
    EXPECT_EQ(raw->label_, "hello");

    sim::ParticleSet p(17);
    for (std::size_t s = 1; s <= 6; ++s) {
      sim::StepContext ctx{s, 6, 1.0, 0.0};
      manager.execute_step(ctx, p);
    }
    EXPECT_EQ(raw->executions_, 3);  // steps 2, 4, 6
    EXPECT_EQ(raw->last_particle_count_, 17u);
    // Only executed steps are timed.
    EXPECT_EQ(manager.timings().size(), 3u);
    EXPECT_GE(manager.total_seconds(), 0.0);
  });
}

TEST(CadencedAlgorithm, AlwaysRunsOnFinalStep) {
  class Dummy : public CadencedAlgorithm {
   public:
    void SetToolParameters(const ParameterMap&) override {}
    void Execute(const sim::StepContext&, AnalysisContext&) override {}
    std::string Name() const override { return "dummy"; }
  };
  Dummy d;
  ParameterMap p;
  p.set("cadence", "10");
  d.SetParameters(p);
  EXPECT_FALSE(d.ShouldExecute({3, 100, 1.0, 0.0}));
  EXPECT_TRUE(d.ShouldExecute({10, 100, 1.0, 0.0}));
  EXPECT_TRUE(d.ShouldExecute({100, 100, 1.0, 0.0}));  // final step
  p.set("enabled", "false");
  d.SetParameters(p);
  EXPECT_FALSE(d.ShouldExecute({10, 100, 1.0, 0.0}));
}

TEST(Algorithms, PipelineProducesCatalogWithCentersAndSoMasses) {
  sim::SyntheticConfig ucfg;
  ucfg.box = 32.0;
  ucfg.halo_count = 10;
  ucfg.min_particles = 60;
  ucfg.max_particles = 500;
  ucfg.background_particles = 500;
  ucfg.subclump_fraction = 0.0;
  comm::run_spmd(2, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u = sim::generate_synthetic(c, cosmo, ucfg);
    sim::SlabDecomposition decomp(2, ucfg.box);
    InSituAnalysisManager manager(c, decomp, ucfg.box, u.total_particles);
    register_halo_pipeline(manager);
    manager.configure(CosmoToolsConfig::parse(
        "[halofinder]\nlinking_length 0.3\nmin_size 40\noverload 2.0\n"
        "[centerfinder]\nthreshold 0\n[somass]\ndelta 200\n"
        "[subhalos]\nenabled false\n"));
    sim::StepContext step{1, 1, 1.0, 0.0};
    auto ctx = manager.execute_step(step, u.local);
    // Some halos must be found and centered on at least one rank.
    const auto total = c.allreduce_value<std::uint64_t>(ctx.catalog.size(),
                                                        comm::ReduceOp::Sum);
    EXPECT_GT(total, 3u);
    for (const auto& rec : ctx.catalog) {
      EXPECT_GE(rec.count, 40u);
      EXPECT_LT(rec.potential, 0.0f);
      EXPECT_GT(rec.so_mass, 0.0f) << "SO mass missing for halo " << rec.id;
      EXPECT_GT(rec.so_radius, 0.0f);
    }
    EXPECT_TRUE(ctx.deferred_members.empty());  // threshold 0: no deferral
  });
}

TEST(Algorithms, ThresholdDefersLargeHalos) {
  sim::SyntheticConfig ucfg;
  ucfg.box = 32.0;
  ucfg.halo_count = 8;
  ucfg.min_particles = 60;
  ucfg.max_particles = 3000;
  ucfg.background_particles = 0;
  ucfg.subclump_fraction = 0.0;
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u = sim::generate_synthetic(c, cosmo, ucfg);
    sim::SlabDecomposition decomp(1, ucfg.box);
    InSituAnalysisManager manager(c, decomp, ucfg.box, u.total_particles);
    register_halo_pipeline(manager);
    const std::uint64_t threshold = 500;
    manager.configure(CosmoToolsConfig::parse(
        "[halofinder]\nlinking_length 0.3\nmin_size 40\noverload 2.0\n"
        "[centerfinder]\nthreshold " + std::to_string(threshold) +
        "\n[somass]\nenabled false\n[subhalos]\nenabled false\n"));
    sim::StepContext step{1, 1, 1.0, 0.0};
    auto ctx = manager.execute_step(step, u.local);
    EXPECT_FALSE(ctx.deferred_members.empty());
    for (const auto& rec : ctx.catalog) EXPECT_LE(rec.count, threshold);
    for (const auto& members : ctx.deferred_members)
      EXPECT_GT(members.size(), threshold);
    EXPECT_EQ(ctx.deferred_members.size(), ctx.deferred_ids.size());
  });
}

TEST(Algorithms, CenterFinderRequiresHaloFinder) {
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::SlabDecomposition decomp(1, 32.0);
    InSituAnalysisManager manager(c, decomp, 32.0, 100);
    manager.add(std::make_unique<CenterFinderAlgorithm>());
    manager.configure(CosmoToolsConfig::parse(""));
    sim::ParticleSet p(10);
    sim::StepContext step{1, 1, 1.0, 0.0};
    EXPECT_THROW(manager.execute_step(step, p), Error);
  });
}

TEST(Algorithms, PowerSpectrumAlgorithmPublishesSpectrum) {
  comm::run_spmd(2, [&](comm::Comm& c) {
    sim::SlabDecomposition decomp(2, 64.0);
    sim::ParticleSet p;
    Rng rng(4 + static_cast<std::uint64_t>(c.rank()));
    for (int i = 0; i < 5000; ++i)
      p.push_back(static_cast<float>(rng.uniform(0, 64)),
                  static_cast<float>(rng.uniform(0, 64)),
                  static_cast<float>(rng.uniform(decomp.z_lo(c.rank()),
                                                 decomp.z_hi(c.rank()))),
                  0, 0, 0, i);
    InSituAnalysisManager manager(c, decomp, 64.0, 10000);
    manager.add(std::make_unique<PowerSpectrumAlgorithm>());
    manager.configure(CosmoToolsConfig::parse("[powerspectrum]\ngrid 16\n"));
    sim::StepContext step{1, 1, 1.0, 0.0};
    auto ctx = manager.execute_step(step, p);
    ASSERT_EQ(ctx.spectra.size(), 1u);
    EXPECT_FALSE(ctx.spectra[0].k.empty());
  });
}

// ------------------------------------------------------------- split tuner

TEST(SplitTuner, CostModelInversion) {
  CenterCostModel m{1e-8};
  EXPECT_DOUBLE_EQ(m.seconds(1000), 1e-8 * 1e6);
  EXPECT_EQ(m.max_halo_within(1e-2), 1000u);
  EXPECT_EQ(m.max_halo_within(0.0), 0u);
}

TEST(SplitTuner, AllInSituWhenHalosAreSmall) {
  io::FilesystemModel fs{1e9, 1.0};
  io::InterconnectModel net{1e9, 1.0};
  CenterCostModel cost{1e-6};
  // t_io ≈ 3 + 3·36e6/1e9·... for 1e6 particles: ~3.1 s → m_max_io ≈ 1760.
  std::vector<std::uint64_t> halos{100, 500, 1200};
  auto d = tune_split(1000000, halos, fs, net, cost);
  EXPECT_GT(d.t_io_s, 3.0);
  EXPECT_TRUE(d.all_in_situ);
  EXPECT_EQ(d.largest_halo, 1200u);
}

TEST(SplitTuner, SplitsWhenMonsterHaloExists) {
  io::FilesystemModel fs{1e9, 1.0};
  io::InterconnectModel net{1e9, 1.0};
  CenterCostModel cost{1e-6};
  std::vector<std::uint64_t> halos{100, 500, 1200, 50000, 80000};
  auto d = tune_split(1000000, halos, fs, net, cost);
  EXPECT_FALSE(d.all_in_situ);
  EXPECT_EQ(d.largest_halo, 80000u);
  EXPECT_GT(d.threshold, 0u);
  EXPECT_LT(d.threshold, 50000u);
  // T = c(50000² + 80000²) = 2500 + 6400 = 8900 s; t_max = 6400 s → 2 ranks.
  EXPECT_NEAR(d.total_offline_work_s, 8900.0, 1.0);
  EXPECT_NEAR(d.largest_halo_work_s, 6400.0, 1.0);
  EXPECT_EQ(d.coschedule_ranks, 2u);
}

TEST(SplitTuner, BalanceHalosProducesEvenLoads) {
  CenterCostModel cost{1.0};
  std::vector<std::uint64_t> sizes{100, 90, 80, 50, 50, 40, 30, 20, 10, 10};
  auto assignment = balance_halos(sizes, 3, cost);
  ASSERT_EQ(assignment.size(), 3u);
  std::vector<double> load(3, 0.0);
  std::size_t assigned = 0;
  for (std::size_t r = 0; r < 3; ++r) {
    for (const auto h : assignment[r]) {
      load[r] += cost.seconds(sizes[h]);
      ++assigned;
    }
  }
  EXPECT_EQ(assigned, sizes.size());
  const double max_load = *std::max_element(load.begin(), load.end());
  const double min_load = *std::min_element(load.begin(), load.end());
  // LPT guarantee: max ≤ (4/3) OPT; here just require gross balance.
  EXPECT_LT(max_load, 2.0 * min_load + cost.seconds(100));
}

TEST(SplitTuner, CalibrationRoundTrips) {
  auto model = calibrate_center_cost(
      [](std::uint64_t n) {
        return 2e-9 * static_cast<double>(n) * static_cast<double>(n);
      },
      10000);
  EXPECT_NEAR(model.coeff, 2e-9, 1e-15);
}

// ------------------------------------------------------------ machine model

TEST(MachineModel, QContinuumAccountingMatchesPaper) {
  const auto a = qcontinuum_accounting({});
  // §4.1: "resulting in 985 node hours, or ~30,000 core hours".
  EXPECT_NEAR(a.offline_core_hours, 985 * 30.0, 500.0);
  // "the analysis required 0.52M core hours".
  EXPECT_NEAR(a.combined_core_hours, 0.52e6, 0.02e6);
  // "3.4M core hours" for the full in-situ/off-line alternative.
  EXPECT_NEAR(a.insitu_only_core_hours, 3.4e6, 0.1e6);
  // "a factor of 6.5 more expensive".
  EXPECT_NEAR(a.cost_ratio, 6.5, 0.2);
}

TEST(MachineModel, SpeedupProjection) {
  SpeedupModel s;
  // A kernel measured at 100 s on a 1.0-speed machine takes 50 s at 2.0.
  EXPECT_DOUBLE_EQ(s.project(100.0, 1.0, 2.0), 50.0);
  EXPECT_THROW(s.project(1.0, 0.0, 1.0), Error);
  EXPECT_DOUBLE_EQ(s.gpu_over_cpu, 50.0);
  EXPECT_DOUBLE_EQ(s.astar_over_brute, 8.0);
}

}  // namespace
