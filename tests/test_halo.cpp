// Tests for the halo analysis stack: k-d tree, FOF (vs brute force),
// distributed FOF, MBP center finders, SO mass, and subhalos.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "comm/comm.h"
#include "halo/center_finder.h"
#include "halo/fof.h"
#include "halo/kdtree.h"
#include "halo/so_mass.h"
#include "halo/subhalo.h"
#include "sim/cosmology.h"
#include "sim/synthetic.h"
#include "util/rng.h"

namespace {

using namespace cosmo;
using namespace cosmo::halo;
using sim::SyntheticConfig;
using sim::generate_synthetic;
using sim::ParticleSet;

ParticleSet random_particles(std::size_t n, double box, std::uint64_t seed,
                             std::int64_t tag0 = 0) {
  Rng rng(seed);
  ParticleSet p;
  for (std::size_t i = 0; i < n; ++i)
    p.push_back(static_cast<float>(rng.uniform(0, box)),
                static_cast<float>(rng.uniform(0, box)),
                static_cast<float>(rng.uniform(0, box)), 0, 0, 0,
                tag0 + static_cast<std::int64_t>(i));
  return p;
}

ParticleSet gaussian_blob(std::size_t n, double cx, double cy, double cz,
                          double sigma, std::uint64_t seed,
                          std::int64_t tag0 = 0) {
  Rng rng(seed);
  ParticleSet p;
  for (std::size_t i = 0; i < n; ++i)
    p.push_back(static_cast<float>(rng.normal(cx, sigma)),
                static_cast<float>(rng.normal(cy, sigma)),
                static_cast<float>(rng.normal(cz, sigma)), 0, 0, 0,
                tag0 + static_cast<std::int64_t>(i));
  return p;
}

// ---------------------------------------------------------------- KdTree --

TEST(KdTree, RangeQueryMatchesBruteForce) {
  const double box = 10.0;
  ParticleSet p = random_particles(500, box, 42);
  KdTree tree = KdTree::over_all(p);
  Rng rng(43);
  for (int q = 0; q < 20; ++q) {
    const double qx = rng.uniform(0, box), qy = rng.uniform(0, box),
                 qz = rng.uniform(0, box);
    const double r = rng.uniform(0.2, 2.0);
    std::set<std::uint32_t> found;
    tree.for_each_in_range(qx, qy, qz, r,
                           [&](std::uint32_t i) { found.insert(i); });
    std::set<std::uint32_t> expect;
    for (std::uint32_t i = 0; i < p.size(); ++i) {
      const double dx = qx - p.x[i], dy = qy - p.y[i], dz = qz - p.z[i];
      if (dx * dx + dy * dy + dz * dz <= r * r) expect.insert(i);
    }
    EXPECT_EQ(found, expect) << "query " << q;
  }
}

TEST(KdTree, PeriodicRangeQueryWrapsAround) {
  const double box = 10.0;
  ParticleSet p;
  p.push_back(0.5f, 5.0f, 5.0f, 0, 0, 0, 0);
  p.push_back(9.5f, 5.0f, 5.0f, 0, 0, 0, 1);
  p.push_back(5.0f, 5.0f, 5.0f, 0, 0, 0, 2);
  KdTree tree = KdTree::over_all(p, Periodicity::all(box));
  std::set<std::uint32_t> found;
  tree.for_each_in_range(0.0, 5.0, 5.0, 1.0,
                         [&](std::uint32_t i) { found.insert(i); });
  EXPECT_EQ(found, (std::set<std::uint32_t>{0, 1}));
}

TEST(KdTree, KNearestMatchesBruteForce) {
  const double box = 10.0;
  ParticleSet p = random_particles(300, box, 7);
  KdTree tree = KdTree::over_all(p);
  Rng rng(8);
  for (int q = 0; q < 10; ++q) {
    const double qx = rng.uniform(0, box), qy = rng.uniform(0, box),
                 qz = rng.uniform(0, box);
    auto knn = tree.k_nearest(qx, qy, qz, 7);
    ASSERT_EQ(knn.size(), 7u);
    // Brute-force distances.
    std::vector<std::pair<double, std::uint32_t>> all;
    for (std::uint32_t i = 0; i < p.size(); ++i) {
      const double dx = qx - p.x[i], dy = qy - p.y[i], dz = qz - p.z[i];
      all.emplace_back(dx * dx + dy * dy + dz * dz, i);
    }
    std::sort(all.begin(), all.end());
    for (std::size_t k = 0; k < 7; ++k) EXPECT_EQ(knn[k], all[k].second);
    EXPECT_NEAR(tree.k_nearest_dist(qx, qy, qz, 7), std::sqrt(all[6].first),
                1e-9);
  }
}

TEST(KdTree, EmptyTreeIsSafe) {
  ParticleSet p;
  KdTree tree = KdTree::over_all(p);
  EXPECT_TRUE(tree.empty());
  int calls = 0;
  tree.for_each_in_range(0, 0, 0, 10.0, [&](std::uint32_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(tree.k_nearest(0, 0, 0, 3).empty());
}

TEST(KdTree, SubsetTreeOnlySeesSubset) {
  ParticleSet p = random_particles(100, 10.0, 9);
  std::vector<std::uint32_t> subset{1, 5, 9, 13};
  KdTree tree(p, subset);
  std::set<std::uint32_t> found;
  tree.for_each_in_range(5, 5, 5, 20.0,
                         [&](std::uint32_t i) { found.insert(i); });
  EXPECT_EQ(found, std::set<std::uint32_t>(subset.begin(), subset.end()));
}

// ------------------------------------------------------------------- FOF --

struct FofCase {
  std::size_t n;
  std::uint64_t seed;
  double ll;
  bool periodic;
};

class FofMatchesBrute : public ::testing::TestWithParam<FofCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, FofMatchesBrute,
    ::testing::Values(FofCase{200, 1, 0.6, false}, FofCase{200, 2, 0.6, true},
                      FofCase{500, 3, 0.4, false}, FofCase{500, 4, 0.4, true},
                      FofCase{800, 5, 0.3, true},
                      FofCase{300, 6, 1.5, true}),
    [](const auto& info) {
      const auto& c = info.param;
      return "n" + std::to_string(c.n) + "_s" + std::to_string(c.seed) +
             (c.periodic ? "_per" : "_open");
    });

TEST_P(FofMatchesBrute, SameHalosAsBruteForce) {
  const auto c = GetParam();
  const double box = 10.0;
  ParticleSet p = random_particles(c.n, box, c.seed);
  FofConfig cfg;
  cfg.linking_length = c.ll;
  cfg.min_size = 5;
  const Periodicity per = c.periodic ? Periodicity::all(box) : Periodicity{};
  auto fast = fof_find(p, per, cfg);
  auto brute = fof_brute_force(p, per, cfg);
  ASSERT_EQ(fast.size(), brute.size());
  // Compare as sets of member sets (ordering of members may differ).
  auto key = [&](const FofHalo& h) {
    std::vector<std::uint32_t> m(h.members);
    std::sort(m.begin(), m.end());
    return m;
  };
  std::set<std::vector<std::uint32_t>> fs, bs;
  for (const auto& h : fast) fs.insert(key(h));
  for (const auto& h : brute) bs.insert(key(h));
  EXPECT_EQ(fs, bs);
}

TEST(Fof, TwoBlobsSeparateAtSmallLinkingLength) {
  ParticleSet p = gaussian_blob(100, 2.0, 5.0, 5.0, 0.1, 10, 0);
  p.append(gaussian_blob(150, 8.0, 5.0, 5.0, 0.1, 11, 1000));
  FofConfig cfg;
  cfg.linking_length = 0.3;
  cfg.min_size = 40;
  auto halos = fof_find(p, Periodicity::all(10.0), cfg);
  ASSERT_EQ(halos.size(), 2u);
  EXPECT_EQ(halos[0].members.size(), 150u);  // largest first
  EXPECT_EQ(halos[1].members.size(), 100u);
  EXPECT_EQ(halos[0].id, 1000);
  EXPECT_EQ(halos[1].id, 0);
}

TEST(Fof, BlobsMergeAtLargeLinkingLength) {
  ParticleSet p = gaussian_blob(100, 4.5, 5.0, 5.0, 0.1, 10);
  p.append(gaussian_blob(100, 5.5, 5.0, 5.0, 0.1, 11, 1000));
  FofConfig cfg;
  cfg.linking_length = 1.2;
  cfg.min_size = 40;
  auto halos = fof_find(p, Periodicity::all(10.0), cfg);
  ASSERT_EQ(halos.size(), 1u);
  EXPECT_EQ(halos[0].members.size(), 200u);
}

TEST(Fof, MinSizeDiscardsSmallGroups) {
  ParticleSet p = gaussian_blob(30, 5.0, 5.0, 5.0, 0.05, 12);
  FofConfig cfg;
  cfg.linking_length = 0.5;
  cfg.min_size = 40;
  EXPECT_TRUE(fof_find(p, Periodicity::all(10.0), cfg).empty());
  cfg.min_size = 30;
  EXPECT_EQ(fof_find(p, Periodicity::all(10.0), cfg).size(), 1u);
}

TEST(Fof, HaloSpanningPeriodicBoundaryIsOneHalo) {
  // Blob centered at the corner of the box (wraps in all dimensions).
  const double box = 10.0;
  ParticleSet raw = gaussian_blob(200, 0.0, 0.0, 0.0, 0.15, 13);
  raw.wrap_positions(static_cast<float>(box));
  FofConfig cfg;
  cfg.linking_length = 0.4;
  cfg.min_size = 40;
  auto halos = fof_find(raw, Periodicity::all(box), cfg);
  ASSERT_EQ(halos.size(), 1u);
  EXPECT_EQ(halos[0].members.size(), 200u);
}

class DistFofRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, DistFofRanks, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST_P(DistFofRanks, MatchesSerialCatalog) {
  const int P = GetParam();
  SyntheticConfig scfg;
  scfg.box = 32.0;
  scfg.halo_count = 25;
  scfg.min_particles = 50;
  scfg.max_particles = 800;
  scfg.background_particles = 800;
  scfg.subclump_fraction = 0.0;
  scfg.seed = 77;
  FofConfig cfg;
  cfg.linking_length = 0.35;
  cfg.min_size = 40;

  // Serial reference on the full particle set.
  std::map<std::int64_t, std::size_t> reference;  // halo id -> size
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u = generate_synthetic(c, cosmo, scfg);
    for (const auto& h : fof_find(u.local, Periodicity::all(scfg.box), cfg))
      reference[h.id] = h.members.size();
  });
  ASSERT_GT(reference.size(), 5u);

  // Distributed run: collect (id, size) from all ranks.
  std::map<std::int64_t, std::size_t> found;
  std::mutex m;
  comm::run_spmd(P, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u = generate_synthetic(c, cosmo, scfg);
    sim::SlabDecomposition decomp(P, scfg.box);
    auto result = fof_distributed(c, decomp, u.local, cfg, 3.0);
    std::lock_guard lock(m);
    for (const auto& h : result.halos) {
      EXPECT_EQ(found.count(h.id), 0u) << "halo assigned to two ranks";
      found[h.id] = h.members.size();
    }
  });
  // Every halo appears exactly once with the same id. Membership counts may
  // differ by a few borderline particles for halos straddling the periodic
  // z seam: ghost copies carry float positions shifted by ±box, so pairs
  // within float-epsilon of the linking length can flip (inherent to the
  // overload-region method).
  ASSERT_EQ(found.size(), reference.size());
  for (const auto& [id, size] : reference) {
    ASSERT_TRUE(found.count(id)) << "halo " << id << " lost";
    const auto got = found[id];
    const auto diff = got > size ? got - size : size - got;
    EXPECT_LE(diff, 3u) << "halo " << id << ": " << got << " vs " << size;
  }
}

TEST_P(DistFofRanks, ExactMatchAwayFromSeam) {
  // Halos placed strictly inside (10%, 90%) of the box never touch the
  // periodic z seam, so the distributed catalog must match bit-for-bit.
  const int P = GetParam();
  const double box = 32.0;
  FofConfig cfg;
  cfg.linking_length = 0.35;
  cfg.min_size = 40;

  auto make_particles = [&]() {
    ParticleSet p;
    Rng rng(123);
    std::int64_t tag = 0;
    for (int h = 0; h < 15; ++h) {
      const double cx = rng.uniform(2.0, 30.0);
      const double cy = rng.uniform(2.0, 30.0);
      const double cz = rng.uniform(4.0, 28.0);
      const auto n = static_cast<std::size_t>(rng.uniform(60, 400));
      for (std::size_t i = 0; i < n; ++i)
        p.push_back(static_cast<float>(rng.normal(cx, 0.15)),
                    static_cast<float>(rng.normal(cy, 0.15)),
                    static_cast<float>(rng.normal(cz, 0.15)), 0, 0, 0, tag++);
    }
    return p;
  };

  std::map<std::int64_t, std::size_t> reference;
  {
    ParticleSet p = make_particles();
    for (const auto& h : fof_find(p, Periodicity::all(box), cfg))
      reference[h.id] = h.members.size();
  }
  ASSERT_GE(reference.size(), 5u);

  std::map<std::int64_t, std::size_t> found;
  std::mutex m;
  comm::run_spmd(P, [&](comm::Comm& c) {
    ParticleSet all = make_particles();
    sim::SlabDecomposition decomp(P, box);
    ParticleSet owned = decomp.redistribute(c, all.select([&] {
      std::vector<std::uint32_t> mine;
      for (std::uint32_t i = 0; i < all.size(); ++i)
        if (static_cast<int>(i) % c.size() == c.rank()) mine.push_back(i);
      return mine;
    }()));
    auto result = fof_distributed(c, decomp, owned, cfg, 3.0);
    std::lock_guard lock(m);
    for (const auto& h : result.halos) found[h.id] = h.members.size();
  });
  EXPECT_EQ(found, reference);
}

// --------------------------------------------------------- center finding --

TEST(CenterFinder, BruteMatchesManualArgmin) {
  ParticleSet p = gaussian_blob(150, 5, 5, 5, 0.4, 20);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  CenterConfig cfg;
  cfg.box = 10.0;
  auto r = mbp_center_brute(dpp::Backend::Serial, p, members, cfg);
  // Manual O(n²).
  double best = 1e300;
  std::uint32_t best_i = 0;
  for (std::size_t k = 0; k < p.size(); ++k) {
    double phi = 0;
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (j == k) continue;
      const double d = std::sqrt(sim::periodic_dist2(
          p.x[k] - p.x[j], p.y[k] - p.y[j], p.z[k] - p.z[j], 10.0));
      phi -= 1.0 / (d + cfg.softening);
    }
    if (phi < best) {
      best = phi;
      best_i = static_cast<std::uint32_t>(k);
    }
  }
  EXPECT_EQ(r.particle, best_i);
  EXPECT_NEAR(r.potential, best, 1e-9 * std::abs(best));
}

TEST(CenterFinder, BackendsAgree) {
  ParticleSet p = gaussian_blob(400, 5, 5, 5, 0.3, 21);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  CenterConfig cfg;
  cfg.box = 10.0;
  auto serial = mbp_center_brute(dpp::Backend::Serial, p, members, cfg);
  auto pool = mbp_center_brute(dpp::Backend::ThreadPool, p, members, cfg);
  EXPECT_EQ(serial.particle, pool.particle);
  EXPECT_DOUBLE_EQ(serial.potential, pool.potential);
}

class AStarSweep : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, AStarSweep, ::testing::Values(1, 2, 3, 4, 5),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST_P(AStarSweep, AStarAgreesWithBruteAndPrunes) {
  // NFW-like clustered halo: A* should expand far fewer than n particles.
  sim::Cosmology cosmo;
  ParticleSet p;
  Rng rng(GetParam());
  const std::size_t n = 600;
  for (std::size_t i = 0; i < n; ++i) {
    // Radially concentrated blob with a 1/r-ish profile.
    const double r = 0.5 * std::pow(rng.uniform(), 2.0) + 1e-3;
    const double cz = rng.uniform(-1.0, 1.0);
    const double ph = rng.uniform(0.0, 2 * M_PI);
    const double s = std::sqrt(1 - cz * cz);
    p.push_back(static_cast<float>(5 + r * s * std::cos(ph)),
                static_cast<float>(5 + r * s * std::sin(ph)),
                static_cast<float>(5 + r * cz), 0, 0, 0,
                static_cast<std::int64_t>(i));
  }
  std::vector<std::uint32_t> members(n);
  std::iota(members.begin(), members.end(), 0u);
  CenterConfig cfg;
  cfg.box = 10.0;
  auto brute = mbp_center_brute(dpp::Backend::Serial, p, members, cfg);
  auto astar = mbp_center_astar(p, members, cfg);
  EXPECT_EQ(astar.particle, brute.particle);
  EXPECT_DOUBLE_EQ(astar.potential, brute.potential);
  EXPECT_LT(astar.exact_evaluations, n / 2)
      << "A* should prune most exact evaluations on a concentrated halo";
}

TEST(CenterFinder, SingleParticleHalo) {
  ParticleSet p;
  p.push_back(1, 2, 3, 0, 0, 0, 7);
  std::vector<std::uint32_t> members{0};
  auto r = mbp_center_brute(dpp::Backend::Serial, p, members, {});
  EXPECT_EQ(r.particle, 0u);
  EXPECT_DOUBLE_EQ(r.potential, 0.0);
  auto a = mbp_center_astar(p, members, {});
  EXPECT_EQ(a.particle, 0u);
}

TEST(CenterFinder, EmptyHaloThrows) {
  ParticleSet p;
  std::vector<std::uint32_t> members;
  EXPECT_THROW(mbp_center_brute(dpp::Backend::Serial, p, members, {}), Error);
  EXPECT_THROW(mbp_center_astar(p, members, {}), Error);
}

TEST(CenterFinder, CenterOfSyntheticHaloNearTruthCenter) {
  SyntheticConfig scfg;
  scfg.halo_count = 1;
  scfg.min_particles = 2000;
  scfg.max_particles = 2000;
  scfg.background_particles = 0;
  scfg.subclump_fraction = 0.0;
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u = generate_synthetic(c, cosmo, scfg);
    std::vector<std::uint32_t> members(u.local.size());
    std::iota(members.begin(), members.end(), 0u);
    CenterConfig cfg;
    cfg.box = scfg.box;
    auto r = mbp_center_brute(dpp::Backend::ThreadPool, u.local, members, cfg);
    const auto& t = u.truth[0];
    const double d = std::sqrt(sim::periodic_dist2(
        u.local.x[r.particle] - t.cx, u.local.y[r.particle] - t.cy,
        u.local.z[r.particle] - t.cz, scfg.box));
    // The most bound particle sits deep in the NFW core.
    EXPECT_LT(d, 0.25 * t.r_vir);
  });
}

TEST(CenterFinder, FillPotentialsWritesPhi) {
  ParticleSet p = gaussian_blob(50, 5, 5, 5, 0.2, 30);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  fill_potentials(dpp::Backend::Serial, p, members, {});
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_LT(p.phi[i], 0.0f);
}

// ----------------------------------------------------------------- SO mass --

TEST(SoMass, UniformSphereRecoversRadius) {
  // Uniform-density sphere of radius R and density rho0; with threshold
  // delta*rho_ref = rho0 the SO radius should be ~R.
  Rng rng(40);
  ParticleSet p;
  const double R = 2.0;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = R * std::cbrt(rng.uniform());
    const double cz = rng.uniform(-1, 1), ph = rng.uniform(0, 2 * M_PI);
    const double s = std::sqrt(1 - cz * cz);
    p.push_back(static_cast<float>(5 + r * s * std::cos(ph)),
                static_cast<float>(5 + r * s * std::sin(ph)),
                static_cast<float>(5 + r * cz), 0, 0, 0,
                static_cast<std::int64_t>(i));
  }
  std::vector<std::uint32_t> members(n);
  std::iota(members.begin(), members.end(), 0u);
  const double rho0 =
      static_cast<double>(n) / (4.0 / 3.0 * M_PI * R * R * R);
  SoConfig cfg;
  cfg.delta = 0.5;  // threshold density = rho0/2 → r_Δ slightly beyond R
  cfg.mean_density = rho0;
  cfg.particle_mass = 1.0;
  auto so = so_mass(p, members, 5, 5, 5, cfg);
  EXPECT_NEAR(so.radius, R, 0.15 * R);
  EXPECT_EQ(so.count, n);  // everything enclosed before density drops
  cfg.delta = 1.0;  // threshold = rho0: r_Δ ≈ R
  so = so_mass(p, members, 5, 5, 5, cfg);
  EXPECT_NEAR(so.radius, R, 0.1 * R);
  EXPECT_GT(so.count, n * 9 / 10);
}

TEST(SoMass, EmptyMembersGiveZero) {
  ParticleSet p;
  std::vector<std::uint32_t> members;
  SoConfig cfg;
  auto so = so_mass(p, members, 0, 0, 0, cfg);
  EXPECT_EQ(so.count, 0u);
  EXPECT_EQ(so.mass, 0.0);
}

TEST(SoMass, MassScalesWithParticleMass) {
  ParticleSet p = gaussian_blob(500, 5, 5, 5, 0.2, 41);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  SoConfig cfg;
  cfg.delta = 1.0;
  cfg.mean_density = 1.0;
  cfg.particle_mass = 1.0;
  auto a = so_mass(p, members, 5, 5, 5, cfg);
  cfg.particle_mass = 2.0;
  auto b = so_mass(p, members, 5, 5, 5, cfg);
  EXPECT_GE(b.mass, a.mass);  // heavier particles keep density above
  EXPECT_NEAR(b.mass / b.count, 2.0, 1e-12);
}

// ---------------------------------------------------------------- subhalos --

TEST(Subhalo, DensityPeaksAtBlobCenter) {
  ParticleSet p = gaussian_blob(400, 5, 5, 5, 0.3, 50);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  SubhaloConfig cfg;
  auto rho = local_densities(p, members, cfg);
  // The densest particle should be near the blob center.
  const auto k = static_cast<std::size_t>(
      std::max_element(rho.begin(), rho.end()) - rho.begin());
  const double d = std::sqrt(sim::periodic_dist2(p.x[k] - 5, p.y[k] - 5,
                                                 p.z[k] - 5, 10.0));
  EXPECT_LT(d, 0.3);
  // Densities are positive.
  for (double r : rho) EXPECT_GT(r, 0.0);
}

TEST(Subhalo, FindsPlantedSubclump) {
  // Host blob plus one clearly separated dense subclump.
  ParticleSet p = gaussian_blob(1500, 5, 5, 5, 0.5, 51, 0);
  p.append(gaussian_blob(250, 6.2, 5.0, 5.0, 0.05, 52, 10000));
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  SubhaloConfig cfg;
  cfg.min_size = 50;
  cfg.velocity_scale = 0.0;  // all particles bound (positions-only test)
  auto subs = find_subhalos(p, members, cfg);
  ASSERT_GE(subs.size(), 1u);
  // The largest subhalo should be dominated by the planted clump's tags.
  std::size_t clump_members = 0;
  for (const auto i : subs[0].members)
    if (p.tag[i] >= 10000) ++clump_members;
  EXPECT_GT(clump_members, subs[0].members.size() / 2);
  EXPECT_GT(subs[0].members.size(), 100u);
}

TEST(Subhalo, NoSubhalosInSmoothBlob) {
  ParticleSet p = gaussian_blob(800, 5, 5, 5, 0.4, 53);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  SubhaloConfig cfg;
  cfg.min_size = 100;
  cfg.velocity_scale = 0.0;
  auto subs = find_subhalos(p, members, cfg);
  // A featureless Gaussian blob should produce at most noise-level
  // candidates, none large.
  for (const auto& s : subs) EXPECT_LT(s.members.size(), 400u);
}

TEST(Subhalo, UnbindingRemovesFastParticles) {
  // Bound core plus fast-moving interlopers with huge kinetic energy
  // (scattered in position — coincident points would be artificially bound
  // through the softening).
  ParticleSet p = gaussian_blob(300, 5, 5, 5, 0.1, 54);
  {
    Rng rng(540);
    for (std::size_t i = 0; i < 20; ++i)
      p.push_back(static_cast<float>(rng.normal(5.0, 0.1)),
                  static_cast<float>(rng.normal(5.0, 0.1)),
                  static_cast<float>(rng.normal(5.0, 0.1)), 1e4f, 0, 0,
                  static_cast<std::int64_t>(9000 + i));
  }
  Subhalo s;
  s.members.resize(p.size());
  std::iota(s.members.begin(), s.members.end(), 0u);
  SubhaloConfig cfg;
  cfg.velocity_scale = 1.0;
  unbind(p, s, cfg);
  for (const auto i : s.members) EXPECT_LT(p.tag[i], 9000);
  // The first pass strips ¼ of ALL positive-energy particles while the
  // interlopers still contaminate the bulk velocity, so some core particles
  // are lost too — the bulk of the core must survive.
  EXPECT_GE(s.members.size(), 200u);
}

TEST(Subhalo, TooSmallParentYieldsNothing) {
  ParticleSet p = gaussian_blob(10, 5, 5, 5, 0.1, 55);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  SubhaloConfig cfg;
  cfg.min_size = 20;
  EXPECT_TRUE(find_subhalos(p, members, cfg).empty());
}

TEST(Subhalo, SyntheticUniverseSubclumpsAreFound) {
  SyntheticConfig scfg;
  scfg.halo_count = 1;
  scfg.min_particles = 8000;
  scfg.max_particles = 8000;
  scfg.background_particles = 0;
  scfg.subclump_fraction = 0.2;
  scfg.subclump_min_host = 5000;
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u = generate_synthetic(c, cosmo, scfg);
    std::vector<std::uint32_t> members(u.local.size());
    std::iota(members.begin(), members.end(), 0u);
    SubhaloConfig cfg;
    cfg.min_size = 30;
    cfg.box = scfg.box;
    cfg.velocity_scale = 0.0;
    auto subs = find_subhalos(u.local, members, cfg);
    EXPECT_GE(subs.size(), 1u) << "planted substructure not recovered";
  });
}

}  // namespace
