// Unit tests for the util module: RNG, CRC32, histograms, error checks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "util/crc32.h"
#include "util/error.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace cosmo;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42, 0), b(42, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StreamsDecorrelate) {
  Rng a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsUnbiasedAcrossSmallRange) {
  Rng r(11);
  std::vector<int> counts(5, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[r.below(5)];
  for (int c : counts) EXPECT_NEAR(c, draws / 5, draws / 50);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonMeanMatches) {
  Rng r(17);
  for (double mean : {0.5, 5.0, 80.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(mean));
    EXPECT_NEAR(sum / n, mean, 0.05 * mean + 0.05);
  }
}

TEST(Crc32, MatchesKnownVector) {
  // Standard zlib test vector: crc32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, std::strlen(s)), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  const char* s = "the quick brown fox jumps over the lazy dog";
  const std::size_t n = std::strlen(s);
  const std::uint32_t whole = crc32(s, n);
  const std::uint32_t part = crc32(s + 10, n - 10, crc32(s, 10));
  EXPECT_EQ(whole, part);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<unsigned char> buf(256);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<unsigned char>(i);
  const auto good = crc32(buf.data(), buf.size());
  buf[100] ^= 0x04;
  EXPECT_NE(good, crc32(buf.data(), buf.size()));
}

TEST(LinearHistogram, BinsAndOverflowReconcile) {
  LinearHistogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(0.1 * i);  // 0..9.9 inclusive
  h.add(-1.0);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 103u);
  EXPECT_EQ(h.count(0), 10u);
  EXPECT_EQ(h.count(9), 10u);
}

TEST(LinearHistogram, WeightsAccumulate) {
  LinearHistogram h(0.0, 1.0, 2);
  h.add(0.25, 2.0);
  h.add(0.30, 3.0);
  h.add(0.75, 7.0);
  EXPECT_DOUBLE_EQ(h.weight(0), 5.0);
  EXPECT_DOUBLE_EQ(h.weight(1), 7.0);
}

// Regression: underflow/overflow used to drop the sample's WEIGHT (only
// counts were tracked), so weighted totals never reconciled with what was
// added — the promise the class comment makes.
TEST(LinearHistogram, OutOfRangeWeightsReconcile) {
  LinearHistogram h(0.0, 10.0, 4);
  h.add(2.5, 1.5);    // bin 1
  h.add(7.5, 2.5);    // bin 3
  h.add(-3.0, 4.0);   // underflow
  h.add(-1.0, 0.25);  // underflow
  h.add(10.0, 8.0);   // overflow (hi is exclusive)
  h.add(99.0, 16.0);  // overflow
  EXPECT_DOUBLE_EQ(h.underflow_weight(), 4.25);
  EXPECT_DOUBLE_EQ(h.overflow_weight(), 24.0);
  double added = 1.5 + 2.5 + 4.0 + 0.25 + 8.0 + 16.0;
  EXPECT_DOUBLE_EQ(h.total_weight(), added);
  // Counts still reconcile independently of weights.
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 6u);
  // In-range-only histogram: out-of-range trackers stay zero.
  LinearHistogram g(0.0, 1.0, 2);
  g.add(0.5, 3.0);
  EXPECT_DOUBLE_EQ(g.underflow_weight(), 0.0);
  EXPECT_DOUBLE_EQ(g.overflow_weight(), 0.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.0);
}

TEST(LinearHistogram, RejectsEmptyRange) {
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), Error);
}

TEST(LogHistogram, LogSpacedEdges) {
  LogHistogram h(1.0, 1000.0, 3);
  EXPECT_NEAR(h.bin_lo(0), 1.0, 1e-12);
  EXPECT_NEAR(h.bin_lo(1), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_lo(2), 100.0, 1e-9);
  EXPECT_NEAR(h.bin_hi(2), 1000.0, 1e-9);
}

TEST(LogHistogram, CountsLandInCorrectDecades) {
  LogHistogram h(1.0, 1000.0, 3);
  h.add(2.0);
  h.add(5.0);
  h.add(50.0);
  h.add(500.0);
  h.add(0.5);    // underflow
  h.add(2000.0); // overflow
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(LogHistogram, NonPositiveSamplesGoToUnderflow) {
  LogHistogram h(1.0, 10.0, 2);
  h.add(0.0);
  h.add(-3.0);
  EXPECT_EQ(h.underflow(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, FormatsAlignedOutput) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::num(1.5)});
  t.add_row({"b", TextTable::num(10.25)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("10.25"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + std::sqrt(static_cast<double>(i));
  EXPECT_GT(t.seconds(), 0.0);
  const double before = t.seconds();
  t.reset();
  EXPECT_LE(t.seconds(), before + 1.0);
}

TEST(Require, ThrowsWithContext) {
  try {
    COSMO_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"), std::string::npos);
  }
}

}  // namespace
