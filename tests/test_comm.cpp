// Tests for the SPMD message-passing runtime (MPI stand-in).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "comm/comm.h"

namespace {

using namespace cosmo;
using comm::Comm;
using comm::ReduceOp;
using comm::run_spmd;

class CommRanks : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankCounts, CommRanks, ::testing::Values(1, 2, 3, 4, 8),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST_P(CommRanks, RankAndSizeAreConsistent) {
  const int P = GetParam();
  std::atomic<int> sum{0};
  run_spmd(P, [&](Comm& c) {
    EXPECT_EQ(c.size(), P);
    sum += c.rank();
  });
  EXPECT_EQ(sum.load(), P * (P - 1) / 2);
}

TEST_P(CommRanks, PingPongPreservesPayload) {
  const int P = GetParam();
  if (P < 2) GTEST_SKIP();
  run_spmd(P, [&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> data{1.5, -2.5, 3.25};
      c.send<double>(1, 42, data);
      auto echo = c.recv<double>(1, 43);
      EXPECT_EQ(echo, data);
    } else if (c.rank() == 1) {
      auto data = c.recv<double>(0, 42);
      c.send<double>(0, 43, data);
    }
  });
}

TEST_P(CommRanks, MessagesAreNonOvertaking) {
  const int P = GetParam();
  if (P < 2) GTEST_SKIP();
  run_spmd(P, [&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) c.send_value<int>(1, 7, i);
    } else if (c.rank() == 1) {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(c.recv_value<int>(0, 7), i);
    }
  });
}

TEST_P(CommRanks, TagsSelectMessages) {
  const int P = GetParam();
  if (P < 2) GTEST_SKIP();
  run_spmd(P, [&](Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(1, 10, 100);
      c.send_value<int>(1, 20, 200);
    } else if (c.rank() == 1) {
      // Receive out of send order — matching is by tag.
      EXPECT_EQ(c.recv_value<int>(0, 20), 200);
      EXPECT_EQ(c.recv_value<int>(0, 10), 100);
    }
  });
}

TEST_P(CommRanks, BarrierCompletesEverywhere) {
  const int P = GetParam();
  std::atomic<int> phase1{0};
  run_spmd(P, [&](Comm& c) {
    ++phase1;
    c.barrier();
    EXPECT_EQ(phase1.load(), P);
  });
}

TEST_P(CommRanks, BcastDeliversRootBuffer) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    std::vector<std::int64_t> v;
    if (c.rank() == 0) v = {5, 6, 7, 8};
    c.bcast(v, 0);
    EXPECT_EQ(v, (std::vector<std::int64_t>{5, 6, 7, 8}));
  });
}

TEST_P(CommRanks, BcastFromNonZeroRoot) {
  const int P = GetParam();
  const int root = P - 1;
  run_spmd(P, [&](Comm& c) {
    std::vector<int> v;
    if (c.rank() == root) v = {root};
    c.bcast(v, root);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], root);
  });
}

TEST_P(CommRanks, AllreduceSumMinMax) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    const double mine = static_cast<double>(c.rank() + 1);
    EXPECT_DOUBLE_EQ(c.allreduce_value(mine, ReduceOp::Sum),
                     static_cast<double>(P * (P + 1)) / 2.0);
    EXPECT_DOUBLE_EQ(c.allreduce_value(mine, ReduceOp::Min), 1.0);
    EXPECT_DOUBLE_EQ(c.allreduce_value(mine, ReduceOp::Max),
                     static_cast<double>(P));
  });
}

TEST_P(CommRanks, AllreduceVectorElementwise) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    std::vector<int> v{c.rank(), 2 * c.rank()};
    auto r = c.allreduce<int>(v, ReduceOp::Sum);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0], P * (P - 1) / 2);
    EXPECT_EQ(r[1], P * (P - 1));
  });
}

TEST_P(CommRanks, GathervConcatenatesInRankOrder) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    // Rank r contributes r+1 copies of its rank id.
    std::vector<int> mine(static_cast<std::size_t>(c.rank() + 1), c.rank());
    std::vector<std::size_t> counts;
    auto all = c.gatherv<int>(mine, 0, &counts);
    if (c.rank() == 0) {
      std::size_t expected_len = 0;
      for (int r = 0; r < P; ++r) expected_len += static_cast<std::size_t>(r + 1);
      ASSERT_EQ(all.size(), expected_len);
      ASSERT_EQ(counts.size(), static_cast<std::size_t>(P));
      std::size_t pos = 0;
      for (int r = 0; r < P; ++r) {
        EXPECT_EQ(counts[static_cast<std::size_t>(r)],
                  static_cast<std::size_t>(r + 1));
        for (int k = 0; k <= r; ++k) EXPECT_EQ(all[pos++], r);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CommRanks, AllgathervVisibleEverywhere) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    std::vector<int> mine{10 * c.rank()};
    std::vector<std::size_t> counts;
    auto all = c.allgatherv<int>(mine, &counts);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(P));
    for (int r = 0; r < P; ++r)
      EXPECT_EQ(all[static_cast<std::size_t>(r)], 10 * r);
    ASSERT_EQ(counts.size(), static_cast<std::size_t>(P));
  });
}

TEST_P(CommRanks, AlltoallvRoutesPersonalizedBuffers) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    // Rank r sends {100*r + d} repeated (d+1) times to each destination d.
    std::vector<std::vector<int>> send(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d)
      send[static_cast<std::size_t>(d)] =
          std::vector<int>(static_cast<std::size_t>(d + 1), 100 * c.rank() + d);
    auto recv = c.alltoallv(send);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(P));
    for (int s = 0; s < P; ++s) {
      const auto& buf = recv[static_cast<std::size_t>(s)];
      ASSERT_EQ(buf.size(), static_cast<std::size_t>(c.rank() + 1));
      for (int v : buf) EXPECT_EQ(v, 100 * s + c.rank());
    }
  });
}

TEST_P(CommRanks, AlltoallvFlatMatchesNestedAlltoallv) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    // Same traffic pattern as AlltoallvRoutesPersonalizedBuffers, but
    // through the single-contiguous-buffer path with precomputed counts:
    // rank r sends (d+1) copies of 100*r + d to destination d.
    std::vector<std::size_t> send_counts(static_cast<std::size_t>(P));
    std::vector<std::size_t> recv_counts(
        static_cast<std::size_t>(P), static_cast<std::size_t>(c.rank() + 1));
    std::vector<int> send;
    for (int d = 0; d < P; ++d) {
      send_counts[static_cast<std::size_t>(d)] = static_cast<std::size_t>(d + 1);
      send.insert(send.end(), static_cast<std::size_t>(d + 1),
                  100 * c.rank() + d);
    }
    const auto recv = c.alltoallv_flat<int>(send, send_counts, recv_counts);
    ASSERT_EQ(recv.size(),
              static_cast<std::size_t>(P) * static_cast<std::size_t>(c.rank() + 1));
    std::size_t off = 0;
    for (int s = 0; s < P; ++s)
      for (int k = 0; k <= c.rank(); ++k)
        EXPECT_EQ(recv[off++], 100 * s + c.rank()) << "from rank " << s;
  });
}

TEST_P(CommRanks, AlltoallvFlatHandlesZeroCounts) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    // Only even ranks send, and only to odd ranks (self blocks are zero for
    // everyone): exercises empty blocks in both directions.
    std::vector<std::size_t> send_counts(static_cast<std::size_t>(P), 0);
    std::vector<std::size_t> recv_counts(static_cast<std::size_t>(P), 0);
    std::vector<double> send;
    for (int d = 0; d < P; ++d) {
      if (c.rank() % 2 == 0 && d % 2 == 1) {
        send_counts[static_cast<std::size_t>(d)] = 2;
        send.push_back(c.rank() + 0.5);
        send.push_back(d + 0.25);
      }
      if (c.rank() % 2 == 1 && d % 2 == 0)
        recv_counts[static_cast<std::size_t>(d)] = 2;
    }
    const auto recv = c.alltoallv_flat<double>(send, send_counts, recv_counts);
    std::size_t off = 0;
    for (int s = 0; s < P; ++s) {
      if (recv_counts[static_cast<std::size_t>(s)] == 0) continue;
      EXPECT_DOUBLE_EQ(recv[off++], s + 0.5);
      EXPECT_DOUBLE_EQ(recv[off++], c.rank() + 0.25);
    }
    EXPECT_EQ(off, recv.size());
  });
}

TEST_P(CommRanks, ScanValueComputesPrefixSums) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    const int r = c.rank();
    EXPECT_EQ(c.scan_value(r + 1, ReduceOp::Sum), (r + 1) * (r + 2) / 2);
  });
}

TEST_P(CommRanks, EmptyMessagesAreDelivered) {
  const int P = GetParam();
  if (P < 2) GTEST_SKIP();
  run_spmd(P, [&](Comm& c) {
    if (c.rank() == 0) {
      c.send<int>(1, 3, {});
    } else if (c.rank() == 1) {
      EXPECT_TRUE(c.recv<int>(0, 3).empty());
    }
  });
}

TEST(Comm, RankExceptionPropagatesToCaller) {
  EXPECT_THROW(run_spmd(2,
                        [&](Comm& c) {
                          if (c.rank() == 1) COSMO_REQUIRE(false, "boom");
                          // Rank 0 does no communication so it exits cleanly.
                        }),
               Error);
}

TEST(Comm, UserTagsMustBeNonNegative) {
  run_spmd(1, [&](Comm& c) {
    EXPECT_THROW(c.send_value<int>(0, -1, 0), Error);
  });
}

TEST(Comm, ConsecutiveCollectivesDoNotInterfere) {
  run_spmd(4, [&](Comm& c) {
    for (int round = 0; round < 20; ++round) {
      const int total = c.allreduce_value(1, ReduceOp::Sum);
      EXPECT_EQ(total, 4);
      auto ids = c.allgather_value(c.rank());
      ASSERT_EQ(ids.size(), 4u);
      for (int r = 0; r < 4; ++r) EXPECT_EQ(ids[static_cast<std::size_t>(r)], r);
    }
  });
}

}  // namespace
