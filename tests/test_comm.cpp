// Tests for the SPMD message-passing runtime (MPI stand-in).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "comm/comm.h"
#include "obs/obs.h"

namespace {

using namespace cosmo;
using comm::Comm;
using comm::ReduceOp;
using comm::run_spmd;

class CommRanks : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankCounts, CommRanks, ::testing::Values(1, 2, 3, 4, 8),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST_P(CommRanks, RankAndSizeAreConsistent) {
  const int P = GetParam();
  std::atomic<int> sum{0};
  run_spmd(P, [&](Comm& c) {
    EXPECT_EQ(c.size(), P);
    sum += c.rank();
  });
  EXPECT_EQ(sum.load(), P * (P - 1) / 2);
}

TEST_P(CommRanks, PingPongPreservesPayload) {
  const int P = GetParam();
  if (P < 2) GTEST_SKIP();
  run_spmd(P, [&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> data{1.5, -2.5, 3.25};
      c.send<double>(1, 42, data);
      auto echo = c.recv<double>(1, 43);
      EXPECT_EQ(echo, data);
    } else if (c.rank() == 1) {
      auto data = c.recv<double>(0, 42);
      c.send<double>(0, 43, data);
    }
  });
}

TEST_P(CommRanks, MessagesAreNonOvertaking) {
  const int P = GetParam();
  if (P < 2) GTEST_SKIP();
  run_spmd(P, [&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) c.send_value<int>(1, 7, i);
    } else if (c.rank() == 1) {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(c.recv_value<int>(0, 7), i);
    }
  });
}

TEST_P(CommRanks, TagsSelectMessages) {
  const int P = GetParam();
  if (P < 2) GTEST_SKIP();
  run_spmd(P, [&](Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(1, 10, 100);
      c.send_value<int>(1, 20, 200);
    } else if (c.rank() == 1) {
      // Receive out of send order — matching is by tag.
      EXPECT_EQ(c.recv_value<int>(0, 20), 200);
      EXPECT_EQ(c.recv_value<int>(0, 10), 100);
    }
  });
}

TEST_P(CommRanks, BarrierCompletesEverywhere) {
  const int P = GetParam();
  std::atomic<int> phase1{0};
  run_spmd(P, [&](Comm& c) {
    ++phase1;
    c.barrier();
    EXPECT_EQ(phase1.load(), P);
  });
}

TEST_P(CommRanks, BcastDeliversRootBuffer) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    std::vector<std::int64_t> v;
    if (c.rank() == 0) v = {5, 6, 7, 8};
    c.bcast(v, 0);
    EXPECT_EQ(v, (std::vector<std::int64_t>{5, 6, 7, 8}));
  });
}

TEST_P(CommRanks, BcastFromNonZeroRoot) {
  const int P = GetParam();
  const int root = P - 1;
  run_spmd(P, [&](Comm& c) {
    std::vector<int> v;
    if (c.rank() == root) v = {root};
    c.bcast(v, root);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], root);
  });
}

TEST_P(CommRanks, AllreduceSumMinMax) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    const double mine = static_cast<double>(c.rank() + 1);
    EXPECT_DOUBLE_EQ(c.allreduce_value(mine, ReduceOp::Sum),
                     static_cast<double>(P * (P + 1)) / 2.0);
    EXPECT_DOUBLE_EQ(c.allreduce_value(mine, ReduceOp::Min), 1.0);
    EXPECT_DOUBLE_EQ(c.allreduce_value(mine, ReduceOp::Max),
                     static_cast<double>(P));
  });
}

TEST_P(CommRanks, AllreduceVectorElementwise) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    std::vector<int> v{c.rank(), 2 * c.rank()};
    auto r = c.allreduce<int>(v, ReduceOp::Sum);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0], P * (P - 1) / 2);
    EXPECT_EQ(r[1], P * (P - 1));
  });
}

TEST_P(CommRanks, GathervConcatenatesInRankOrder) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    // Rank r contributes r+1 copies of its rank id.
    std::vector<int> mine(static_cast<std::size_t>(c.rank() + 1), c.rank());
    std::vector<std::size_t> counts;
    auto all = c.gatherv<int>(mine, 0, &counts);
    if (c.rank() == 0) {
      std::size_t expected_len = 0;
      for (int r = 0; r < P; ++r) expected_len += static_cast<std::size_t>(r + 1);
      ASSERT_EQ(all.size(), expected_len);
      ASSERT_EQ(counts.size(), static_cast<std::size_t>(P));
      std::size_t pos = 0;
      for (int r = 0; r < P; ++r) {
        EXPECT_EQ(counts[static_cast<std::size_t>(r)],
                  static_cast<std::size_t>(r + 1));
        for (int k = 0; k <= r; ++k) EXPECT_EQ(all[pos++], r);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CommRanks, AllgathervVisibleEverywhere) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    std::vector<int> mine{10 * c.rank()};
    std::vector<std::size_t> counts;
    auto all = c.allgatherv<int>(mine, &counts);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(P));
    for (int r = 0; r < P; ++r)
      EXPECT_EQ(all[static_cast<std::size_t>(r)], 10 * r);
    ASSERT_EQ(counts.size(), static_cast<std::size_t>(P));
  });
}

TEST_P(CommRanks, AlltoallvRoutesPersonalizedBuffers) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    // Rank r sends {100*r + d} repeated (d+1) times to each destination d.
    std::vector<std::vector<int>> send(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d)
      send[static_cast<std::size_t>(d)] =
          std::vector<int>(static_cast<std::size_t>(d + 1), 100 * c.rank() + d);
    auto recv = c.alltoallv(send);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(P));
    for (int s = 0; s < P; ++s) {
      const auto& buf = recv[static_cast<std::size_t>(s)];
      ASSERT_EQ(buf.size(), static_cast<std::size_t>(c.rank() + 1));
      for (int v : buf) EXPECT_EQ(v, 100 * s + c.rank());
    }
  });
}

TEST_P(CommRanks, AlltoallvFlatMatchesNestedAlltoallv) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    // Same traffic pattern as AlltoallvRoutesPersonalizedBuffers, but
    // through the single-contiguous-buffer path with precomputed counts:
    // rank r sends (d+1) copies of 100*r + d to destination d.
    std::vector<std::size_t> send_counts(static_cast<std::size_t>(P));
    std::vector<std::size_t> recv_counts(
        static_cast<std::size_t>(P), static_cast<std::size_t>(c.rank() + 1));
    std::vector<int> send;
    for (int d = 0; d < P; ++d) {
      send_counts[static_cast<std::size_t>(d)] = static_cast<std::size_t>(d + 1);
      send.insert(send.end(), static_cast<std::size_t>(d + 1),
                  100 * c.rank() + d);
    }
    const auto recv = c.alltoallv_flat<int>(send, send_counts, recv_counts);
    ASSERT_EQ(recv.size(),
              static_cast<std::size_t>(P) * static_cast<std::size_t>(c.rank() + 1));
    std::size_t off = 0;
    for (int s = 0; s < P; ++s)
      for (int k = 0; k <= c.rank(); ++k)
        EXPECT_EQ(recv[off++], 100 * s + c.rank()) << "from rank " << s;
  });
}

TEST_P(CommRanks, AlltoallvFlatHandlesZeroCounts) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    // Only even ranks send, and only to odd ranks (self blocks are zero for
    // everyone): exercises empty blocks in both directions.
    std::vector<std::size_t> send_counts(static_cast<std::size_t>(P), 0);
    std::vector<std::size_t> recv_counts(static_cast<std::size_t>(P), 0);
    std::vector<double> send;
    for (int d = 0; d < P; ++d) {
      if (c.rank() % 2 == 0 && d % 2 == 1) {
        send_counts[static_cast<std::size_t>(d)] = 2;
        send.push_back(c.rank() + 0.5);
        send.push_back(d + 0.25);
      }
      if (c.rank() % 2 == 1 && d % 2 == 0)
        recv_counts[static_cast<std::size_t>(d)] = 2;
    }
    const auto recv = c.alltoallv_flat<double>(send, send_counts, recv_counts);
    std::size_t off = 0;
    for (int s = 0; s < P; ++s) {
      if (recv_counts[static_cast<std::size_t>(s)] == 0) continue;
      EXPECT_DOUBLE_EQ(recv[off++], s + 0.5);
      EXPECT_DOUBLE_EQ(recv[off++], c.rank() + 0.25);
    }
    EXPECT_EQ(off, recv.size());
  });
}

TEST_P(CommRanks, ScanValueComputesPrefixSums) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    const int r = c.rank();
    EXPECT_EQ(c.scan_value(r + 1, ReduceOp::Sum), (r + 1) * (r + 2) / 2);
  });
}

TEST_P(CommRanks, EmptyMessagesAreDelivered) {
  const int P = GetParam();
  if (P < 2) GTEST_SKIP();
  run_spmd(P, [&](Comm& c) {
    if (c.rank() == 0) {
      c.send<int>(1, 3, {});
    } else if (c.rank() == 1) {
      EXPECT_TRUE(c.recv<int>(0, 3).empty());
    }
  });
}

TEST(Comm, RankExceptionPropagatesToCaller) {
  EXPECT_THROW(run_spmd(2,
                        [&](Comm& c) {
                          if (c.rank() == 1) COSMO_REQUIRE(false, "boom");
                          // Rank 0 does no communication so it exits cleanly.
                        }),
               Error);
}

TEST_P(CommRanks, AlltoallvFlatSessionMatchesBatched) {
  const int P = GetParam();
  run_spmd(P, [&](Comm& c) {
    // Same traffic as AlltoallvFlatMatchesNestedAlltoallv, but posted block
    // by block through a session, with polls interleaved between posts.
    std::vector<std::size_t> send_counts(static_cast<std::size_t>(P));
    std::vector<std::size_t> recv_counts(
        static_cast<std::size_t>(P), static_cast<std::size_t>(c.rank() + 1));
    for (int d = 0; d < P; ++d)
      send_counts[static_cast<std::size_t>(d)] = static_cast<std::size_t>(d + 1);

    std::vector<std::vector<int>> got(static_cast<std::size_t>(P));
    std::size_t deliveries = 0;
    auto on_block = [&](int src, std::span<const int> block) {
      auto& slot = got[static_cast<std::size_t>(src)];
      ASSERT_TRUE(slot.empty()) << "block from rank " << src << " twice";
      slot.assign(block.begin(), block.end());
      if (slot.empty()) slot.push_back(-1);  // mark zero-count deliveries
      ++deliveries;
    };

    comm::AlltoallvFlatSession<int> session(c, recv_counts);
    std::vector<int> scratch;
    for (int d = 0; d < P; ++d) {
      scratch.assign(send_counts[static_cast<std::size_t>(d)],
                     100 * c.rank() + d);
      session.post_block(d, std::span<const int>(scratch));
      session.poll(on_block);
    }
    session.finish(on_block);

    EXPECT_EQ(deliveries, static_cast<std::size_t>(P));
    EXPECT_EQ(session.remaining(), 0u);
    for (int s = 0; s < P; ++s) {
      const auto& block = got[static_cast<std::size_t>(s)];
      ASSERT_EQ(block.size(), static_cast<std::size_t>(c.rank() + 1));
      for (int v : block) EXPECT_EQ(v, 100 * s + c.rank()) << "from rank " << s;
    }
  });
}

TEST_P(CommRanks, AlltoallvFlatSessionOutOfOrderArrival) {
  const int P = GetParam();
  if (P < 2) GTEST_SKIP();
  // Adversarial staggering: rank r delays its posts by (P-1-r) ms, so blocks
  // arrive in roughly reverse rank order and early-posting ranks sit in
  // finish() while late blocks trickle in. Content must be unaffected.
  run_spmd(P, [&](Comm& c) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(2 * (P - 1 - c.rank())));
    const std::vector<std::size_t> counts(static_cast<std::size_t>(P), 3);
    comm::AlltoallvFlatSession<double> session(c, counts);
    std::vector<double> block(3);
    for (int step = 0; step < P; ++step) {
      const int d = (c.rank() + step) % P;
      for (int i = 0; i < 3; ++i) block[static_cast<std::size_t>(i)] =
          1000.0 * c.rank() + 10.0 * d + i;
      session.post_block(d, std::span<const double>(block));
    }
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(P), 0);
    session.finish([&](int src, std::span<const double> b) {
      ASSERT_EQ(b.size(), 3u);
      seen[static_cast<std::size_t>(src)] = 1;
      for (int i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(b[static_cast<std::size_t>(i)],
                         1000.0 * src + 10.0 * c.rank() + i);
    });
    for (int s = 0; s < P; ++s)
      EXPECT_TRUE(seen[static_cast<std::size_t>(s)]) << "missing rank " << s;
  });
}

TEST_P(CommRanks, BackToBackSessionsDoNotInterfere) {
  const int P = GetParam();
  // Two sessions opened in program order on every rank: the per-source FIFO
  // must keep round-2 blocks out of round-1 sessions even when a fast rank
  // posts round 2 before a slow rank drains round 1.
  run_spmd(P, [&](Comm& c) {
    for (int round = 0; round < 2; ++round) {
      const std::vector<std::size_t> counts(static_cast<std::size_t>(P), 1);
      comm::AlltoallvFlatSession<int> session(c, counts);
      std::vector<int> v(1);
      for (int d = 0; d < P; ++d) {
        v[0] = 1000 * round + 10 * c.rank() + d;
        session.post_block(d, std::span<const int>(v));
      }
      session.finish([&](int src, std::span<const int> b) {
        ASSERT_EQ(b.size(), 1u);
        EXPECT_EQ(b[0], 1000 * round + 10 * src + c.rank());
      });
    }
  });
}

TEST(Comm, SessionRejectsDoublePostAndEarlyFinish) {
  run_spmd(2, [&](Comm& c) {
    const std::vector<std::size_t> counts(2, 1);
    comm::AlltoallvFlatSession<int> session(c, counts);
    const int v = c.rank();
    auto sink = [](int, std::span<const int>) {};
    if (c.rank() == 0) {
      session.post_block(1, std::span<const int>(&v, 1));
      EXPECT_THROW(session.post_block(1, std::span<const int>(&v, 1)), Error);
      EXPECT_THROW(session.finish(sink), Error);  // self block not posted
      session.post_block(0, std::span<const int>(&v, 1));
    } else {
      session.post_block(0, std::span<const int>(&v, 1));
      session.post_block(1, std::span<const int>(&v, 1));
    }
    session.finish(sink);
  });
}

#ifndef COSMO_OBS_DISABLED
TEST(Comm, PayloadPoolRecyclesBuffers) {
  obs::MetricsRegistry::instance().reset();
  // A ping-pong loop returns each payload to the world's free-list on
  // receive; every send after the first few should pick a recycled buffer.
  run_spmd(2, [&](Comm& c) {
    const int peer = 1 - c.rank();
    std::vector<double> buf(256, c.rank() + 0.5);
    for (int i = 0; i < 50; ++i) {
      if (c.rank() == 0) {
        c.send(peer, 7, std::span<const double>(buf));
        const auto back = c.recv<double>(peer, 7);
        ASSERT_EQ(back.size(), buf.size());
      } else {
        const auto in = c.recv<double>(peer, 7);
        c.send(peer, 7, std::span<const double>(in));
      }
    }
  });
  EXPECT_GT(
      obs::MetricsRegistry::instance().counter("comm.payload_reuse").total(),
      0u);
}
#endif

TEST(Comm, UserTagsMustBeNonNegative) {
  run_spmd(1, [&](Comm& c) {
    EXPECT_THROW(c.send_value<int>(0, -1, 0), Error);
  });
}

TEST(Comm, ConsecutiveCollectivesDoNotInterfere) {
  run_spmd(4, [&](Comm& c) {
    for (int round = 0; round < 20; ++round) {
      const int total = c.allreduce_value(1, ReduceOp::Sum);
      EXPECT_EQ(total, 4);
      auto ids = c.allgather_value(c.rank());
      ASSERT_EQ(ids.size(), 4u);
      for (int r = 0; r < 4; ++r) EXPECT_EQ(ids[static_cast<std::size_t>(r)], r);
    }
  });
}

}  // namespace
