// Physics-invariant tests: conservation laws and consistency relations the
// simulation substrate must honor regardless of implementation detail.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "comm/comm.h"
#include "sim/cosmology.h"
#include "sim/ic.h"
#include "sim/pm_solver.h"
#include "sim/synthetic.h"
#include "stats/power_spectrum.h"
#include "util/rng.h"

namespace {

using namespace cosmo;
using namespace cosmo::sim;

TEST(PmPhysics, NetForceVanishesOnPeriodicBox) {
  // With the k=0 mode removed, internal gravity cannot accelerate the
  // center of mass: Σ_i a_i ≈ 0 even for a wildly clustered distribution.
  comm::run_spmd(2, [&](comm::Comm& c) {
    const std::size_t ng = 16;
    const double box = 32.0;
    Cosmology cosmo;
    PmSolver pm(c, cosmo, ng, box);
    SlabDecomposition d(2, box);
    ParticleSet cloud;
    Rng rng(21 + static_cast<std::uint64_t>(c.rank()));
    for (int i = 0; i < 400; ++i)
      cloud.push_back(static_cast<float>(rng.normal(10, 2.0)),
                      static_cast<float>(rng.normal(22, 1.0)),
                      static_cast<float>(rng.uniform(0, box)), 0, 0, 0, i);
    ParticleSet owned = d.redistribute(c, cloud);
    const double mean = 800.0 / (ng * ng * ng);
    auto delta = pm.deposit_density(owned, mean);
    auto phi = pm.solve_potential(delta, 1.0);
    std::vector<double> ax, ay, az;
    pm.accelerations(phi, owned, ax, ay, az);
    double sx = std::accumulate(ax.begin(), ax.end(), 0.0);
    double sy = std::accumulate(ay.begin(), ay.end(), 0.0);
    double sz = std::accumulate(az.begin(), az.end(), 0.0);
    sx = c.allreduce_value(sx, comm::ReduceOp::Sum);
    sy = c.allreduce_value(sy, comm::ReduceOp::Sum);
    sz = c.allreduce_value(sz, comm::ReduceOp::Sum);
    // Individual |a| values are O(0.1–1); the sum must be tiny relative to
    // the total magnitude.
    double mag = 0.0;
    for (std::size_t i = 0; i < ax.size(); ++i)
      mag += std::abs(ax[i]) + std::abs(ay[i]) + std::abs(az[i]);
    mag = c.allreduce_value(mag, comm::ReduceOp::Sum);
    EXPECT_LT(std::abs(sx) + std::abs(sy) + std::abs(sz), 1e-3 * mag);
  });
}

TEST(PmPhysics, MomentumConservedOverSteps) {
  // Leapfrog kicks sum internal forces only → total code momentum drifts
  // by at most the CIC interpolation error.
  comm::run_spmd(2, [&](comm::Comm& c) {
    Cosmology cosmo;
    IcConfig ic;
    ic.ng = 16;
    ic.box = 32.0;
    ic.z_init = 20.0;
    ic.seed = 77;
    PmSolver pm(c, cosmo, ic.ng, ic.box);
    auto p = zeldovich_ics(c, cosmo, ic);

    auto total_momentum = [&](const ParticleSet& ps) {
      double m[3] = {0, 0, 0};
      for (std::size_t i = 0; i < ps.size(); ++i) {
        m[0] += ps.vx[i];
        m[1] += ps.vy[i];
        m[2] += ps.vz[i];
      }
      auto all = c.allreduce<double>(std::span<const double>(m, 3),
                                     comm::ReduceOp::Sum);
      return std::abs(all[0]) + std::abs(all[1]) + std::abs(all[2]);
    };
    auto total_speed = [&](const ParticleSet& ps) {
      double s = 0;
      for (std::size_t i = 0; i < ps.size(); ++i)
        s += std::abs(ps.vx[i]) + std::abs(ps.vy[i]) + std::abs(ps.vz[i]);
      return c.allreduce_value(s, comm::ReduceOp::Sum);
    };

    double a = Cosmology::a_of_z(ic.z_init);
    const double da = (1.0 - a) / 10.0;
    for (int s = 0; s < 10; ++s, a += da)
      p = pm.step(std::move(p), a, da, 16.0 * 16.0 * 16.0);
    EXPECT_LT(total_momentum(p), 0.02 * total_speed(p))
        << "bulk momentum grew out of the noise floor";
  });
}

TEST(PmPhysics, ZeldovichVelocityDisplacementConsistency) {
  // At Zel'dovich order the momentum is proportional to the displacement:
  // p = a²Ef·D·ψ/cell while Δx = D·ψ, so p/(Δx/cell) = a²·E·f for every
  // particle (same constant, independent of position).
  Cosmology cosmo;
  IcConfig ic;
  ic.ng = 16;
  ic.box = 64.0;
  ic.z_init = 30.0;
  ic.seed = 3;
  comm::run_spmd(1, [&](comm::Comm& c) {
    auto p = zeldovich_ics(c, cosmo, ic);
    const double a = Cosmology::a_of_z(ic.z_init);
    const double expect = a * a * cosmo.efunc(a) * cosmo.growth_rate(a);
    const double cell = ic.box / 16.0;
    std::size_t checked = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const auto t = p.tag[i];
      const double qx = ((t % 16) + 0.5) * cell;
      double dx = p.x[i] - qx;
      if (dx > 0.5 * ic.box) dx -= ic.box;
      if (dx < -0.5 * ic.box) dx += ic.box;
      if (std::abs(dx) < 0.02 * cell) continue;  // avoid 0/0
      const double ratio = static_cast<double>(p.vx[i]) / (dx / cell);
      EXPECT_NEAR(ratio, expect, 0.02 * expect) << "particle " << i;
      ++checked;
    }
    EXPECT_GT(checked, p.size() / 2);
  });
}

TEST(PmPhysics, GridConvergenceOfForces) {
  // The same point-mass configuration on a finer grid must give a force in
  // the same direction with comparable magnitude (PM softening shrinks
  // with the cell, so allow a broad band — this guards against sign or
  // normalization errors between resolutions).
  comm::run_spmd(1, [&](comm::Comm& c) {
    Cosmology cosmo;
    const double box = 32.0;
    auto probe_force = [&](std::size_t ng) {
      PmSolver pm(c, cosmo, ng, box);
      ParticleSet ps;
      for (int i = 0; i < 64; ++i) ps.push_back(16, 16, 16, 0, 0, 0, i);
      ps.push_back(10.0, 16, 16, 0, 0, 0, 999);  // probe 6 Mpc away
      const double mean = 65.0 / (static_cast<double>(ng) * ng * ng);
      auto delta = pm.deposit_density(ps, mean);
      auto phi = pm.solve_potential(delta, 1.0);
      std::vector<double> ax, ay, az;
      pm.accelerations(phi, ps, ax, ay, az);
      // Acceleration is in grid units per cell; convert to physical-ish
      // units (multiply by cells per Mpc² factor cancels in ratio? convert
      // to Mpc: a_grid × cell).
      return ax.back() * (box / static_cast<double>(ng));
    };
    const double coarse = probe_force(16);
    const double fine = probe_force(32);
    EXPECT_GT(coarse, 0.0);  // attraction toward +x
    EXPECT_GT(fine, 0.0);
    EXPECT_NEAR(fine / coarse, 1.0, 0.5);  // same physics, finer mesh
  });
}

TEST(PowerSpectrumPhysics, ClusteredUniverseExceedsShotNoiseAtSmallScales) {
  // Halos add power over a pure Poisson field at small scales (the 1-halo
  // term); measured with shot-noise subtraction ON, the clustered universe
  // must show significantly positive power where a random field shows ~0.
  comm::run_spmd(2, [&](comm::Comm& c) {
    Cosmology cosmo;
    SyntheticConfig cfg;
    cfg.box = 32.0;
    cfg.halo_count = 60;
    cfg.min_particles = 100;
    cfg.max_particles = 2000;
    cfg.background_particles = 5000;
    cfg.subclump_fraction = 0.0;
    auto u = generate_synthetic(c, cosmo, cfg);
    stats::PowerSpectrumConfig ps_cfg;
    ps_cfg.grid = 32;
    ps_cfg.bins = 8;
    ps_cfg.subtract_shot_noise = true;
    auto ps = stats::measure_power_spectrum(c, u.local, cfg.box,
                                            u.total_particles, ps_cfg);
    const double shot =
        cfg.box * cfg.box * cfg.box / static_cast<double>(u.total_particles);
    ASSERT_GE(ps.k.size(), 4u);
    // Every bin should carry strong positive clustering power.
    for (std::size_t b = 0; b < ps.k.size(); ++b)
      EXPECT_GT(ps.power[b], shot) << "k=" << ps.k[b];
  });
}

TEST(PowerSpectrumPhysics, DeconvolutionRaisesSmallScalePower) {
  // The CIC window suppresses high-k power; deconvolving must increase the
  // measured P(k) near the Nyquist frequency and barely change low k.
  comm::run_spmd(1, [&](comm::Comm& c) {
    Cosmology cosmo;
    SyntheticConfig cfg;
    cfg.box = 32.0;
    cfg.halo_count = 40;
    cfg.background_particles = 3000;
    auto u = generate_synthetic(c, cosmo, cfg);
    stats::PowerSpectrumConfig raw, dec;
    raw.grid = dec.grid = 32;
    raw.bins = dec.bins = 8;
    raw.subtract_shot_noise = dec.subtract_shot_noise = false;
    raw.deconvolve_cic = false;
    dec.deconvolve_cic = true;
    auto ps_raw = stats::measure_power_spectrum(c, u.local, cfg.box,
                                                u.total_particles, raw);
    auto ps_dec = stats::measure_power_spectrum(c, u.local, cfg.box,
                                                u.total_particles, dec);
    ASSERT_EQ(ps_raw.k.size(), ps_dec.k.size());
    const std::size_t last = ps_raw.k.size() - 1;
    EXPECT_GT(ps_dec.power[last], 1.2 * ps_raw.power[last]);
    EXPECT_NEAR(ps_dec.power[0], ps_raw.power[0], 0.1 * ps_raw.power[0]);
  });
}

}  // namespace
