// Backend bit-identity tests for the parallel halo-analysis chain: FOF
// linking blocks, the parallel k-d tree build, the per-halo property
// fan-out in the core pipeline, and the property kernels themselves.
// Everything here asserts EXACT equality between Serial and ThreadPool —
// the dpp contract — not tolerance-based agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <numeric>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "comm/comm.h"
#include "core/algorithms.h"
#include "core/cosmotools.h"
#include "halo/fof.h"
#include "halo/kdtree.h"
#include "halo/so_mass.h"
#include "sim/cosmology.h"
#include "sim/synthetic.h"
#include "stats/catalog.h"
#include "stats/concentration.h"
#include "stats/halo_shape.h"
#include "stats/merger_tree.h"
#include "util/rng.h"

namespace {

using namespace cosmo;
using namespace cosmo::halo;
using sim::ParticleSet;

ParticleSet random_particles(std::size_t n, double box, std::uint64_t seed,
                             std::int64_t tag0 = 0) {
  Rng rng(seed);
  ParticleSet p;
  for (std::size_t i = 0; i < n; ++i)
    p.push_back(static_cast<float>(rng.uniform(0, box)),
                static_cast<float>(rng.uniform(0, box)),
                static_cast<float>(rng.uniform(0, box)), 0, 0, 0,
                tag0 + static_cast<std::int64_t>(i));
  return p;
}

/// Blobby universe with background noise — enough structure for FOF to
/// find real halos, enough noise to exercise pruning.
ParticleSet blob_universe(double box, std::uint64_t seed) {
  Rng rng(seed);
  ParticleSet p;
  std::int64_t tag = 0;
  for (int h = 0; h < 15; ++h) {
    const double cx = rng.uniform(1.0, box - 1.0);
    const double cy = rng.uniform(1.0, box - 1.0);
    const double cz = rng.uniform(1.0, box - 1.0);
    const auto n = static_cast<std::size_t>(rng.uniform(80, 500));
    for (std::size_t i = 0; i < n; ++i)
      p.push_back(static_cast<float>(rng.normal(cx, 0.2)),
                  static_cast<float>(rng.normal(cy, 0.2)),
                  static_cast<float>(rng.normal(cz, 0.2)), 0, 0, 0, tag++);
  }
  for (int i = 0; i < 2000; ++i)
    p.push_back(static_cast<float>(rng.uniform(0, box)),
                static_cast<float>(rng.uniform(0, box)),
                static_cast<float>(rng.uniform(0, box)), 0, 0, 0, tag++);
  return p;
}

/// Everything that defines a FOF catalog, for exact comparison.
using HaloTuple =
    std::tuple<std::int64_t, std::vector<std::uint32_t>, std::uint32_t>;

std::vector<HaloTuple> to_tuples(const std::vector<FofHalo>& halos) {
  std::vector<HaloTuple> out;
  out.reserve(halos.size());
  for (const auto& h : halos) out.emplace_back(h.id, h.members, h.min_tag_member);
  return out;
}

// ------------------------------------------------------------ parallel FOF --

TEST(ParallelFof, BitIdenticalAcrossGrainsAndBackends) {
  const double box = 32.0;
  ParticleSet p = blob_universe(box, 101);
  FofConfig serial_cfg;
  serial_cfg.linking_length = 0.3;
  serial_cfg.min_size = 40;
  const auto reference =
      to_tuples(fof_find(p, Periodicity::all(box), serial_cfg));
  ASSERT_GT(reference.size(), 5u);

  for (const std::size_t grain : {std::size_t{0}, std::size_t{64},
                                  std::size_t{1024}}) {
    FofConfig cfg = serial_cfg;
    cfg.backend = dpp::Backend::ThreadPool;
    cfg.grain = grain;
    EXPECT_EQ(to_tuples(fof_find(p, Periodicity::all(box), cfg)), reference)
        << "grain " << grain;
  }
  // Serial with an explicit grain must be unchanged too (blocks don't
  // affect exact components).
  FofConfig cfg = serial_cfg;
  cfg.grain = 64;
  EXPECT_EQ(to_tuples(fof_find(p, Periodicity::all(box), cfg)), reference);
}

TEST(ParallelFof, MatchesBruteForce) {
  const double box = 16.0;
  Rng rng(7);
  ParticleSet p;
  std::int64_t tag = 0;
  for (int h = 0; h < 6; ++h) {
    const double cx = rng.uniform(1.0, 15.0), cy = rng.uniform(1.0, 15.0),
                 cz = rng.uniform(1.0, 15.0);
    for (int i = 0; i < 120; ++i)
      p.push_back(static_cast<float>(rng.normal(cx, 0.25)),
                  static_cast<float>(rng.normal(cy, 0.25)),
                  static_cast<float>(rng.normal(cz, 0.25)), 0, 0, 0, tag++);
  }
  FofConfig cfg;
  cfg.linking_length = 0.3;
  cfg.min_size = 40;
  cfg.backend = dpp::Backend::ThreadPool;
  cfg.grain = 32;
  const auto tree_halos = fof_find(p, Periodicity::all(box), cfg);
  const auto brute_halos = fof_brute_force(p, Periodicity::all(box), cfg);
  ASSERT_EQ(tree_halos.size(), brute_halos.size());
  auto member_sets = [](const std::vector<FofHalo>& halos) {
    std::map<std::int64_t, std::set<std::uint32_t>> m;
    for (const auto& h : halos)
      m[h.id] = std::set<std::uint32_t>(h.members.begin(), h.members.end());
    return m;
  };
  EXPECT_EQ(member_sets(tree_halos), member_sets(brute_halos));
}

TEST(ParallelFof, MinTagMemberIsArgMin) {
  const double box = 32.0;
  ParticleSet p = blob_universe(box, 55);
  // Scramble tags so the min-tag member isn't trivially the first member.
  Rng rng(56);
  for (std::size_t i = 0; i < p.size(); ++i)
    std::swap(p.tag[i],
              p.tag[static_cast<std::size_t>(rng.uniform(0.0, 1.0) *
                                             static_cast<double>(p.size() - 1))]);
  for (const auto backend : {dpp::Backend::Serial, dpp::Backend::ThreadPool}) {
    FofConfig cfg;
    cfg.linking_length = 0.3;
    cfg.min_size = 40;
    cfg.backend = backend;
    const auto halos = fof_find(p, Periodicity::all(box), cfg);
    ASSERT_GT(halos.size(), 3u);
    for (const auto& h : halos) {
      EXPECT_EQ(p.tag[h.min_tag_member], h.id);
      std::int64_t min_tag = p.tag[h.members.front()];
      for (const auto m : h.members) min_tag = std::min(min_tag, p.tag[m]);
      EXPECT_EQ(min_tag, h.id);
      EXPECT_TRUE(std::find(h.members.begin(), h.members.end(),
                            h.min_tag_member) != h.members.end());
    }
  }
}

class ParallelDistFof : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, ParallelDistFof, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST_P(ParallelDistFof, BitIdenticalToSerialBackend) {
  const int P = GetParam();
  sim::SyntheticConfig scfg;
  scfg.box = 32.0;
  scfg.halo_count = 20;
  scfg.min_particles = 50;
  scfg.max_particles = 600;
  scfg.background_particles = 600;
  scfg.subclump_fraction = 0.0;
  scfg.seed = 77;

  auto run = [&](dpp::Backend backend, std::size_t grain) {
    std::vector<std::vector<HaloTuple>> per_rank(
        static_cast<std::size_t>(P));
    comm::run_spmd(P, [&](comm::Comm& c) {
      sim::Cosmology cosmo;
      auto u = sim::generate_synthetic(c, cosmo, scfg);
      sim::SlabDecomposition decomp(P, scfg.box);
      FofConfig cfg;
      cfg.linking_length = 0.35;
      cfg.min_size = 40;
      cfg.backend = backend;
      cfg.grain = grain;
      auto result = fof_distributed(c, decomp, u.local, cfg, 3.0);
      per_rank[static_cast<std::size_t>(c.rank())] = to_tuples(result.halos);
    });
    return per_rank;
  };

  const auto reference = run(dpp::Backend::Serial, 0);
  std::size_t total = 0;
  for (const auto& r : reference) total += r.size();
  ASSERT_GT(total, 5u);
  EXPECT_EQ(run(dpp::Backend::ThreadPool, 0), reference);
  EXPECT_EQ(run(dpp::Backend::ThreadPool, 128), reference);
}

// -------------------------------------------------------- parallel k-d tree --

TEST(ParallelKdTree, LayoutBackendInvariant) {
  const double box = 32.0;
  // Above kParallelBuildCutoff so several levels really build in parallel.
  ParticleSet p = random_particles(20000, box, 5);
  ASSERT_GT(p.size(), KdTree::kParallelBuildCutoff);
  const KdTree a =
      KdTree::over_all(p, Periodicity::all(box), 8, dpp::Backend::Serial);
  const KdTree b =
      KdTree::over_all(p, Periodicity::all(box), 8, dpp::Backend::ThreadPool);
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.root(), b.root());
  const auto ia = a.index(), ib = b.index();
  ASSERT_EQ(ia.size(), ib.size());
  EXPECT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin()));
  for (std::size_t id = 0; id < a.node_count(); ++id) {
    const auto& na = a.node(static_cast<std::int32_t>(id));
    const auto& nb = b.node(static_cast<std::int32_t>(id));
    ASSERT_EQ(na.begin, nb.begin) << "node " << id;
    ASSERT_EQ(na.end, nb.end) << "node " << id;
    ASSERT_EQ(na.left, nb.left) << "node " << id;
    ASSERT_EQ(na.right, nb.right) << "node " << id;
    for (int d = 0; d < 3; ++d) {
      ASSERT_EQ(na.lo[d], nb.lo[d]) << "node " << id;
      ASSERT_EQ(na.hi[d], nb.hi[d]) << "node " << id;
    }
  }
}

TEST(ParallelKdTree, QueriesMatchSerialTree) {
  const double box = 16.0;
  ParticleSet p = random_particles(6000, box, 9);
  const KdTree serial =
      KdTree::over_all(p, Periodicity::all(box), 8, dpp::Backend::Serial);
  const KdTree pooled =
      KdTree::over_all(p, Periodicity::all(box), 8, dpp::Backend::ThreadPool);
  Rng rng(10);
  for (int q = 0; q < 25; ++q) {
    const double qx = rng.uniform(0, box), qy = rng.uniform(0, box),
                 qz = rng.uniform(0, box);
    const double r = rng.uniform(0.3, 2.5);
    std::set<std::uint32_t> sa, sb;
    serial.for_each_in_range(qx, qy, qz, r,
                             [&](std::uint32_t i) { sa.insert(i); });
    pooled.for_each_in_range(qx, qy, qz, r,
                             [&](std::uint32_t i) { sb.insert(i); });
    EXPECT_EQ(sa, sb) << "query " << q;
    EXPECT_EQ(serial.k_nearest(qx, qy, qz, 12), pooled.k_nearest(qx, qy, qz, 12));
  }
}

// ------------------------------------------------------- per-halo fan-out --

std::vector<std::vector<std::byte>> run_pipeline(dpp::Backend backend, int P,
                                                 bool fused,
                                                 const std::string& extra = {}) {
  sim::SyntheticConfig ucfg;
  ucfg.box = 32.0;
  ucfg.halo_count = 12;
  ucfg.min_particles = 60;
  ucfg.max_particles = 1200;
  ucfg.background_particles = 500;
  ucfg.subclump_fraction = 0.0;
  ucfg.seed = 31;
  std::vector<std::vector<std::byte>> per_rank(static_cast<std::size_t>(P));
  comm::run_spmd(P, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u = sim::generate_synthetic(c, cosmo, ucfg);
    sim::SlabDecomposition decomp(P, ucfg.box);
    core::InSituAnalysisManager manager(c, decomp, ucfg.box,
                                        u.total_particles, backend);
    if (fused)
      core::register_fused_halo_pipeline(manager);
    else
      core::register_full_halo_pipeline(manager);
    manager.configure(core::CosmoToolsConfig::parse(
        "[halofinder]\nlinking_length 0.3\nmin_size 40\noverload 2.0\n" +
        extra));
    sim::StepContext step{1, 1, 1.0, 0.0};
    auto ctx = manager.execute_step(step, u.local);
    per_rank[static_cast<std::size_t>(c.rank())] =
        stats::catalog_to_bytes(ctx.catalog);
  });
  return per_rank;
}

TEST(PerHaloFanout, CatalogBitIdenticalSerialVsThreadPool) {
  const auto serial = run_pipeline(dpp::Backend::Serial, 2, /*fused=*/false);
  const auto pooled = run_pipeline(dpp::Backend::ThreadPool, 2,
                                   /*fused=*/false);
  std::size_t bytes = 0;
  for (const auto& r : serial) bytes += r.size();
  ASSERT_GT(bytes, 0u);
  EXPECT_EQ(serial, pooled);
}

TEST(PerHaloFanout, FusedChainMatchesSequential) {
  const auto sequential =
      run_pipeline(dpp::Backend::ThreadPool, 1, /*fused=*/false);
  const auto fused = run_pipeline(dpp::Backend::ThreadPool, 1, /*fused=*/true);
  ASSERT_GT(sequential.front().size(), 0u);
  EXPECT_EQ(sequential, fused);
}

TEST(PerHaloFanout, ThresholdDeferralMatchesSequential) {
  const std::string extra =
      "[centerfinder]\nthreshold 500\n[haloproperties]\nthreshold 500\n";
  const auto sequential =
      run_pipeline(dpp::Backend::ThreadPool, 1, /*fused=*/false, extra);
  const auto fused =
      run_pipeline(dpp::Backend::ThreadPool, 1, /*fused=*/true, extra);
  EXPECT_EQ(sequential, fused);
}

// ------------------------------------------------------- property kernels --

TEST(ParallelProperties, KernelsBitIdenticalAcrossBackends) {
  const double box = 16.0;
  Rng rng(21);
  ParticleSet p;
  for (int i = 0; i < 3000; ++i)
    p.push_back(static_cast<float>(rng.normal(8.0, 0.4)),
                static_cast<float>(rng.normal(8.0, 0.7)),
                static_cast<float>(rng.normal(8.0, 1.1)), 0, 0, 0, i);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);

  for (const std::size_t grain : {std::size_t{0}, std::size_t{7},
                                  std::size_t{256}}) {
    SoConfig sa, sb;
    sa.box = sb.box = box;
    sa.mean_density = sb.mean_density = 1.0;
    sb.backend = dpp::Backend::ThreadPool;
    sa.grain = sb.grain = grain;
    const auto soa = so_mass(p, members, 8.0, 8.0, 8.0, sa);
    const auto sob = so_mass(p, members, 8.0, 8.0, 8.0, sb);
    EXPECT_EQ(soa.radius, sob.radius) << "grain " << grain;
    EXPECT_EQ(soa.mass, sob.mass) << "grain " << grain;
    EXPECT_EQ(soa.count, sob.count) << "grain " << grain;

    const auto sha = stats::halo_shape(p, members, 8.0, 8.0, 8.0, box,
                                       dpp::Backend::Serial, grain);
    const auto shb = stats::halo_shape(p, members, 8.0, 8.0, 8.0, box,
                                       dpp::Backend::ThreadPool, grain);
    EXPECT_EQ(sha.a, shb.a) << "grain " << grain;
    EXPECT_EQ(sha.b_over_a, shb.b_over_a) << "grain " << grain;
    EXPECT_EQ(sha.c_over_a, shb.c_over_a) << "grain " << grain;

    const auto ca = stats::concentration(p, members, 8.0, 8.0, 8.0, box,
                                         dpp::Backend::Serial, grain);
    const auto cb = stats::concentration(p, members, 8.0, 8.0, 8.0, box,
                                         dpp::Backend::ThreadPool, grain);
    EXPECT_EQ(ca.c, cb.c) << "grain " << grain;
    EXPECT_EQ(ca.r_half, cb.r_half) << "grain " << grain;

    const auto fa = stats::concentration_profile_fit(
        p, members, 8.0, 8.0, 8.0, box, 16, dpp::Backend::Serial, grain);
    const auto fb = stats::concentration_profile_fit(
        p, members, 8.0, 8.0, 8.0, box, 16, dpp::Backend::ThreadPool, grain);
    EXPECT_EQ(fa.c, fb.c) << "grain " << grain;
  }
}

TEST(ParallelMergerTree, LinksBackendInvariant) {
  const double box = 32.0;
  ParticleSet p = blob_universe(box, 61);
  FofConfig cfg;
  cfg.linking_length = 0.3;
  cfg.min_size = 40;
  const auto halos0 = fof_find(p, Periodicity::all(box), cfg);
  ASSERT_GT(halos0.size(), 3u);
  // Step 1: drift every particle slightly — halos persist, ids shift.
  ParticleSet q = p;
  Rng rng(62);
  for (std::size_t i = 0; i < q.size(); ++i)
    q.x[i] = static_cast<float>(q.x[i] + rng.uniform(-0.02, 0.02));
  const auto halos1 = fof_find(q, Periodicity::all(box), cfg);

  auto tracked = [](const ParticleSet& ps, const std::vector<FofHalo>& hs) {
    std::vector<stats::TrackedHalo> out;
    for (const auto& h : hs) {
      stats::TrackedHalo t;
      t.id = h.id;
      for (const auto m : h.members) t.tags.push_back(ps.tag[m]);
      out.push_back(std::move(t));
    }
    return out;
  };

  auto build_links = [&](dpp::Backend backend) {
    stats::MergerTreeBuilder b;
    b.add_snapshot(0, tracked(p, halos0));
    b.add_snapshot(1, tracked(q, halos1));
    b.build(backend);
    std::vector<std::tuple<std::size_t, std::int64_t, std::int64_t,
                           std::size_t>>
        out;
    for (const auto& l : b.links())
      out.emplace_back(l.step, l.progenitor, l.descendant,
                       l.shared_particles);
    return out;
  };

  const auto serial = build_links(dpp::Backend::Serial);
  ASSERT_GT(serial.size(), 2u);
  EXPECT_EQ(build_links(dpp::Backend::ThreadPool), serial);
}

}  // namespace
