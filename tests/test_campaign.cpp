// Tests for the multi-timestep campaign, merger trees, checkpoints, and
// the density imaging (Fig. 2 product).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <tuple>

#include "core/campaign.h"
#include "io/image.h"
#include "sim/checkpoint.h"
#include "sim/ic.h"
#include "sim/pm_solver.h"
#include "stats/merger_tree.h"

namespace {

using namespace cosmo;
namespace fs = std::filesystem;

// ----------------------------------------------------------------- campaign

core::CampaignConfig small_campaign(const std::string& tag) {
  core::CampaignConfig cfg;
  cfg.base.universe.box = 32.0;
  cfg.base.universe.seed = 777;
  cfg.base.universe.halo_count = 12;
  cfg.base.universe.min_particles = 60;
  cfg.base.universe.max_particles = 1500;
  cfg.base.universe.background_particles = 300;
  cfg.base.universe.subclump_fraction = 0.0;
  cfg.base.ranks = 2;
  cfg.base.analysis_ranks = 2;
  cfg.base.linking_length = 0.3;
  cfg.base.overload = 2.5;
  cfg.base.threshold = 150;
  cfg.base.compute_so_mass = false;
  cfg.base.workdir = fs::temp_directory_path() /
                     ("campaign_" + std::to_string(::getpid()) + "_" + tag);
  cfg.timesteps = 3;
  cfg.growth_per_step = 1.5;
  return cfg;
}

TEST(Campaign, RunsAllStepsWithCompleteCatalogs) {
  auto cfg = small_campaign("basic");
  auto r = core::run_campaign(cfg);
  ASSERT_EQ(r.steps.size(), 3u);
  EXPECT_EQ(r.listener_triggers, 3u);
  for (const auto& s : r.steps) {
    EXPECT_GT(s.catalog.size(), 3u) << "step " << s.step;
    EXPECT_GT(s.insitu_analysis_s, 0.0);
    // Catalogs are sorted and id-unique (reconciliation succeeded).
    for (std::size_t i = 1; i < s.catalog.size(); ++i)
      EXPECT_LT(s.catalog[i - 1].id, s.catalog[i].id);
  }
  // Clustering grows in configuration: the final step's universe caps halo
  // mass at the base maximum, earlier steps lower (the per-step catalogs
  // themselves are noisy draws, so assert on total deferred work instead:
  // at least one step deferred something past the threshold).
  std::uint64_t total_deferred = 0;
  for (const auto& s : r.steps) total_deferred += s.deferred_halos;
  EXPECT_GT(total_deferred, 0u);
  EXPECT_GE(r.max_concurrent_analysis, 1u);
  fs::remove_all(cfg.base.workdir);
}

TEST(Campaign, MatchesPerStepInSituReference) {
  // Every step's reconciled catalog must equal a fresh full-in-situ run on
  // the same universe (the campaign-wide correctness invariant).
  auto cfg = small_campaign("ref");
  auto r = core::run_campaign(cfg);
  for (std::size_t s = 0; s < cfg.timesteps; ++s) {
    core::WorkflowProblem p = cfg.base;
    p.universe.seed = cfg.base.universe.seed + s;
    p.universe.max_particles = static_cast<std::size_t>(
        static_cast<double>(cfg.base.universe.max_particles) *
        std::pow(cfg.growth_per_step,
                 static_cast<double>(s) -
                     static_cast<double>(cfg.timesteps - 1)));
    if (p.universe.max_particles < p.universe.min_particles)
      p.universe.max_particles = p.universe.min_particles;
    p.threshold = 0;
    p.workdir = cfg.base.workdir.string() + "_ref" + std::to_string(s);
    auto ref = core::run_workflow(core::WorkflowKind::InSitu, p);
    fs::remove_all(p.workdir);
    ASSERT_EQ(r.steps[s].catalog.size(), ref.catalog.size()) << "step " << s;
    for (std::size_t i = 0; i < ref.catalog.size(); ++i) {
      EXPECT_EQ(r.steps[s].catalog[i].id, ref.catalog[i].id);
      EXPECT_EQ(r.steps[s].catalog[i].count, ref.catalog[i].count);
      EXPECT_FLOAT_EQ(r.steps[s].catalog[i].cx, ref.catalog[i].cx);
    }
  }
  fs::remove_all(cfg.base.workdir);
}

TEST(Campaign, RequiresSplitThreshold) {
  auto cfg = small_campaign("nothreshold");
  cfg.base.threshold = 0;
  EXPECT_THROW(core::run_campaign(cfg), Error);
}

// -------------------------------------------------------------- merger tree

TEST(MergerTree, LinksByPluralityOverlap) {
  stats::MergerTreeBuilder b;
  b.add_snapshot(0, {{10, {1, 2, 3, 4}}, {20, {5, 6, 7}}});
  // Halo 10 keeps most tags in halo 30; halo 20's tags also land in 30:
  // a merger.
  b.add_snapshot(1, {{30, {1, 2, 3, 5, 6, 7, 8}}, {40, {4}}});
  b.build();
  EXPECT_EQ(b.descendant(0, 10), 30);
  EXPECT_EQ(b.descendant(0, 20), 30);
  auto prog = b.progenitors(1, 30);
  std::sort(prog.begin(), prog.end());
  EXPECT_EQ(prog, (std::vector<std::int64_t>{10, 20}));
  EXPECT_EQ(b.mergers_at(1), 1u);
  EXPECT_TRUE(b.progenitors(1, 40).empty());  // 1 shared particle < plurality? no:
  // halo 40 holds tag 4 only; halo 10's plurality went to 30, so 40 has no
  // progenitor link.
}

TEST(MergerTree, DissolvedHaloHasNoDescendant) {
  stats::MergerTreeBuilder b;
  b.add_snapshot(0, {{10, {1, 2, 3}}});
  b.add_snapshot(1, {{20, {100, 101, 102}}});  // unrelated tags
  b.build();
  EXPECT_EQ(b.descendant(0, 10), -1);
}

TEST(MergerTree, MainBranchFollowsChain) {
  stats::MergerTreeBuilder b;
  b.add_snapshot(0, {{1, {1, 2, 3}}});
  b.add_snapshot(1, {{2, {1, 2, 3, 4}}});
  b.add_snapshot(2, {{3, {1, 2, 3, 4, 5}}});
  b.build();
  auto branch = b.main_branch(0, 1);
  ASSERT_EQ(branch.size(), 3u);
  EXPECT_EQ(branch[0], (std::pair<std::size_t, std::int64_t>{0, 1}));
  EXPECT_EQ(branch[1], (std::pair<std::size_t, std::int64_t>{1, 2}));
  EXPECT_EQ(branch[2], (std::pair<std::size_t, std::int64_t>{2, 3}));
}

TEST(MergerTree, RejectsOutOfOrderSnapshots) {
  stats::MergerTreeBuilder b;
  b.add_snapshot(2, {});
  EXPECT_THROW(b.add_snapshot(1, {}), Error);
}

TEST(MergerTree, TracksGrowingSyntheticHalo) {
  // Two synthetic "snapshots": the same halo tags, second step adds mass
  // (accretion) and a second halo merges in.
  stats::MergerTreeBuilder b;
  std::vector<std::int64_t> halo_a, halo_b;
  for (int i = 0; i < 100; ++i) halo_a.push_back(i);
  for (int i = 200; i < 260; ++i) halo_b.push_back(i);
  b.add_snapshot(0, {{0, halo_a}, {200, halo_b}});
  std::vector<std::int64_t> merged = halo_a;
  merged.insert(merged.end(), halo_b.begin(), halo_b.end());
  for (int i = 300; i < 330; ++i) merged.push_back(i);  // accreted
  b.add_snapshot(1, {{0, merged}});
  b.build();
  EXPECT_EQ(b.descendant(0, 0), 0);
  EXPECT_EQ(b.descendant(0, 200), 0);
  EXPECT_EQ(b.mergers_at(1), 1u);
  ASSERT_EQ(b.links().size(), 2u);
  EXPECT_EQ(b.links()[0].shared_particles, 100u);
}

// -------------------------------------------------------------- checkpoints

TEST(Checkpoint, RestartReproducesStraightRunExactly) {
  const std::size_t ng = 16;
  const double box = 32.0;
  const auto dir = fs::temp_directory_path() /
                   ("ckpt_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  sim::IcConfig ic;
  ic.ng = ng;
  ic.box = box;
  ic.z_init = 20.0;
  ic.seed = 5;
  const double a0 = sim::Cosmology::a_of_z(ic.z_init);
  const double da = (1.0 - a0) / 8.0;

  // Straight run: 8 steps.
  std::vector<std::tuple<std::int64_t, float, float, float>> straight;
  comm::run_spmd(2, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    sim::PmSolver pm(c, cosmo, ng, box);
    auto p = sim::zeldovich_ics(c, cosmo, ic);
    double a = a0;
    for (int s = 0; s < 8; ++s, a += da)
      p = pm.step(std::move(p), a, da, ng * ng * ng);
    static std::mutex m;
    std::lock_guard lock(m);
    for (std::size_t i = 0; i < p.size(); ++i)
      straight.emplace_back(p.tag[i], p.x[i], p.y[i], p.z[i]);
  });
  std::sort(straight.begin(), straight.end());

  // Run 4 steps, checkpoint, restart (on a different rank count!), run 4.
  comm::run_spmd(2, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    sim::PmSolver pm(c, cosmo, ng, box);
    auto p = sim::zeldovich_ics(c, cosmo, ic);
    double a = a0;
    for (int s = 0; s < 4; ++s, a += da)
      p = pm.step(std::move(p), a, da, ng * ng * ng);
    sim::write_checkpoint(c, dir / "ckpt", p, box, a, ng * ng * ng, 2);
  });

  std::vector<std::tuple<std::int64_t, float, float, float>> restarted;
  comm::run_spmd(4, [&](comm::Comm& c) {  // restart on 4 ranks
    sim::Cosmology cosmo;
    sim::PmSolver pm(c, cosmo, ng, box);
    auto state = sim::read_checkpoint(c, dir / "ckpt", box, 2, 2);
    EXPECT_NEAR(state.a, a0 + 4 * da, 1e-12);
    EXPECT_EQ(state.total_particles, ng * ng * ng);
    auto p = std::move(state.particles);
    double a = state.a;
    for (int s = 0; s < 4; ++s, a += da)
      p = pm.step(std::move(p), a, da, ng * ng * ng);
    static std::mutex m;
    std::lock_guard lock(m);
    for (std::size_t i = 0; i < p.size(); ++i)
      restarted.emplace_back(p.tag[i], p.x[i], p.y[i], p.z[i]);
  });
  std::sort(restarted.begin(), restarted.end());

  ASSERT_EQ(straight.size(), restarted.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < straight.size(); ++i)
    if (straight[i] != restarted[i]) ++mismatches;
  // The leapfrog is deterministic; the only tolerated difference is
  // summation-order noise in the FFT transpose across rank counts — which
  // does not exist because the FFT is deterministic per mode. Require exact.
  EXPECT_EQ(mismatches, 0u);
  fs::remove_all(dir);
}

TEST(Checkpoint, BoxMismatchIsRejected) {
  const auto dir = fs::temp_directory_path() /
                   ("ckpt_box_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::ParticleSet p;
    p.push_back(1, 1, 1, 0, 0, 0, 0);
    sim::write_checkpoint(c, dir / "ckpt", p, 32.0, 0.5, 1, 1);
    EXPECT_THROW(sim::read_checkpoint(c, dir / "ckpt", 64.0, 1, 1), Error);
  });
  fs::remove_all(dir);
}

// ------------------------------------------------------------------ imaging

TEST(DensityImage, DepositAndToneMap) {
  io::DensityImage img(16, 16);
  img.deposit(0.5, 0.5);
  img.deposit(0.5, 0.5);
  img.deposit(0.05, 0.05);
  img.deposit(-0.1, 0.5);  // outside: ignored
  img.deposit(1.0, 0.5);   // outside: ignored
  EXPECT_DOUBLE_EQ(img.at(8, 8), 2.0);
  EXPECT_DOUBLE_EQ(img.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(img.at(15, 8), 0.0);
}

TEST(DensityImage, PgmRoundTripHeader) {
  const auto path = fs::temp_directory_path() /
                    ("img_" + std::to_string(::getpid()) + ".pgm");
  io::DensityImage img(8, 4);
  img.deposit(0.5, 0.5, 10.0);
  img.write_pgm(path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  std::size_t w, h, maxval;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 8u);
  EXPECT_EQ(h, 4u);
  EXPECT_EQ(maxval, 255u);
  in.get();  // newline
  std::vector<char> pixels(32);
  in.read(pixels.data(), 32);
  EXPECT_TRUE(in.good());
  fs::remove(path);
}

TEST(DensityImage, ProjectionShowsClusteredKnot) {
  // A dense blob must produce a bright pixel region against dark background.
  Rng rng(9);
  sim::ParticleSet p;
  for (int i = 0; i < 2000; ++i)
    p.push_back(static_cast<float>(rng.normal(16, 0.4)),
                static_cast<float>(rng.normal(16, 0.4)),
                static_cast<float>(rng.uniform(0, 32)), 0, 0, 0, i);
  auto img = io::project_region(p, 0, 32, 0, 32, 64);
  double center_mass = 0, corner_mass = 0;
  for (std::size_t y = 28; y < 36; ++y)
    for (std::size_t x = 28; x < 36; ++x) center_mass += img.at(x, y);
  for (std::size_t y = 0; y < 8; ++y)
    for (std::size_t x = 0; x < 8; ++x) corner_mass += img.at(x, y);
  EXPECT_GT(center_mass, 100.0 * (corner_mass + 1.0));
  const auto art = img.ascii_art(16, 8);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 8);
}

}  // namespace
