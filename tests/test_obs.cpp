// cosmo::obs — span tracer, metrics registry, cross-rank aggregation, and
// the Chrome trace export. These tests drive the observability layer the
// same way the workflows do: spans from rank threads, counters sharded per
// rank, reductions over a real communicator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/comm.h"
#include "obs/aggregate.h"
#include "obs/obs.h"

using namespace cosmo;
using comm::Comm;
using comm::ReduceOp;
using comm::run_spmd;

namespace {

/// Fresh-slate fixture: every test starts with an empty tracer and zeroed
/// metrics (both are process singletons).
class Obs : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::instance().set_enabled(true);
    obs::Tracer::instance().clear();
    obs::MetricsRegistry::instance().reset();
  }
};

std::vector<obs::Span> spans_named(const std::string& name) {
  std::vector<obs::Span> out;
  for (auto& s : obs::Tracer::instance().snapshot())
    if (s.name == name) out.push_back(std::move(s));
  return out;
}

// --- spans -----------------------------------------------------------------

TEST_F(Obs, ScopedSpanRecordsOnDestruction) {
  {
    obs::ScopedSpan span("unit.outer");
    (void)span;
  }
  const auto found = spans_named("unit.outer");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_GE(found[0].end_us, found[0].start_us);
  EXPECT_EQ(found[0].depth, 0);
  EXPECT_EQ(found[0].rank, -1);  // not inside any SPMD rank
}

TEST_F(Obs, NestedSpansCarryDepthAndContainment) {
  {
    obs::ScopedSpan outer("unit.outer");
    {
      obs::ScopedSpan inner("unit.inner");
      (void)inner;
    }
    (void)outer;
  }
  const auto outer = spans_named("unit.outer");
  const auto inner = spans_named("unit.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].depth, 0);
  EXPECT_EQ(inner[0].depth, 1);
  // The inner interval nests inside the outer one.
  EXPECT_GE(inner[0].start_us, outer[0].start_us);
  EXPECT_LE(inner[0].end_us, outer[0].end_us);
}

TEST_F(Obs, SpanRecordsOnExceptionUnwind) {
  try {
    obs::ScopedSpan span("unit.throws");
    (void)span;
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(spans_named("unit.throws").size(), 1u);
  // Depth bookkeeping unwound too: a following span is top-level again.
  { COSMO_TRACE_SPAN("unit.after"); }
  const auto after = spans_named("unit.after");
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].depth, 0);
}

TEST_F(Obs, MacroSpansNestViaCounter) {
  {
    COSMO_TRACE_SPAN("unit.a");
    COSMO_TRACE_SPAN("unit.b");  // same scope: distinct variable names
  }
  EXPECT_EQ(spans_named("unit.a").size(), 1u);
  EXPECT_EQ(spans_named("unit.b").size(), 1u);
}

TEST_F(Obs, FinishReturnsRecordedDuration) {
  obs::ScopedSpan span("unit.finish");
  const double d = span.finish();
  const auto found = spans_named("unit.finish");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_DOUBLE_EQ(found[0].seconds(), d);
  EXPECT_DOUBLE_EQ(span.finish(), 0.0);  // second finish is a no-op
}

TEST_F(Obs, TimedSpanLedgerMatchesTrace) {
  obs::TimedSpan t("unit.timed", "testcat");
  const double ledger = t.finish();
  const auto found = spans_named("unit.timed");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].cat, "testcat");
  if (found[0].seconds() > 0.0)
    EXPECT_DOUBLE_EQ(found[0].seconds(), ledger);
}

TEST_F(Obs, RingOverflowDropsOldestAndCounts) {
  obs::Tracer::instance().set_ring_capacity(8);
  // A fresh thread gets a fresh ring at the new capacity.
  std::thread([] {
    for (int i = 0; i < 20; ++i) {
      obs::ScopedSpan span("unit.ring" + std::to_string(i));
      (void)span;
    }
  }).join();
  obs::Tracer::instance().set_ring_capacity(
      obs::Tracer::kDefaultRingCapacity);
  std::size_t ring_spans = 0;
  for (const auto& s : obs::Tracer::instance().snapshot())
    if (s.name.rfind("unit.ring", 0) == 0) ++ring_spans;
  EXPECT_EQ(ring_spans, 8u);
  EXPECT_GE(obs::Tracer::instance().dropped(), 12u);
  // The survivors are the newest spans.
  EXPECT_TRUE(spans_named("unit.ring19").size() == 1u);
  EXPECT_TRUE(spans_named("unit.ring0").empty());
}

TEST_F(Obs, RuntimeDisableSuppressesRecording) {
  obs::Tracer::instance().set_enabled(false);
  { COSMO_TRACE_SPAN("unit.suppressed"); }
  obs::Tracer::instance().set_enabled(true);
  EXPECT_TRUE(spans_named("unit.suppressed").empty());
}

// --- Chrome trace export ---------------------------------------------------

namespace json {

// Minimal JSON parser — just enough to validate the exporter's output
// (objects, arrays, strings with escapes, numbers, bools, null).
struct Parser {
  const std::string& s;
  std::size_t i = 0;

  explicit Parser(const std::string& text) : s(text) {}

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    const char c = s[i];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool literal(const char* lit) {
    const std::string l = lit;
    if (s.compare(i, l.size(), l) != 0) return false;
    i += l.size();
    return true;
  }
  bool number() {
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    bool digits = false;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s[i]))) digits = true;
      ++i;
    }
    return digits && i > start;
  }
  bool string() {
    if (!eat('"')) return false;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
      }
      ++i;
    }
    return eat('"');
  }
  bool object() {
    if (!eat('{')) return false;
    ws();
    if (eat('}')) return true;
    do {
      if (!string()) return false;
      if (!eat(':')) return false;
      if (!value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    ws();
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
  bool parse_document() {
    if (!value()) return false;
    ws();
    return i == s.size();
  }
};

}  // namespace json

TEST_F(Obs, ChromeTraceExportIsWellFormedJson) {
  run_spmd(2, [&](Comm& c) {
    COSMO_TRACE_SPAN_CAT("unit.phase", "variant \"quoted\"\n");
    c.barrier();
  });
  std::ostringstream os;
  obs::Tracer::instance().export_chrome_trace(os);
  const std::string text = os.str();

  json::Parser p(text);
  EXPECT_TRUE(p.parse_document()) << "invalid JSON near offset " << p.i;

  // Structure: the trace-event envelope and our spans are present.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("unit.phase"), std::string::npos);
  // The category with quote + newline was escaped, not emitted raw.
  EXPECT_NE(text.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
}

TEST_F(Obs, SpansFromRankThreadsCarryTheRank) {
  run_spmd(3, [&](Comm& c) {
    COSMO_TRACE_SPAN("unit.ranked");
    c.barrier();
  });
  const auto found = spans_named("unit.ranked");
  ASSERT_EQ(found.size(), 3u);
  std::vector<int> ranks;
  for (const auto& s : found) ranks.push_back(s.rank);
  std::sort(ranks.begin(), ranks.end());
  EXPECT_EQ(ranks, (std::vector<int>{0, 1, 2}));
}

// --- metrics ---------------------------------------------------------------

TEST_F(Obs, CounterShardsPerRankAndTotals) {
  run_spmd(4, [&](Comm& c) {
    for (int k = 0; k <= c.rank(); ++k) COSMO_COUNT("unit.work", 1);
    c.barrier();
  });
  auto& counter = obs::MetricsRegistry::instance().counter("unit.work");
  EXPECT_EQ(counter.total(), 10u);  // 1+2+3+4
  EXPECT_EQ(counter.local(0), 1u);
  EXPECT_EQ(counter.local(3), 4u);
  EXPECT_EQ(counter.local(-1), 0u);
}

TEST_F(Obs, CounterAggregationAcrossRanks) {
  run_spmd(4, [&](Comm& c) {
    COSMO_COUNT("unit.agg", c.rank() + 1);
    c.barrier();
    const auto a = obs::aggregate_counter(c, "unit.agg");
    EXPECT_EQ(a.sum, 10u);
    EXPECT_EQ(a.min, 1u);
    EXPECT_EQ(a.max, 4u);
  });
}

TEST_F(Obs, HistogramAggregationAcrossRanks) {
  run_spmd(4, [&](Comm& c) {
    // Each rank lands one sample in its own bin of [0, 4) / 4 bins.
    COSMO_HISTOGRAM("unit.hist", 0.0, 4.0, 4, c.rank() + 0.5);
    if (c.rank() == 0) COSMO_HISTOGRAM("unit.hist", 0.0, 4.0, 4, 99.0);
    c.barrier();
    const auto merged = obs::aggregate_histogram(c, "unit.hist", 0.0, 4.0, 4);
    ASSERT_EQ(merged.size(), 6u);  // 4 bins + underflow + overflow
    EXPECT_EQ(merged[0], 1u);
    EXPECT_EQ(merged[1], 1u);
    EXPECT_EQ(merged[2], 1u);
    EXPECT_EQ(merged[3], 1u);
    EXPECT_EQ(merged[4], 0u);  // underflow
    EXPECT_EQ(merged[5], 1u);  // rank 0's out-of-range sample
  });
}

TEST_F(Obs, AggregateAllCountersCoversRegisteredNames) {
  run_spmd(2, [&](Comm& c) {
    COSMO_COUNT("unit.all_a", 1);
    COSMO_COUNT("unit.all_b", 2);
    c.barrier();
    const auto all = obs::aggregate_all_counters(c);
    bool saw_a = false, saw_b = false;
    for (const auto& [name, agg] : all) {
      if (name == "unit.all_a") {
        saw_a = true;
        EXPECT_EQ(agg.sum, 2u);
      }
      if (name == "unit.all_b") {
        saw_b = true;
        EXPECT_EQ(agg.sum, 4u);
      }
    }
    EXPECT_TRUE(saw_a);
    EXPECT_TRUE(saw_b);
  });
}

TEST_F(Obs, GaugeStoresLastValue) {
  COSMO_GAUGE_SET("unit.gauge", 2.5);
  COSMO_GAUGE_SET("unit.gauge", 7.25);
  EXPECT_DOUBLE_EQ(
      obs::MetricsRegistry::instance().gauge("unit.gauge").value(), 7.25);
}

TEST_F(Obs, HistogramBinningIsFirstWins) {
  COSMO_HISTOGRAM("unit.firstwins", 0.0, 10.0, 10, 5.0);
  auto& h =
      obs::MetricsRegistry::instance().histogram("unit.firstwins", 0.0, 99.0, 3);
  EXPECT_DOUBLE_EQ(h.hi(), 10.0);
  EXPECT_EQ(h.bins(), 10u);
}

// --- the instrumented runtime ---------------------------------------------

TEST_F(Obs, CommInstrumentationCountsTraffic) {
  run_spmd(4, [&](Comm& c) {
    c.barrier();
    std::vector<double> payload(16, 1.0);
    if (c.rank() == 0) c.send<double>(1, 7, payload);
    if (c.rank() == 1) {
      const auto got = c.recv<double>(0, 7);
      EXPECT_EQ(got.size(), 16u);
    }
    c.barrier();
  });
  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_GE(reg.counter("comm.barrier").total(), 8u);
  EXPECT_GE(reg.counter("comm.msgs_sent").total(), 1u);
  EXPECT_GE(reg.counter("comm.bytes_sent").total(), 16 * sizeof(double));
  EXPECT_GE(reg.counter("comm.msgs_recv").total(), 1u);
  // The spmd runtime put one span on every rank thread.
  EXPECT_EQ(spans_named("spmd.rank").size(), 4u);
}

TEST_F(Obs, SummaryAggregatesPerName) {
  { COSMO_TRACE_SPAN("unit.sum"); }
  { COSMO_TRACE_SPAN("unit.sum"); }
  const auto summary = obs::Tracer::instance().summary();
  bool found = false;
  for (const auto& st : summary) {
    if (st.name != "unit.sum") continue;
    found = true;
    EXPECT_EQ(st.count, 2u);
    EXPECT_GE(st.total_s, st.max_s);
    EXPECT_LE(st.mean_s(), st.max_s);
  }
  EXPECT_TRUE(found);
}

TEST_F(Obs, PrintSummaryAndMetricsProduceOutput) {
  { COSMO_TRACE_SPAN("unit.print"); }
  COSMO_COUNT("unit.print_counter", 3);
  std::ostringstream t, m;
  obs::Tracer::instance().print_summary(t);
  obs::MetricsRegistry::instance().print(m);
  EXPECT_NE(t.str().find("unit.print"), std::string::npos);
  EXPECT_NE(m.str().find("unit.print_counter"), std::string::npos);
}

}  // namespace
