// Tests for the paper-adjacent extensions: the CRTP static pipeline
// (§3.1 footnote), computational steering (live reconfiguration, §3.1),
// and halo concentration (Table 1's Level 3 product).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <thread>

#include "core/algorithms.h"
#include "core/static_pipeline.h"
#include "core/steering.h"
#include "sim/synthetic.h"
#include "stats/concentration.h"

namespace {

using namespace cosmo;
using namespace cosmo::core;
namespace fs = std::filesystem;

// ----------------------------------------------------------- static pipeline

class CountingAlgorithm : public InSituAlgorithm {
 public:
  void SetParameters(const ParameterMap& p) override {
    cadence_ = static_cast<std::size_t>(p.get_int("cadence", 1));
  }
  bool ShouldExecute(const sim::StepContext& s) const override {
    return s.step % cadence_ == 0;
  }
  void Execute(const sim::StepContext&, AnalysisContext&) override {
    ++executions_;
  }
  std::string Name() const override { return "counting"; }

  std::size_t cadence_ = 1;
  int executions_ = 0;
};

class OrderProbe : public InSituAlgorithm {
 public:
  void SetParameters(const ParameterMap&) override {}
  bool ShouldExecute(const sim::StepContext&) const override { return true; }
  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    // Record execution order on the shared blackboard (abusing deferred_ids
    // as a scratch list is fine for a test probe).
    ctx.deferred_ids.push_back(marker);
  }
  std::string Name() const override { return "order"; }
  std::int64_t marker = 0;
};

TEST(StaticPipeline, ConfiguresAndExecutesOnCadence) {
  StaticPipeline<CountingAlgorithm> pipeline;
  pipeline.configure(CosmoToolsConfig::parse("[counting]\ncadence 3\n"));
  EXPECT_EQ(pipeline.get<CountingAlgorithm>().cadence_, 3u);
  AnalysisContext ctx;
  for (std::size_t s = 1; s <= 9; ++s) {
    sim::StepContext step{s, 9, 1.0, 0.0};
    pipeline.execute_step(step, ctx);
  }
  EXPECT_EQ(pipeline.get<CountingAlgorithm>().executions_, 3);
}

TEST(StaticPipeline, PreservesDeclarationOrder) {
  OrderProbe a, b;
  a.marker = 1;
  b.marker = 2;
  // Distinct types are required by get<>, but order is positional: wrap one.
  struct OrderProbe2 : OrderProbe {};
  OrderProbe2 b2;
  b2.marker = 2;
  StaticPipeline<OrderProbe, OrderProbe2> pipeline(a, b2);
  AnalysisContext ctx;
  sim::StepContext step{1, 1, 1.0, 0.0};
  pipeline.execute_step(step, ctx);
  ASSERT_EQ(ctx.deferred_ids.size(), 2u);
  EXPECT_EQ(ctx.deferred_ids[0], 1);
  EXPECT_EQ(ctx.deferred_ids[1], 2);
}

TEST(StaticPipeline, MatchesVirtualManagerResults) {
  // The same HaloFinder+CenterFinder algorithms produce the same catalog
  // through either dispatch path.
  sim::SyntheticConfig ucfg;
  ucfg.box = 32.0;
  ucfg.halo_count = 8;
  ucfg.min_particles = 80;
  ucfg.max_particles = 600;
  ucfg.background_particles = 300;
  ucfg.subclump_fraction = 0.0;
  const auto config = CosmoToolsConfig::parse(
      "[halofinder]\nlinking_length 0.3\nmin_size 40\noverload 2.0\n"
      "[centerfinder]\nthreshold 0\n");
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u1 = sim::generate_synthetic(c, cosmo, ucfg);
    auto u2 = u1;
    sim::SlabDecomposition decomp(1, ucfg.box);
    sim::StepContext step{1, 1, 1.0, 0.0};

    InSituAnalysisManager manager(c, decomp, ucfg.box, u1.total_particles);
    manager.add(std::make_unique<HaloFinderAlgorithm>());
    manager.add(std::make_unique<CenterFinderAlgorithm>());
    manager.configure(config);
    auto virt = manager.execute_step(step, u1.local);

    StaticPipeline<HaloFinderAlgorithm, CenterFinderAlgorithm> pipeline;
    pipeline.configure(config);
    AnalysisContext ctx;
    ctx.comm = &c;
    ctx.decomp = &decomp;
    ctx.particles = &u2.local;
    ctx.box = ucfg.box;
    ctx.total_particles = u2.total_particles;
    pipeline.execute_step(step, ctx);

    ASSERT_EQ(virt.catalog.size(), ctx.catalog.size());
    for (std::size_t i = 0; i < virt.catalog.size(); ++i) {
      EXPECT_EQ(virt.catalog[i].id, ctx.catalog[i].id);
      EXPECT_EQ(virt.catalog[i].count, ctx.catalog[i].count);
      EXPECT_FLOAT_EQ(virt.catalog[i].cx, ctx.catalog[i].cx);
    }
  });
}

// ------------------------------------------------------------------ steering

class SteeringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("steer_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void write_config(const std::string& text) {
    std::ofstream(dir_ / "cosmotools.cfg") << text;
  }
  fs::path dir_;
};

TEST_F(SteeringTest, ReloadsOnFileChange) {
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::SlabDecomposition decomp(1, 64.0);
    InSituAnalysisManager manager(c, decomp, 64.0, 100);
    auto probe = std::make_unique<CountingAlgorithm>();
    auto* raw = probe.get();
    manager.add(std::move(probe));

    SteeringFile steer(dir_ / "cosmotools.cfg");
    write_config("[counting]\ncadence 2\n");
    EXPECT_TRUE(steer.poll(manager));
    EXPECT_EQ(raw->cadence_, 2u);
    // No change → no reload.
    EXPECT_FALSE(steer.poll(manager));
    EXPECT_EQ(steer.reload_count(), 1u);
    // The scientist edits the file mid-run (ensure a newer mtime).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    write_config("[counting]\ncadence 7\n");
    fs::last_write_time(dir_ / "cosmotools.cfg",
                        fs::file_time_type::clock::now() +
                            std::chrono::seconds(1));
    EXPECT_TRUE(steer.poll(manager));
    EXPECT_EQ(raw->cadence_, 7u);
    EXPECT_EQ(steer.reload_count(), 2u);
  });
}

TEST_F(SteeringTest, MissingFileIsSilentlyIgnored) {
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::SlabDecomposition decomp(1, 64.0);
    InSituAnalysisManager manager(c, decomp, 64.0, 100);
    SteeringFile steer(dir_ / "does-not-exist.cfg");
    EXPECT_FALSE(steer.poll(manager));
    EXPECT_EQ(steer.reload_count(), 0u);
  });
}

TEST_F(SteeringTest, MalformedEditThrowsWithoutReconfiguring) {
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::SlabDecomposition decomp(1, 64.0);
    InSituAnalysisManager manager(c, decomp, 64.0, 100);
    auto probe = std::make_unique<CountingAlgorithm>();
    auto* raw = probe.get();
    manager.add(std::move(probe));
    SteeringFile steer(dir_ / "cosmotools.cfg");
    write_config("[counting]\ncadence 4\n");
    steer.poll(manager);
    EXPECT_EQ(raw->cadence_, 4u);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    write_config("[broken\n");
    fs::last_write_time(dir_ / "cosmotools.cfg",
                        fs::file_time_type::clock::now() +
                            std::chrono::seconds(1));
    EXPECT_THROW(steer.poll(manager), Error);
    EXPECT_EQ(raw->cadence_, 4u);  // previous configuration still active
  });
}

// ------------------------------------------------------------- concentration

TEST(Concentration, HalfMassFractionIsMonotone) {
  double prev = 1.0;
  for (double c : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    const double x = stats::nfw_half_mass_fraction(c);
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
    EXPECT_LT(x, prev) << "more concentrated → smaller half-mass radius";
    prev = x;
  }
}

TEST(Concentration, RecoversPlantedNfwConcentration) {
  // Sample an NFW halo with known c; the estimator should land near it.
  for (double c_true : {4.0, 8.0}) {
    Rng rng(77);
    sim::ParticleSet p;
    const double r_vir = 1.0;
    const std::size_t n = 20000;
    for (std::size_t i = 0; i < n; ++i) {
      // Invert μ for an exact NFW radial sample.
      const double u = rng.uniform();
      double lo = 0.0, hi = c_true;
      const double target = u * (std::log1p(c_true) - c_true / (1 + c_true));
      for (int it = 0; it < 50; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double mu = std::log1p(mid) - mid / (1 + mid);
        (mu < target ? lo : hi) = mid;
      }
      const double r = 0.5 * (lo + hi) / c_true * r_vir;
      const double cz = rng.uniform(-1, 1), ph = rng.uniform(0, 2 * M_PI);
      const double s = std::sqrt(1 - cz * cz);
      p.push_back(static_cast<float>(5 + r * s * std::cos(ph)),
                  static_cast<float>(5 + r * s * std::sin(ph)),
                  static_cast<float>(5 + r * cz), 0, 0, 0,
                  static_cast<std::int64_t>(i));
    }
    std::vector<std::uint32_t> members(n);
    std::iota(members.begin(), members.end(), 0u);
    auto half = stats::concentration(p, members, 5, 5, 5);
    EXPECT_NEAR(half.c, c_true, 0.25 * c_true) << "half-mass, c_true=" << c_true;
    auto fit = stats::concentration_profile_fit(p, members, 5, 5, 5);
    EXPECT_NEAR(fit.c, c_true, 0.3 * c_true) << "profile fit, c_true=" << c_true;
  }
}

TEST(Concentration, OffCenterUnderestimates) {
  // §3.3.2: "if the center is not exactly at the density maximum, the
  // concentration will be underestimated."
  Rng rng(78);
  sim::ParticleSet p;
  const double c_true = 8.0;
  for (std::size_t i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    double lo = 0.0, hi = c_true;
    const double target = u * (std::log1p(c_true) - c_true / (1 + c_true));
    for (int it = 0; it < 50; ++it) {
      const double mid = 0.5 * (lo + hi);
      const double mu = std::log1p(mid) - mid / (1 + mid);
      (mu < target ? lo : hi) = mid;
    }
    const double r = 0.5 * (lo + hi) / c_true;
    const double cz = rng.uniform(-1, 1), ph = rng.uniform(0, 2 * M_PI);
    const double s = std::sqrt(1 - cz * cz);
    p.push_back(static_cast<float>(5 + r * s * std::cos(ph)),
                static_cast<float>(5 + r * s * std::sin(ph)),
                static_cast<float>(5 + r * cz), 0, 0, 0,
                static_cast<std::int64_t>(i));
  }
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  auto good = stats::concentration_profile_fit(p, members, 5, 5, 5);
  auto bad = stats::concentration_profile_fit(p, members, 5.3, 5, 5);
  ASSERT_GT(good.c, 0.0);
  ASSERT_GT(bad.c, 0.0);
  EXPECT_LT(bad.c, 0.8 * good.c)
      << "an off-center profile must flatten the core and lower c";
}

TEST(Concentration, TooFewParticlesIndeterminate) {
  sim::ParticleSet p;
  for (int i = 0; i < 10; ++i) p.push_back(1, 1, 1, 0, 0, 0, i);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  EXPECT_EQ(stats::concentration(p, members, 1, 1, 1).c, 0.0);
}

TEST(Shapes, AlgorithmFillsAxisRatios) {
  sim::SyntheticConfig ucfg;
  ucfg.box = 32.0;
  ucfg.halo_count = 5;
  ucfg.min_particles = 300;
  ucfg.max_particles = 900;
  ucfg.background_particles = 0;
  ucfg.subclump_fraction = 0.0;
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u = sim::generate_synthetic(c, cosmo, ucfg);
    sim::SlabDecomposition decomp(1, ucfg.box);
    InSituAnalysisManager manager(c, decomp, ucfg.box, u.total_particles);
    manager.add(std::make_unique<HaloFinderAlgorithm>());
    manager.add(std::make_unique<CenterFinderAlgorithm>());
    manager.add(std::make_unique<ShapeAlgorithm>());
    manager.configure(CosmoToolsConfig::parse(
        "[halofinder]\nlinking_length 0.35\nmin_size 100\noverload 2.0\n"
        "[centerfinder]\nthreshold 0\n[shapes]\nmin_size 100\n"));
    sim::StepContext step{1, 1, 1.0, 0.0};
    auto ctx = manager.execute_step(step, u.local);
    ASSERT_FALSE(ctx.catalog.empty());
    for (const auto& rec : ctx.catalog) {
      // NFW halos are isotropically sampled: roughly round.
      EXPECT_GT(rec.b_over_a, 0.5f) << "halo " << rec.id;
      EXPECT_LE(rec.b_over_a, 1.0f + 1e-5f);
      EXPECT_GT(rec.c_over_a, 0.4f);
      EXPECT_LE(rec.c_over_a, rec.b_over_a + 1e-5f);
    }
  });
}

TEST(Subhalos, BhEngineConfigurable) {
  sim::SyntheticConfig ucfg;
  ucfg.box = 32.0;
  ucfg.halo_count = 1;
  ucfg.min_particles = 6000;
  ucfg.max_particles = 6000;
  ucfg.background_particles = 0;
  ucfg.subclump_fraction = 0.2;
  ucfg.subclump_min_host = 5000;
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u = sim::generate_synthetic(c, cosmo, ucfg);
    sim::SlabDecomposition decomp(1, ucfg.box);
    auto run_with = [&](const char* engine) {
      auto local = u.local;
      InSituAnalysisManager manager(c, decomp, ucfg.box, u.total_particles);
      register_halo_pipeline(manager);
      manager.configure(CosmoToolsConfig::parse(
          std::string("[halofinder]\nlinking_length 0.35\nmin_size 100\n"
                      "overload 3.0\n[centerfinder]\nthreshold 0\n"
                      "[somass]\nenabled false\n"
                      "[subhalos]\nmin_host 4000\nengine ") +
          engine + "\n"));
      sim::StepContext step{1, 1, 1.0, 0.0};
      auto ctx = manager.execute_step(step, local);
      std::uint32_t subs = 0;
      for (const auto& rec : ctx.catalog) subs += rec.subhalos;
      return subs;
    };
    EXPECT_EQ(run_with("kd"), run_with("bh"))
        << "both engines must find the same substructure";
  });
}

TEST(Concentration, AlgorithmFillsCatalogField) {
  sim::SyntheticConfig ucfg;
  ucfg.box = 32.0;
  ucfg.halo_count = 6;
  ucfg.min_particles = 400;
  ucfg.max_particles = 1500;
  ucfg.background_particles = 0;
  ucfg.subclump_fraction = 0.0;
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u = sim::generate_synthetic(c, cosmo, ucfg);
    sim::SlabDecomposition decomp(1, ucfg.box);
    InSituAnalysisManager manager(c, decomp, ucfg.box, u.total_particles);
    manager.add(std::make_unique<HaloFinderAlgorithm>());
    manager.add(std::make_unique<CenterFinderAlgorithm>());
    manager.add(std::make_unique<ConcentrationAlgorithm>());
    manager.configure(CosmoToolsConfig::parse(
        "[halofinder]\nlinking_length 0.35\nmin_size 100\noverload 2.0\n"
        "[centerfinder]\nthreshold 0\n[concentration]\nmin_size 100\n"));
    sim::StepContext step{1, 1, 1.0, 0.0};
    auto ctx = manager.execute_step(step, u.local);
    ASSERT_FALSE(ctx.catalog.empty());
    std::size_t with_c = 0;
    for (const auto& rec : ctx.catalog)
      if (rec.concentration > 0.0f) ++with_c;
    EXPECT_GT(with_c, 0u) << "no halo got a concentration estimate";
  });
}

}  // namespace
