// Tests for the Barnes-Hut octree and halo shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "halo/bh_tree.h"
#include "halo/kdtree.h"
#include "halo/subhalo.h"
#include "sim/particles.h"
#include "stats/halo_shape.h"
#include "util/rng.h"

namespace {

using namespace cosmo;
using sim::ParticleSet;

ParticleSet random_cloud(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  ParticleSet p;
  for (std::size_t i = 0; i < n; ++i)
    p.push_back(static_cast<float>(rng.uniform(0, 10)),
                static_cast<float>(rng.uniform(0, 10)),
                static_cast<float>(rng.uniform(0, 10)), 0, 0, 0,
                static_cast<std::int64_t>(i));
  return p;
}

// ------------------------------------------------------------------ BhTree

TEST(BhTree, KNearestMatchesBruteForce) {
  ParticleSet p = random_cloud(400, 11);
  std::vector<std::uint32_t> all(p.size());
  std::iota(all.begin(), all.end(), 0u);
  halo::BhTree tree(p, all);
  Rng rng(12);
  for (int q = 0; q < 15; ++q) {
    const double qx = rng.uniform(0, 10), qy = rng.uniform(0, 10),
                 qz = rng.uniform(0, 10);
    auto knn = tree.k_nearest(qx, qy, qz, 9);
    ASSERT_EQ(knn.size(), 9u);
    std::vector<std::pair<double, std::uint32_t>> brute;
    for (std::uint32_t i = 0; i < p.size(); ++i) {
      const double dx = qx - p.x[i], dy = qy - p.y[i], dz = qz - p.z[i];
      brute.emplace_back(dx * dx + dy * dy + dz * dz, i);
    }
    std::sort(brute.begin(), brute.end());
    for (std::size_t k = 0; k < 9; ++k) ASSERT_EQ(knn[k], brute[k].second);
  }
}

TEST(BhTree, RangeQueryMatchesBruteForce) {
  ParticleSet p = random_cloud(600, 13);
  std::vector<std::uint32_t> all(p.size());
  std::iota(all.begin(), all.end(), 0u);
  halo::BhTree tree(p, all);
  Rng rng(14);
  for (int q = 0; q < 15; ++q) {
    const double qx = rng.uniform(0, 10), qy = rng.uniform(0, 10),
                 qz = rng.uniform(0, 10);
    const double r = rng.uniform(0.5, 3.0);
    std::set<std::uint32_t> found;
    tree.for_each_in_range(qx, qy, qz, r,
                           [&](std::uint32_t i) { found.insert(i); });
    std::set<std::uint32_t> expect;
    for (std::uint32_t i = 0; i < p.size(); ++i) {
      const double dx = qx - p.x[i], dy = qy - p.y[i], dz = qz - p.z[i];
      if (dx * dx + dy * dy + dz * dz <= r * r) expect.insert(i);
    }
    EXPECT_EQ(found, expect);
    EXPECT_EQ(tree.count_in_range(qx, qy, qz, r), expect.size());
  }
}

TEST(BhTree, SubsetIsContiguousPerNode) {
  // The octree's "efficient traversal" property: each node's particles are
  // one contiguous run of index().
  ParticleSet p = random_cloud(300, 15);
  std::vector<std::uint32_t> all(p.size());
  std::iota(all.begin(), all.end(), 0u);
  halo::BhTree tree(p, all);
  ASSERT_GT(tree.node_count(), 1u);
  for (std::size_t n = 0; n < tree.node_count(); ++n) {
    const auto& nd = tree.node(n);
    ASSERT_LE(nd.begin, nd.end);
    ASSERT_LE(nd.end, tree.size());
    if (!nd.leaf()) {
      // Children partition the parent's range in order.
      std::uint32_t pos = nd.begin;
      for (int o = 0; o < 8; ++o) {
        const auto& child = tree.node(static_cast<std::size_t>(nd.first_child + o));
        EXPECT_EQ(child.begin, pos);
        pos = child.end;
      }
      EXPECT_EQ(pos, nd.end);
    }
  }
}

TEST(BhTree, CoincidentPointsDoNotRecurseForever) {
  ParticleSet p;
  for (int i = 0; i < 100; ++i) p.push_back(1, 1, 1, 0, 0, 0, i);
  std::vector<std::uint32_t> all(p.size());
  std::iota(all.begin(), all.end(), 0u);
  halo::BhTree tree(p, all);
  auto knn = tree.k_nearest(1, 1, 1, 5);
  EXPECT_EQ(knn.size(), 5u);
}

TEST(BhTree, EmptyTreeIsSafe) {
  ParticleSet p;
  halo::BhTree tree(p, {});
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.k_nearest(0, 0, 0, 3).empty());
  EXPECT_EQ(tree.count_in_range(0, 0, 0, 5.0), 0u);
}

TEST(BhTree, DensityEnginesAgree) {
  // The subhalo SPH densities must be identical through either engine
  // (both find the exact same k nearest neighbors).
  Rng rng(16);
  ParticleSet p;
  for (int i = 0; i < 800; ++i)
    p.push_back(static_cast<float>(rng.normal(5, 0.4)),
                static_cast<float>(rng.normal(5, 0.4)),
                static_cast<float>(rng.normal(5, 0.4)), 0, 0, 0, i);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  halo::SubhaloConfig kd_cfg, bh_cfg;
  kd_cfg.engine = halo::NeighborEngine::KdTree;
  bh_cfg.engine = halo::NeighborEngine::BhTree;
  auto rho_kd = halo::local_densities(p, members, kd_cfg);
  auto rho_bh = halo::local_densities(p, members, bh_cfg);
  ASSERT_EQ(rho_kd.size(), rho_bh.size());
  for (std::size_t i = 0; i < rho_kd.size(); ++i)
    ASSERT_NEAR(rho_kd[i], rho_bh[i], 1e-9 * rho_kd[i]) << "particle " << i;
}

// ------------------------------------------------------------------ shapes

TEST(HaloShape, EigenvaluesOfDiagonalMatrix) {
  auto ev = stats::symmetric_eigenvalues_3x3(4.0, 0, 0, 9.0, 0, 1.0);
  EXPECT_NEAR(ev[0], 9.0, 1e-12);
  EXPECT_NEAR(ev[1], 4.0, 1e-12);
  EXPECT_NEAR(ev[2], 1.0, 1e-12);
}

TEST(HaloShape, EigenvaluesOfKnownSymmetricMatrix) {
  // [[2,1,0],[1,2,0],[0,0,3]] has eigenvalues 3, 3, 1.
  auto ev = stats::symmetric_eigenvalues_3x3(2, 1, 0, 2, 0, 3);
  EXPECT_NEAR(ev[0], 3.0, 1e-10);
  EXPECT_NEAR(ev[1], 3.0, 1e-10);
  EXPECT_NEAR(ev[2], 1.0, 1e-10);
}

TEST(HaloShape, SphericalCloudIsRound) {
  Rng rng(17);
  ParticleSet p;
  for (int i = 0; i < 20000; ++i)
    p.push_back(static_cast<float>(rng.normal(5, 1.0)),
                static_cast<float>(rng.normal(5, 1.0)),
                static_cast<float>(rng.normal(5, 1.0)), 0, 0, 0, i);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  auto s = stats::halo_shape(p, members, 5, 5, 5);
  EXPECT_NEAR(s.b_over_a, 1.0, 0.05);
  EXPECT_NEAR(s.c_over_a, 1.0, 0.05);
  EXPECT_NEAR(s.a, 1.0, 0.05);  // σ = 1 per axis
}

TEST(HaloShape, StretchedCloudAxisRatiosMatch) {
  Rng rng(18);
  ParticleSet p;
  // σ = (2, 1, 0.5): b/a = 0.5, c/a = 0.25.
  for (int i = 0; i < 30000; ++i)
    p.push_back(static_cast<float>(rng.normal(5, 2.0)),
                static_cast<float>(rng.normal(5, 1.0)),
                static_cast<float>(rng.normal(5, 0.5)), 0, 0, 0, i);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  auto s = stats::halo_shape(p, members, 5, 5, 5);
  EXPECT_NEAR(s.b_over_a, 0.5, 0.04);
  EXPECT_NEAR(s.c_over_a, 0.25, 0.03);
  EXPECT_GT(s.triaxiality, 0.5);  // prolate-ish
}

TEST(HaloShape, RotationInvariantRatios) {
  // Rotate a stretched cloud 45° about z: same axis ratios.
  Rng rng(19);
  ParticleSet p;
  const double ct = std::cos(0.785398), st = std::sin(0.785398);
  for (int i = 0; i < 30000; ++i) {
    const double u = rng.normal(0, 2.0), v = rng.normal(0, 1.0),
                 w = rng.normal(0, 1.0);
    p.push_back(static_cast<float>(5 + ct * u - st * v),
                static_cast<float>(5 + st * u + ct * v),
                static_cast<float>(5 + w), 0, 0, 0, i);
  }
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  auto s = stats::halo_shape(p, members, 5, 5, 5);
  EXPECT_NEAR(s.b_over_a, 0.5, 0.04);
  EXPECT_NEAR(s.c_over_a, 0.5, 0.04);
}

TEST(HaloShape, RejectsTinyHalos) {
  ParticleSet p;
  for (int i = 0; i < 3; ++i) p.push_back(1, 2, 3, 0, 0, 0, i);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  EXPECT_THROW(stats::halo_shape(p, members, 1, 2, 3), Error);
}

TEST(HaloShape, PeriodicWrapHandled) {
  // Blob straddling the box corner: shape about the wrapped center must be
  // compact, not box-sized.
  Rng rng(20);
  ParticleSet p;
  for (int i = 0; i < 5000; ++i)
    p.push_back(static_cast<float>(rng.normal(0, 0.2)),
                static_cast<float>(rng.normal(0, 0.2)),
                static_cast<float>(rng.normal(0, 0.2)), 0, 0, 0, i);
  p.wrap_positions(10.0f);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  auto s = stats::halo_shape(p, members, 0, 0, 0, 10.0);
  EXPECT_LT(s.a, 0.5);
  EXPECT_NEAR(s.b_over_a, 1.0, 0.1);
}

}  // namespace
