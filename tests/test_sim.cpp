// Tests for the simulation substrate: cosmology, decomposition, PM solver,
// initial conditions, synthetic universe, and the driver loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "comm/comm.h"
#include "sim/cosmology.h"
#include "util/crc32.h"
#include "sim/decomposition.h"
#include "sim/ic.h"
#include "sim/particles.h"
#include "sim/pm_solver.h"
#include "sim/simulation.h"
#include "sim/synthetic.h"

namespace {

using namespace cosmo;
using namespace cosmo::sim;

TEST(Cosmology, GrowthNormalizedToday) {
  Cosmology c;
  EXPECT_NEAR(c.growth(1.0), 1.0, 1e-12);
}

TEST(Cosmology, GrowthIsMonotonicAndSuppressed) {
  Cosmology c;
  double prev = 0.0;
  for (double a = 0.05; a <= 1.0; a += 0.05) {
    const double d = c.growth(a);
    EXPECT_GT(d, prev);
    prev = d;
  }
  // ΛCDM growth at high z approaches D ∝ a (EdS); at late times Λ
  // suppresses it, so D(a)/a must exceed 1 at early times (normalized today).
  EXPECT_GT(c.growth(0.05) / 0.05 * 1.0, 1.0);
}

TEST(Cosmology, EfuncLimits) {
  Cosmology c;
  EXPECT_NEAR(c.efunc(1.0), 1.0, 1e-12);
  // Early times are matter dominated: E ≈ sqrt(Ω_m) a^-1.5.
  const double a = 0.01;
  EXPECT_NEAR(c.efunc(a), std::sqrt(c.params().omega_m) * std::pow(a, -1.5),
              0.01 * c.efunc(a));
}

TEST(Cosmology, Sigma8MatchesNormalization) {
  CosmologyParams p;
  p.sigma8 = 0.8;
  Cosmology c(p);
  EXPECT_NEAR(c.sigma_r(8.0), 0.8, 1e-6);
}

TEST(Cosmology, PowerSpectrumShape) {
  Cosmology c;
  // P(k) rises as ~k^ns at large scales and falls at small scales.
  EXPECT_GT(c.linear_power(0.02), c.linear_power(0.002));
  EXPECT_GT(c.linear_power(0.05), c.linear_power(5.0));
  EXPECT_EQ(c.linear_power(0.0), 0.0);
}

TEST(Cosmology, HighRedshiftPowerIsSuppressed) {
  Cosmology c;
  EXPECT_LT(c.linear_power(0.1, 5.0), c.linear_power(0.1, 0.0));
}

TEST(Cosmology, ParticleMassScalesWithVolume) {
  Cosmology c;
  const double m1 = c.particle_mass(100.0, 128);
  const double m2 = c.particle_mass(200.0, 128);
  EXPECT_NEAR(m2 / m1, 8.0, 1e-9);
  // 1024^3 in ~360 Mpc/h boxes gives ~1e8 Msun/h-scale particles, the
  // Q Continuum-like mass resolution the paper quotes.
  const double m = c.particle_mass(360.0, 1024);
  EXPECT_GT(m, 1e6);
  EXPECT_LT(m, 1e10);
}

TEST(ParticleSet, SizeAndBytesTrackHaccLayout) {
  ParticleSet p(10);
  EXPECT_EQ(p.size(), 10u);
  EXPECT_EQ(p.bytes(), 360u);  // 36 bytes per particle (Table 1)
}

TEST(ParticleSet, SelectPreservesFields) {
  ParticleSet p;
  for (int i = 0; i < 5; ++i)
    p.push_back(static_cast<float>(i), 0, 0, 0, 0, 0, 100 + i);
  std::vector<std::uint32_t> idx{4, 0, 2};
  ParticleSet s = p.select(idx);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.tag[0], 104);
  EXPECT_EQ(s.tag[1], 100);
  EXPECT_EQ(s.tag[2], 102);
  EXPECT_FLOAT_EQ(s.x[0], 4.0f);
}

TEST(ParticleSet, WrapPositionsIsPeriodic) {
  ParticleSet p;
  p.push_back(-1.0f, 65.0f, 64.0f, 0, 0, 0, 0);
  p.wrap_positions(64.0f);
  EXPECT_FLOAT_EQ(p.x[0], 63.0f);
  EXPECT_FLOAT_EQ(p.y[0], 1.0f);
  EXPECT_FLOAT_EQ(p.z[0], 0.0f);
}

TEST(ParticleSet, WrapPositionsHandlesExtremeMagnitudes) {
  ParticleSet p;
  // fmod-based wrap is O(1) even for values the old while-loop would have
  // iterated ~1e8 times over (and it must still land in [0, box)).
  p.push_back(1.0e9f, -1.0e9f, -1.0e-7f, 0, 0, 0, 0);
  p.wrap_positions(64.0f);
  for (const float v : {p.x[0], p.y[0], p.z[0]}) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 64.0f);
  }
}

TEST(ParticleSet, WrapPositionsRejectsNonFinite) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  // −inf looped forever in the old wrap (−inf + box == −inf); NaN passed
  // both comparisons untouched and corrupted slab routing much later.
  for (const float bad : {nan, inf, -inf}) {
    ParticleSet p;
    p.push_back(bad, 1.0f, 1.0f, 0, 0, 0, 0);
    EXPECT_THROW(p.wrap_positions(64.0f), Error) << "x = " << bad;
    ParticleSet q;
    q.push_back(1.0f, 1.0f, bad, 0, 0, 0, 0);
    EXPECT_THROW(q.wrap_positions(64.0f), Error) << "z = " << bad;
  }
}

TEST(PeriodicDist, MinimumImage) {
  EXPECT_NEAR(periodic_dist2(63.0, 0.0, 0.0, 64.0), 1.0, 1e-12);
  EXPECT_NEAR(periodic_dist2(-63.0, 0.0, 0.0, 64.0), 1.0, 1e-12);
  EXPECT_NEAR(periodic_dist2(3.0, 4.0, 0.0, 64.0), 25.0, 1e-12);
}

class DecompRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, DecompRanks, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST_P(DecompRanks, RedistributeRoutesEveryParticleToItsOwner) {
  const int P = GetParam();
  const double box = 64.0;
  comm::run_spmd(P, [&](comm::Comm& c) {
    SlabDecomposition d(P, box);
    // Every rank creates particles spread over the whole box.
    ParticleSet mine;
    Rng rng(77 + static_cast<std::uint64_t>(c.rank()));
    for (int i = 0; i < 500; ++i)
      mine.push_back(static_cast<float>(rng.uniform(0, box)),
                     static_cast<float>(rng.uniform(0, box)),
                     static_cast<float>(rng.uniform(0, box)), 0, 0, 0,
                     c.rank() * 1000 + i);
    ParticleSet owned = d.redistribute(c, mine);
    for (std::size_t i = 0; i < owned.size(); ++i)
      EXPECT_EQ(d.owner_of(owned.z[i]), c.rank());
    // Conservation: total particle count unchanged.
    const auto total = c.allreduce_value<std::uint64_t>(owned.size(),
                                                        comm::ReduceOp::Sum);
    EXPECT_EQ(total, static_cast<std::uint64_t>(P) * 500u);
  });
}

TEST_P(DecompRanks, OverloadGhostsComeFromAdjacentBoundary) {
  const int P = GetParam();
  const double box = 64.0;
  const double width = 2.0;
  comm::run_spmd(P, [&](comm::Comm& c) {
    SlabDecomposition d(P, box);
    // One particle per rank right above its lower slab face.
    ParticleSet mine;
    mine.push_back(1.0f, 1.0f, static_cast<float>(d.z_lo(c.rank()) + 0.5), 0,
                   0, 0, c.rank());
    auto ov = d.exchange_overload(c, mine, width);
    EXPECT_EQ(ov.owned_count, 1u);
    if (P == 1) {
      // Self-ghost across the periodic seam.
      ASSERT_EQ(ov.particles.size(), 2u);
      EXPECT_GT(ov.particles.z[1], box - width);
    } else {
      // The lower neighbor's boundary particle must appear as our ghost
      // because it sits within `width` of OUR upper face? No — it sits near
      // its own lower face, so WE receive it only if we are its lower
      // neighbor. Every rank receives exactly one ghost: the upper
      // neighbor's boundary particle.
      ASSERT_EQ(ov.particles.size(), 2u);
      const int upper = (c.rank() + 1) % P;
      EXPECT_EQ(ov.particles.tag[1], upper);
      // Ghost z is contiguous with our slab (unwrapped across the seam).
      EXPECT_GT(ov.particles.z[1], d.z_hi(c.rank()) - 0.01);
      EXPECT_LT(ov.particles.z[1], d.z_hi(c.rank()) + width);
    }
  });
}

TEST(Decomp, OverloadWidthMustFitSlab) {
  comm::run_spmd(4, [&](comm::Comm& c) {
    SlabDecomposition d(4, 64.0);
    ParticleSet p;
    EXPECT_THROW(d.exchange_overload(c, p, 20.0), Error);
  });
}

TEST(Decomp, OwnerOfWrapsPeriodically) {
  SlabDecomposition d(4, 64.0);
  EXPECT_EQ(d.owner_of(0.0), 0);
  EXPECT_EQ(d.owner_of(15.9), 0);
  EXPECT_EQ(d.owner_of(16.0), 1);
  EXPECT_EQ(d.owner_of(63.9), 3);
  EXPECT_EQ(d.owner_of(64.0), 0);
  EXPECT_EQ(d.owner_of(-0.5), 3);
}

class PmRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, PmRanks, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST_P(PmRanks, UniformParticlesGiveZeroOverdensity) {
  const int P = GetParam();
  const std::size_t ng = 8;
  comm::run_spmd(P, [&](comm::Comm& c) {
    Cosmology cosmo;
    PmSolver pm(c, cosmo, ng, 64.0);
    // One particle per cell center in this rank's slab.
    ParticleSet p;
    const double cell = pm.cell();
    for (std::size_t zl = 0; zl < pm.nzl(); ++zl)
      for (std::size_t y = 0; y < ng; ++y)
        for (std::size_t x = 0; x < ng; ++x)
          p.push_back(static_cast<float>((x + 0.5) * cell),
                      static_cast<float>((y + 0.5) * cell),
                      static_cast<float>((pm.z0() + zl + 0.5) * cell), 0, 0, 0,
                      0);
    auto delta = pm.deposit_density(p, 1.0);
    for (long zl = 0; zl < static_cast<long>(pm.nzl()); ++zl)
      for (std::size_t y = 0; y < ng; ++y)
        for (std::size_t x = 0; x < ng; ++x)
          ASSERT_NEAR(delta.at(x, y, zl), 0.0, 1e-9);
  });
}

TEST_P(PmRanks, DepositConservesMass) {
  const int P = GetParam();
  const std::size_t ng = 8;
  const double box = 64.0;
  comm::run_spmd(P, [&](comm::Comm& c) {
    Cosmology cosmo;
    PmSolver pm(c, cosmo, ng, box);
    SlabDecomposition d(P, box);
    ParticleSet scattered;
    Rng rng(5 + static_cast<std::uint64_t>(c.rank()));
    for (int i = 0; i < 200; ++i)
      scattered.push_back(static_cast<float>(rng.uniform(0, box)),
                          static_cast<float>(rng.uniform(0, box)),
                          static_cast<float>(rng.uniform(0, box)), 0, 0, 0, i);
    ParticleSet owned = d.redistribute(c, scattered);
    const double mean = 200.0 * P / (ng * ng * ng);
    auto delta = pm.deposit_density(owned, mean);
    double local_sum = 0.0;
    for (long zl = 0; zl < static_cast<long>(pm.nzl()); ++zl)
      for (std::size_t y = 0; y < ng; ++y)
        for (std::size_t x = 0; x < ng; ++x)
          local_sum += (delta.at(x, y, zl) + 1.0) * mean;
    const double total = c.allreduce_value(local_sum, comm::ReduceOp::Sum);
    EXPECT_NEAR(total, 200.0 * P, 1e-6);
  });
}

// The parallel-deposit determinism contract: for every rank count and every
// deposit grain, the ThreadPool δ field is bit-identical to Serial — the
// scatter-reduce block structure depends only on (n, grain, pool width),
// never on thread scheduling.
TEST_P(PmRanks, DepositBackendsBitIdenticalAcrossGrains) {
  const int P = GetParam();
  const std::size_t ng = 16;
  const double box = 64.0;
  comm::run_spmd(P, [&](comm::Comm& c) {
    Cosmology cosmo;
    SlabDecomposition d(P, box);
    ParticleSet scattered;
    Rng rng(41 + static_cast<std::uint64_t>(c.rank()));
    for (int i = 0; i < 4000; ++i)
      scattered.push_back(static_cast<float>(rng.uniform(0, box)),
                          static_cast<float>(rng.uniform(0, box)),
                          static_cast<float>(rng.uniform(0, box)), 0, 0, 0, i);
    ParticleSet owned = d.redistribute(c, scattered);
    const double mean = 4000.0 * P / (ng * ng * ng);
    for (const std::size_t grain :
         {std::size_t{0}, std::size_t{64}, std::size_t{977}}) {
      PmSolver serial_pm(c, cosmo, ng, box);
      serial_pm.set_backend(dpp::Backend::Serial);
      serial_pm.set_deposit_grain(grain);
      PmSolver pooled_pm(c, cosmo, ng, box);
      pooled_pm.set_backend(dpp::Backend::ThreadPool);
      pooled_pm.set_deposit_grain(grain);
      SlabField ds = serial_pm.deposit_density(owned, mean);
      SlabField dp = pooled_pm.deposit_density(owned, mean);
      auto a = ds.data();
      auto b = dp.data();
      ASSERT_EQ(a.size(), b.size());
      ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
          << "rank " << c.rank() << " grain " << grain;
    }
  });
}

// P == 2 is the ordering-sensitive fold path: both ghost planes go to the
// SAME neighbor and must concatenate as [lower spill, upper spill]. Each
// rank drops one particle whose CIC cloud straddles its upper slab face at
// an exactly-representable grid position, so the spilled half-weight must
// land on the *other* rank's bottom plane at that rank's distinct (x, y).
TEST(PmSolver, FoldGhostPlanesP2RoutesSpillToCorrectNeighbor) {
  const std::size_t ng = 8;
  const double box = 64.0;  // cell = 8.0, exactly representable
  comm::run_spmd(2, [&](comm::Comm& c) {
    Cosmology cosmo;
    PmSolver pm(c, cosmo, ng, box);
    ASSERT_EQ(pm.nzl(), 4u);
    // rank 0: (x, y) node (2, 2); rank 1: node (3, 3). z at slab-local
    // plane 3.5 → half the weight deposits onto ghost plane 4 = the other
    // rank's plane 0 (rank 1's ghost wraps the periodic seam to rank 0).
    ParticleSet p;
    const float xy = c.rank() == 0 ? 16.0f : 24.0f;
    const float z = c.rank() == 0 ? 28.0f : 60.0f;
    p.push_back(xy, xy, z, 0, 0, 0, 0);
    SlabField delta = pm.deposit_density(p, /*mean_per_cell=*/1.0);
    const std::size_t own = c.rank() == 0 ? 2 : 3;
    const std::size_t other = c.rank() == 0 ? 3 : 2;
    // Own half-weight stays on our top owned plane.
    EXPECT_DOUBLE_EQ(delta.at(own, own, 3), 0.5 - 1.0);
    // The neighbor's spill lands on our bottom plane at ITS (x, y) — if the
    // P == 2 concatenation order regressed, it would land on plane 3 (or at
    // our own (x, y)) instead.
    EXPECT_DOUBLE_EQ(delta.at(other, other, 0), 0.5 - 1.0);
    EXPECT_DOUBLE_EQ(delta.at(own, own, 0), -1.0);
    EXPECT_DOUBLE_EQ(delta.at(other, other, 3), -1.0);
    // Everything else is empty (δ = −1).
    double sum = 0.0;
    for (long zl = 0; zl < 4; ++zl)
      for (std::size_t y = 0; y < ng; ++y)
        for (std::size_t x = 0; x < ng; ++x) sum += delta.at(x, y, zl) + 1.0;
    EXPECT_NEAR(sum, 1.0, 1e-12);  // one particle's worth per rank
  });
}

// P == 2 ghost *exchange* (the same same-neighbor concatenation shape, for
// φ): after solve_potential, each rank's ghost planes must be exact copies
// of the neighbor's boundary planes.
TEST(PmSolver, ExchangeGhostPlanesP2MatchesNeighborBoundary) {
  const std::size_t ng = 8;
  const double box = 64.0;
  comm::run_spmd(2, [&](comm::Comm& c) {
    Cosmology cosmo;
    PmSolver pm(c, cosmo, ng, box);
    SlabDecomposition d(2, box);
    ParticleSet scattered;
    Rng rng(53 + static_cast<std::uint64_t>(c.rank()));
    for (int i = 0; i < 300; ++i)
      scattered.push_back(static_cast<float>(rng.uniform(0, box)),
                          static_cast<float>(rng.uniform(0, box)),
                          static_cast<float>(rng.uniform(0, box)), 0, 0, 0, i);
    ParticleSet owned = d.redistribute(c, scattered);
    const double mean = 600.0 / (ng * ng * ng);
    SlabField delta = pm.deposit_density(owned, mean);
    SlabField phi = pm.solve_potential(delta, 1.0);
    const long top = static_cast<long>(pm.nzl()) - 1;
    // Swap boundary planes with the (single) neighbor and cross-check.
    const int nbr = 1 - c.rank();
    auto bot_plane = phi.plane(0);
    auto top_plane = phi.plane(top);
    c.send<double>(nbr, 11,
                   std::span<const double>(bot_plane.data(), bot_plane.size()));
    c.send<double>(nbr, 12,
                   std::span<const double>(top_plane.data(), top_plane.size()));
    const auto nbr_bot = c.recv<double>(nbr, 11);
    const auto nbr_top = c.recv<double>(nbr, 12);
    auto glo = phi.plane(-1);
    auto ghi = phi.plane(static_cast<long>(pm.nzl()));
    ASSERT_EQ(nbr_top.size(), glo.size());
    for (std::size_t i = 0; i < glo.size(); ++i) {
      // Lower ghost = neighbor's top plane; upper ghost = neighbor's bottom.
      ASSERT_EQ(glo[i], nbr_top[i]) << "lower ghost cell " << i;
      ASSERT_EQ(ghi[i], nbr_bot[i]) << "upper ghost cell " << i;
    }
  });
}

// A particle outside [-1, nzl] after a large drift must fail fast in the
// CIC interpolation (it used to silently read out-of-bounds heap; the
// deposit already threw).
TEST(PmSolver, AccelerationsRejectParticleBeyondGhostPlanes) {
  comm::run_spmd(1, [&](comm::Comm& c) {
    Cosmology cosmo;
    const std::size_t ng = 8;
    PmSolver pm(c, cosmo, ng, 64.0);
    SlabField phi(ng, pm.nzl());  // zero field; bounds are what matters
    ParticleSet p;
    p.push_back(1.0f, 1.0f, 200.0f, 0, 0, 0, 0);  // z ≫ box: gz = 25 > nzl
    std::vector<double> ax, ay, az;
    EXPECT_THROW(pm.accelerations(phi, p, ax, ay, az), Error);
    // And below the lower ghost as well.
    ParticleSet q;
    q.push_back(1.0f, 1.0f, -100.0f, 0, 0, 0, 0);
    EXPECT_THROW(pm.accelerations(phi, q, ax, ay, az), Error);
  });
}

TEST_P(PmRanks, PointMassForceIsAttractiveAndSymmetric) {
  const int P = GetParam();
  const std::size_t ng = 16;
  const double box = 64.0;
  comm::run_spmd(P, [&](comm::Comm& c) {
    Cosmology cosmo;
    PmSolver pm(c, cosmo, ng, box);
    SlabDecomposition d(P, box);
    // A heavy clump at the box center; probes on either side along x.
    ParticleSet all;
    if (c.rank() == 0) {
      for (int i = 0; i < 100; ++i)
        all.push_back(32.0f, 32.0f, 32.0f, 0, 0, 0, i);
      all.push_back(24.0f, 32.0f, 32.0f, 0, 0, 0, 1000);  // probe left
      all.push_back(40.0f, 32.0f, 32.0f, 0, 0, 0, 1001);  // probe right
    }
    ParticleSet owned = d.redistribute(c, all);
    const double mean = 102.0 / (ng * ng * ng);
    auto delta = pm.deposit_density(owned, mean);
    auto phi = pm.solve_potential(delta, 1.0);
    std::vector<double> ax, ay, az;
    pm.accelerations(phi, owned, ax, ay, az);
    double ax_left = 0.0, ax_right = 0.0;
    for (std::size_t i = 0; i < owned.size(); ++i) {
      if (owned.tag[i] == 1000) ax_left = ax[i];
      if (owned.tag[i] == 1001) ax_right = ax[i];
    }
    const double sum_left = c.allreduce_value(ax_left, comm::ReduceOp::Sum);
    const double sum_right = c.allreduce_value(ax_right, comm::ReduceOp::Sum);
    EXPECT_GT(sum_left, 1e-6);    // pulled toward +x (the clump)
    EXPECT_LT(sum_right, -1e-6);  // pulled toward −x
    EXPECT_NEAR(sum_left, -sum_right, 0.05 * std::abs(sum_left));
  });
}

TEST_P(PmRanks, ZeldovichIcsAreRankCountInvariant) {
  const int P = GetParam();
  IcConfig cfg;
  cfg.ng = 8;
  cfg.box = 32.0;
  cfg.seed = 99;
  // Reference: single rank.
  std::vector<std::tuple<std::int64_t, float, float, float>> reference;
  comm::run_spmd(1, [&](comm::Comm& c) {
    Cosmology cosmo;
    ParticleSet p = zeldovich_ics(c, cosmo, cfg);
    for (std::size_t i = 0; i < p.size(); ++i)
      reference.emplace_back(p.tag[i], p.x[i], p.y[i], p.z[i]);
  });
  std::sort(reference.begin(), reference.end());

  std::vector<std::tuple<std::int64_t, float, float, float>> gathered;
  std::mutex m;
  comm::run_spmd(P, [&](comm::Comm& c) {
    Cosmology cosmo;
    ParticleSet p = zeldovich_ics(c, cosmo, cfg);
    std::lock_guard lock(m);
    for (std::size_t i = 0; i < p.size(); ++i)
      gathered.emplace_back(p.tag[i], p.x[i], p.y[i], p.z[i]);
  });
  std::sort(gathered.begin(), gathered.end());
  ASSERT_EQ(gathered.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    EXPECT_EQ(gathered[i], reference[i]) << "particle " << i;
}

TEST(ZeldovichIcs, DisplacementsAreSmallAtHighRedshift) {
  IcConfig cfg;
  cfg.ng = 16;
  cfg.box = 64.0;
  cfg.z_init = 50.0;
  comm::run_spmd(1, [&](comm::Comm& c) {
    Cosmology cosmo;
    ParticleSet p = zeldovich_ics(c, cosmo, cfg);
    ASSERT_EQ(p.size(), 16u * 16u * 16u);
    // At z=50 the growth factor suppresses displacements well below a cell.
    const double cell = cfg.box / 16.0;
    std::size_t displaced_far = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const auto t = p.tag[i];
      const double qx = ((t % 16) + 0.5) * cell;
      const double dx2 = periodic_dist2(p.x[i] - qx, 0, 0, cfg.box);
      if (dx2 > cell * cell) ++displaced_far;
    }
    EXPECT_LT(displaced_far, p.size() / 100);
  });
}

TEST(Simulation, RunsAndGrowsStructure) {
  // Gravitational collapse must amplify density fluctuations: the final
  // overdensity variance should exceed the initial one.
  comm::run_spmd(2, [&](comm::Comm& c) {
    Cosmology cosmo;
    SimulationConfig cfg;
    cfg.ic.ng = 16;
    cfg.ic.box = 32.0;
    cfg.ic.z_init = 20.0;
    cfg.z_final = 0.0;
    cfg.steps = 12;
    Simulation simulation(c, cosmo, cfg);

    PmSolver pm(c, cosmo, cfg.ic.ng, cfg.ic.box);
    const double mean = simulation.global_particles() /
                        static_cast<double>(cfg.ic.ng * cfg.ic.ng * cfg.ic.ng);

    ParticleSet init = zeldovich_ics(c, cosmo, cfg.ic);
    auto delta0 = pm.deposit_density(init, mean);
    double var0 = 0.0;
    for (long zl = 0; zl < static_cast<long>(pm.nzl()); ++zl)
      for (std::size_t y = 0; y < cfg.ic.ng; ++y)
        for (std::size_t x = 0; x < cfg.ic.ng; ++x)
          var0 += delta0.at(x, y, zl) * delta0.at(x, y, zl);
    var0 = c.allreduce_value(var0, comm::ReduceOp::Sum);

    std::size_t hook_calls = 0;
    ParticleSet final_p = simulation.run(
        [&](const StepContext& ctx, ParticleSet&) {
          ++hook_calls;
          EXPECT_LE(ctx.step, ctx.total_steps);
          EXPECT_GT(ctx.a, 0.0);
        });
    EXPECT_EQ(hook_calls, cfg.steps);

    const auto total = c.allreduce_value<std::uint64_t>(final_p.size(),
                                                        comm::ReduceOp::Sum);
    EXPECT_EQ(total, 16u * 16u * 16u);  // particle conservation

    auto delta1 = pm.deposit_density(final_p, mean);
    double var1 = 0.0;
    for (long zl = 0; zl < static_cast<long>(pm.nzl()); ++zl)
      for (std::size_t y = 0; y < cfg.ic.ng; ++y)
        for (std::size_t x = 0; x < cfg.ic.ng; ++x)
          var1 += delta1.at(x, y, zl) * delta1.at(x, y, zl);
    var1 = c.allreduce_value(var1, comm::ReduceOp::Sum);
    EXPECT_GT(var1, 2.0 * var0) << "no gravitational growth observed";
  });
}

class SynthRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, SynthRanks, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST_P(SynthRanks, ParticleCountsMatchTruth) {
  const int P = GetParam();
  SyntheticConfig cfg;
  cfg.halo_count = 20;
  cfg.max_particles = 2000;
  cfg.background_particles = 1000;
  comm::run_spmd(P, [&](comm::Comm& c) {
    Cosmology cosmo;
    auto u = generate_synthetic(c, cosmo, cfg);
    std::uint64_t truth_total = cfg.background_particles;
    for (const auto& t : u.truth) truth_total += t.particles;
    EXPECT_EQ(u.total_particles, truth_total);
    const auto total = c.allreduce_value<std::uint64_t>(u.local.size(),
                                                        comm::ReduceOp::Sum);
    EXPECT_EQ(total, truth_total);
    // Owned particles live in this rank's slab.
    SlabDecomposition d(P, cfg.box);
    for (std::size_t i = 0; i < u.local.size(); ++i)
      ASSERT_EQ(d.owner_of(u.local.z[i]), c.rank());
  });
}

TEST_P(SynthRanks, TruthCatalogIsIdenticalOnAllRanks) {
  const int P = GetParam();
  SyntheticConfig cfg;
  cfg.halo_count = 10;
  comm::run_spmd(P, [&](comm::Comm& c) {
    Cosmology cosmo;
    auto u = generate_synthetic(c, cosmo, cfg);
    // Hash the catalog and compare across ranks.
    double h = 0.0;
    for (const auto& t : u.truth)
      h += t.cx + 3 * t.cy + 7 * t.cz + static_cast<double>(t.particles);
    const double hmin = c.allreduce_value(h, comm::ReduceOp::Min);
    const double hmax = c.allreduce_value(h, comm::ReduceOp::Max);
    EXPECT_EQ(hmin, hmax);
  });
}

TEST(Synthetic, MassesRespectConfiguredRange) {
  SyntheticConfig cfg;
  cfg.halo_count = 300;
  cfg.min_particles = 40;
  cfg.max_particles = 5000;
  comm::run_spmd(1, [&](comm::Comm& c) {
    Cosmology cosmo;
    auto u = generate_synthetic(c, cosmo, cfg);
    for (const auto& t : u.truth) {
      EXPECT_GE(t.particles, cfg.min_particles);
      EXPECT_LE(t.particles, cfg.max_particles + 1);
    }
    // Power law: small halos dominate.
    std::size_t small = 0, large = 0;
    for (const auto& t : u.truth)
      (t.particles < 200 ? small : large) += 1;
    EXPECT_GT(small, large);
  });
}

TEST(Synthetic, HalosAreCompactAroundTruthCenters) {
  SyntheticConfig cfg;
  cfg.halo_count = 5;
  cfg.min_particles = 500;
  cfg.max_particles = 1000;
  cfg.background_particles = 0;
  cfg.subclump_fraction = 0.0;
  comm::run_spmd(1, [&](comm::Comm& c) {
    Cosmology cosmo;
    auto u = generate_synthetic(c, cosmo, cfg);
    // Every particle should be within ~r_vir of its halo's center.
    for (std::size_t i = 0; i < u.local.size(); ++i) {
      const auto tag = u.local.tag[i];
      const TruthHalo* owner = nullptr;
      for (const auto& t : u.truth)
        if (tag >= t.first_tag &&
            tag < t.first_tag + static_cast<std::int64_t>(t.particles))
          owner = &t;
      ASSERT_NE(owner, nullptr);
      const double d2 =
          periodic_dist2(u.local.x[i] - owner->cx, u.local.y[i] - owner->cy,
                         u.local.z[i] - owner->cz, cfg.box);
      EXPECT_LE(std::sqrt(d2), 1.7 * owner->r_vir);
    }
  });
}

// CRC32 of the full particle state for a fixed seed at a fixed rank count
// (background streams are per-rank, so the rank count is part of the
// input). Particles are merged across ranks and sorted by tag so the
// decomposition's ordering does not matter.
std::uint32_t synthetic_universe_crc(const SyntheticConfig& cfg, int ranks) {
  ParticleSet all;
  std::mutex m;
  comm::run_spmd(ranks, [&](comm::Comm& c) {
    Cosmology cosmo;
    auto u = generate_synthetic(c, cosmo, cfg);
    std::lock_guard lock(m);
    all.append(u.local);
  });
  std::vector<std::uint32_t> order(all.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return all.tag[a] < all.tag[b];
  });
  ParticleSet sorted = all.select(order);
  std::uint32_t crc = 0;
  auto chain = [&](const auto& v) {
    crc = crc32(v.data(), v.size() * sizeof(v[0]), crc);
  };
  chain(sorted.x);
  chain(sorted.y);
  chain(sorted.z);
  chain(sorted.vx);
  chain(sorted.vy);
  chain(sorted.vz);
  chain(sorted.phi);
  chain(sorted.tag);
  return crc;
}

TEST(Synthetic, FixedSeedYieldsStableParticleCrc) {
  SyntheticConfig cfg;
  cfg.box = 32.0;
  cfg.seed = 20151115;
  cfg.halo_count = 12;
  cfg.min_particles = 50;
  cfg.max_particles = 900;
  cfg.background_particles = 400;
  cfg.subclump_fraction = 0.0;

  const std::uint32_t crc = synthetic_universe_crc(cfg, 2);
  // Regeneration in the same process is bit-identical.
  EXPECT_EQ(synthetic_universe_crc(cfg, 2), crc);
  // ...and matches the golden value recorded for this platform. A change
  // here means the generator's output drifted — every catalog-level golden
  // downstream silently shifts with it, so treat this as a breaking change.
  EXPECT_EQ(crc, 0xBABF3685u) << "synthetic universe CRC drifted";
  // A different seed must change the stream.
  SyntheticConfig other = cfg;
  other.seed = cfg.seed + 1;
  EXPECT_NE(synthetic_universe_crc(other, 2), crc);
}

TEST(Synthetic, SubclumpsPlantedInLargeHalos) {
  SyntheticConfig cfg;
  cfg.halo_count = 8;
  cfg.min_particles = 6000;
  cfg.max_particles = 20000;
  cfg.subclump_min_host = 5000;
  comm::run_spmd(1, [&](comm::Comm& c) {
    Cosmology cosmo;
    auto u = generate_synthetic(c, cosmo, cfg);
    for (const auto& t : u.truth) EXPECT_GE(t.subclumps, 2u);
  });
}

}  // namespace
