// Tests for the FFT stack: 1-D analytic transforms, 3-D round trips,
// Parseval's theorem, and distributed-vs-local equivalence.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <complex>
#include <numbers>
#include <thread>
#include <vector>

#include "comm/comm.h"
#include "dpp/primitives.h"
#include "fft/distributed_fft.h"
#include "fft/fft.h"
#include "util/rng.h"

namespace {

using namespace cosmo;
using fft::Complex;

TEST(Fft1d, DeltaTransformsToConstant) {
  std::vector<Complex> v(16, Complex(0, 0));
  v[0] = Complex(1, 0);
  fft::fft_1d(v, false);
  for (const auto& c : v) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft1d, ConstantTransformsToDelta) {
  std::vector<Complex> v(32, Complex(2.0, 0));
  fft::fft_1d(v, false);
  EXPECT_NEAR(v[0].real(), 64.0, 1e-10);
  for (std::size_t i = 1; i < v.size(); ++i)
    EXPECT_NEAR(std::abs(v[i]), 0.0, 1e-10);
}

TEST(Fft1d, SingleModeLandsInSingleBin) {
  const std::size_t n = 64;
  const std::size_t k = 5;
  std::vector<Complex> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(k * i) /
                         static_cast<double>(n);
    v[i] = Complex(std::cos(phase), std::sin(phase));
  }
  fft::fft_1d(v, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == k)
      EXPECT_NEAR(v[i].real(), static_cast<double>(n), 1e-9);
    else
      EXPECT_NEAR(std::abs(v[i]), 0.0, 1e-9) << "bin " << i;
  }
}

TEST(Fft1d, RoundTripRecoversInput) {
  Rng rng(3);
  std::vector<Complex> v(256), orig;
  for (auto& c : v) c = Complex(rng.normal(), rng.normal());
  orig = v;
  fft::fft_1d(v, false);
  fft::fft_1d(v, true);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i].real() / 256.0, orig[i].real(), 1e-10);
    EXPECT_NEAR(v[i].imag() / 256.0, orig[i].imag(), 1e-10);
  }
}

TEST(Fft1d, ParsevalHolds) {
  Rng rng(4);
  const std::size_t n = 512;
  std::vector<Complex> v(n);
  double time_energy = 0.0;
  for (auto& c : v) {
    c = Complex(rng.normal(), rng.normal());
    time_energy += std::norm(c);
  }
  fft::fft_1d(v, false);
  double freq_energy = 0.0;
  for (const auto& c : v) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * time_energy);
}

TEST(Fft1d, RejectsNonPowerOfTwo) {
  std::vector<Complex> v(12);
  EXPECT_THROW(fft::fft_1d(v, false), Error);
}

TEST(Fft1d, LengthOneIsIdentity) {
  std::vector<Complex> v{Complex(3.5, -1.25)};
  fft::fft_1d(v, false);
  EXPECT_DOUBLE_EQ(v[0].real(), 3.5);
  EXPECT_DOUBLE_EQ(v[0].imag(), -1.25);
}

TEST(FreqIndex, SignedFrequencies) {
  EXPECT_EQ(fft::freq_index(0, 8), 0);
  EXPECT_EQ(fft::freq_index(3, 8), 3);
  EXPECT_EQ(fft::freq_index(4, 8), 4);   // Nyquist stays positive
  EXPECT_EQ(fft::freq_index(5, 8), -3);
  EXPECT_EQ(fft::freq_index(7, 8), -1);
}

TEST(Fft3d, RoundTripRecoversInput) {
  Rng rng(5);
  fft::Grid3 g(8, 8, 8);
  std::vector<Complex> orig(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g.flat()[i] = Complex(rng.normal(), rng.normal());
    orig[i] = g.flat()[i];
  }
  fft::fft_3d(g, false);
  fft::fft_3d(g, true);
  const double scale = 1.0 / 512.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(g.flat()[i].real() * scale, orig[i].real(), 1e-10);
    EXPECT_NEAR(g.flat()[i].imag() * scale, orig[i].imag(), 1e-10);
  }
}

TEST(Fft3d, PlaneWaveSingleMode) {
  const std::size_t n = 8;
  fft::Grid3 g(n, n, n);
  const std::size_t kx = 2, ky = 1, kz = 3;
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t x = 0; x < n; ++x) {
        const double phase = 2.0 * std::numbers::pi *
                             static_cast<double>(kx * x + ky * y + kz * z) /
                             static_cast<double>(n);
        g.at(x, y, z) = Complex(std::cos(phase), std::sin(phase));
      }
  fft::fft_3d(g, false);
  const double total = static_cast<double>(n * n * n);
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t x = 0; x < n; ++x) {
        const double expect = (x == kx && y == ky && z == kz) ? total : 0.0;
        ASSERT_NEAR(std::abs(g.at(x, y, z)), expect, 1e-8)
            << x << "," << y << "," << z;
      }
}

class DistFft : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankCounts, DistFft, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST_P(DistFft, MatchesLocalTransform) {
  const int P = GetParam();
  const std::size_t n = 8;
  // Build the same random field locally and distributed; compare spectra.
  Rng rng(17);
  fft::Grid3 local(n, n, n);
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t x = 0; x < n; ++x)
        local.at(x, y, z) = Complex(rng.normal(), rng.normal());
  fft::Grid3 reference = local;
  fft::fft_3d(reference, false);

  comm::run_spmd(P, [&](comm::Comm& c) {
    fft::DistributedFft dfft(c, n);
    const std::size_t nzl = dfft.slab_thickness();
    const std::size_t z0 = dfft.slab_start();
    std::vector<Complex> slab(dfft.local_size());
    for (std::size_t zl = 0; zl < nzl; ++zl)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t x = 0; x < n; ++x)
          slab[(zl * n + y) * n + x] = local.at(x, y, z0 + zl);
    dfft.forward(slab);
    // Transposed layout: rank owns ky rows [y0, y0+nzl), kz contiguous.
    for (std::size_t kyl = 0; kyl < nzl; ++kyl)
      for (std::size_t kx = 0; kx < n; ++kx)
        for (std::size_t kz = 0; kz < n; ++kz) {
          const Complex got = slab[(kyl * n + kx) * n + kz];
          const Complex want = reference.at(kx, z0 + kyl, kz);
          ASSERT_NEAR(got.real(), want.real(), 1e-8);
          ASSERT_NEAR(got.imag(), want.imag(), 1e-8);
        }
  });
}

TEST_P(DistFft, RoundTripRecoversSlab) {
  const int P = GetParam();
  const std::size_t n = 16;
  comm::run_spmd(P, [&](comm::Comm& c) {
    fft::DistributedFft dfft(c, n);
    Rng rng(100 + static_cast<std::uint64_t>(c.rank()));
    std::vector<Complex> slab(dfft.local_size()), orig;
    for (auto& v : slab) v = Complex(rng.normal(), rng.normal());
    orig = slab;
    dfft.forward(slab);
    dfft.inverse(slab);
    for (std::size_t i = 0; i < slab.size(); ++i) {
      ASSERT_NEAR(slab[i].real(), orig[i].real(), 1e-9);
      ASSERT_NEAR(slab[i].imag(), orig[i].imag(), 1e-9);
    }
  });
}

// Runs forward+inverse with the given exchange mode / backend / grains and
// returns the k-space slab and round-tripped slab for rank `rank`, starting
// from a deterministic per-rank field. Used to cross-check every variant
// against the batched Serial reference bit for bit.
struct FftVariantResult {
  std::vector<Complex> kspace;
  std::vector<Complex> roundtrip;
};

std::vector<FftVariantResult> run_fft_variant(
    int P, std::size_t n, fft::DistributedFft::ExchangeMode mode,
    dpp::Backend backend, std::size_t row_grain = 0,
    std::size_t copy_grain = 0, bool stagger = false) {
  std::vector<FftVariantResult> results(static_cast<std::size_t>(P));
  comm::run_spmd(P, [&](comm::Comm& c) {
    if (stagger)  // adversarial: ranks enter the transpose far apart
      std::this_thread::sleep_for(
          std::chrono::milliseconds(3 * (P - 1 - c.rank())));
    fft::DistributedFft dfft(c, n);
    dfft.set_exchange_mode(mode);
    dfft.set_backend(backend);
    dfft.set_row_grain(row_grain);
    dfft.set_copy_grain(copy_grain);
    Rng rng(7000 + static_cast<std::uint64_t>(c.rank()));
    std::vector<Complex> slab(dfft.local_size());
    for (auto& v : slab) v = Complex(rng.normal(), rng.normal());
    dfft.forward(slab);
    auto& res = results[static_cast<std::size_t>(c.rank())];
    res.kspace = slab;
    dfft.inverse(slab);
    res.roundtrip = slab;
  });
  return results;
}

void expect_bit_identical(const std::vector<FftVariantResult>& a,
                          const std::vector<FftVariantResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].kspace.size(), b[r].kspace.size());
    for (std::size_t i = 0; i < a[r].kspace.size(); ++i) {
      // Exact double equality: the pipelined exchange and the pool backends
      // must not perturb a single bit of the spectrum.
      ASSERT_EQ(a[r].kspace[i].real(), b[r].kspace[i].real())
          << "kspace rank " << r << " index " << i;
      ASSERT_EQ(a[r].kspace[i].imag(), b[r].kspace[i].imag())
          << "kspace rank " << r << " index " << i;
    }
    ASSERT_EQ(a[r].roundtrip.size(), b[r].roundtrip.size());
    for (std::size_t i = 0; i < a[r].roundtrip.size(); ++i) {
      ASSERT_EQ(a[r].roundtrip[i].real(), b[r].roundtrip[i].real())
          << "roundtrip rank " << r << " index " << i;
      ASSERT_EQ(a[r].roundtrip[i].imag(), b[r].roundtrip[i].imag())
          << "roundtrip rank " << r << " index " << i;
    }
  }
}

using ExchangeMode = fft::DistributedFft::ExchangeMode;

TEST_P(DistFft, PipelinedMatchesBatchedBitExact) {
  const int P = GetParam();
  const std::size_t n = 16;
  const auto ref = run_fft_variant(P, n, ExchangeMode::Batched,
                                   dpp::Backend::Serial);
  expect_bit_identical(
      ref, run_fft_variant(P, n, ExchangeMode::Pipelined,
                           dpp::Backend::Serial));
  expect_bit_identical(
      ref, run_fft_variant(P, n, ExchangeMode::Batched,
                           dpp::Backend::ThreadPool));
  expect_bit_identical(
      ref, run_fft_variant(P, n, ExchangeMode::Pipelined,
                           dpp::Backend::ThreadPool));
}

TEST_P(DistFft, SmallGrainsStayBitExact) {
  const int P = GetParam();
  const std::size_t n = 8;
  // Grain 1 maximizes chunk count (every row / pencil its own scheduler
  // item), stressing out-of-order chunk execution in pack/unpack/rows.
  const auto ref = run_fft_variant(P, n, ExchangeMode::Batched,
                                   dpp::Backend::Serial);
  expect_bit_identical(
      ref, run_fft_variant(P, n, ExchangeMode::Pipelined,
                           dpp::Backend::ThreadPool, /*row_grain=*/1,
                           /*copy_grain=*/1));
}

TEST_P(DistFft, PipelinedOutOfOrderArrivalBitExact) {
  const int P = GetParam();
  if (P < 2) GTEST_SKIP();
  const std::size_t n = 8;
  // Rank staggering reverses block arrival order relative to rank order;
  // the unpacks are source-addressed, so the result must not move.
  const auto ref = run_fft_variant(P, n, ExchangeMode::Batched,
                                   dpp::Backend::Serial);
  expect_bit_identical(
      ref, run_fft_variant(P, n, ExchangeMode::Pipelined,
                           dpp::Backend::ThreadPool, 0, 0, /*stagger=*/true));
}

TEST(DistFftConfig, DefaultsAndSetters) {
  comm::run_spmd(1, [&](comm::Comm& c) {
    fft::DistributedFft dfft(c, 8);
    EXPECT_EQ(dfft.exchange_mode(), ExchangeMode::Pipelined);
    EXPECT_EQ(dfft.backend(), dpp::Backend::Serial);
    dfft.set_exchange_mode(ExchangeMode::Batched);
    dfft.set_backend(dpp::Backend::ThreadPool);
    dfft.set_row_grain(4);
    dfft.set_copy_grain(2);
    EXPECT_EQ(dfft.exchange_mode(), ExchangeMode::Batched);
    EXPECT_EQ(dfft.backend(), dpp::Backend::ThreadPool);
    EXPECT_EQ(dfft.row_grain(), 4u);
    EXPECT_EQ(dfft.copy_grain(), 2u);
  });
}

TEST(DistFftErrors, RejectsIndivisibleGrid) {
  comm::run_spmd(3, [&](comm::Comm& c) {
    EXPECT_THROW(fft::DistributedFft(c, 8), Error);
  });
}

TEST(DistFftErrors, RejectsWrongSlabSize) {
  comm::run_spmd(2, [&](comm::Comm& c) {
    fft::DistributedFft dfft(c, 8);
    std::vector<Complex> bad(dfft.local_size() - 1);
    EXPECT_THROW(dfft.forward(bad), Error);
  });
}

}  // namespace
