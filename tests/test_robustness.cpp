// Robustness and edge-case sweep across modules: degenerate inputs, size
// extremes, and cross-module properties not covered by the per-module
// suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <numeric>

#include "comm/comm.h"
#include "core/workflows.h"
#include "faults/faults.h"
#include "fft/fft.h"
#include "halo/fof.h"
#include "halo/so_mass.h"
#include "io/cosmo_io.h"
#include "obs/metrics.h"
#include "sched/batch_scheduler.h"
#include "sim/synthetic.h"
#include "util/retry.h"
#include "util/rng.h"

namespace {

using namespace cosmo;
namespace fs = std::filesystem;

// -------------------------------------------------------------------- comm

TEST(CommRobustness, MegabyteMessageSurvives) {
  comm::run_spmd(2, [&](comm::Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> big(1 << 17);  // 1 MiB
      Rng rng(1);
      for (auto& v : big) v = rng.uniform();
      c.send<double>(1, 5, big);
      c.send_value<double>(1, 6, big[12345]);
    } else {
      auto big = c.recv<double>(0, 5);
      ASSERT_EQ(big.size(), std::size_t{1} << 17);
      EXPECT_DOUBLE_EQ(c.recv_value<double>(0, 6), big[12345]);
    }
  });
}

TEST(CommRobustness, ManyInterleavedTags) {
  comm::run_spmd(2, [&](comm::Comm& c) {
    constexpr int kTags = 64;
    if (c.rank() == 0) {
      for (int t = 0; t < kTags; ++t) c.send_value<int>(1, t, 1000 + t);
    } else {
      // Receive in reverse tag order: matching must be by tag, not arrival.
      for (int t = kTags - 1; t >= 0; --t)
        EXPECT_EQ(c.recv_value<int>(0, t), 1000 + t);
    }
  });
}

TEST(CommRobustness, AlltoallvWithEmptyAndFatBuffers) {
  comm::run_spmd(4, [&](comm::Comm& c) {
    std::vector<std::vector<int>> send(4);
    // Only send to rank (r+1)%4, nothing to others.
    send[static_cast<std::size_t>((c.rank() + 1) % 4)] =
        std::vector<int>(1000, c.rank());
    auto recv = c.alltoallv(send);
    for (int src = 0; src < 4; ++src) {
      if ((src + 1) % 4 == c.rank()) {
        ASSERT_EQ(recv[static_cast<std::size_t>(src)].size(), 1000u);
        EXPECT_EQ(recv[static_cast<std::size_t>(src)][0], src);
      } else {
        EXPECT_TRUE(recv[static_cast<std::size_t>(src)].empty());
      }
    }
  });
}

// --------------------------------------------------------------------- dpp

TEST(DppRobustness, SizeOneEverything) {
  using dpp::Backend;
  for (auto b : {Backend::Serial, Backend::ThreadPool}) {
    std::vector<int> one{7}, out(1);
    EXPECT_EQ(dpp::reduce<int>(b, one), 7);
    EXPECT_EQ(dpp::exclusive_scan<int>(b, one, out), 7);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(dpp::argmin(b, 1, [](std::size_t) { return 3.0; }), 0u);
  }
}

TEST(DppRobustness, SortHandlesPreSortedAndReverse) {
  using dpp::Backend;
  const std::size_t n = 10000;
  for (auto b : {Backend::Serial, Backend::ThreadPool}) {
    std::vector<std::uint32_t> asc(n), desc(n), idx;
    std::iota(asc.begin(), asc.end(), 0u);
    for (std::size_t i = 0; i < n; ++i) desc[i] = static_cast<std::uint32_t>(n - i);
    dpp::sort_indices_by_key<std::uint32_t>(b, asc, idx);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(idx[i], i);
    dpp::sort_indices_by_key<std::uint32_t>(b, desc, idx);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(idx[i], n - 1 - i);
  }
}

TEST(DppRobustness, ArgminAtBoundaries) {
  std::vector<double> v(5000, 1.0);
  v.front() = -1.0;
  EXPECT_EQ(dpp::argmin(dpp::Backend::ThreadPool, v.size(),
                        [&](std::size_t i) { return v[i]; }),
            0u);
  v.front() = 1.0;
  v.back() = -1.0;
  EXPECT_EQ(dpp::argmin(dpp::Backend::ThreadPool, v.size(),
                        [&](std::size_t i) { return v[i]; }),
            v.size() - 1);
}

// --------------------------------------------------------------------- fft

TEST(FftRobustness, NonCubicGridRoundTrip) {
  fft::Grid3 g(4, 8, 16);
  Rng rng(2);
  std::vector<fft::Complex> orig(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g.flat()[i] = fft::Complex(rng.normal(), rng.normal());
    orig[i] = g.flat()[i];
  }
  fft::fft_3d(g, false);
  fft::fft_3d(g, true);
  const double scale = 1.0 / 512.0;
  for (std::size_t i = 0; i < g.size(); ++i)
    ASSERT_NEAR(g.flat()[i].real() * scale, orig[i].real(), 1e-10);
}

TEST(FftRobustness, LinearityProperty) {
  Rng rng(3);
  const std::size_t n = 128;
  std::vector<fft::Complex> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = fft::Complex(rng.normal(), rng.normal());
    b[i] = fft::Complex(rng.normal(), rng.normal());
    sum[i] = a[i] + 2.0 * b[i];
  }
  fft::fft_1d(a, false);
  fft::fft_1d(b, false);
  fft::fft_1d(sum, false);
  for (std::size_t i = 0; i < n; ++i) {
    const auto expect = a[i] + 2.0 * b[i];
    ASSERT_NEAR(sum[i].real(), expect.real(), 1e-9);
    ASSERT_NEAR(sum[i].imag(), expect.imag(), 1e-9);
  }
}

// -------------------------------------------------------------------- halo

TEST(HaloRobustness, CoincidentParticlesFormOneHalo) {
  sim::ParticleSet p;
  for (int i = 0; i < 50; ++i) p.push_back(5, 5, 5, 0, 0, 0, i);
  halo::FofConfig cfg;
  cfg.linking_length = 0.1;
  cfg.min_size = 10;
  auto halos = halo::fof_find(p, halo::Periodicity::all(10.0), cfg);
  ASSERT_EQ(halos.size(), 1u);
  EXPECT_EQ(halos[0].members.size(), 50u);
  EXPECT_EQ(halos[0].id, 0);
}

TEST(HaloRobustness, MinSizeOneKeepsIsolatedParticles) {
  sim::ParticleSet p;
  p.push_back(1, 1, 1, 0, 0, 0, 0);
  p.push_back(8, 8, 8, 0, 0, 0, 1);
  halo::FofConfig cfg;
  cfg.linking_length = 0.5;
  cfg.min_size = 1;
  auto halos = halo::fof_find(p, halo::Periodicity::all(10.0), cfg);
  EXPECT_EQ(halos.size(), 2u);
}

TEST(HaloRobustness, EmptyParticleSetFofIsEmpty) {
  sim::ParticleSet p;
  halo::FofConfig cfg;
  EXPECT_TRUE(halo::fof_find(p, {}, cfg).empty());
}

TEST(HaloRobustness, SoMassWithCenterOutsideCloud) {
  Rng rng(4);
  sim::ParticleSet p;
  for (int i = 0; i < 500; ++i)
    p.push_back(static_cast<float>(rng.normal(5, 0.2)),
                static_cast<float>(rng.normal(5, 0.2)),
                static_cast<float>(rng.normal(5, 0.2)), 0, 0, 0, i);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  halo::SoConfig cfg;
  cfg.delta = 200.0;
  cfg.mean_density = 1.0;
  // Center far from the cloud: density never reaches the threshold.
  auto so = halo::so_mass(p, members, 50, 50, 50, cfg);
  EXPECT_EQ(so.count, 0u);
}

TEST(HaloRobustness, FofInvariantUnderParticlePermutation) {
  // Halo ids (min tags) and member-count multisets must not depend on the
  // order particles are stored in.
  sim::ParticleSet p;
  Rng rng(5);
  for (int blob = 0; blob < 5; ++blob) {
    const double cx = 2.0 + blob * 1.7;
    for (int i = 0; i < 80; ++i)
      p.push_back(static_cast<float>(rng.normal(cx, 0.1)),
                  static_cast<float>(rng.normal(5, 0.1)),
                  static_cast<float>(rng.normal(5, 0.1)), 0, 0, 0,
                  blob * 1000 + i);
  }
  halo::FofConfig cfg;
  cfg.linking_length = 0.35;
  cfg.min_size = 40;
  auto ref = halo::fof_find(p, halo::Periodicity::all(12.0), cfg);

  // Shuffle storage order.
  std::vector<std::uint32_t> perm(p.size());
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.below(i)]);
  sim::ParticleSet shuffled = p.select(perm);
  auto got = halo::fof_find(shuffled, halo::Periodicity::all(12.0), cfg);

  auto key = [](const std::vector<halo::FofHalo>& hs) {
    std::vector<std::pair<std::int64_t, std::size_t>> k;
    for (const auto& h : hs) k.emplace_back(h.id, h.members.size());
    std::sort(k.begin(), k.end());
    return k;
  };
  EXPECT_EQ(key(ref), key(got));
}

// ---------------------------------------------------------------------- io

TEST(IoRobustness, ZeroBlockFileRoundTrips) {
  const auto path = fs::temp_directory_path() /
                    ("zero_" + std::to_string(::getpid()) + ".cosmo");
  {
    io::CosmoIoWriter w(path, {10.0, 1.0, 0, 0});
    w.finalize();
  }
  io::CosmoIoReader r(path);
  EXPECT_EQ(r.num_blocks(), 0u);
  EXPECT_EQ(r.read_all().size(), 0u);
  fs::remove(path);
}

TEST(IoRobustness, TruncatedTableIsRejected) {
  const auto path = fs::temp_directory_path() /
                    ("trunc_" + std::to_string(::getpid()) + ".cosmo");
  {
    io::CosmoIoWriter w(path, {10.0, 1.0, 100, 0});
    sim::ParticleSet p(100);
    w.write_block(p, 0);
    w.finalize();
  }
  // Chop the tail (the block table).
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 8);
  EXPECT_THROW(io::CosmoIoReader r(path), Error);
  fs::remove(path);
}

// ------------------------------------------------------------------- sched

TEST(SchedRobustness, ZeroDurationJobCompletesInstantly) {
  sched::BatchScheduler s({"t", 4, 1.0, 1.0, true, {}});
  auto id = s.submit("instant", 2, 0.0, 5.0);
  s.run_to_completion();
  EXPECT_DOUBLE_EQ(s.job(id).start_time, 5.0);
  EXPECT_DOUBLE_EQ(s.job(id).end_time, 5.0);
}

TEST(SchedRobustness, ExactFitFillsMachine) {
  sched::BatchScheduler s({"t", 8, 1.0, 1.0, true, {}});
  auto a = s.submit("a", 5, 10.0, 0.0);
  auto b = s.submit("b", 3, 10.0, 0.0);
  auto cjob = s.submit("c", 1, 10.0, 0.0);
  s.run_to_completion();
  EXPECT_DOUBLE_EQ(s.job(a).start_time, 0.0);
  EXPECT_DOUBLE_EQ(s.job(b).start_time, 0.0);
  EXPECT_DOUBLE_EQ(s.job(cjob).start_time, 10.0);  // machine was exactly full
}

// ------------------------------------------------------------------ retry

TEST(RetryRobustness, ZeroAttemptsFailsWithoutRunning) {
  util::RetryPolicy policy;
  policy.max_attempts = 0;
  int calls = 0;
  const auto r = util::Retry(policy).run("edge.zero", [&] {
    ++calls;
    return true;
  });
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.attempts, 0);
  EXPECT_EQ(calls, 0);
  EXPECT_FALSE(r.budget_exhausted);
}

TEST(RetryRobustness, ZeroBudgetTimesOutBeforeFirstTry) {
  util::RetryPolicy policy;
  policy.total_budget = std::chrono::milliseconds(0);
  int calls = 0;
  const auto r = util::Retry(policy).run("edge.budget", [&] {
    ++calls;
    return true;
  });
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_EQ(r.attempts, 0);
  EXPECT_EQ(calls, 0);
}

TEST(RetryRobustness, BackoffIsClampedAtCeiling) {
  util::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.backoff_multiplier = 4.0;
  policy.max_backoff = std::chrono::milliseconds(5);
  policy.max_jitter = std::chrono::milliseconds(0);
  util::Retry retry(policy);
  // 1, 4, then pinned to the 5 ms ceiling forever after.
  EXPECT_EQ(retry.backoff_after("edge.clamp", 0).count(), 1);
  EXPECT_EQ(retry.backoff_after("edge.clamp", 1).count(), 4);
  for (int attempt = 2; attempt < 7; ++attempt)
    EXPECT_EQ(retry.backoff_after("edge.clamp", attempt).count(), 5);
}

TEST(RetryRobustness, JitterSequenceIsDeterministicPerSeed) {
  util::RetryPolicy policy;
  policy.initial_backoff = std::chrono::milliseconds(0);
  policy.max_backoff = std::chrono::milliseconds(0);
  policy.max_jitter = std::chrono::milliseconds(100);
  util::Retry retry(policy);

  faults::Plan plan_a(42), plan_a2(42), plan_b(43);
  std::vector<std::int64_t> seq_a, seq_a2, seq_b;
  {
    faults::ScopedPlan armed(plan_a);
    for (int k = 0; k < 6; ++k)
      seq_a.push_back(retry.backoff_after("edge.jitter", k).count());
  }
  {
    faults::ScopedPlan armed(plan_a2);
    for (int k = 0; k < 6; ++k)
      seq_a2.push_back(retry.backoff_after("edge.jitter", k).count());
  }
  {
    faults::ScopedPlan armed(plan_b);
    for (int k = 0; k < 6; ++k)
      seq_b.push_back(retry.backoff_after("edge.jitter", k).count());
  }
  EXPECT_EQ(seq_a, seq_a2);  // same seed → same schedule
  EXPECT_NE(seq_a, seq_b);   // different seed → different schedule
  for (const auto j : seq_a) {
    EXPECT_GE(j, 0);
    EXPECT_LE(j, 100);
  }
}

TEST(RetryRobustness, ExceptionCountsAsFailedAttempt) {
  util::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::milliseconds(0);
  int calls = 0;
  const auto r = util::Retry(policy).run("edge.throw", [&]() -> bool {
    if (++calls < 3) throw Error("transient");
    return true;
  });
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.attempts, 3);
}

TEST(RetryRobustness, SlowSuccessfulAttemptCountsAsTimeout) {
  util::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = std::chrono::milliseconds(0);
  policy.attempt_timeout = std::chrono::milliseconds(0);  // everything is late
  int calls = 0;
  const auto r = util::Retry(policy).run("edge.slow", [&] {
    ++calls;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return true;  // succeeded, but past the per-attempt deadline
  });
  EXPECT_FALSE(r.success);
  EXPECT_EQ(calls, 2);
}

// --------------------------------------------------------------- workflows

TEST(WorkflowRobustness, SingleRankWorkflowsWork) {
  core::WorkflowProblem p;
  p.universe.box = 24.0;
  p.universe.halo_count = 6;
  p.universe.min_particles = 60;
  p.universe.max_particles = 400;
  p.universe.background_particles = 200;
  p.universe.subclump_fraction = 0.0;
  p.ranks = 1;
  p.analysis_ranks = 1;
  p.ranks_per_file = 1;
  p.threshold = 150;
  p.overload = 2.0;
  p.workdir = fs::temp_directory_path() /
              ("wf1_" + std::to_string(::getpid()));
  auto ri = core::run_workflow(core::WorkflowKind::InSitu, p);
  auto rc = core::run_workflow(core::WorkflowKind::CombinedSimple, p);
  ASSERT_EQ(ri.catalog.size(), rc.catalog.size());
  for (std::size_t i = 0; i < ri.catalog.size(); ++i)
    EXPECT_EQ(ri.catalog[i].id, rc.catalog[i].id);
  fs::remove_all(p.workdir);
}

TEST(WorkflowRobustness, StagingOverflowFallsBackToFilesystem) {
  core::WorkflowProblem p;
  p.universe.box = 24.0;
  p.universe.halo_count = 6;
  p.universe.min_particles = 300;
  p.universe.max_particles = 900;
  p.universe.background_particles = 0;
  p.universe.subclump_fraction = 0.0;
  p.ranks = 2;
  p.analysis_ranks = 1;
  p.threshold = 100;       // defer everything
  p.overload = 2.0;
  p.staging_capacity = 64; // absurdly small burst buffer
  p.workdir = fs::temp_directory_path() /
              ("wfstage_" + std::to_string(::getpid()));
  // The documented burst-buffer overflow behaviour: rejected puts route the
  // rank's Level 2 through the filesystem and the run still completes.
  const auto before =
      obs::MetricsRegistry::instance().counter("workflow.staging_fallbacks")
          .total();
  auto rt = core::run_workflow(core::WorkflowKind::CombinedInTransit, p);
  EXPECT_EQ(rt.staging_fallbacks, 2u);  // every producer rank fell back
  EXPECT_EQ(
      obs::MetricsRegistry::instance().counter("workflow.staging_fallbacks")
              .total() -
          before,
      2u);

  // And the fallback produces the same catalog a filesystem variant does.
  auto rs = core::run_workflow(core::WorkflowKind::CombinedSimple, p);
  ASSERT_EQ(rt.catalog.size(), rs.catalog.size());
  for (std::size_t i = 0; i < rt.catalog.size(); ++i) {
    EXPECT_EQ(rt.catalog[i].id, rs.catalog[i].id);
    EXPECT_EQ(rt.catalog[i].count, rs.catalog[i].count);
  }
  fs::remove_all(p.workdir);
}

// --------------------------------------------------------------- synthetic

TEST(SyntheticRobustness, LogUniformSlopeOneWorks) {
  sim::SyntheticConfig cfg;
  cfg.mass_slope = 1.0;  // the log-uniform special case
  cfg.halo_count = 50;
  cfg.min_particles = 40;
  cfg.max_particles = 4000;
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u = sim::generate_synthetic(c, cosmo, cfg);
    for (const auto& t : u.truth) {
      EXPECT_GE(t.particles, 40u);
      EXPECT_LE(t.particles, 4001u);
    }
  });
}

}  // namespace
