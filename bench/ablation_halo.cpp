// Ablation: the halo-analysis chain, serial vs pooled dispatch.
//
// The halo chain (FOF linking + k-d tree build + MBP centers + SO/shape/
// concentration properties) was the last analysis phase still dispatching
// serially: the PM loops, FFT and deposit all ran on the dpp pool while the
// per-halo work pinned one core. This bench measures the full in-situ
// analysis step — register_full_halo_pipeline driven through the
// InSituAnalysisManager — on Backend::Serial vs Backend::ThreadPool, both
// standalone and while analysis-driver threads hammer the same process-wide
// pool (the paper's co-scheduling scenario). Each scenario runs the step
// kReps times and reports the median, so a stray scheduling hiccup cannot
// fake (or hide) a speedup.
//
// The headline contract is asserted, not eyeballed: every scenario's halo
// catalog is CRC'd (sorted by id, raw record bytes) and the process exits
// nonzero if any backend or scenario disagrees — the pooled chain must be
// bit-identical to serial, not merely statistically close.
//
// Results land in BENCH_halo.json.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/algorithms.h"
#include "core/cosmotools.h"
#include "dpp/primitives.h"
#include "sim/cosmology.h"
#include "sim/synthetic.h"
#include "stats/catalog.h"
#include "util/crc32.h"
#include "util/timer.h"

using namespace cosmo;

namespace {

constexpr int kReps = 5;  // median-of-5 per scenario
constexpr int kAnalysisDrivers = 2;

struct HaloChainStats {
  double step_median_s = 0.0;  // median analysis step wall time
  double fof_s = 0.0;          // halo.fof span total across all reps
  double tree_s = 0.0;         // halo.tree
  double centers_s = 0.0;      // halo.centers
  double props_s = 0.0;        // halo.properties
  std::size_t halos = 0;
  std::uint32_t crc = 0;       // CRC32 of the sorted catalog (bit-identity)
};

double span_total(const char* name) {
  for (const auto& st : obs::Tracer::instance().summary())
    if (st.name == name) return st.total_s;
  return 0.0;
}

/// Short unoptimizable per-item loop, same shape as ablation_deposit's
/// stand-in: keeps the pool busy without saturating memory bandwidth.
double item_work(std::size_t i) {
  double acc = 0.0;
  for (int k = 1; k <= 12; ++k)
    acc += std::sqrt(static_cast<double>(i % 1024 + static_cast<std::size_t>(k)));
  return acc;
}

/// One scenario: kReps full analysis steps on the given backend, optionally
/// with kAnalysisDrivers threads issuing parallel_for loops on the shared
/// pool for the whole duration (the co-scheduled in-situ job).
HaloChainStats run_scenario(dpp::Backend be, bool concurrent_analysis) {
  const double fof0 = span_total("halo.fof");
  const double tree0 = span_total("halo.tree");
  const double centers0 = span_total("halo.centers");
  const double props0 = span_total("halo.properties");

  std::atomic<bool> stop{false};
  std::atomic<double> sink{0.0};
  std::vector<std::thread> drivers;
  if (concurrent_analysis) {
    for (int d = 0; d < kAnalysisDrivers; ++d)
      drivers.emplace_back([&] {
        std::vector<double> out(1 << 14);
        while (!stop.load(std::memory_order_relaxed)) {
          dpp::ThreadPool::instance().parallel_for(
              out.size(), [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) out[i] = item_work(i);
              });
          sink.store(out[out.size() / 2], std::memory_order_relaxed);
        }
      });
  }

  HaloChainStats s;
  std::vector<double> step_s;
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    sim::SyntheticConfig ucfg;
    ucfg.box = 48.0;
    ucfg.seed = 20151115;
    ucfg.halo_count = 50;
    ucfg.min_particles = 60;
    ucfg.max_particles = 8000;  // the monster: O(n²) centering dominates
    ucfg.background_particles = 10000;
    ucfg.subclump_fraction = 0.0;
    auto u = sim::generate_synthetic(c, cosmo, ucfg);
    sim::SlabDecomposition decomp(1, ucfg.box);
    core::InSituAnalysisManager manager(c, decomp, ucfg.box,
                                        u.total_particles, be);
    core::register_full_halo_pipeline(manager);
    manager.configure(core::CosmoToolsConfig::parse(
        "[halofinder]\nlinking_length 0.32\nmin_size 40\noverload 2.0\n"));
    for (int r = 1; r <= kReps; ++r) {
      WallTimer t;
      sim::StepContext step{static_cast<std::size_t>(r),
                            static_cast<std::size_t>(kReps), 1.0, 0.0};
      auto ctx = manager.execute_step(step, u.local);
      step_s.push_back(t.seconds());
      stats::sort_catalog(ctx.catalog);
      const auto bytes = stats::catalog_to_bytes(ctx.catalog);
      const std::uint32_t crc = crc32(bytes.data(), bytes.size());
      if (r == 1) {
        s.halos = ctx.catalog.size();
        s.crc = crc;
      } else if (crc != s.crc) {
        s.crc = 0;  // reps disagreed — poison so the identity check fails
      }
    }
  });

  stop.store(true);
  for (auto& t : drivers) t.join();

  std::sort(step_s.begin(), step_s.end());
  s.step_median_s = step_s[step_s.size() / 2];
  s.fof_s = span_total("halo.fof") - fof0;
  s.tree_s = span_total("halo.tree") - tree0;
  s.centers_s = span_total("halo.centers") - centers0;
  s.props_s = span_total("halo.properties") - props0;
  return s;
}

void json_scenario(std::ofstream& j, const char* name, const HaloChainStats& s,
                   double baseline_step_s, bool last) {
  j << "    {\"scenario\": \"" << name
    << "\", \"step_median_s\": " << s.step_median_s
    << ", \"fof_s_total\": " << s.fof_s << ", \"tree_s_total\": " << s.tree_s
    << ", \"centers_s_total\": " << s.centers_s
    << ", \"properties_s_total\": " << s.props_s
    << ", \"speedup_vs_serial\": "
    << baseline_step_s / std::max(s.step_median_s, 1e-12) << "}"
    << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header(
      "Ablation — serial vs pooled halo-analysis chain (FOF + tree + "
      "centers + properties)",
      "the in-situ halo pipeline; the last serially-dispatched analysis "
      "phase");

  const auto serial = run_scenario(dpp::Backend::Serial, false);
  const auto pooled = run_scenario(dpp::Backend::ThreadPool, false);
  const auto serial_co = run_scenario(dpp::Backend::Serial, true);
  const auto pooled_co = run_scenario(dpp::Backend::ThreadPool, true);

  const bool bit_identical = serial.crc != 0 && serial.crc == pooled.crc &&
                             serial.crc == serial_co.crc &&
                             serial.crc == pooled_co.crc;

  TextTable t({"scenario", "step median (s)", "fof (s)", "centers (s)",
               "props (s)", "speedup"});
  auto add = [&](const char* name, const HaloChainStats& s, double base) {
    t.add_row({name, TextTable::num(s.step_median_s, 3),
               TextTable::num(s.fof_s / kReps, 3),
               TextTable::num(s.centers_s / kReps, 3),
               TextTable::num(s.props_s / kReps, 3),
               TextTable::num(base / std::max(s.step_median_s, 1e-12), 2)});
  };
  add("serial standalone (baseline)", serial, serial.step_median_s);
  add("pooled standalone", pooled, serial.step_median_s);
  add("serial + analysis drivers", serial_co, serial_co.step_median_s);
  add("pooled + analysis drivers", pooled_co, serial_co.step_median_s);
  t.print(std::cout);
  std::printf(
      "%zu catalog halos, %d analysis steps per scenario (median reported); "
      "%d analysis drivers in the concurrent scenarios\n"
      "catalog bit-identical across backends, grains and scenarios: %s "
      "(crc32 %08x)\npool workers: %zu; host threads: %u\n",
      serial.halos, kReps, kAnalysisDrivers,
      bit_identical ? "YES" : "NO — determinism contract violated",
      serial.crc, dpp::ThreadPool::instance().workers(),
      std::thread::hardware_concurrency());

  {
    std::ofstream j("BENCH_halo.json", std::ios::trunc);
    j << "{\n  \"bench\": \"ablation_halo\",\n"
      << "  \"pool_workers\": " << dpp::ThreadPool::instance().workers()
      << ",\n  \"host_threads\": " << std::thread::hardware_concurrency()
      << ",\n  \"catalog_halos\": " << serial.halos
      << ",\n  \"steps_per_scenario\": " << kReps
      << ",\n  \"analysis_drivers\": " << kAnalysisDrivers
      << ",\n  \"catalog_bit_identical\": "
      << (bit_identical ? "true" : "false") << ",\n  \"catalog_crc32\": \""
      << std::hex << serial.crc << std::dec << "\",\n"
      << "  \"baseline_serial_step\": {\n"
      << "    \"note\": \"Backend::Serial chain measured in this run; "
         "pooled speedups below are quoted against the matching serial "
         "scenario\",\n"
      << "    \"step_median_s\": " << serial.step_median_s << "\n  },\n"
      << "  \"scenarios\": [\n";
    json_scenario(j, "serial_standalone", serial, serial.step_median_s, false);
    json_scenario(j, "pooled_standalone", pooled, serial.step_median_s, false);
    json_scenario(j, "serial_concurrent_analysis", serial_co,
                  serial_co.step_median_s, false);
    json_scenario(j, "pooled_concurrent_analysis", pooled_co,
                  serial_co.step_median_s, true);
    j << "  ]\n}\n";
    if (j.good()) std::printf("wrote BENCH_halo.json\n");
  }
  return !bit_identical;
}
