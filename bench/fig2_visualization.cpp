// Regenerates Figure 2 (in kind): a rendering of the particle
// distribution, zoomed in to a sub-region of a single node's volume,
// showing the halos that have formed at the final time step.
//
// The paper's figure is a production visualization of the Q Continuum run;
// ours projects a clustered synthetic universe's density through one rank's
// slab sub-region into a log-scaled PGM image (written next to the binary)
// plus an ASCII preview. The structure to match: bright compact knots
// (halos) over a faint background web — not a uniform speckle.
#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "io/image.h"
#include "sim/synthetic.h"

using namespace cosmo;

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header(
      "Figure 2 — particle distribution of one node's sub-region", "Figure 2");

  sim::SyntheticConfig ucfg;
  ucfg.box = 48.0;
  ucfg.seed = 222;
  ucfg.halo_count = 500;
  ucfg.min_particles = 60;
  ucfg.max_particles = 20000;
  ucfg.background_particles = 40000;
  ucfg.subclump_fraction = 0.15;
  ucfg.subclump_min_host = 4000;

  comm::run_spmd(4, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u = sim::generate_synthetic(c, cosmo, ucfg);
    if (c.rank() != 1) return;  // "the volume of a single node" — one rank
    // Zoom: the central quarter of the box in x/y, this rank's z-slab.
    auto img = io::project_region(u.local, 12.0, 36.0, 12.0, 36.0, 512);
    const auto path = std::filesystem::temp_directory_path() /
                      "cosmoflow_fig2.pgm";
    img.write_pgm(path);
    std::printf("%s", img.ascii_art(76, 36).c_str());
    std::printf("\n512x512 log-scaled density projection written to %s\n",
                path.c_str());
    std::printf("shape to match (paper's Fig. 2): bright compact halos over "
                "a faint background, substructure inside the largest.\n");
  });
  return 0;
}
