// google-benchmark microbenchmarks for the substrate layers: data-parallel
// primitives on both backends (the PISTON portability claim), FFTs, k-d
// tree construction, and FOF — the kernels whose costs drive every
// workflow-level number in Tables 2–4.
#include <benchmark/benchmark.h>

#include <cmath>
#include <numeric>

#include "dpp/primitives.h"
#include "dpp/thread_pool.h"
#include "fft/fft.h"
#include "halo/center_finder.h"
#include "halo/fof.h"
#include "halo/kdtree.h"
#include "sim/particles.h"
#include "util/rng.h"

using namespace cosmo;

namespace {

sim::ParticleSet clustered(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  sim::ParticleSet p;
  const std::size_t blobs = 1 + n / 500;
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<double>(i % blobs);
    const double cx = 2.0 + std::fmod(b * 3.7, 28.0);
    const double cy = 2.0 + std::fmod(b * 7.1, 28.0);
    const double cz = 2.0 + std::fmod(b * 5.3, 28.0);
    p.push_back(static_cast<float>(rng.normal(cx, 0.2)),
                static_cast<float>(rng.normal(cy, 0.2)),
                static_cast<float>(rng.normal(cz, 0.2)), 0, 0, 0,
                static_cast<std::int64_t>(i));
  }
  return p;
}

void BM_Reduce(benchmark::State& state) {
  const auto backend = static_cast<dpp::Backend>(state.range(0));
  std::vector<double> v(static_cast<std::size_t>(state.range(1)));
  Rng rng(1);
  for (auto& x : v) x = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpp::reduce<double>(backend, v));
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_Reduce)
    ->Args({0, 1 << 16})
    ->Args({1, 1 << 16})
    ->Args({0, 1 << 20})
    ->Args({1, 1 << 20});

void BM_ExclusiveScan(benchmark::State& state) {
  const auto backend = static_cast<dpp::Backend>(state.range(0));
  std::vector<std::uint64_t> v(static_cast<std::size_t>(state.range(1)), 3),
      out(v.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpp::exclusive_scan<std::uint64_t>(backend, v, out));
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_ExclusiveScan)
    ->Args({0, 1 << 18})
    ->Args({1, 1 << 18});

void BM_SortIndices(benchmark::State& state) {
  const auto backend = static_cast<dpp::Backend>(state.range(0));
  std::vector<std::uint32_t> keys(static_cast<std::size_t>(state.range(1)));
  Rng rng(2);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng());
  std::vector<std::uint32_t> idx;
  for (auto _ : state) {
    dpp::sort_indices_by_key<std::uint32_t>(backend, keys, idx);
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_SortIndices)->Args({0, 1 << 16})->Args({1, 1 << 16});

void BM_Fft3dLocal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  fft::Grid3 g(n, n, n);
  Rng rng(3);
  for (auto& c : g.flat()) c = fft::Complex(rng.normal(), 0.0);
  for (auto _ : state) {
    fft::fft_3d(g, false);
    fft::fft_3d(g, true);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n * n * n));
}
BENCHMARK(BM_Fft3dLocal)->Arg(16)->Arg(32);

void BM_KdTreeBuild(benchmark::State& state) {
  auto p = clustered(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    auto tree = halo::KdTree::over_all(p);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdTreeBuild)->Arg(10000)->Arg(50000);

void BM_FofKdTree(benchmark::State& state) {
  auto p = clustered(static_cast<std::size_t>(state.range(0)), 5);
  halo::FofConfig cfg;
  cfg.linking_length = 0.25;
  cfg.min_size = 20;
  for (auto _ : state) {
    auto halos = halo::fof_find(p, halo::Periodicity::all(32.0), cfg);
    benchmark::DoNotOptimize(halos.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FofKdTree)->Arg(5000)->Arg(20000);

void BM_FofBruteForce(benchmark::State& state) {
  auto p = clustered(static_cast<std::size_t>(state.range(0)), 5);
  halo::FofConfig cfg;
  cfg.linking_length = 0.25;
  cfg.min_size = 20;
  for (auto _ : state) {
    auto halos = halo::fof_brute_force(p, halo::Periodicity::all(32.0), cfg);
    benchmark::DoNotOptimize(halos.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FofBruteForce)->Arg(5000);

void BM_CenterBrute(benchmark::State& state) {
  const auto backend = static_cast<dpp::Backend>(state.range(0));
  auto p = clustered(static_cast<std::size_t>(state.range(1)), 6);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  for (auto _ : state) {
    auto r = halo::mbp_center_brute(backend, p, members, {});
    benchmark::DoNotOptimize(r.particle);
  }
}
BENCHMARK(BM_CenterBrute)->Args({0, 3000})->Args({1, 3000});

// --- Scheduler microbenchmarks (work-stealing dispatch path) ------------
//
// A few sqrt's per item: heavy enough that the dispatch isn't pure
// overhead, light enough that chunk-claim cost shows up if the grain is
// mis-set.
double item_work(std::size_t i) {
  double acc = static_cast<double>(i & 0xff) * 1e-3;
  for (int r = 0; r < 8; ++r) acc = std::sqrt(acc + 1.0 + static_cast<double>(r));
  return acc;
}

/// Grain sweep on a fixed dispatch: range(0) = grain (0 = auto). Shows the
/// tradeoff between chunk-claim overhead (tiny grain) and lost balancing
/// slack (huge grain).
void BM_DispatchGrain(benchmark::State& state) {
  constexpr std::size_t kN = 1 << 16;
  std::vector<double> out(kN);
  const auto grain = static_cast<std::size_t>(state.range(0));
  auto& pool = dpp::ThreadPool::instance();
  for (auto _ : state) {
    pool.parallel_for(
        kN,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) out[i] = item_work(i);
        },
        grain);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(kN));
}
BENCHMARK(BM_DispatchGrain)
    ->Arg(0)  // auto (~4 chunks per worker)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(1 << 16);  // single chunk == inline run

/// Concurrent dispatch: each benchmark thread issues its own parallel_for
/// against the shared pool, the co-scheduling pattern of SPMD analysis
/// ranks. Under the old single-job scheduler these serialized on the
/// dispatch lock; under work stealing they share the workers chunk-wise.
void BM_ConcurrentDispatch(benchmark::State& state) {
  constexpr std::size_t kN = 1 << 14;
  std::vector<double> out(kN);
  auto& pool = dpp::ThreadPool::instance();
  for (auto _ : state) {
    pool.parallel_for(kN, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) out[i] = item_work(i);
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(kN));
}
BENCHMARK(BM_ConcurrentDispatch)->Threads(1)->Threads(2)->Threads(4);

/// Nested dispatch: an outer grain-1 parallel_for whose items each issue an
/// inner parallel_for (deadlock under the old scheduler; help-execution
/// makes it safe and cheap now).
void BM_NestedDispatch(benchmark::State& state) {
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 1 << 12;
  std::vector<double> out(kOuter * kInner);
  auto& pool = dpp::ThreadPool::instance();
  for (auto _ : state) {
    pool.parallel_for(
        kOuter,
        [&](std::size_t olo, std::size_t ohi) {
          for (std::size_t o = olo; o < ohi; ++o) {
            pool.parallel_for(kInner, [&, o](std::size_t lo, std::size_t hi) {
              for (std::size_t i = lo; i < hi; ++i)
                out[o * kInner + i] = item_work(i);
            });
          }
        },
        /*grain=*/1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kOuter * kInner));
}
BENCHMARK(BM_NestedDispatch);

void BM_KNearest(benchmark::State& state) {
  auto p = clustered(20000, 7);
  auto tree = halo::KdTree::over_all(p);
  Rng rng(8);
  for (auto _ : state) {
    auto nn = tree.k_nearest(rng.uniform(0, 32), rng.uniform(0, 32),
                             rng.uniform(0, 32), 20);
    benchmark::DoNotOptimize(nn.size());
  }
}
BENCHMARK(BM_KNearest);

}  // namespace

BENCHMARK_MAIN();
