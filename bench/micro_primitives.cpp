// google-benchmark microbenchmarks for the substrate layers: data-parallel
// primitives on both backends (the PISTON portability claim), FFTs, k-d
// tree construction, and FOF — the kernels whose costs drive every
// workflow-level number in Tables 2–4.
#include <benchmark/benchmark.h>

#include <numeric>

#include "dpp/primitives.h"
#include "fft/fft.h"
#include "halo/center_finder.h"
#include "halo/fof.h"
#include "halo/kdtree.h"
#include "sim/particles.h"
#include "util/rng.h"

using namespace cosmo;

namespace {

sim::ParticleSet clustered(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  sim::ParticleSet p;
  const std::size_t blobs = 1 + n / 500;
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<double>(i % blobs);
    const double cx = 2.0 + std::fmod(b * 3.7, 28.0);
    const double cy = 2.0 + std::fmod(b * 7.1, 28.0);
    const double cz = 2.0 + std::fmod(b * 5.3, 28.0);
    p.push_back(static_cast<float>(rng.normal(cx, 0.2)),
                static_cast<float>(rng.normal(cy, 0.2)),
                static_cast<float>(rng.normal(cz, 0.2)), 0, 0, 0,
                static_cast<std::int64_t>(i));
  }
  return p;
}

void BM_Reduce(benchmark::State& state) {
  const auto backend = static_cast<dpp::Backend>(state.range(0));
  std::vector<double> v(static_cast<std::size_t>(state.range(1)));
  Rng rng(1);
  for (auto& x : v) x = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpp::reduce<double>(backend, v));
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_Reduce)
    ->Args({0, 1 << 16})
    ->Args({1, 1 << 16})
    ->Args({0, 1 << 20})
    ->Args({1, 1 << 20});

void BM_ExclusiveScan(benchmark::State& state) {
  const auto backend = static_cast<dpp::Backend>(state.range(0));
  std::vector<std::uint64_t> v(static_cast<std::size_t>(state.range(1)), 3),
      out(v.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpp::exclusive_scan<std::uint64_t>(backend, v, out));
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_ExclusiveScan)
    ->Args({0, 1 << 18})
    ->Args({1, 1 << 18});

void BM_SortIndices(benchmark::State& state) {
  const auto backend = static_cast<dpp::Backend>(state.range(0));
  std::vector<std::uint32_t> keys(static_cast<std::size_t>(state.range(1)));
  Rng rng(2);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng());
  std::vector<std::uint32_t> idx;
  for (auto _ : state) {
    dpp::sort_indices_by_key<std::uint32_t>(backend, keys, idx);
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_SortIndices)->Args({0, 1 << 16})->Args({1, 1 << 16});

void BM_Fft3dLocal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  fft::Grid3 g(n, n, n);
  Rng rng(3);
  for (auto& c : g.flat()) c = fft::Complex(rng.normal(), 0.0);
  for (auto _ : state) {
    fft::fft_3d(g, false);
    fft::fft_3d(g, true);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n * n * n));
}
BENCHMARK(BM_Fft3dLocal)->Arg(16)->Arg(32);

void BM_KdTreeBuild(benchmark::State& state) {
  auto p = clustered(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    auto tree = halo::KdTree::over_all(p);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdTreeBuild)->Arg(10000)->Arg(50000);

void BM_FofKdTree(benchmark::State& state) {
  auto p = clustered(static_cast<std::size_t>(state.range(0)), 5);
  halo::FofConfig cfg;
  cfg.linking_length = 0.25;
  cfg.min_size = 20;
  for (auto _ : state) {
    auto halos = halo::fof_find(p, halo::Periodicity::all(32.0), cfg);
    benchmark::DoNotOptimize(halos.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FofKdTree)->Arg(5000)->Arg(20000);

void BM_FofBruteForce(benchmark::State& state) {
  auto p = clustered(static_cast<std::size_t>(state.range(0)), 5);
  halo::FofConfig cfg;
  cfg.linking_length = 0.25;
  cfg.min_size = 20;
  for (auto _ : state) {
    auto halos = halo::fof_brute_force(p, halo::Periodicity::all(32.0), cfg);
    benchmark::DoNotOptimize(halos.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FofBruteForce)->Arg(5000);

void BM_CenterBrute(benchmark::State& state) {
  const auto backend = static_cast<dpp::Backend>(state.range(0));
  auto p = clustered(static_cast<std::size_t>(state.range(1)), 6);
  std::vector<std::uint32_t> members(p.size());
  std::iota(members.begin(), members.end(), 0u);
  for (auto _ : state) {
    auto r = halo::mbp_center_brute(backend, p, members, {});
    benchmark::DoNotOptimize(r.particle);
  }
}
BENCHMARK(BM_CenterBrute)->Args({0, 3000})->Args({1, 3000});

void BM_KNearest(benchmark::State& state) {
  auto p = clustered(20000, 7);
  auto tree = halo::KdTree::over_all(p);
  Rng rng(8);
  for (auto _ : state) {
    auto nn = tree.k_nearest(rng.uniform(0, 32), rng.uniform(0, 32),
                             rng.uniform(0, 32), 20);
    benchmark::DoNotOptimize(nn.size());
  }
}
BENCHMARK(BM_KNearest);

}  // namespace

BENCHMARK_MAIN();
