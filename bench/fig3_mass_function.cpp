// Regenerates Figure 3: log-log halo counts vs mass at z = 0, split at the
// in-situ/off-line threshold.
//
// The paper's plot shows the red histogram (halos fully analyzed in-situ,
// 99.9% of 167,686,789 halos) against the blue one (84,719 halos off-loaded
// to Moonlight above the 300,000-particle cut). We regenerate the same
// split on a downscaled population with the same power-law character and
// print both the figure series and the headline fractions. Only the halo
// finder runs (the figure needs counts, not centers).
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "halo/fof.h"
#include "sim/synthetic.h"
#include "stats/mass_function.h"

using namespace cosmo;

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header("Figure 3 — split halo mass function at z=0",
                             "Figure 3");

  sim::SyntheticConfig ucfg;
  ucfg.box = 48.0;
  ucfg.seed = 333;
  ucfg.halo_count = 1800;
  ucfg.min_particles = 60;
  ucfg.max_particles = 26000;
  ucfg.background_particles = 3000;
  ucfg.subclump_fraction = 0.0;

  stats::HaloCatalog catalog;
  comm::run_spmd(4, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u = sim::generate_synthetic(c, cosmo, ucfg);
    sim::SlabDecomposition decomp(c.size(), ucfg.box);
    halo::FofConfig fcfg;
    fcfg.linking_length = 0.32;
    fcfg.min_size = 40;
    auto r = halo::fof_distributed(c, decomp, u.local, fcfg, 3.0);
    stats::HaloCatalog part;
    for (const auto& h : r.halos) {
      stats::HaloRecord rec;
      rec.id = h.id;
      rec.count = h.members.size();
      part.push_back(rec);
    }
    auto bytes = stats::catalog_to_bytes(part);
    auto all = c.gatherv<std::byte>(bytes, 0);
    if (c.rank() == 0) catalog = stats::catalog_from_bytes(all);
  });

  const std::uint64_t split = 1200;  // the downscaled 300,000
  auto mf = stats::mass_function(catalog, split, 16, 30.0, 1e5);

  TextTable t({"mass bin (particles)", "in-situ halos (red)",
               "off-loaded halos (blue)", "log10(count+1)"});
  for (std::size_t b = 0; b < mf.bin_lo.size(); ++b) {
    char bin[64];
    std::snprintf(bin, sizeof(bin), "[%.0f, %.0f)", mf.bin_lo[b], mf.bin_hi[b]);
    const auto total = mf.in_situ[b] + mf.off_loaded[b];
    t.add_row({bin, std::to_string(mf.in_situ[b]),
               std::to_string(mf.off_loaded[b]),
               TextTable::num(std::log10(static_cast<double>(total) + 1.0), 2)});
  }
  t.print(std::cout);

  const double offload_fraction =
      static_cast<double>(mf.total_off_loaded) /
      static_cast<double>(mf.total_halos);
  std::printf("\nhalos found: %llu;  off-loaded: %llu (%.2f%%);  analyzed "
              "in-situ: %.2f%%\n",
              static_cast<unsigned long long>(mf.total_halos),
              static_cast<unsigned long long>(mf.total_off_loaded),
              100.0 * offload_fraction, 100.0 * (1.0 - offload_fraction));
  std::printf("paper reference: 167,686,789 halos, 84,719 off-loaded "
              "(0.05%%); in-situ share 99.9%%.\n"
              "shape to match: monotonically falling power law; the blue "
              "(off-loaded) series is a tiny high-mass tail.\n");
  return 0;
}
