// Shared helpers for the table/figure regeneration benches.
//
// Each bench binary regenerates one table or figure from the paper on a
// downscaled problem: the absolute numbers differ from the paper's
// Titan-scale runs (documented in EXPERIMENTS.md), but the structure —
// who wins, what is imbalanced, where the crossovers sit — is measured,
// not modeled, unless a column explicitly says "projected".
#pragma once

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/workflows.h"
#include "obs/obs.h"
#include "util/table.h"

using cosmo::TextTable;

namespace bench_common {

/// Observability flags shared by every bench binary:
///   --trace-out=<file>   export the run's spans as Chrome trace-event JSON
///                        (open in chrome://tracing or ui.perfetto.dev)
///   --metrics            print the span summary + metrics registry on exit
/// Construct one at the top of main(); export happens on destruction so the
/// whole run is covered.
struct ObsSession {
  std::filesystem::path trace_out;
  bool print_metrics = false;

  ObsSession(int argc, char** argv) {
    const std::string trace_flag = "--trace-out=";
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind(trace_flag, 0) == 0)
        trace_out = a.substr(trace_flag.size());
      else if (a == "--metrics")
        print_metrics = true;
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() {
    if (print_metrics) {
      std::cout << "\nspan summary:\n";
      cosmo::obs::Tracer::instance().print_summary(std::cout);
      std::cout << "\nmetrics:\n";
      cosmo::obs::MetricsRegistry::instance().print(std::cout);
    }
    if (!trace_out.empty()) {
      if (cosmo::obs::Tracer::instance().export_chrome_trace_file(trace_out))
        std::cout << "\ntrace written to " << trace_out.string() << "\n";
      else
        std::cerr << "\nfailed to write trace to " << trace_out.string()
                  << "\n";
    }
  }
};

/// The downscaled analysis problem used by the Table 3/4 benches: a stand-in
/// for the paper's 1024³/32-node test run. One rare, large halo dominates
/// center-finding cost, as in the paper (largest halo 2,548,321 particles).
inline cosmo::core::WorkflowProblem table34_problem(const std::string& tag) {
  cosmo::core::WorkflowProblem p;
  p.universe.box = 48.0;
  p.universe.seed = 20151115;  // SC'15 started Nov 15, 2015
  p.universe.halo_count = 60;
  p.universe.min_particles = 60;
  p.universe.max_particles = 26000;  // the "monster": ~18x the median halo
  p.universe.background_particles = 12000;
  p.universe.subclump_fraction = 0.0;
  p.ranks = 8;          // stands in for the paper's 32 Titan nodes
  p.analysis_ranks = 2; // stands in for the paper's 4-node analysis job
  p.ranks_per_file = 4;
  p.linking_length = 0.32;
  p.min_halo_size = 40;
  p.overload = 3.0;
  p.threshold = 1200;   // stands in for the paper's 300,000 split
  p.compute_so_mass = true;
  p.compute_subhalos = false;
  p.workdir = std::filesystem::temp_directory_path() /
              ("cosmoflow_bench_" + tag + "_" + std::to_string(::getpid()));
  return p;
}

/// Core-hour charge for a phase on the modeled Titan partition:
/// nodes × hours × 30 (the paper's charging policy).
inline double titan_core_hours(int nodes, double seconds) {
  return nodes * (seconds / 3600.0) * 30.0;
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("\n=== %s ===\n(reproduces %s; downscaled, shapes comparable, "
              "absolute numbers machine-local)\n\n",
              what, paper_ref);
}

}  // namespace bench_common
