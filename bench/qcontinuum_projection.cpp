// Regenerates the §4.1 Q Continuum cost accounting: the 6.5× headline.
//
// Two parts: (1) the paper's own arithmetic from its published machine
// parameters (Titan charge policy, Moonlight 0.55 factor, measured task
// times) — this must land on 0.52M vs 3.4M core-hours; (2) the same
// accounting driven by OUR measured center-finder cost model and the
// split auto-tuner, showing the decision structure (when to split, how
// many co-scheduled ranks) on the downscaled population.
#include <cstdio>

#include "bench_common.h"
#include "core/machine_model.h"
#include "core/split_tuner.h"
#include "dpp/primitives.h"
#include "halo/center_finder.h"
#include "sim/synthetic.h"
#include "util/timer.h"

using namespace cosmo;

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header("§4.1 — Q Continuum analysis cost accounting",
                             "Section 4.1 narrative numbers");

  // Part 1: the paper's arithmetic.
  const auto acc = core::qcontinuum_accounting({});
  TextTable t({"quantity", "reproduced", "paper"});
  t.add_row({"off-loaded centers, Titan-equivalent core hours",
             TextTable::num(acc.offline_core_hours, 0), "~30,000"});
  t.add_row({"combined workflow total (M core hours)",
             TextTable::num(acc.combined_core_hours / 1e6, 2), "0.52"});
  t.add_row({"full in-situ/off-line alternative (M core hours)",
             TextTable::num(acc.insitu_only_core_hours / 1e6, 2), "3.4"});
  t.add_row({"cost ratio", TextTable::num(acc.cost_ratio, 1), "6.5"});
  t.print(std::cout);

  // Part 2: the split auto-tuner on a measured cost model.
  std::printf("\nSplit auto-tuner driven by this machine's measured "
              "center-finder:\n");
  // Calibrate t(n) = c n² by timing one real brute-force center find.
  auto cost = core::calibrate_center_cost(
      [&](std::uint64_t n) {
        sim::ParticleSet p;
        Rng rng(99);
        for (std::uint64_t i = 0; i < n; ++i)
          p.push_back(static_cast<float>(rng.normal(5, 0.3)),
                      static_cast<float>(rng.normal(5, 0.3)),
                      static_cast<float>(rng.normal(5, 0.3)), 0, 0, 0,
                      static_cast<std::int64_t>(i));
        std::vector<std::uint32_t> members(p.size());
        std::iota(members.begin(), members.end(), 0u);
        WallTimer timer;
        halo::mbp_center_brute(dpp::Backend::ThreadPool, p, members, {});
        return timer.seconds();
      },
      4000);
  std::printf("  measured cost model: t(n) = %.3e * n^2 seconds\n",
              cost.coeff);

  // A Q Continuum-shaped halo population (scaled counts, same tail shape).
  std::vector<std::uint64_t> halo_sizes;
  {
    Rng rng(7);
    for (int i = 0; i < 200000; ++i) {
      const double u = rng.uniform();
      // power-law n(>m) ∝ m^-0.9 from 40 up to 25M
      const double m =
          40.0 * std::pow(1.0 - u * (1.0 - std::pow(40.0 / 25e6, 0.9)),
                          -1.0 / 0.9);
      halo_sizes.push_back(static_cast<std::uint64_t>(m));
    }
    halo_sizes.push_back(25000000);  // the monster is rare but certain
  }
  const std::uint64_t total_particles = 1ull << 36;  // downscaled 8192³
  auto d = core::tune_split(total_particles, halo_sizes,
                            io::FilesystemModel::titan_lustre(),
                            io::InterconnectModel::titan_gemini(), cost);
  std::printf("  t_io (write+read+redistribute)     : %.0f s\n", d.t_io_s);
  std::printf("  m_max_io (threshold)               : %llu particles\n",
              static_cast<unsigned long long>(d.m_max_io));
  std::printf("  largest halo                       : %llu particles\n",
              static_cast<unsigned long long>(d.largest_halo));
  std::printf("  decision                           : %s\n",
              d.all_in_situ ? "all centers in-situ"
                            : "split: off-load halos above the threshold");
  if (!d.all_in_situ) {
    std::printf("  off-line work T                    : %.0f s\n",
                d.total_offline_work_s);
    std::printf("  largest-halo work t_max            : %.0f s\n",
                d.largest_halo_work_s);
    std::printf("  co-scheduled job size ceil(T/t_max): %llu ranks\n",
                static_cast<unsigned long long>(d.coschedule_ranks));
    std::vector<std::uint64_t> big;
    for (const auto n : halo_sizes)
      if (n > d.threshold) big.push_back(n);
    auto assignment = core::balance_halos(big, d.coschedule_ranks, cost);
    double max_load = 0, min_load = 1e300;
    for (const auto& ranks_halos : assignment) {
      double load = 0;
      for (const auto h : ranks_halos) load += cost.seconds(big[h]);
      max_load = std::max(max_load, load);
      min_load = std::min(min_load, load);
    }
    std::printf("  LPT balance (max/min rank load)    : %.2f\n",
                max_load / std::max(min_load, 1e-9));
  }
  std::printf("\npaper reference: threshold 300,000 chosen manually; 84,719 "
              "halos off-loaded; longest Moonlight job 37.8 h,\n"
              "shortest 6.0 h; longest single block 10.6 h (the ~25M-particle "
              "halo).\n");
  return 0;
}
