// Regenerates Table 1: Level 1 / 2 / 3 data product sizes.
//
// Two columns of the paper's table are pure data-model arithmetic at the
// production scales (1024³ and 8192³); we also measure the same quantities
// on a real downscaled run through the combined workflow so the ratios
// (Level 2 ≈ 20% of Level 1; Level 3 tiny) are demonstrated, not assumed.
#include <cinttypes>
#include <cstdio>

#include "bench_common.h"
#include "sim/particles.h"

using namespace cosmo;

namespace {

std::string human(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 5) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, units[u]);
  return buf;
}

void model_row(TextTable& t, const char* name, double np_per_dim,
               double level2_fraction, double level3_bytes_per_halo,
               double halos) {
  const double n = np_per_dim * np_per_dim * np_per_dim;
  const double l1 = n * sim::ParticleSet::kBytesPerParticle;
  const double l2 = l1 * level2_fraction;
  const double l3 = halos * level3_bytes_per_halo;
  t.add_row({name, human(l1), human(l2), human(l3)});
}

}  // namespace

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header("Table 1 — Level 1/2/3 data product sizes",
                             "Table 1");

  TextTable model({"simulation (last step)", "Level 1 (raw particles)",
                   "Level 2 (halo particles)", "Level 3 (halo centers)"});
  // Paper: 1024³ → ~40 GB L1, ~5 GB L2, ~43 MB L3;
  //        8192³ → ~20 TB L1, ~4 TB L2, ~10 GB L3.
  // L2/L1 fractions implied: 0.125 (1024³) and 0.2 (8192³, the "factor of
  // five" reduction). L3 sizing uses the catalog record cost per halo.
  model_row(model, "1024^3 (model)", 1024.0, 0.125,
            static_cast<double>(sizeof(stats::HaloRecord)), 1.1e6);
  model_row(model, "8192^3 (model)", 8192.0, 0.20,
            static_cast<double>(sizeof(stats::HaloRecord)), 167686789.0);
  model.print(std::cout);

  std::printf("\npaper reference: 1024^3 → ~40 GB / ~5 GB / ~43 MB;"
              "  8192^3 → ~20 TB / ~4 TB / ~10 GB\n");

  // Measured downscaled run through the combined workflow.
  auto p = bench_common::table34_problem("table1");
  const std::uint64_t total = sim::synthetic_total_particles(p.universe);
  auto r = core::run_workflow(core::WorkflowKind::CombinedSimple, p);
  const std::uint64_t l1 = total * sim::ParticleSet::kBytesPerParticle;

  TextTable measured({"measured downscaled run", "Level 1", "Level 2",
                      "Level 3", "L2/L1"});
  measured.add_row({
      std::to_string(total) + " particles",
      human(static_cast<double>(l1)),
      human(static_cast<double>(r.level2_bytes)),
      human(static_cast<double>(r.level3_bytes)),
      TextTable::num(static_cast<double>(r.level2_bytes) /
                         static_cast<double>(l1),
                     3),
  });
  std::printf("\n");
  measured.print(std::cout);
  std::printf("\nhalos: %" PRIu64 " total, %" PRIu64
              " deferred past the threshold (their particles form Level 2)\n",
              r.total_halos, r.deferred_halos);
  std::filesystem::remove_all(p.workdir);
  return 0;
}
