// Ablation: dispatch costs in the in-situ framework, two layers.
//
// Part 1 — virtual dispatch (InSituAnalysisManager) vs CRTP-style static
// dispatch (StaticPipeline). §3.1: "There is a very small overhead for the
// virtual function calls, which could in principle be avoided by using the
// Curiously Recurring Template Pattern." This quantifies "very small".
//
// Part 2 — concurrent parallel_for dispatch: several SPMD ranks drive the
// process-wide dpp worker pool at once, the co-scheduling scenario the
// paper's in-situ analysis lives in. Measures aggregate throughput, the
// dpp.dispatch_wait tail, and (with the work-stealing scheduler) steal
// counts, for both a uniform and a 10x-imbalanced rank workload. Results
// land in BENCH_dpp.json so the perf trajectory is recorded run-over-run.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>

#include "bench_common.h"
#include "core/static_pipeline.h"
#include "dpp/primitives.h"
#include "sim/synthetic.h"
#include "util/timer.h"

using namespace cosmo;

namespace {

/// Deliberately trivial algorithm: dispatch overhead dominates. The
/// volatile accumulator keeps the optimizer from collapsing the static
/// pipeline's loop entirely.
class TinyAlgorithm : public core::InSituAlgorithm {
 public:
  void SetParameters(const core::ParameterMap&) override {}
  bool ShouldExecute(const sim::StepContext& s) const override {
    return s.step % 2 == 0 || s.step == s.total_steps;
  }
  void Execute(const sim::StepContext& s, core::AnalysisContext& ctx) override {
    acc_ = acc_ + static_cast<double>(ctx.particles->size() + s.step % 3);
  }
  std::string Name() const override { return "tiny"; }
  volatile double acc_ = 0.0;
};

/// One concurrent-dispatch scenario: `ranks` SPMD ranks each issue
/// `dispatches` parallel_for calls over their own item count. Per-item work
/// is a short but unoptimizable float loop (~100ns) so dispatch overhead and
/// pool sharing, not memory bandwidth, dominate the measurement.
struct ConcurrentStats {
  double wall_s = 0.0;
  double items = 0.0;
  std::uint64_t dispatch_wait_us = 0;
  double wait_ms_p99 = 0.0;
  std::uint64_t steals = 0;
  std::uint64_t dispatches = 0;
};

double item_work(std::size_t i) {
  double acc = 0.0;
  for (int k = 1; k <= 12; ++k)
    acc += std::sqrt(static_cast<double>(i % 1024 + static_cast<std::size_t>(k)));
  return acc;
}

/// Approximate p99 of the dpp.dispatch_wait_ms histogram (upper edge of the
/// bin containing the 99th percentile; overflow reports the histogram max).
double dispatch_wait_p99_ms() {
  auto& reg = obs::MetricsRegistry::instance();
  if (!reg.has_histogram("dpp.dispatch_wait_ms")) return 0.0;
  const auto h = reg.histogram("dpp.dispatch_wait_ms", 0.0, 50.0, 50).merged();
  const std::uint64_t total = h.total();
  if (total == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(0.99 * static_cast<double>(total));
  std::uint64_t seen = h.underflow();
  for (std::size_t b = 0; b < h.bins(); ++b) {
    seen += h.count(b);
    if (seen >= target) return h.bin_lo(b) + h.width();
  }
  return 50.0;  // p99 sits in the overflow bin
}

ConcurrentStats run_concurrent(int ranks, int dispatches,
                               std::size_t items_uniform,
                               bool imbalanced) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  std::atomic<double> sink{0.0};
  WallTimer wall;
  double total_items = 0.0;
  comm::run_spmd(ranks, [&](comm::Comm& c) {
    // Imbalanced mode: rank 0 carries 10x the items of every other rank —
    // the "one monster halo" shape from the paper's center-finder phase.
    const std::size_t mine =
        imbalanced && c.rank() == 0 ? 10 * items_uniform : items_uniform;
    double local = 0.0;
    std::vector<double> out(mine);
    for (int d = 0; d < dispatches; ++d) {
      dpp::ThreadPool::instance().parallel_for(
          mine, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) out[i] = item_work(i);
          });
      local += out[mine / 2];
    }
    sink.store(local);  // keep `out` observable
    c.barrier();
  });
  ConcurrentStats s;
  s.wall_s = wall.seconds();
  for (int r = 0; r < ranks; ++r)
    total_items += static_cast<double>(dispatches) *
                   static_cast<double>(imbalanced && r == 0 ? 10 * items_uniform
                                                           : items_uniform);
  s.items = total_items;
  s.dispatch_wait_us = reg.counter("dpp.dispatch_wait_us").total();
  s.wait_ms_p99 = dispatch_wait_p99_ms();
  s.dispatches = reg.counter("dpp.dispatches").total();
  if (reg.has_counter("dpp.steals"))
    s.steals = reg.counter("dpp.steals").total();
  return s;
}

void json_scenario(std::ofstream& j, const char* name, int ranks,
                   int dispatches, const ConcurrentStats& s, bool last) {
  j << "    {\"scenario\": \"" << name << "\", \"ranks\": " << ranks
    << ", \"dispatches_per_rank\": " << dispatches
    << ", \"wall_s\": " << s.wall_s << ", \"items\": " << s.items
    << ", \"throughput_items_per_s\": " << (s.items / std::max(s.wall_s, 1e-9))
    << ", \"dispatch_wait_us_total\": " << s.dispatch_wait_us
    << ", \"dispatch_wait_ms_p99\": " << s.wait_ms_p99
    << ", \"pool_dispatches\": " << s.dispatches
    << ", \"steals\": " << s.steals << "}" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header(
      "Ablation — virtual vs CRTP dispatch for the in-situ framework",
      "§3.1 (virtual-call overhead / CRTP footnote)");

  const std::size_t steps = 2000000;
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::SlabDecomposition decomp(1, 64.0);
    sim::ParticleSet particles(8);
    core::CosmoToolsConfig empty = core::CosmoToolsConfig::parse("");

    // Virtual path: the production manager.
    core::InSituAnalysisManager manager(c, decomp, 64.0, 8);
    manager.add(std::make_unique<TinyAlgorithm>());
    manager.configure(empty);
    WallTimer tv;
    for (std::size_t s = 1; s <= steps; ++s) {
      sim::StepContext step{s, steps, 1.0, 0.0};
      manager.execute_step(step, particles);
    }
    const double virtual_s = tv.seconds();

    // Static path: same algorithm type, compile-time pipeline.
    core::StaticPipeline<TinyAlgorithm> pipeline;
    pipeline.configure(empty);
    core::AnalysisContext ctx;
    ctx.comm = &c;
    ctx.decomp = &decomp;
    ctx.particles = &particles;
    ctx.box = 64.0;
    WallTimer ts;
    for (std::size_t s = 1; s <= steps; ++s) {
      sim::StepContext step{s, steps, 1.0, 0.0};
      pipeline.execute_step(step, ctx);
    }
    const double static_s = ts.seconds();

    const double safe_static = std::max(static_s, 1e-9);
    TextTable t({"dispatch", "total (s)", "ns/step", "relative"});
    t.add_row({"virtual (manager)", TextTable::num(virtual_s, 3),
               TextTable::num(virtual_s / steps * 1e9, 1),
               TextTable::num(virtual_s / safe_static, 2)});
    t.add_row({"CRTP (StaticPipeline)", TextTable::num(static_s, 3),
               TextTable::num(static_s / steps * 1e9, 1), "1.00"});
    t.print(std::cout);

    // Context: one realistic analysis step for scale.
    sim::Cosmology cosmo;
    sim::SyntheticConfig ucfg;
    ucfg.box = 64.0;
    ucfg.halo_count = 20;
    ucfg.max_particles = 2000;
    auto u = sim::generate_synthetic(c, cosmo, ucfg);
    core::InSituAnalysisManager real(c, decomp, ucfg.box, u.total_particles);
    core::register_halo_pipeline(real);
    real.configure(core::CosmoToolsConfig::parse(
        "[halofinder]\nlinking_length 0.3\noverload 2.0\n"
        "[subhalos]\nenabled false\n"));
    WallTimer tr;
    sim::StepContext one{1, 1, 1.0, 0.0};
    real.execute_step(one, u.local);
    std::printf("\none realistic halo-pipeline step: %.3f s — dispatch "
                "overhead is ~%.5f%% of it.\n"
                "conclusion (as the paper implies): keep the flexible "
                "virtual interface; CRTP is available when a pipeline is "
                "fixed at compile time.\n",
                tr.seconds(),
                100.0 * (virtual_s - static_s) / steps / tr.seconds());
  });

  // ---- Part 2: concurrent SPMD parallel_for dispatch -----------------------
  std::printf("\n=== Concurrent parallel_for dispatch (co-scheduled ranks "
              "sharing the dpp pool) ===\n");
  const bool work_stealing = [] {
    // Probe: the work-stealing scheduler registers dpp.steals on first use.
    dpp::ThreadPool::instance().parallel_for(
        1 << 14, [](std::size_t, std::size_t) {});
    return obs::MetricsRegistry::instance().has_counter("dpp.steals");
  }();
  constexpr int kRanks = 4;
  constexpr int kDispatches = 48;
  constexpr std::size_t kItems = 1 << 14;

  const auto solo = run_concurrent(1, kDispatches, kItems, false);
  const auto uniform = run_concurrent(kRanks, kDispatches, kItems, false);
  const auto imbalanced = run_concurrent(kRanks, kDispatches, kItems, true);

  TextTable t({"scenario", "ranks", "wall (s)", "Mitems/s",
               "dispatch wait (ms total)", "wait p99 (ms)", "steals"});
  auto add = [&](const char* name, int ranks, const ConcurrentStats& s) {
    t.add_row({name, std::to_string(ranks), TextTable::num(s.wall_s, 3),
               TextTable::num(s.items / std::max(s.wall_s, 1e-9) / 1e6, 2),
               TextTable::num(static_cast<double>(s.dispatch_wait_us) / 1e3, 1),
               TextTable::num(s.wait_ms_p99, 1), std::to_string(s.steals)});
  };
  add("solo rank", 1, solo);
  add("uniform", kRanks, uniform);
  add("imbalanced 10x", kRanks, imbalanced);
  t.print(std::cout);
  std::printf("scheduler: %s; pool workers: %zu; host threads: %u\n",
              work_stealing ? "work-stealing task groups"
                            : "serialized single-job (pre-redesign)",
              dpp::ThreadPool::instance().workers(),
              std::thread::hardware_concurrency());

  {
    std::ofstream j("BENCH_dpp.json", std::ios::trunc);
    j << "{\n  \"bench\": \"ablation_dispatch.concurrent\",\n"
      << "  \"scheduler\": \""
      << (work_stealing ? "work-stealing" : "serialized-baseline") << "\",\n"
      << "  \"pool_workers\": " << dpp::ThreadPool::instance().workers()
      << ",\n  \"host_threads\": " << std::thread::hardware_concurrency()
      << ",\n  \"scenarios\": [\n";
    json_scenario(j, "solo", 1, kDispatches, solo, false);
    json_scenario(j, "uniform", kRanks, kDispatches, uniform, false);
    json_scenario(j, "imbalanced_10x", kRanks, kDispatches, imbalanced, true);
    j << "  ],\n";
    // Reference run of the SAME scenarios against the pre-redesign
    // serialized scheduler (captured on a 1-core/2-worker host before the
    // work-stealing rewrite), kept here so every BENCH_dpp.json carries the
    // pre/post ablation. Headline: the 10x-imbalanced 4-rank case spent
    // 979.7 ms total (p99 45 ms) queueing on the dispatch lock, 0 steals.
    j << "  \"baseline_serialized_scheduler\": {\n"
      << "    \"note\": \"pre-redesign reference, 1-core host, 2 workers\",\n"
      << "    \"scenarios\": [\n"
      << "      {\"scenario\": \"solo\", \"wall_s\": 0.0262, "
         "\"throughput_items_per_s\": 3.00e7, \"dispatch_wait_us_total\": 0, "
         "\"dispatch_wait_ms_p99\": 1, \"steals\": 0},\n"
      << "      {\"scenario\": \"uniform\", \"wall_s\": 0.0899, "
         "\"throughput_items_per_s\": 3.50e7, \"dispatch_wait_us_total\": "
         "228334, \"dispatch_wait_ms_p99\": 11, \"steals\": 0},\n"
      << "      {\"scenario\": \"imbalanced_10x\", \"wall_s\": 0.3784, "
         "\"throughput_items_per_s\": 2.70e7, \"dispatch_wait_us_total\": "
         "979655, \"dispatch_wait_ms_p99\": 45, \"steals\": 0}\n"
      << "    ]\n  }\n}\n";
    if (j.good()) std::printf("wrote BENCH_dpp.json\n");
  }
  return 0;
}
