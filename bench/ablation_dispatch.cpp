// Ablation: virtual dispatch (InSituAnalysisManager) vs CRTP-style static
// dispatch (StaticPipeline) for the in-situ framework.
//
// §3.1: "There is a very small overhead for the virtual function calls,
// which could in principle be avoided by using the Curiously Recurring
// Template Pattern." This bench quantifies "very small": many steps of a
// cheap algorithm through both dispatch paths, then one realistic pipeline
// step for context — showing why the paper (and this library) keep the
// flexible virtual interface as the default.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/static_pipeline.h"
#include "sim/synthetic.h"
#include "util/timer.h"

using namespace cosmo;

namespace {

/// Deliberately trivial algorithm: dispatch overhead dominates. The
/// volatile accumulator keeps the optimizer from collapsing the static
/// pipeline's loop entirely.
class TinyAlgorithm : public core::InSituAlgorithm {
 public:
  void SetParameters(const core::ParameterMap&) override {}
  bool ShouldExecute(const sim::StepContext& s) const override {
    return s.step % 2 == 0 || s.step == s.total_steps;
  }
  void Execute(const sim::StepContext& s, core::AnalysisContext& ctx) override {
    acc_ = acc_ + static_cast<double>(ctx.particles->size() + s.step % 3);
  }
  std::string Name() const override { return "tiny"; }
  volatile double acc_ = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header(
      "Ablation — virtual vs CRTP dispatch for the in-situ framework",
      "§3.1 (virtual-call overhead / CRTP footnote)");

  const std::size_t steps = 2000000;
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::SlabDecomposition decomp(1, 64.0);
    sim::ParticleSet particles(8);
    core::CosmoToolsConfig empty = core::CosmoToolsConfig::parse("");

    // Virtual path: the production manager.
    core::InSituAnalysisManager manager(c, decomp, 64.0, 8);
    manager.add(std::make_unique<TinyAlgorithm>());
    manager.configure(empty);
    WallTimer tv;
    for (std::size_t s = 1; s <= steps; ++s) {
      sim::StepContext step{s, steps, 1.0, 0.0};
      manager.execute_step(step, particles);
    }
    const double virtual_s = tv.seconds();

    // Static path: same algorithm type, compile-time pipeline.
    core::StaticPipeline<TinyAlgorithm> pipeline;
    pipeline.configure(empty);
    core::AnalysisContext ctx;
    ctx.comm = &c;
    ctx.decomp = &decomp;
    ctx.particles = &particles;
    ctx.box = 64.0;
    WallTimer ts;
    for (std::size_t s = 1; s <= steps; ++s) {
      sim::StepContext step{s, steps, 1.0, 0.0};
      pipeline.execute_step(step, ctx);
    }
    const double static_s = ts.seconds();

    const double safe_static = std::max(static_s, 1e-9);
    TextTable t({"dispatch", "total (s)", "ns/step", "relative"});
    t.add_row({"virtual (manager)", TextTable::num(virtual_s, 3),
               TextTable::num(virtual_s / steps * 1e9, 1),
               TextTable::num(virtual_s / safe_static, 2)});
    t.add_row({"CRTP (StaticPipeline)", TextTable::num(static_s, 3),
               TextTable::num(static_s / steps * 1e9, 1), "1.00"});
    t.print(std::cout);

    // Context: one realistic analysis step for scale.
    sim::Cosmology cosmo;
    sim::SyntheticConfig ucfg;
    ucfg.box = 64.0;
    ucfg.halo_count = 20;
    ucfg.max_particles = 2000;
    auto u = sim::generate_synthetic(c, cosmo, ucfg);
    core::InSituAnalysisManager real(c, decomp, ucfg.box, u.total_particles);
    core::register_halo_pipeline(real);
    real.configure(core::CosmoToolsConfig::parse(
        "[halofinder]\nlinking_length 0.3\noverload 2.0\n"
        "[subhalos]\nenabled false\n"));
    WallTimer tr;
    sim::StepContext one{1, 1, 1.0, 0.0};
    real.execute_step(one, u.local);
    std::printf("\none realistic halo-pipeline step: %.3f s — dispatch "
                "overhead is ~%.5f%% of it.\n"
                "conclusion (as the paper implies): keep the flexible "
                "virtual interface; CRTP is available when a pipeline is "
                "fixed at compile time.\n",
                tr.seconds(),
                100.0 * (virtual_s - static_s) / steps / tr.seconds());
  });
  return 0;
}
