// Regenerates Table 2: slowest/fastest node times for halo identification
// (Find) and center finding (Center) across the simulation's evolution.
//
// The paper's four rows (z = 1.68, 1.43, 0.959, 0) show Find staying well
// balanced (max/min ≈ 1.2) while Center's imbalance explodes as clustering
// grows — max/min reaching ~8800 at z = 0, where the largest halos live.
// We emulate the redshift sequence with four synthetic universes of
// increasing clustering (larger maximum halo mass as structure forms) and
// report the measured per-rank extremes plus the paper's 0.55
// Moonlight→Titan adjustment on the final row.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"

using namespace cosmo;

namespace {

struct Stage {
  const char* slice;
  const char* redshift;
  std::size_t max_particles;  ///< clustering proxy: biggest halo so far
  std::size_t halo_count;
};

}  // namespace

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header(
      "Table 2 — Find/Center extremes across cosmic evolution", "Table 2");

  // Structure formation: later slices have more and larger halos.
  const Stage stages[] = {
      {"60", "1.680", 1500, 40},
      {"64", "1.433", 2800, 46},
      {"73", "0.959", 7000, 52},
      {"100", "0", 26000, 60},
  };

  TextTable t({"SLICE", "z", "Max Find", "Min Find", "Max Center",
               "Min Center", "Find max/min", "Center max/min"});

  for (const auto& s : stages) {
    auto p = bench_common::table34_problem(std::string("table2_") + s.slice);
    p.universe.max_particles = s.max_particles;
    p.universe.halo_count = s.halo_count;
    p.threshold = 0;  // full in-situ: expose the imbalance
    auto r = core::run_workflow(core::WorkflowKind::InSitu, p);
    std::filesystem::remove_all(p.workdir);

    const auto& find = r.times.find_per_rank;
    const auto& center = r.times.center_per_rank;
    const double fmax = *std::max_element(find.begin(), find.end());
    const double fmin = *std::min_element(find.begin(), find.end());
    const double cmax = *std::max_element(center.begin(), center.end());
    const double cmin = *std::min_element(center.begin(), center.end());
    t.add_row({s.slice, s.redshift, TextTable::num(fmax, 3),
               TextTable::num(fmin, 3), TextTable::num(cmax, 3),
               TextTable::num(cmin, 4), TextTable::num(fmax / fmin, 1),
               TextTable::num(cmax / std::max(cmin, 1e-6), 1)});
  }
  t.print(std::cout);

  std::printf(
      "\npaper reference (seconds on Titan/Moonlight):\n"
      "  SLICE 60  z=1.680: Find 433/352,  Center   449/19\n"
      "  SLICE 64  z=1.433: Find 483/385,  Center   668/19\n"
      "  SLICE 73  z=0.959: Find 663/532,  Center  1819/19\n"
      "  SLICE 100 z=0    : Find 2143/1859, Center 21250/2.4 (×0.55 adj.)\n"
      "shape to match: Find max/min stays ~1.2; Center max/min grows by\n"
      "orders of magnitude as the largest halos form.\n");
  return 0;
}
