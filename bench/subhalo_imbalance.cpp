// Regenerates the §4.2 subhalo paragraph: per-node subhalo-finding time
// imbalance.
//
// Paper: subhalo finding (halos >5000 particles) in-situ on 32 Titan CPU
// nodes took 8172 s on the slowest node vs 1457 s on the fastest — an
// imbalance above 5×, making it the second off-load candidate. We measure
// the same per-rank spread on a synthetic population with a comparable
// host-size tail.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"

using namespace cosmo;

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header("§4.2 — subhalo finding per-node imbalance",
                             "Section 4.2, subhalo paragraph");

  auto p = bench_common::table34_problem("subhalo");
  p.universe.halo_count = 24;
  p.universe.min_particles = 600;
  p.universe.max_particles = 9000;
  p.universe.background_particles = 2000;
  p.universe.subclump_fraction = 0.2;
  p.universe.subclump_min_host = 2500;
  p.compute_so_mass = false;
  p.compute_subhalos = true;
  p.subhalo_min_host = 2500;  // downscaled "5000"
  p.threshold = 0;
  p.overload = 3.5;
  auto r = core::run_workflow(core::WorkflowKind::InSitu, p);
  std::filesystem::remove_all(p.workdir);

  // Per-rank pipeline breakdown from the manager's timing ledger (SO mass
  // is disabled, so the "other" column is pure subhalo finding).
  TextTable t({"rank", "find (s)", "center (s)", "subhalos (s)"});
  for (std::size_t rank = 0; rank < r.times.find_per_rank.size(); ++rank)
    t.add_row({std::to_string(rank),
               TextTable::num(r.times.find_per_rank[rank], 3),
               TextTable::num(r.times.center_per_rank[rank], 3),
               TextTable::num(r.times.other_per_rank[rank], 3)});
  t.print(std::cout);

  const double smax = *std::max_element(r.times.other_per_rank.begin(),
                                        r.times.other_per_rank.end());
  const double smin = *std::min_element(r.times.other_per_rank.begin(),
                                        r.times.other_per_rank.end());
  std::printf("\nsubhalo time slowest/fastest rank: %.3f / %.3f s "
              "(imbalance %.1fx)\n", smax, smin, smax / std::max(smin, 1e-6));

  std::uint32_t subhalos = 0;
  for (const auto& rec : r.catalog) subhalos += rec.subhalos;
  std::printf("\nhalos: %llu, subhalos found: %u\n",
              static_cast<unsigned long long>(r.total_halos), subhalos);
  const double amax = r.times.analysis;
  std::printf("slowest-rank total analysis: %.3f s\n", amax);
  std::printf("\npaper reference: slowest node 8172 s vs fastest 1457 s "
              "(imbalance > 5x) for subhalo finding on 32 CPU nodes.\n"
              "shape to match: per-rank times spread by the host-halo mass "
              "tail, motivating off-load of subhalo finding too.\n");
  return 0;
}
