// The production campaign shape: one co-scheduled analysis job per
// timestep (Table 4 caption; §3.2's "pile-up" discussion).
//
// Part 1 runs a REAL multi-step campaign: the simulation job steps through
// snapshots while the Listener launches overlapping analysis jobs — the
// measured overlap and turnaround demonstrate co-scheduling working, not a
// model of it. Part 2 scales the queue question to the paper's regime with
// the batch simulator: 100 snapshots' analysis jobs on Titan (2 small jobs
// at a time — pile-up) vs on Rhea (ample small-job capacity), the exact
// facility trade-off §3.2 walks through.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/campaign.h"
#include "sched/batch_scheduler.h"

using namespace cosmo;

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header(
      "Campaign — co-scheduled analysis of a snapshot sequence",
      "Table 4 caption / §3.2 (per-timestep jobs, pile-up)");

  core::CampaignConfig cfg;
  cfg.base.universe.box = 40.0;
  cfg.base.universe.seed = 1001;
  cfg.base.universe.halo_count = 30;
  cfg.base.universe.min_particles = 60;
  cfg.base.universe.max_particles = 8000;
  cfg.base.universe.background_particles = 4000;
  cfg.base.universe.subclump_fraction = 0.0;
  cfg.base.ranks = 4;
  cfg.base.analysis_ranks = 2;
  cfg.base.linking_length = 0.32;
  cfg.base.overload = 3.0;
  cfg.base.threshold = 400;
  cfg.base.compute_so_mass = false;
  cfg.base.workdir = std::filesystem::temp_directory_path() /
                     ("campaign_bench_" + std::to_string(::getpid()));
  cfg.timesteps = 5;
  cfg.growth_per_step = 1.5;

  auto r = core::run_campaign(cfg);
  std::filesystem::remove_all(cfg.base.workdir);

  TextTable t({"step", "in-situ analysis (s)", "off-line analysis (s)",
               "deferred halos", "job turnaround (s)", "halos"});
  for (const auto& s : r.steps)
    t.add_row({std::to_string(s.step), TextTable::num(s.insitu_analysis_s, 3),
               TextTable::num(s.offline_analysis_s, 3),
               std::to_string(s.deferred_halos),
               TextTable::num(s.trigger_to_done_s, 3),
               std::to_string(s.catalog.size())});
  t.print(std::cout);
  std::printf(
      "\ncampaign wall-clock %.2f s vs simulation job %.2f s — analysis "
      "overlapped the run\n"
      "(max %zu analysis jobs in flight; listener: %llu triggers / %llu "
      "polls)\n",
      r.wall_clock_s, r.sim_job_s, r.max_concurrent_analysis,
      static_cast<unsigned long long>(r.listener_triggers),
      static_cast<unsigned long long>(r.listener_polls));

  // Part 2: the 100-snapshot queue question at facility scale.
  std::printf("\nfacility queue model — 100 analysis jobs (30 min each), one "
              "per snapshot, submitted every 10 min during the run:\n");
  TextTable q({"facility", "policy", "mean wait (s)", "max wait (s)",
               "makespan (s)"});
  auto run_queue = [&](sched::MachineProfile profile, const char* policy) {
    sched::BatchScheduler cluster(std::move(profile));
    std::vector<sched::JobId> ids;
    for (int s = 0; s < 100; ++s)
      ids.push_back(cluster.submit("analysis" + std::to_string(s), 4, 1800.0,
                                   600.0 * s));
    cluster.run_to_completion();
    double mean = 0, worst = 0;
    for (const auto id : ids) {
      mean += cluster.job(id).wait_s();
      worst = std::max(worst, cluster.job(id).wait_s());
    }
    mean /= static_cast<double>(ids.size());
    q.add_row({cluster.profile().name, policy, TextTable::num(mean, 0),
               TextTable::num(worst, 0), TextTable::num(cluster.makespan(), 0)});
  };
  run_queue(sched::MachineProfile::titan(), "2 small jobs at a time");
  run_queue(sched::MachineProfile::rhea(), "unrestricted small jobs");
  q.print(std::cout);

  std::printf(
      "\nshape to match (§3.2): on Titan the 2-small-job policy causes "
      "pile-up (jobs queue behind each other) unless a queue exemption is "
      "granted; on the designated analysis cluster the jobs start promptly "
      "— 'even with some level of pile-up ... co-scheduling still allows "
      "analysis to become an automated part of the simulation workflow.'\n");
  return 0;
}
