// Ablation: batched vs pipelined distributed-FFT transpose exchange.
//
// The PM solve's comm phase is two all-to-all transposes per FFT direction.
// The batched path packs all P pencil blocks, ships one collective, then
// unpacks — pack → exchange → unpack strictly sequential per rank, so every
// microsecond a peer's block is late lands in comm.recv_wait_us. The
// pipelined path posts each block through an AlltoallvFlatSession the moment
// it finishes packing and unpacks blocks as they arrive, so most of the
// exchange hides behind the packing of later blocks
// (comm.a2a_blocks_overlapped counts the hidden fraction).
//
// Scenarios: batched vs pipelined × Serial vs ThreadPool standalone, both
// exchange modes co-scheduled with analysis driver threads hammering the
// shared pool (the paper's in-situ arrangement, medians over interleaved
// repeats), and an exchange-isolation pair where the recv_wait comparison is
// structural rather than scheduler-dependent (see kIsoTransposes). The
// determinism contract is asserted, not assumed: every scenario's k-space
// output must be CRC-identical. Results land in BENCH_fft.json.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "comm/comm.h"
#include "dpp/primitives.h"
#include "fft/distributed_fft.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace cosmo;

namespace {

constexpr int kRanks = 4;           // the acceptance point: P = 4
constexpr std::size_t kGrid = 128;  // 128^3 grid: ~2 MB pencil blocks, big
                                    // enough that pack/exchange/unpack are
                                    // milliseconds each and the spans resolve
                                    // the phase structure
constexpr int kReps = 3;            // forward+inverse pairs per scenario
// Ranks never reach a transpose in lockstep in the real workflow — the
// compute phases upstream (deposit, halo work) are imbalanced, so peers'
// blocks are late. Model that with a deterministic per-rank stagger of the
// same order as one block pack.
constexpr int kSkewMs = 10;
constexpr int kAnalysisDrivers = 2;
// The co-scheduled scenarios are noisy (the analysis drivers perturb which
// rank the scheduler lands on at every timeslice), so they are reported as
// the median over interleaved batched/pipelined pairs.
constexpr int kCoPairs = 5;
// Exchange-isolation scenarios: same P, same block geometry and session
// traffic as the FFT transpose, but the per-block pack compute is replaced
// by a parked sleep. On a host with fewer cores than ranks the real-FFT
// scenarios serialize all pack compute onto one core, so the time of the
// last block arrival — which comm.recv_wait_us telescopes to — is set by
// scheduler interleaving rather than by exchange structure. Parking the pack
// stand-ins frees the core for whichever rank is behind, making arrival
// times structural again: the batched exchange holds every send until the
// straggler's whole pack phase is done, while the pipelined session has
// posted all but its last block by then. This pair is the recv_wait
// acceptance gate; the real-FFT scenarios gate bit-identity and report
// wall/exchange-span/overlap.
constexpr int kIsoTransposes = 6;  // matches kReps forward+inverse pairs
constexpr int kIsoPackMs = 10;     // per-block pack stand-in
constexpr int kIsoSkewMs = 25;     // imbalanced upstream compute stand-in

using ExchangeMode = fft::DistributedFft::ExchangeMode;

struct FftStats {
  double wall_s = 0.0;
  double exchange_s = 0.0;        // fft.exchange span total (all ranks)
  double pack_s = 0.0;            // fft.pack span total
  std::uint64_t recv_wait_us = 0; // comm.recv_wait_us during the FFT phase
  std::uint64_t overlapped = 0;   // comm.a2a_blocks_overlapped
  std::uint64_t payload_reuse = 0;
  std::uint32_t crc = 0;          // combined k-space CRC across ranks
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Per-field medians over repeated runs of one scenario. The CRC must be
/// identical across runs (the transform is deterministic), so taking the
/// first is safe — and main() cross-checks every run's CRC anyway.
FftStats median_stats(const std::vector<FftStats>& runs) {
  auto field = [&](auto get) {
    std::vector<double> v;
    v.reserve(runs.size());
    for (const auto& r : runs) v.push_back(get(r));
    return median(std::move(v));
  };
  FftStats m;
  m.wall_s = field([](const FftStats& s) { return s.wall_s; });
  m.exchange_s = field([](const FftStats& s) { return s.exchange_s; });
  m.pack_s = field([](const FftStats& s) { return s.pack_s; });
  m.recv_wait_us = static_cast<std::uint64_t>(
      field([](const FftStats& s) { return static_cast<double>(s.recv_wait_us); }));
  m.overlapped = static_cast<std::uint64_t>(
      field([](const FftStats& s) { return static_cast<double>(s.overlapped); }));
  m.payload_reuse = static_cast<std::uint64_t>(field(
      [](const FftStats& s) { return static_cast<double>(s.payload_reuse); }));
  m.crc = runs.front().crc;
  return m;
}

double span_total(const char* name) {
  for (const auto& st : obs::Tracer::instance().summary())
    if (st.name == name) return st.total_s;
  return 0.0;
}

double item_work(std::size_t i) {
  double acc = 0.0;
  for (int k = 1; k <= 12; ++k)
    acc += std::sqrt(static_cast<double>(i % 1024 + static_cast<std::size_t>(k)));
  return acc;
}

/// kReps forward+inverse transforms at P=kRanks with the given exchange
/// mode/backend; optionally with analysis driver threads loading the shared
/// pool throughout. The CRC folds every rank's k-space slab of the final
/// forward transform (XOR is order-independent, so SPMD rank interleaving
/// cannot perturb it).
FftStats run_scenario(ExchangeMode mode, dpp::Backend be,
                      bool concurrent_analysis) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  const double exchange_before = span_total("fft.exchange");
  const double pack_before = span_total("fft.pack");

  std::atomic<bool> stop{false};
  std::atomic<double> sink{0.0};
  std::vector<std::thread> drivers;
  if (concurrent_analysis) {
    for (int d = 0; d < kAnalysisDrivers; ++d)
      drivers.emplace_back([&] {
        std::vector<double> out(1 << 14);
        while (!stop.load(std::memory_order_relaxed)) {
          dpp::ThreadPool::instance().parallel_for(
              out.size(), [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) out[i] = item_work(i);
              });
          sink.store(out[out.size() / 2], std::memory_order_relaxed);
        }
      });
  }

  FftStats s;
  std::atomic<std::uint32_t> crc_acc{0};
  WallTimer wall;
  comm::run_spmd(kRanks, [&](comm::Comm& c) {
    fft::DistributedFft dfft(c, kGrid);
    dfft.set_exchange_mode(mode);
    dfft.set_backend(be);
    Rng rng(20151115 + static_cast<std::uint64_t>(c.rank()));
    std::vector<fft::Complex> init(dfft.local_size());
    for (auto& v : init) v = fft::Complex(rng.normal(), rng.normal());
    std::vector<fft::Complex> slab;
    for (int r = 0; r < kReps; ++r) {
      slab = init;
      std::this_thread::sleep_for(std::chrono::milliseconds(
          kSkewMs * c.rank()));  // imbalanced upstream compute stand-in
      dfft.forward(slab);
      if (r == kReps - 1)
        crc_acc.fetch_xor(
            crc32(slab.data(), slab.size() * sizeof(fft::Complex)),
            std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(
          kSkewMs * (kRanks - 1 - c.rank())));  // reversed skew going back
      dfft.inverse(slab);
    }
    // No trailing barrier: run_spmd joins the rank threads, and a barrier
    // here would charge rank-skew waits to comm.recv_wait_us, polluting the
    // FFT-phase wait measurement the scenarios compare.
  });
  s.wall_s = wall.seconds();

  stop.store(true);
  for (auto& t : drivers) t.join();

  s.crc = crc_acc.load();
  s.exchange_s = span_total("fft.exchange") - exchange_before;
  s.pack_s = span_total("fft.pack") - pack_before;
  if (reg.has_counter("comm.recv_wait_us"))
    s.recv_wait_us = reg.counter("comm.recv_wait_us").total();
  if (reg.has_counter("comm.a2a_blocks_overlapped"))
    s.overlapped = reg.counter("comm.a2a_blocks_overlapped").total();
  if (reg.has_counter("comm.payload_reuse"))
    s.payload_reuse = reg.counter("comm.payload_reuse").total();
  return s;
}

struct IsoStats {
  std::uint64_t recv_wait_us = 0;
  std::uint64_t overlapped = 0;
};

/// kIsoTransposes rounds of the transpose's exchange pattern — identical
/// block sizes and traffic to the real FFT at kGrid/kRanks — with parked
/// sleeps standing in for pack compute and upstream imbalance (see the
/// comment at kIsoTransposes for why this isolates exchange structure).
IsoStats run_isolation(ExchangeMode mode) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  const std::size_t nslab = kGrid / kRanks;
  const std::size_t block = nslab * nslab * kGrid;  // elements per block
  comm::run_spmd(kRanks, [&](comm::Comm& c) {
    std::vector<fft::Complex> scratch(block,
                                      fft::Complex(1.0 + c.rank(), 0.0));
    std::vector<fft::Complex> sendbuf(block * kRanks,
                                      fft::Complex(1.0 + c.rank(), 0.0));
    const std::vector<std::size_t> counts(kRanks, block);
    for (int t = 0; t < kIsoTransposes; ++t) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(kIsoSkewMs * c.rank()));
      if (mode == ExchangeMode::Pipelined) {
        comm::AlltoallvFlatSession<fft::Complex> session(c, counts);
        for (int step = 1; step <= kRanks; ++step) {
          const int d = (c.rank() + step) % kRanks;
          std::this_thread::sleep_for(std::chrono::milliseconds(kIsoPackMs));
          session.post_block(d, std::span<const fft::Complex>(scratch));
          session.prefetch();
        }
        session.finish([](int, std::span<const fft::Complex>) {});
      } else {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kIsoPackMs * kRanks));
        auto recv = c.alltoallv_flat<fft::Complex>(
            std::span<const fft::Complex>(sendbuf), counts, counts);
        (void)recv;
      }
    }
  });
  IsoStats s;
  if (reg.has_counter("comm.recv_wait_us"))
    s.recv_wait_us = reg.counter("comm.recv_wait_us").total();
  if (reg.has_counter("comm.a2a_blocks_overlapped"))
    s.overlapped = reg.counter("comm.a2a_blocks_overlapped").total();
  return s;
}

void json_scenario(std::ofstream& j, const char* name, const FftStats& s,
                   bool last) {
  j << "    {\"scenario\": \"" << name << "\", \"wall_s\": " << s.wall_s
    << ", \"exchange_s_total\": " << s.exchange_s
    << ", \"pack_s_total\": " << s.pack_s
    << ", \"recv_wait_us\": " << s.recv_wait_us
    << ", \"blocks_overlapped\": " << s.overlapped
    << ", \"payload_reuse\": " << s.payload_reuse << "}"
    << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header(
      "Ablation — batched vs pipelined distributed-FFT transpose",
      "the PM solve's comm phase under co-scheduling (SC'15 section 4)");

  const auto batched = run_scenario(ExchangeMode::Batched,
                                    dpp::Backend::Serial, false);
  const auto piped = run_scenario(ExchangeMode::Pipelined,
                                  dpp::Backend::Serial, false);
  const auto batched_tp = run_scenario(ExchangeMode::Batched,
                                       dpp::Backend::ThreadPool, false);
  const auto piped_tp = run_scenario(ExchangeMode::Pipelined,
                                     dpp::Backend::ThreadPool, false);
  std::vector<FftStats> batched_co_runs, piped_co_runs;
  for (int p = 0; p < kCoPairs; ++p) {
    batched_co_runs.push_back(
        run_scenario(ExchangeMode::Batched, dpp::Backend::ThreadPool, true));
    piped_co_runs.push_back(
        run_scenario(ExchangeMode::Pipelined, dpp::Backend::ThreadPool, true));
  }
  const auto batched_co = median_stats(batched_co_runs);
  const auto piped_co = median_stats(piped_co_runs);

  bool bit_identical = batched.crc == piped.crc &&
                       batched.crc == batched_tp.crc &&
                       batched.crc == piped_tp.crc;
  for (const auto& r : batched_co_runs) bit_identical &= batched.crc == r.crc;
  for (const auto& r : piped_co_runs) bit_identical &= batched.crc == r.crc;

  const auto iso_batched = run_isolation(ExchangeMode::Batched);
  const auto iso_piped = run_isolation(ExchangeMode::Pipelined);
  const bool wait_reduced = iso_piped.recv_wait_us < iso_batched.recv_wait_us;

  TextTable t({"scenario", "wall (s)", "recv wait (ms)", "overlapped",
               "exchange (s)", "reuse"});
  auto add = [&](const char* name, const FftStats& s) {
    t.add_row({name, TextTable::num(s.wall_s, 3),
               TextTable::num(static_cast<double>(s.recv_wait_us) / 1e3, 2),
               std::to_string(s.overlapped), TextTable::num(s.exchange_s, 3),
               std::to_string(s.payload_reuse)});
  };
  add("batched serial (baseline)", batched);
  add("pipelined serial", piped);
  add("batched pooled", batched_tp);
  add("pipelined pooled", piped_tp);
  add("batched pooled + analysis*", batched_co);
  add("pipelined pooled + analysis*", piped_co);
  t.print(std::cout);
  std::printf(
      "grid %zu^3 across %d ranks, %d forward+inverse pairs per scenario; "
      "%d analysis drivers in the co-scheduled scenarios\n"
      "(* = median over %d interleaved batched/pipelined pairs)\n"
      "k-space bit-identical across all scenarios and repeats: %s "
      "(crc32 %08x)\n"
      "exchange isolation (%d transposes, parked pack stand-ins): "
      "batched %.2f ms, pipelined %.2f ms (%lu blocks overlapped)\n"
      "pipelined reduces recv_wait vs batched (exchange isolation): %s\n",
      kGrid, kRanks, kReps, kAnalysisDrivers, kCoPairs,
      bit_identical ? "YES" : "NO — determinism contract violated",
      batched.crc, kIsoTransposes,
      static_cast<double>(iso_batched.recv_wait_us) / 1e3,
      static_cast<double>(iso_piped.recv_wait_us) / 1e3,
      static_cast<unsigned long>(iso_piped.overlapped),
      wait_reduced ? "YES" : "NO");

  {
    std::ofstream j("BENCH_fft.json", std::ios::trunc);
    j << "{\n  \"bench\": \"ablation_fft\",\n"
      << "  \"pool_workers\": " << dpp::ThreadPool::instance().workers()
      << ",\n  \"host_threads\": " << std::thread::hardware_concurrency()
      << ",\n  \"grid\": " << kGrid << ",\n  \"ranks\": " << kRanks
      << ",\n  \"fft_pairs_per_scenario\": " << kReps
      << ",\n  \"analysis_drivers\": " << kAnalysisDrivers
      << ",\n  \"co_scheduled_pairs\": " << kCoPairs
      << ",\n  \"exchange_isolation\": {\"transposes\": " << kIsoTransposes
      << ", \"pack_ms\": " << kIsoPackMs << ", \"skew_ms\": " << kIsoSkewMs
      << ", \"batched_recv_wait_us\": " << iso_batched.recv_wait_us
      << ", \"pipelined_recv_wait_us\": " << iso_piped.recv_wait_us
      << ", \"pipelined_blocks_overlapped\": " << iso_piped.overlapped << "}"
      << ",\n  \"kspace_bit_identical\": " << (bit_identical ? "true" : "false")
      << ",\n  \"kspace_crc32\": \"" << std::hex << batched.crc << std::dec
      << "\",\n  \"recv_wait_reduced_at_p4\": "
      << (wait_reduced ? "true" : "false") << ",\n"
      << "  \"scenarios\": [\n";
    json_scenario(j, "batched_serial", batched, false);
    json_scenario(j, "pipelined_serial", piped, false);
    json_scenario(j, "batched_threadpool", batched_tp, false);
    json_scenario(j, "pipelined_threadpool", piped_tp, false);
    json_scenario(j, "batched_concurrent_analysis_median", batched_co, false);
    json_scenario(j, "pipelined_concurrent_analysis_median", piped_co, true);
    j << "  ]\n}\n";
    if (j.good()) std::printf("wrote BENCH_fft.json\n");
  }
  return !(bit_identical && wait_reduced);
}
