// Regenerates Table 3: the workflow comparison summary — I/O level,
// redistribution level, queueing, and charged core-hours for each analysis
// strategy.
//
// All five variants run for real on the same downscaled snapshot (the
// paper's 1024³/32-node test becomes a synthetic universe on 8 rank-threads
// with one rare 26k-particle halo; the 300,000-particle split becomes
// 1,200). Core-hours apply Titan's charge policy (30 core-hours per
// node-hour) to the *measured* analysis/write/read/redistribute phases,
// exactly as the paper's Table 3 charges only the analysis work (the
// simulation itself is common to all strategies).
#include <cstdio>

#include "bench_common.h"

using namespace cosmo;
using core::WorkflowKind;

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header("Table 3 — analysis workflow comparison",
                             "Table 3");

  struct Row {
    WorkflowKind kind;
    const char* io;
    const char* redist;
    const char* queueing;
  };
  const Row rows[] = {
      {WorkflowKind::InSitu, "none", "none", "none"},
      {WorkflowKind::OffLine, "Level 1", "Level 1", "full"},
      {WorkflowKind::CombinedSimple, "Level 2", "Level 2", "partial"},
      {WorkflowKind::CombinedCoScheduled, "Level 2", "Level 2",
       "partial simult"},
      {WorkflowKind::CombinedInTransit, "none", "Level 2", "partial simult"},
  };

  TextTable t({"Method", "I/O", "Redist.", "Queueing", "Core hrs (measured)",
               "L1 bytes", "L2 bytes"});
  double insitu_hours = 0.0, combined_hours = 0.0;
  for (const auto& row : rows) {
    auto p = bench_common::table34_problem(
        std::string("t3_") + std::to_string(static_cast<int>(row.kind)));
    auto r = core::run_workflow(row.kind, p);
    std::filesystem::remove_all(p.workdir);

    // Charge: simulation-side analysis+write on the full partition, the
    // post-processing job on its own (smaller) partition.
    const int post_nodes =
        row.kind == WorkflowKind::OffLine ? p.ranks : p.analysis_ranks;
    const double hours =
        bench_common::titan_core_hours(p.ranks,
                                       r.times.analysis + r.times.write) +
        bench_common::titan_core_hours(post_nodes, r.times.post_total());
    if (row.kind == WorkflowKind::InSitu) insitu_hours = hours;
    if (row.kind == WorkflowKind::CombinedSimple) combined_hours = hours;

    t.add_row({core::to_string(row.kind), row.io, row.redist, row.queueing,
               TextTable::num(hours, 4),
               std::to_string(r.level1_bytes),
               std::to_string(r.level2_bytes)});
  }
  t.print(std::cout);

  std::printf("\ncombined/in-situ core-hour ratio: %.2f (paper: 135/193 = "
              "0.70 — combined ~30%% cheaper)\n",
              combined_hours / insitu_hours);
  std::printf("paper reference: in-situ 193, off-line 356, combined 135 core "
              "hours; co-scheduled = same as simple; in-transit n/a.\n"
              "shape to match: off-line most expensive (full Level 1 I/O + "
              "redistribution on the full partition);\n"
              "combined cheapest (Level 2 only, small analysis job); "
              "in-situ in between (pays the full imbalance).\n");
  return 0;
}
