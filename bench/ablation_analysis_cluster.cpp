// Ablation: the analysis cluster's hardware (§3.2 / §4.2).
//
// The paper weighed two co-scheduling hosts: Rhea, OLCF's designated
// analysis cluster with short queues but NO GPUs ("the lack of GPUs slowed
// down the center finding considerably"), and Titan itself, whose GPUs run
// the PISTON center finder ~50x faster but whose queue policy throttles
// small jobs. This bench runs the combined workflow's off-line job on both
// backend models and combines the measured compute with the queue model —
// reproducing why the paper reports timings from Titan and treats Rhea as
// a scheduling-only demonstration.
#include <cstdio>

#include "bench_common.h"
#include "sched/batch_scheduler.h"

using namespace cosmo;
using core::WorkflowKind;

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header(
      "Ablation — analysis-cluster hardware for the off-line job",
      "§3.2/§4.2 (Rhea CPU-only vs GPU cluster)");

  TextTable t({"analysis cluster", "backend", "post-analysis (s)",
               "queue wait model (s)", "catalog ok"});

  core::WorkflowResult reference;
  double gpu_seconds = 0.0;
  for (const bool gpu : {true, false}) {
    auto p = bench_common::table34_problem(gpu ? "cluster_gpu" : "cluster_cpu");
    p.analysis_backend = gpu ? dpp::Backend::ThreadPool : dpp::Backend::Serial;
    auto r = core::run_workflow(WorkflowKind::CombinedSimple, p);
    std::filesystem::remove_all(p.workdir);

    // Queue model: Titan small-job slot vs Rhea's open small-job queue.
    double wait;
    if (gpu) {
      // On Titan, two other small jobs already running → ours waits.
      sched::BatchScheduler titan(sched::MachineProfile::titan());
      titan.submit("other-small-1", 4, 1200.0, 0.0);
      titan.submit("other-small-2", 4, 1200.0, 0.0);
      auto id = titan.submit("our-analysis", 4, r.times.post_analysis, 10.0);
      titan.run_to_completion();
      wait = titan.job(id).wait_s();
    } else {
      sched::BatchScheduler rhea(sched::MachineProfile::rhea());
      rhea.submit("other-small-1", 4, 1200.0, 0.0);
      rhea.submit("other-small-2", 4, 1200.0, 0.0);
      auto id = rhea.submit("our-analysis", 4, r.times.post_analysis, 10.0);
      rhea.run_to_completion();
      wait = rhea.job(id).wait_s();
    }

    bool same_catalog = true;
    if (gpu) {
      reference = r;
      gpu_seconds = r.times.post_analysis;
    } else {
      same_catalog = reference.catalog.size() == r.catalog.size();
      for (std::size_t i = 0; same_catalog && i < r.catalog.size(); ++i)
        same_catalog = reference.catalog[i].id == r.catalog[i].id &&
                       reference.catalog[i].cx == r.catalog[i].cx;
    }
    t.add_row({gpu ? "GPU cluster (Titan/Moonlight model)"
                   : "CPU-only cluster (Rhea model)",
               gpu ? "threadpool" : "serial",
               TextTable::num(r.times.post_analysis, 3),
               TextTable::num(wait, 0), same_catalog ? "yes" : "NO"});
    if (!gpu)
      std::printf("CPU/GPU post-analysis ratio: %.2fx (paper: ~50x with real "
                  "K20X GPUs; here the ratio is this host's core count)\n",
                  r.times.post_analysis / gpu_seconds);
  }
  t.print(std::cout);

  std::printf(
      "\nshape to match: identical catalogs from either cluster (the PISTON "
      "single-source portability claim);\nthe GPU cluster wins on compute, "
      "the analysis cluster wins on queueing — the trade-off §3.2 describes."
      "\n");
  return 0;
}
