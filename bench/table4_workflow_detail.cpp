// Regenerates Table 4: the detailed per-phase breakdown — Sim / Analysis /
// Write on the simulation job and Queuing / Read / Redistribute / Analysis /
// Write on the post-processing job — for the in-situ, off-line, and
// combined workflows (with the co-scheduled and in-transit variations).
//
// Phase seconds are measured (max over ranks, like the paper's node
// maxima). Queue waits come from the batch-cluster simulator: the off-line
// post job needs the full partition and queues behind other large jobs,
// while the combined variants' 2-node jobs fit immediately — and the
// co-scheduled variant's jobs are submitted by the Listener while the
// simulation still runs.
#include <cstdio>

#include "bench_common.h"
#include "sched/batch_scheduler.h"

using namespace cosmo;
using core::WorkflowKind;

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header("Table 4 — per-phase workflow detail", "Table 4");

  TextTable t({"Workflow", "Sim", "Analysis", "Write", "Read", "Redist.",
               "Post-analysis", "Post-write", "Sim job total",
               "Post job total"});

  struct Case {
    WorkflowKind kind;
    const char* label;
  };
  const Case cases[] = {
      {WorkflowKind::InSitu, "in-situ only"},
      {WorkflowKind::OffLine, "off-line only"},
      {WorkflowKind::CombinedSimple, "combined (simple)"},
      {WorkflowKind::CombinedCoScheduled, "combined (co-scheduled)"},
      {WorkflowKind::CombinedInTransit, "combined (in-transit)"},
  };

  core::WorkflowResult results[5];
  int idx = 0;
  for (const auto& c : cases) {
    auto p = bench_common::table34_problem(
        std::string("t4_") + std::to_string(static_cast<int>(c.kind)));
    auto r = core::run_workflow(c.kind, p);
    std::filesystem::remove_all(p.workdir);
    results[idx++] = r;
    const auto& ph = r.times;
    t.add_row({c.label, TextTable::num(ph.sim, 3), TextTable::num(ph.analysis, 3),
               TextTable::num(ph.write, 3), TextTable::num(ph.read, 3),
               TextTable::num(ph.redistribute, 3),
               TextTable::num(ph.post_analysis, 3),
               TextTable::num(ph.post_write, 4),
               TextTable::num(ph.sim_total(), 3),
               TextTable::num(ph.post_total(), 3)});
  }
  t.print(std::cout);

  // Machine-readable copy of the table for downstream tooling.
  {
    std::ofstream j("BENCH_table4.json", std::ios::trunc);
    j << "{\n  \"bench\": \"table4_workflow_detail\",\n  \"workflows\": [";
    for (int i = 0; i < 5; ++i) {
      const auto& ph = results[i].times;
      j << (i ? "," : "") << "\n    {\"workflow\": \"" << cases[i].label
        << "\", \"sim_s\": " << ph.sim << ", \"analysis_s\": " << ph.analysis
        << ", \"write_s\": " << ph.write << ", \"read_s\": " << ph.read
        << ", \"redistribute_s\": " << ph.redistribute
        << ", \"post_analysis_s\": " << ph.post_analysis
        << ", \"post_write_s\": " << ph.post_write
        << ", \"sim_total_s\": " << ph.sim_total()
        << ", \"post_total_s\": " << ph.post_total() << "}";
    }
    j << "\n  ]\n}\n";
    if (j.good()) std::printf("\nwrote BENCH_table4.json\n");
  }

  // Queueing: model the three strategies on a busy Titan-like machine.
  // Background load: a stream of large jobs that an analysis job needing
  // the full partition must wait behind.
  std::printf("\nQueue-wait model (batch simulator, busy machine):\n");
  TextTable q({"Workflow", "analysis job size", "submitted", "starts",
               "queue wait (s)"});
  const double sim_end = 1000.0;  // the main job's wall-clock
  {
    // Off-line: full-partition job, queued after the sim, behind a backlog.
    sched::BatchScheduler titan(sched::MachineProfile::titan());
    titan.submit("main-sim", 16384, sim_end, 0.0);
    titan.submit("someone-elses-big-job", 12000, 3000.0, 100.0);
    auto id = titan.submit("offline-analysis", 16384, 500.0, sim_end);
    titan.run_to_completion();
    q.add_row({"off-line", "16384 nodes", TextTable::num(sim_end, 0),
               TextTable::num(titan.job(id).start_time, 0),
               TextTable::num(titan.job(id).wait_s(), 0)});
  }
  {
    // Combined simple: small job, still queued after the sim ends.
    sched::BatchScheduler titan(sched::MachineProfile::titan());
    titan.submit("main-sim", 16384, sim_end, 0.0);
    titan.submit("someone-elses-big-job", 12000, 3000.0, 100.0);
    auto id = titan.submit("small-analysis", 4, 500.0, sim_end);
    titan.run_to_completion();
    q.add_row({"combined (simple)", "4 nodes", TextTable::num(sim_end, 0),
               TextTable::num(titan.job(id).start_time, 0),
               TextTable::num(titan.job(id).wait_s(), 0)});
  }
  {
    // Co-scheduled: the Listener submits the small job mid-simulation.
    sched::BatchScheduler titan(sched::MachineProfile::titan());
    titan.submit("main-sim", 16384, sim_end, 0.0);
    titan.submit("someone-elses-big-job", 12000, 3000.0, 100.0);
    const double trigger_time = 400.0;  // Level 2 file appears mid-run
    auto id = titan.submit("cosched-analysis", 4, 500.0, trigger_time);
    titan.run_to_completion();
    q.add_row({"combined (co-scheduled)", "4 nodes",
               TextTable::num(trigger_time, 0),
               TextTable::num(titan.job(id).start_time, 0),
               TextTable::num(titan.job(id).wait_s(), 0)});
  }
  q.print(std::cout);

  std::printf(
      "\nlistener during the co-scheduled run: %llu triggers seen over %llu "
      "polls\n",
      static_cast<unsigned long long>(results[3].listener_triggers),
      static_cast<unsigned long long>(results[3].listener_polls));
  std::printf(
      "\npaper reference (seconds): in-situ 772/722/0.3; off-line "
      "779/0/5 then 5/435/892/0.3; combined 774/361/3 then 3/75/1075/0.2.\n"
      "shape to match: combined halves the in-situ analysis time (the\n"
      "monster halo moves to the post job); off-line pays the largest\n"
      "read+redistribute; in-transit drops the Level 2 read to ~0;\n"
      "co-scheduled starts its analysis before the simulation ends.\n");
  return 0;
}
