// Regenerates Figure 4: the distribution of per-node center-finding times
// if all centers had been computed in-situ.
//
// The paper histograms, per Titan node, the projected time to center that
// node's large (>300,000-particle) halos — t ∝ Σ n², projected from halo
// sizes — on a log count scale with 1000-second bins: most nodes land in
// the first bin, while a few nodes with monster halos sit many bins out
// (the slowest at ~21,250 s). We reproduce exactly that construction:
// halo sizes from a real FOF catalog over a power-law population, the n²
// cost model calibrated against one measured brute-force center find, and
// per-node aggregation into a log-count histogram.
#include <cmath>
#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "core/split_tuner.h"
#include "halo/center_finder.h"
#include "halo/fof.h"
#include "sim/synthetic.h"
#include "util/histogram.h"
#include "util/timer.h"

using namespace cosmo;

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header(
      "Figure 4 — per-node projected center-finding time histogram",
      "Figure 4");

  // Real catalog over a heavy-tailed population (halo finder only).
  sim::SyntheticConfig ucfg;
  ucfg.box = 48.0;
  ucfg.seed = 444;
  ucfg.halo_count = 1800;
  ucfg.min_particles = 60;
  ucfg.max_particles = 26000;
  ucfg.background_particles = 3000;
  ucfg.subclump_fraction = 0.0;
  std::vector<std::uint64_t> halo_sizes;
  comm::run_spmd(4, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    auto u = sim::generate_synthetic(c, cosmo, ucfg);
    sim::SlabDecomposition decomp(c.size(), ucfg.box);
    halo::FofConfig fcfg;
    fcfg.linking_length = 0.32;
    fcfg.min_size = 40;
    auto r = halo::fof_distributed(c, decomp, u.local, fcfg, 3.0);
    std::vector<std::uint64_t> mine;
    for (const auto& h : r.halos) mine.push_back(h.members.size());
    auto all = c.gatherv<std::uint64_t>(mine, 0);
    if (c.rank() == 0) halo_sizes = all;
  });

  // Calibrate t(n) = c·n² with one real brute-force center find.
  auto cost = core::calibrate_center_cost(
      [&](std::uint64_t n) {
        Rng rng(5);
        sim::ParticleSet p;
        for (std::uint64_t i = 0; i < n; ++i)
          p.push_back(static_cast<float>(rng.normal(5, 0.3)),
                      static_cast<float>(rng.normal(5, 0.3)),
                      static_cast<float>(rng.normal(5, 0.3)), 0, 0, 0,
                      static_cast<std::int64_t>(i));
        std::vector<std::uint32_t> members(p.size());
        std::iota(members.begin(), members.end(), 0u);
        WallTimer timer;
        halo::mbp_center_brute(dpp::Backend::ThreadPool, p, members, {});
        return timer.seconds();
      },
      4000);

  // Project onto the paper's scale: grow every halo so the largest matches
  // the Q Continuum's ~25M-particle monster, with the per-halo time pinned
  // to the paper's GPU measurement of 21,250 s for that halo's node.
  const int nodes = 256;
  std::vector<double> node_seconds(nodes, 0.0);
  std::uint64_t largest = 1;
  for (const auto n : halo_sizes) largest = std::max(largest, n);
  const double size_scale = 25.0e6 / static_cast<double>(largest);
  const double coeff = 21250.0 / (25.0e6 * 25.0e6);
  std::size_t i = 0;
  for (const auto n : halo_sizes) {
    const double n_scaled = static_cast<double>(n) * size_scale;
    node_seconds[i % nodes] += coeff * n_scaled * n_scaled;
    ++i;
  }

  LinearHistogram hist(0.0, 24000.0, 24);  // 1000 s bins, as in the paper
  for (const auto s : node_seconds) hist.add(s);

  TextTable t({"time bin (s)", "nodes", "log10(nodes+1)"});
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    if (hist.count(b) == 0 && b > 12) continue;
    char bin[64];
    std::snprintf(bin, sizeof(bin), "[%5.0f, %5.0f)", hist.bin_lo(b),
                  hist.bin_lo(b) + hist.width());
    t.add_row({bin, std::to_string(hist.count(b)),
               TextTable::num(
                   std::log10(static_cast<double>(hist.count(b)) + 1.0), 2)});
  }
  t.print(std::cout);

  std::printf("\nmeasured local center-finder cost model: t(n) = %.3e * n^2 s\n",
              cost.coeff);
  std::printf("shape to match (paper): almost all nodes in the first 1000 s "
              "bin, a long sparse tail out to ~21,250 s;\n"
              "in-situ small-halo centering itself took <60 s per node.\n");
  return 0;
}
