// Ablation: the CIC deposit phase, serial vs pooled scatter-reduce.
//
// The deposit was the last serial stage of the PM/analysis pipeline: every
// other grid loop dispatched on the dpp pool while deposit_density pinned a
// core on a single-threaded scatter. This bench measures the per-deposit
// cost of Backend::Serial vs Backend::ThreadPool (the deterministic
// per-thread slab reduction in dpp::deposit_reduce), both standalone and
// while analysis drivers hammer the same process-wide pool — the paper's
// co-scheduling scenario, where the in-situ analysis and the solver share
// one node. It also checks the headline contract: both backends produce a
// bit-identical δ field (CRC32 over the raw doubles, ghost planes included).
//
// Results land in BENCH_pm.json; the serial scenario doubles as the
// embedded baseline the pooled speedups are quoted against.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "dpp/primitives.h"
#include "sim/cosmology.h"
#include "sim/pm_solver.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace cosmo;

namespace {

constexpr std::size_t kGrid = 64;
constexpr double kBox = 64.0;
constexpr std::size_t kParticles = 4 * kGrid * kGrid * kGrid;  // 4 per cell
constexpr int kReps = 8;
constexpr int kAnalysisDrivers = 2;

struct DepositStats {
  double wall_s = 0.0;
  double deposit_s = 0.0;      // sim.deposit span total across all reps
  std::uint64_t buffers = 0;   // private slabs allocated (dpp.deposit_buffers)
  std::uint64_t steals = 0;
  std::uint32_t crc = 0;       // CRC32 of the final δ field (bit-identity)
};

double span_total(const char* name) {
  for (const auto& st : obs::Tracer::instance().summary())
    if (st.name == name) return st.total_s;
  return 0.0;
}

/// Short unoptimizable per-item loop, same shape as ablation_dispatch's
/// analysis stand-in: keeps the pool busy without saturating memory bandwidth.
double item_work(std::size_t i) {
  double acc = 0.0;
  for (int k = 1; k <= 12; ++k)
    acc += std::sqrt(static_cast<double>(i % 1024 + static_cast<std::size_t>(k)));
  return acc;
}

/// One scenario: kReps full-box deposits on the given backend, optionally
/// with kAnalysisDrivers threads issuing analysis-style parallel_for loops
/// on the shared pool for the whole duration (the co-scheduled in-situ job).
DepositStats run_scenario(dpp::Backend be, bool concurrent_analysis) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  const double deposit_before = span_total("sim.deposit");

  std::atomic<bool> stop{false};
  std::atomic<double> sink{0.0};
  std::vector<std::thread> drivers;
  if (concurrent_analysis) {
    for (int d = 0; d < kAnalysisDrivers; ++d)
      drivers.emplace_back([&] {
        std::vector<double> out(1 << 14);
        while (!stop.load(std::memory_order_relaxed)) {
          dpp::ThreadPool::instance().parallel_for(
              out.size(), [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) out[i] = item_work(i);
              });
          sink.store(out[out.size() / 2], std::memory_order_relaxed);
        }
      });
  }

  DepositStats s;
  WallTimer wall;
  comm::run_spmd(1, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    sim::PmSolver pm(c, cosmo, kGrid, kBox);
    pm.set_backend(be);
    sim::ParticleSet p;
    Rng rng(20151115);
    for (std::size_t i = 0; i < kParticles; ++i)
      p.push_back(static_cast<float>(rng.uniform(0, kBox)),
                  static_cast<float>(rng.uniform(0, kBox)),
                  static_cast<float>(rng.uniform(0, kBox)), 0, 0, 0, 0);
    const double mean = static_cast<double>(kParticles) /
                        static_cast<double>(kGrid * kGrid * kGrid);
    for (int r = 0; r < kReps; ++r) {
      auto delta = pm.deposit_density(p, mean);
      const auto d = delta.data();
      s.crc = crc32(d.data(), d.size() * sizeof(double));
    }
  });
  s.wall_s = wall.seconds();

  stop.store(true);
  for (auto& t : drivers) t.join();

  s.deposit_s = span_total("sim.deposit") - deposit_before;
  if (reg.has_counter("dpp.deposit_buffers"))
    s.buffers = reg.counter("dpp.deposit_buffers").total();
  if (reg.has_counter("dpp.steals")) s.steals = reg.counter("dpp.steals").total();
  return s;
}

void json_scenario(std::ofstream& j, const char* name, const DepositStats& s,
                   double baseline_deposit_s, bool last) {
  j << "    {\"scenario\": \"" << name
    << "\", \"deposit_s_total\": " << s.deposit_s
    << ", \"deposit_ms_per_step\": " << s.deposit_s / kReps * 1e3
    << ", \"wall_s\": " << s.wall_s
    << ", \"private_buffers\": " << s.buffers << ", \"steals\": " << s.steals
    << ", \"speedup_vs_serial_baseline\": "
    << baseline_deposit_s / std::max(s.deposit_s, 1e-12) << "}"
    << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header(
      "Ablation — serial vs pooled CIC deposit (deterministic scatter-reduce)",
      "the in-situ density pipeline; deposit was the last serial stage");

  const auto serial = run_scenario(dpp::Backend::Serial, false);
  const auto pooled = run_scenario(dpp::Backend::ThreadPool, false);
  const auto serial_co = run_scenario(dpp::Backend::Serial, true);
  const auto pooled_co = run_scenario(dpp::Backend::ThreadPool, true);

  const bool bit_identical = serial.crc == pooled.crc &&
                             serial.crc == serial_co.crc &&
                             serial.crc == pooled_co.crc;

  TextTable t({"scenario", "deposit ms/step", "wall (s)", "speedup",
               "buffers", "steals"});
  auto add = [&](const char* name, const DepositStats& s) {
    t.add_row({name, TextTable::num(s.deposit_s / kReps * 1e3, 2),
               TextTable::num(s.wall_s, 3),
               TextTable::num(serial.deposit_s / std::max(s.deposit_s, 1e-12), 2),
               std::to_string(s.buffers), std::to_string(s.steals)});
  };
  add("serial standalone (baseline)", serial);
  add("pooled standalone", pooled);
  add("serial + analysis drivers", serial_co);
  add("pooled + analysis drivers", pooled_co);
  t.print(std::cout);
  std::printf(
      "grid %zu^3, %zu particles, %d deposits per scenario; %d analysis "
      "drivers in the concurrent scenarios\n"
      "delta field bit-identical across backends and scenarios: %s "
      "(crc32 %08x)\npool workers: %zu; host threads: %u\n",
      kGrid, kParticles, kReps, kAnalysisDrivers,
      bit_identical ? "YES" : "NO — determinism contract violated",
      serial.crc, dpp::ThreadPool::instance().workers(),
      std::thread::hardware_concurrency());

  {
    std::ofstream j("BENCH_pm.json", std::ios::trunc);
    j << "{\n  \"bench\": \"ablation_deposit\",\n"
      << "  \"pool_workers\": " << dpp::ThreadPool::instance().workers()
      << ",\n  \"host_threads\": " << std::thread::hardware_concurrency()
      << ",\n  \"grid\": " << kGrid << ",\n  \"particles\": " << kParticles
      << ",\n  \"deposits_per_scenario\": " << kReps
      << ",\n  \"analysis_drivers\": " << kAnalysisDrivers
      << ",\n  \"delta_bit_identical\": " << (bit_identical ? "true" : "false")
      << ",\n  \"delta_crc32\": \"" << std::hex << serial.crc << std::dec
      << "\",\n"
      << "  \"baseline_serial_deposit\": {\n"
      << "    \"note\": \"Backend::Serial scatter-reduce measured in this "
         "run; pooled speedups below are quoted against it\",\n"
      << "    \"deposit_s_total\": " << serial.deposit_s
      << ",\n    \"deposit_ms_per_step\": " << serial.deposit_s / kReps * 1e3
      << "\n  },\n"
      << "  \"scenarios\": [\n";
    json_scenario(j, "serial_standalone", serial, serial.deposit_s, false);
    json_scenario(j, "pooled_standalone", pooled, serial.deposit_s, false);
    json_scenario(j, "serial_concurrent_analysis", serial_co, serial_co.deposit_s,
                  false);
    json_scenario(j, "pooled_concurrent_analysis", pooled_co, serial_co.deposit_s,
                  true);
    j << "  ]\n}\n";
    if (j.good()) std::printf("wrote BENCH_pm.json\n");
  }
  return !bit_identical;
}
