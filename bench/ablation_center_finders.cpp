// Ablation: the three MBP center-finder implementations across halo sizes.
//
// The paper reports two speedups this bench checks the *shape* of:
//   * the A* search beats serial brute force by a problem-dependent factor
//     of roughly 8 (§3.3.2),
//   * the portable data-parallel (PISTON) implementation beats the serial
//     one by a large factor on accelerators (×50 on Titan's GPUs — here the
//     ThreadPool backend stands in, so the factor is the machine's core
//     count, not 50).
// It also demonstrates the O(n²) wall: doubling the halo size quadruples
// the cost — the root cause of the center finder's load imbalance.
#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "halo/center_finder.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace cosmo;

namespace {

sim::ParticleSet concentrated_halo(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  sim::ParticleSet p;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = 0.6 * std::pow(rng.uniform(), 2.0) + 1e-3;
    const double cz = rng.uniform(-1, 1), ph = rng.uniform(0, 2 * M_PI);
    const double s = std::sqrt(1 - cz * cz);
    p.push_back(static_cast<float>(8 + r * s * std::cos(ph)),
                static_cast<float>(8 + r * s * std::sin(ph)),
                static_cast<float>(8 + r * cz), 0, 0, 0,
                static_cast<std::int64_t>(i));
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench_common::ObsSession obs_session(argc, argv);
  bench_common::print_header(
      "Ablation — MBP center finder implementations vs halo size",
      "§3.3.2 (A* ≈ 8x serial; PISTON/GPU ≈ 50x serial)");

  TextTable t({"halo size", "serial brute (s)", "parallel brute (s)",
               "A* (s)", "A* exact evals", "serial/A*", "serial/parallel"});

  double prev_serial = 0.0;
  std::size_t prev_n = 0;
  for (const std::size_t n : {1000u, 2000u, 4000u, 8000u, 16000u}) {
    auto p = concentrated_halo(n, 31 + n);
    std::vector<std::uint32_t> members(n);
    std::iota(members.begin(), members.end(), 0u);
    halo::CenterConfig cfg;

    WallTimer t_serial;
    auto serial = halo::mbp_center_brute(dpp::Backend::Serial, p, members, cfg);
    const double serial_s = t_serial.seconds();

    WallTimer t_pool;
    auto pool =
        halo::mbp_center_brute(dpp::Backend::ThreadPool, p, members, cfg);
    const double pool_s = t_pool.seconds();

    WallTimer t_astar;
    auto astar = halo::mbp_center_astar(p, members, cfg);
    const double astar_s = t_astar.seconds();

    COSMO_REQUIRE(serial.particle == pool.particle &&
                      serial.particle == astar.particle,
                  "center finders disagree");

    t.add_row({std::to_string(n), TextTable::num(serial_s, 4),
               TextTable::num(pool_s, 4), TextTable::num(astar_s, 4),
               std::to_string(astar.exact_evaluations),
               TextTable::num(serial_s / astar_s, 1),
               TextTable::num(serial_s / pool_s, 2)});

    if (prev_n != 0) {
      const double growth = serial_s / prev_serial;
      std::printf("  n %zu -> %zu: serial cost x%.2f (O(n^2) predicts x%.1f)\n",
                  prev_n, n, growth,
                  static_cast<double>(n * n) /
                      static_cast<double>(prev_n * prev_n));
    }
    prev_serial = serial_s;
    prev_n = n;
  }
  t.print(std::cout);

  std::printf("\nshape to match: all three agree on the center; A* expands "
              "only a small fraction of particles (factor ~8 in the paper);\n"
              "the data-parallel backend scales with available cores (the "
              "paper's GPU backend reached ~50x);\ncost grows as n^2 — a 10M-"
              "particle halo costs 10,000x a 100k one (§3.3.2).\n");
  return 0;
}
