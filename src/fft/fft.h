// Complex FFTs: 1-D radix-2, local 3-D, and helpers shared with the
// distributed transform.
//
// The PM gravity solver and the in-situ power-spectrum analysis both need
// 3-D FFTs; HACC uses its own pencil-decomposed FFT for the same reason we
// build our own here — the transform has to live inside the simulation's
// domain decomposition.
#pragma once

#include <complex>
#include <cstddef>
#include <numbers>
#include <span>
#include <vector>

#include "util/error.h"

namespace cosmo::fft {

using Complex = std::complex<double>;

/// True if n is a power of two (and nonzero).
constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// In-place iterative radix-2 Cooley–Tukey on a contiguous buffer.
/// `inverse` applies the conjugate transform WITHOUT the 1/n scaling;
/// callers scale once at the end of a full round trip.
inline void fft_1d(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  COSMO_REQUIRE(is_pow2(n), "fft_1d length must be a power of two");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

/// Strided 1-D transform: elements data[offset + i*stride], i in [0, n).
/// Copies through a scratch buffer; the 3-D transforms reuse one scratch.
inline void fft_1d_strided(Complex* data, std::size_t n, std::size_t stride,
                           bool inverse, std::vector<Complex>& scratch) {
  scratch.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch[i] = data[i * stride];
  fft_1d(scratch, inverse);
  for (std::size_t i = 0; i < n; ++i) data[i * stride] = scratch[i];
}

/// Dense n³ (or nx×ny×nz) complex grid with row-major layout:
/// index = (z*ny + y)*nx + x  — x varies fastest.
class Grid3 {
 public:
  Grid3() = default;
  Grid3(std::size_t nx, std::size_t ny, std::size_t nz)
      : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz) {}

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  std::size_t size() const { return data_.size(); }

  Complex& at(std::size_t x, std::size_t y, std::size_t z) {
    return data_[(z * ny_ + y) * nx_ + x];
  }
  const Complex& at(std::size_t x, std::size_t y, std::size_t z) const {
    return data_[(z * ny_ + y) * nx_ + x];
  }

  std::span<Complex> flat() { return data_; }
  std::span<const Complex> flat() const { return data_; }
  Complex* data() { return data_.data(); }

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<Complex> data_;
};

/// In-place 3-D transform of a local (single-rank) grid. No normalization;
/// a forward+inverse round trip gains a factor of nx*ny*nz.
inline void fft_3d(Grid3& g, bool inverse) {
  COSMO_REQUIRE(is_pow2(g.nx()) && is_pow2(g.ny()) && is_pow2(g.nz()),
                "fft_3d dims must be powers of two");
  std::vector<Complex> scratch;
  // x-direction: contiguous rows.
  for (std::size_t z = 0; z < g.nz(); ++z)
    for (std::size_t y = 0; y < g.ny(); ++y)
      fft_1d(std::span<Complex>(&g.at(0, y, z), g.nx()), inverse);
  // y-direction: stride nx.
  for (std::size_t z = 0; z < g.nz(); ++z)
    for (std::size_t x = 0; x < g.nx(); ++x)
      fft_1d_strided(&g.at(x, 0, z), g.ny(), g.nx(), inverse, scratch);
  // z-direction: stride nx*ny.
  for (std::size_t y = 0; y < g.ny(); ++y)
    for (std::size_t x = 0; x < g.nx(); ++x)
      fft_1d_strided(&g.at(x, y, 0), g.nz(), g.nx() * g.ny(), inverse, scratch);
}

/// Signed frequency index for mode i of an n-point transform: 0..n/2,
/// then negative. Used to build physical wavevectors.
inline long freq_index(std::size_t i, std::size_t n) {
  return i <= n / 2 ? static_cast<long>(i)
                    : static_cast<long>(i) - static_cast<long>(n);
}

}  // namespace cosmo::fft
