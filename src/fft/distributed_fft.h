// Slab-decomposed distributed 3-D FFT over the SPMD communicator.
//
// Real space: each rank owns a contiguous slab of z-planes.
// k space:    each rank owns a contiguous slab of ky-rows, with kz
//             contiguous in memory ("transposed" output, as in FFTW MPI and
//             HACC's solver — avoiding the transpose back saves a full
//             all-to-all per solve).
//
// Layouts (n = global grid size, P = ranks, nzl = n/P, nyl = n/P):
//   real space slab:  index = (z_local*n + y)*n + x        (x fastest)
//   k space slab:     index = (ky_local*n + kx)*n + kz     (kz fastest)
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "comm/comm.h"
#include "fft/fft.h"
#include "util/error.h"

namespace cosmo::fft {

class DistributedFft {
 public:
  DistributedFft(comm::Comm& comm, std::size_t n)
      : comm_(&comm), n_(n), nslab_(n / static_cast<std::size_t>(comm.size())) {
    COSMO_REQUIRE(is_pow2(n), "grid size must be a power of two");
    COSMO_REQUIRE(n % static_cast<std::size_t>(comm.size()) == 0,
                  "grid size must divide evenly across ranks");
  }

  std::size_t n() const { return n_; }
  /// Planes per rank in both decompositions (z-slab and ky-slab).
  std::size_t slab_thickness() const { return nslab_; }
  /// First z-plane (real space) / ky-row (k space) owned by this rank.
  std::size_t slab_start() const {
    return static_cast<std::size_t>(comm_->rank()) * nslab_;
  }
  std::size_t local_size() const { return nslab_ * n_ * n_; }

  /// Forward transform. `slab` holds the rank's real-space z-slab on entry
  /// and its transposed k-space ky-slab on return. Unnormalized.
  void forward(std::vector<Complex>& slab) {
    check_size(slab);
    std::vector<Complex> scratch;
    // x and y transforms within each local z-plane.
    for (std::size_t zl = 0; zl < nslab_; ++zl) {
      Complex* plane = slab.data() + zl * n_ * n_;
      for (std::size_t y = 0; y < n_; ++y)
        fft_1d(std::span<Complex>(plane + y * n_, n_), /*inverse=*/false);
      for (std::size_t x = 0; x < n_; ++x)
        fft_1d_strided(plane + x, n_, n_, /*inverse=*/false, scratch);
    }
    transpose_z_to_y(slab);
    // z transform: contiguous runs of length n in the transposed layout.
    for (std::size_t row = 0; row < nslab_ * n_; ++row)
      fft_1d(std::span<Complex>(slab.data() + row * n_, n_), /*inverse=*/false);
  }

  /// Inverse transform (accepts the transposed k-space slab, returns the
  /// real-space z-slab) including the 1/n³ normalization.
  void inverse(std::vector<Complex>& slab) {
    check_size(slab);
    std::vector<Complex> scratch;
    for (std::size_t row = 0; row < nslab_ * n_; ++row)
      fft_1d(std::span<Complex>(slab.data() + row * n_, n_), /*inverse=*/true);
    transpose_y_to_z(slab);
    for (std::size_t zl = 0; zl < nslab_; ++zl) {
      Complex* plane = slab.data() + zl * n_ * n_;
      for (std::size_t x = 0; x < n_; ++x)
        fft_1d_strided(plane + x, n_, n_, /*inverse=*/true, scratch);
      for (std::size_t y = 0; y < n_; ++y)
        fft_1d(std::span<Complex>(plane + y * n_, n_), /*inverse=*/true);
    }
    const double scale = 1.0 / (static_cast<double>(n_) * static_cast<double>(n_) *
                                static_cast<double>(n_));
    for (auto& v : slab) v *= scale;
  }

 private:
  void check_size(const std::vector<Complex>& slab) const {
    COSMO_REQUIRE(slab.size() == local_size(), "slab buffer has wrong size");
  }

  /// Elements each rank exchanges with each peer: every peer owns an equal
  /// slab, so all counts equal nslab²·n. One flat count vector serves as
  /// both send and recv counts for the batched alltoallv_flat.
  std::vector<std::size_t> uniform_counts() const {
    return std::vector<std::size_t>(static_cast<std::size_t>(comm_->size()),
                                    nslab_ * n_ * nslab_);
  }

  // Redistribute from z-slabs (x fastest) to ky-slabs (kz fastest).
  // Element (z, y, x) moves to rank owning y, landing at (y_local, x, z).
  //
  // Batched exchange: all P pencil blocks are packed into ONE contiguous
  // destination-major buffer (displacement of rank d = d·nslab²·n,
  // precomputed inside alltoallv_flat from the uniform counts) and shipped
  // in a single flat all-to-all — no per-destination vector allocations and
  // no per-source payload-to-vector copy on receive.
  void transpose_z_to_y(std::vector<Complex>& slab) {
    const int P = comm_->size();
    const std::size_t block = nslab_ * n_ * nslab_;
    std::vector<Complex> packed(local_size());
    for (int d = 0; d < P; ++d) {
      Complex* buf = packed.data() + static_cast<std::size_t>(d) * block;
      const std::size_t y0 = static_cast<std::size_t>(d) * nslab_;
      // Sender writes in (y_local, x, z_local) order, z_local fastest, so
      // the receiver can block-copy runs of z.
      std::size_t idx = 0;
      for (std::size_t yl = 0; yl < nslab_; ++yl)
        for (std::size_t x = 0; x < n_; ++x)
          for (std::size_t zl = 0; zl < nslab_; ++zl)
            buf[idx++] = slab[(zl * n_ + (y0 + yl)) * n_ + x];
    }
    const auto counts = uniform_counts();
    const auto recv = comm_->alltoallv_flat<Complex>(packed, counts, counts);
    for (int s = 0; s < P; ++s) {
      const Complex* buf = recv.data() + static_cast<std::size_t>(s) * block;
      const std::size_t z0 = static_cast<std::size_t>(s) * nslab_;
      std::size_t idx = 0;
      for (std::size_t yl = 0; yl < nslab_; ++yl)
        for (std::size_t x = 0; x < n_; ++x) {
          Complex* dst = slab.data() + (yl * n_ + x) * n_ + z0;
          for (std::size_t zl = 0; zl < nslab_; ++zl) dst[zl] = buf[idx++];
        }
    }
  }

  // Exact inverse of transpose_z_to_y (same batched single-buffer exchange).
  void transpose_y_to_z(std::vector<Complex>& slab) {
    const int P = comm_->size();
    const std::size_t block = nslab_ * n_ * nslab_;
    std::vector<Complex> packed(local_size());
    for (int d = 0; d < P; ++d) {
      Complex* buf = packed.data() + static_cast<std::size_t>(d) * block;
      const std::size_t z0 = static_cast<std::size_t>(d) * nslab_;
      // Mirror ordering: (y_local, x, z_local) with z_local fastest.
      std::size_t idx = 0;
      for (std::size_t yl = 0; yl < nslab_; ++yl)
        for (std::size_t x = 0; x < n_; ++x) {
          const Complex* src = slab.data() + (yl * n_ + x) * n_ + z0;
          for (std::size_t zl = 0; zl < nslab_; ++zl) buf[idx++] = src[zl];
        }
    }
    const auto counts = uniform_counts();
    const auto recv = comm_->alltoallv_flat<Complex>(packed, counts, counts);
    for (int s = 0; s < P; ++s) {
      const Complex* buf = recv.data() + static_cast<std::size_t>(s) * block;
      const std::size_t y0 = static_cast<std::size_t>(s) * nslab_;
      std::size_t idx = 0;
      for (std::size_t yl = 0; yl < nslab_; ++yl)
        for (std::size_t x = 0; x < n_; ++x)
          for (std::size_t zl = 0; zl < nslab_; ++zl)
            slab[(zl * n_ + (y0 + yl)) * n_ + x] = buf[idx++];
    }
  }

  comm::Comm* comm_;
  std::size_t n_;
  std::size_t nslab_;
};

}  // namespace cosmo::fft
