// Slab-decomposed distributed 3-D FFT over the SPMD communicator.
//
// Real space: each rank owns a contiguous slab of z-planes.
// k space:    each rank owns a contiguous slab of ky-rows, with kz
//             contiguous in memory ("transposed" output, as in FFTW MPI and
//             HACC's solver — avoiding the transpose back saves a full
//             all-to-all per solve).
//
// Layouts (n = global grid size, P = ranks, nzl = n/P, nyl = n/P):
//   real space slab:  index = (z_local*n + y)*n + x        (x fastest)
//   k space slab:     index = (ky_local*n + kx)*n + kz     (kz fastest)
//
// Execution: the per-pencil 1-D row transforms and the transpose pack/unpack
// copy loops dispatch on the dpp pool (set_backend), and the transposes
// themselves come in two exchange modes:
//   * Batched   — pack all P pencil blocks into one contiguous buffer, ship
//     it with a single alltoallv_flat, then unpack. One collective, but
//     pack → exchange → unpack run strictly sequentially per rank.
//   * Pipelined — post each destination block through an incremental
//     AlltoallvFlatSession the moment it finishes packing, and unpack each
//     source block as it arrives (non-blocking poll between packs, blocking
//     finish after the last). Receives that landed during packing never show
//     up in comm.recv_wait_us — the overlap hides most of the exchange.
// Both modes and both backends produce bit-identical output: every unpack
// writes a source-addressed disjoint region, every row transform owns its
// row, and block boundaries never depend on scheduling.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "comm/comm.h"
#include "dpp/primitives.h"
#include "fft/fft.h"
#include "obs/obs.h"
#include "util/error.h"

namespace cosmo::fft {

class DistributedFft {
 public:
  enum class ExchangeMode {
    Batched,    ///< one alltoallv_flat per transpose (the pre-pipeline path)
    Pipelined,  ///< incremental session: pack/exchange/unpack overlap
  };

  DistributedFft(comm::Comm& comm, std::size_t n)
      : comm_(&comm), n_(n), nslab_(n / static_cast<std::size_t>(comm.size())) {
    COSMO_REQUIRE(is_pow2(n), "grid size must be a power of two");
    COSMO_REQUIRE(n % static_cast<std::size_t>(comm.size()) == 0,
                  "grid size must divide evenly across ranks");
  }

  std::size_t n() const { return n_; }
  /// Planes per rank in both decompositions (z-slab and ky-slab).
  std::size_t slab_thickness() const { return nslab_; }
  /// First z-plane (real space) / ky-row (k space) owned by this rank.
  std::size_t slab_start() const {
    return static_cast<std::size_t>(comm_->rank()) * nslab_;
  }
  std::size_t local_size() const { return nslab_ * n_ * n_; }

  /// Execution backend for the per-pencil 1-D transforms and the transpose
  /// pack/unpack copy loops. Output is bit-identical across backends.
  void set_backend(dpp::Backend b) { backend_ = b; }
  dpp::Backend backend() const { return backend_; }

  /// Transpose exchange strategy; output is bit-identical across modes.
  void set_exchange_mode(ExchangeMode m) { mode_ = m; }
  ExchangeMode exchange_mode() const { return mode_; }

  /// Rows per scheduler chunk for the 1-D row transforms (0 = auto).
  void set_row_grain(std::size_t g) { row_grain_ = g; }
  std::size_t row_grain() const { return row_grain_; }

  /// (y_local, x) pencils per chunk for the pack/unpack loops (0 = auto).
  void set_copy_grain(std::size_t g) { copy_grain_ = g; }
  std::size_t copy_grain() const { return copy_grain_; }

  /// Forward transform. `slab` holds the rank's real-space z-slab on entry
  /// and its transposed k-space ky-slab on return. Unnormalized.
  void forward(std::vector<Complex>& slab) {
    check_size(slab);
    {
      COSMO_TRACE_SPAN_CAT("fft.rows", "fft");
      // x and y transforms within each local z-plane: (zl, y) rows are
      // contiguous runs of n; (zl, x) pencils are strided by n.
      dpp::for_each_index(
          backend_, nslab_ * n_,
          [&](std::size_t t) {
            fft_1d(std::span<Complex>(slab.data() + t * n_, n_),
                   /*inverse=*/false);
          },
          row_grain_);
      dpp::for_each_chunk(
          backend_, nslab_ * n_,
          [&](std::size_t lo, std::size_t hi) {
            std::vector<Complex> scratch;
            for (std::size_t t = lo; t < hi; ++t) {
              Complex* plane = slab.data() + (t / n_) * n_ * n_;
              fft_1d_strided(plane + t % n_, n_, n_, /*inverse=*/false,
                             scratch);
            }
          },
          row_grain_);
    }
    transpose_z_to_y(slab);
    {
      COSMO_TRACE_SPAN_CAT("fft.rows", "fft");
      // z transform: contiguous runs of length n in the transposed layout.
      dpp::for_each_index(
          backend_, nslab_ * n_,
          [&](std::size_t row) {
            fft_1d(std::span<Complex>(slab.data() + row * n_, n_),
                   /*inverse=*/false);
          },
          row_grain_);
    }
  }

  /// Inverse transform (accepts the transposed k-space slab, returns the
  /// real-space z-slab) including the 1/n³ normalization.
  void inverse(std::vector<Complex>& slab) {
    check_size(slab);
    {
      COSMO_TRACE_SPAN_CAT("fft.rows", "fft");
      dpp::for_each_index(
          backend_, nslab_ * n_,
          [&](std::size_t row) {
            fft_1d(std::span<Complex>(slab.data() + row * n_, n_),
                   /*inverse=*/true);
          },
          row_grain_);
    }
    transpose_y_to_z(slab);
    {
      COSMO_TRACE_SPAN_CAT("fft.rows", "fft");
      dpp::for_each_chunk(
          backend_, nslab_ * n_,
          [&](std::size_t lo, std::size_t hi) {
            std::vector<Complex> scratch;
            for (std::size_t t = lo; t < hi; ++t) {
              Complex* plane = slab.data() + (t / n_) * n_ * n_;
              fft_1d_strided(plane + t % n_, n_, n_, /*inverse=*/true, scratch);
            }
          },
          row_grain_);
      dpp::for_each_index(
          backend_, nslab_ * n_,
          [&](std::size_t t) {
            fft_1d(std::span<Complex>(slab.data() + t * n_, n_),
                   /*inverse=*/true);
          },
          row_grain_);
    }
    const double scale = 1.0 / (static_cast<double>(n_) * static_cast<double>(n_) *
                                static_cast<double>(n_));
    dpp::for_each_index(
        backend_, nslab_ * n_,
        [&](std::size_t row) {
          Complex* r = slab.data() + row * n_;
          for (std::size_t i = 0; i < n_; ++i) r[i] *= scale;
        },
        row_grain_);
  }

 private:
  void check_size(const std::vector<Complex>& slab) const {
    COSMO_REQUIRE(slab.size() == local_size(), "slab buffer has wrong size");
  }

  /// Elements each rank exchanges with each peer: every peer owns an equal
  /// slab, so all counts equal nslab²·n. One flat count vector serves as
  /// both send and recv counts for either exchange path.
  std::vector<std::size_t> uniform_counts() const {
    return std::vector<std::size_t>(static_cast<std::size_t>(comm_->size()),
                                    nslab_ * n_ * nslab_);
  }

  // ---- pack/unpack kernels -----------------------------------------------
  // Both transposes move pencil blocks of nslab²·n elements laid out in
  // (y_local, x, z_local) order with z_local fastest, so one side of every
  // copy is a contiguous run of nslab. The loops dispatch one item per
  // (y_local, x) pencil on the dpp pool; items touch disjoint pencils, so
  // any schedule produces the same bytes.

  /// z→y pack: gather the columns destined for rank d (y in d's ky-slab).
  void pack_z_to_y(const std::vector<Complex>& slab, int d,
                   Complex* buf) const {
    const std::size_t y0 = static_cast<std::size_t>(d) * nslab_;
    dpp::for_each_index(
        backend_, nslab_ * n_,
        [&](std::size_t t) {
          const std::size_t yl = t / n_;
          const std::size_t x = t % n_;
          Complex* dst = buf + t * nslab_;
          for (std::size_t zl = 0; zl < nslab_; ++zl)
            dst[zl] = slab[(zl * n_ + (y0 + yl)) * n_ + x];
        },
        copy_grain_);
  }

  /// z→y unpack of source s's block into the k-space layout: s owned the
  /// z-planes [s·nslab, (s+1)·nslab), which are contiguous kz runs here.
  void unpack_z_to_y(const Complex* buf, int s, Complex* out) const {
    const std::size_t z0 = static_cast<std::size_t>(s) * nslab_;
    dpp::for_each_index(
        backend_, nslab_ * n_,
        [&](std::size_t t) {
          const std::size_t yl = t / n_;
          const std::size_t x = t % n_;
          const Complex* src = buf + t * nslab_;
          Complex* dst = out + (yl * n_ + x) * n_ + z0;
          for (std::size_t zl = 0; zl < nslab_; ++zl) dst[zl] = src[zl];
        },
        copy_grain_);
  }

  /// y→z pack: mirror of unpack_z_to_y (contiguous kz runs out of the slab).
  void pack_y_to_z(const std::vector<Complex>& slab, int d,
                   Complex* buf) const {
    const std::size_t z0 = static_cast<std::size_t>(d) * nslab_;
    dpp::for_each_index(
        backend_, nslab_ * n_,
        [&](std::size_t t) {
          const std::size_t yl = t / n_;
          const std::size_t x = t % n_;
          const Complex* src = slab.data() + (yl * n_ + x) * n_ + z0;
          Complex* dst = buf + t * nslab_;
          for (std::size_t zl = 0; zl < nslab_; ++zl) dst[zl] = src[zl];
        },
        copy_grain_);
  }

  /// y→z unpack: mirror of pack_z_to_y (scatter back into z-plane layout).
  void unpack_y_to_z(const Complex* buf, int s, Complex* out) const {
    const std::size_t y0 = static_cast<std::size_t>(s) * nslab_;
    dpp::for_each_index(
        backend_, nslab_ * n_,
        [&](std::size_t t) {
          const std::size_t yl = t / n_;
          const std::size_t x = t % n_;
          const Complex* src = buf + t * nslab_;
          for (std::size_t zl = 0; zl < nslab_; ++zl)
            out[(zl * n_ + (y0 + yl)) * n_ + x] = src[zl];
        },
        copy_grain_);
  }

  // ---- transposes --------------------------------------------------------

  // Redistribute from z-slabs (x fastest) to ky-slabs (kz fastest).
  // Element (z, y, x) moves to rank owning y, landing at (y_local, x, z).
  void transpose_z_to_y(std::vector<Complex>& slab) {
    if (mode_ == ExchangeMode::Batched)
      transpose_batched(slab, /*z_to_y=*/true);
    else
      transpose_pipelined(slab, /*z_to_y=*/true);
  }

  // Exact inverse of transpose_z_to_y (same exchange machinery).
  void transpose_y_to_z(std::vector<Complex>& slab) {
    if (mode_ == ExchangeMode::Batched)
      transpose_batched(slab, /*z_to_y=*/false);
    else
      transpose_pipelined(slab, /*z_to_y=*/false);
  }

  /// Batched exchange: all P pencil blocks packed into ONE contiguous
  /// destination-major buffer (displacement of rank d = d·nslab²·n) and
  /// shipped in a single flat all-to-all — no per-destination vector
  /// allocations and no per-source payload-to-vector copy on receive.
  void transpose_batched(std::vector<Complex>& slab, bool z_to_y) {
    const int P = comm_->size();
    const std::size_t block = nslab_ * n_ * nslab_;
    std::vector<Complex> packed(local_size());
    {
      COSMO_TRACE_SPAN_CAT("fft.pack", "fft");
      for (int d = 0; d < P; ++d) {
        Complex* buf = packed.data() + static_cast<std::size_t>(d) * block;
        if (z_to_y)
          pack_z_to_y(slab, d, buf);
        else
          pack_y_to_z(slab, d, buf);
      }
    }
    const auto counts = uniform_counts();
    std::vector<Complex> recv;
    {
      COSMO_TRACE_SPAN_CAT("fft.exchange", "fft");
      recv = comm_->alltoallv_flat<Complex>(packed, counts, counts);
    }
    {
      COSMO_TRACE_SPAN_CAT("fft.unpack", "fft");
      for (int s = 0; s < P; ++s) {
        const Complex* buf = recv.data() + static_cast<std::size_t>(s) * block;
        if (z_to_y)
          unpack_z_to_y(buf, s, slab.data());
        else
          unpack_y_to_z(buf, s, slab.data());
      }
    }
  }

  /// Pipelined exchange: one block-sized pack scratch, reused per
  /// destination (post_block copies into the message payload immediately);
  /// arrived source blocks are drained out of the mailbox between packs
  /// (prefetch: payload moves only, so this rank's remaining posts are
  /// never delayed behind unpack compute) and unpacked in arrival order by
  /// finish, where the unpack of early blocks overlaps the wait for
  /// stragglers. Unpacks target `out` rather than `slab` because later
  /// packs still read `slab`. Every unpack writes a source-addressed
  /// disjoint region of `out`, so arrival order cannot change the result.
  void transpose_pipelined(std::vector<Complex>& slab, bool z_to_y) {
    const int P = comm_->size();
    const int rank = comm_->rank();
    const std::size_t block = nslab_ * n_ * nslab_;
    const auto counts = uniform_counts();
    std::vector<Complex> out(local_size());
    std::vector<Complex> scratch(block);
    comm::AlltoallvFlatSession<Complex> session(*comm_, counts);
    auto unpack = [&](int s, std::span<const Complex> buf) {
      COSMO_TRACE_SPAN_CAT("fft.unpack", "fft");
      COSMO_REQUIRE(buf.size() == block, "transpose block size mismatch");
      if (z_to_y)
        unpack_z_to_y(buf.data(), s, out.data());
      else
        unpack_y_to_z(buf.data(), s, out.data());
    };
    // Stagger destinations (self last): every peer starts receiving its
    // block up to P−1 pack-times earlier than the batched path would send
    // it, and blocks that land meanwhile are unpacked before the next pack.
    for (int step = 1; step <= P; ++step) {
      const int d = (rank + step) % P;
      {
        COSMO_TRACE_SPAN_CAT("fft.pack", "fft");
        if (z_to_y)
          pack_z_to_y(slab, d, scratch.data());
        else
          pack_y_to_z(slab, d, scratch.data());
      }
      session.post_block(d, std::span<const Complex>(scratch));
      session.prefetch();
    }
    {
      COSMO_TRACE_SPAN_CAT("fft.exchange", "fft");
      session.finish(unpack);
    }
    slab.swap(out);
  }

  comm::Comm* comm_;
  std::size_t n_;
  std::size_t nslab_;
  dpp::Backend backend_ = dpp::Backend::Serial;
  ExchangeMode mode_ = ExchangeMode::Pipelined;
  std::size_t row_grain_ = 0;
  std::size_t copy_grain_ = 0;
};

}  // namespace cosmo::fft
