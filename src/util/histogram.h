// Linear- and log-binned histograms.
//
// Used by the mass-function plot (Fig. 3, log mass bins), the per-node
// center-finding time distribution (Fig. 4, 1000 s linear bins), and the
// power-spectrum |k| binning.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/error.h"

namespace cosmo {

/// Fixed-width linear histogram over [lo, hi); out-of-range samples are
/// counted (and their weight tracked) separately, so both total() and
/// total_weight() always reconcile with what was added.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0), weights_(bins, 0.0) {
    COSMO_REQUIRE(hi > lo, "histogram range must be non-empty");
    COSMO_REQUIRE(bins > 0, "histogram needs at least one bin");
  }

  void add(double x, double weight = 1.0) {
    if (x < lo_) {
      ++underflow_;
      underflow_weight_ += weight;
      return;
    }
    if (x >= hi_) {
      ++overflow_;
      overflow_weight_ += weight;
      return;
    }
    const auto b = static_cast<std::size_t>((x - lo_) / width());
    const std::size_t idx = b < counts_.size() ? b : counts_.size() - 1;
    ++counts_[idx];
    weights_[idx] += weight;
  }

  std::size_t bins() const { return counts_.size(); }
  double width() const { return (hi_ - lo_) / static_cast<double>(bins()); }
  double bin_lo(std::size_t b) const { return lo_ + width() * static_cast<double>(b); }
  double bin_center(std::size_t b) const { return bin_lo(b) + 0.5 * width(); }
  std::uint64_t count(std::size_t b) const { return counts_[b]; }
  double weight(std::size_t b) const { return weights_[b]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  double underflow_weight() const { return underflow_weight_; }
  double overflow_weight() const { return overflow_weight_; }

  std::uint64_t total() const {
    std::uint64_t t = underflow_ + overflow_;
    for (auto c : counts_) t += c;
    return t;
  }

  /// Sum of every weight ever passed to add(), in-range or not.
  double total_weight() const {
    double t = underflow_weight_ + overflow_weight_;
    for (auto w : weights_) t += w;
    return t;
  }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::vector<double> weights_;
  std::uint64_t underflow_ = 0, overflow_ = 0;
  double underflow_weight_ = 0.0, overflow_weight_ = 0.0;
};

/// Logarithmically spaced histogram over [lo, hi); requires lo > 0.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins)
      : loglo_(std::log10(lo)),
        loghi_(std::log10(hi)),
        counts_(bins, 0) {
    COSMO_REQUIRE(lo > 0.0 && hi > lo, "log histogram needs 0 < lo < hi");
    COSMO_REQUIRE(bins > 0, "histogram needs at least one bin");
  }

  void add(double x) {
    if (x <= 0.0) {
      ++underflow_;
      return;
    }
    const double lx = std::log10(x);
    if (lx < loglo_) {
      ++underflow_;
      return;
    }
    if (lx >= loghi_) {
      ++overflow_;
      return;
    }
    auto b = static_cast<std::size_t>((lx - loglo_) / logwidth());
    if (b >= counts_.size()) b = counts_.size() - 1;
    ++counts_[b];
  }

  std::size_t bins() const { return counts_.size(); }
  double logwidth() const { return (loghi_ - loglo_) / static_cast<double>(bins()); }
  double bin_lo(std::size_t b) const {
    return std::pow(10.0, loglo_ + logwidth() * static_cast<double>(b));
  }
  double bin_hi(std::size_t b) const { return bin_lo(b + 1); }
  double bin_center(std::size_t b) const {
    return std::pow(10.0, loglo_ + logwidth() * (static_cast<double>(b) + 0.5));
  }
  std::uint64_t count(std::size_t b) const { return counts_[b]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  std::uint64_t total() const {
    std::uint64_t t = underflow_ + overflow_;
    for (auto c : counts_) t += c;
    return t;
  }

 private:
  double loglo_, loghi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0;
};

}  // namespace cosmo
