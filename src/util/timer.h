// Wall-clock timing helpers used by the workflow phase ledger and benches.
#pragma once

#include <chrono>

namespace cosmo {

/// Simple monotonic stopwatch; seconds() reads elapsed time without stopping.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cosmo
