// Plain-text table formatting for the bench harness.
//
// Every bench binary that regenerates one of the paper's tables/figures
// prints through this so the output is aligned and diff-friendly.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"

namespace cosmo {

/// Column-aligned ASCII table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Adds one row; must match the header's column count.
  void add_row(std::vector<std::string> row) {
    COSMO_REQUIRE(row.size() == header_.size(), "row/header size mismatch");
    rows_.push_back(std::move(row));
  }

  /// Formats a double with the given precision (helper for row building).
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string sci(double v, int precision = 3) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> w(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size(); ++c)
        if (r[c].size() > w[c]) w[c] = r[c].size();

    auto line = [&](const std::vector<std::string>& r) {
      os << "|";
      for (std::size_t c = 0; c < r.size(); ++c)
        os << " " << std::left << std::setw(static_cast<int>(w[c])) << r[c]
           << " |";
      os << "\n";
    };
    auto rule = [&]() {
      os << "+";
      for (auto width : w) os << std::string(width + 2, '-') << "+";
      os << "\n";
    };

    rule();
    line(header_);
    rule();
    for (const auto& r : rows_) line(r);
    rule();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cosmo
