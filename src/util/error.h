// Error-handling helpers shared across all cosmoflow modules.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cosmo {

/// Exception type thrown on precondition/invariant violations in library code.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* cond, const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace cosmo

/// Precondition check that stays on in release builds: library entry points
/// validate caller-supplied arguments with this, never with assert().
#define COSMO_REQUIRE(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) ::cosmo::detail::raise(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
