// Bounded retry with exponential backoff and deterministic jitter.
//
// Transient failures — a staging put that hit a full device, a Listener
// submit that bounced, a Level 2 write interrupted mid-file — are absorbed by
// retrying a bounded number of times with exponentially growing backoff.
// Jitter is drawn from the armed fault plan's seed (faults::jitter), not a
// wall-clock RNG, so a failing run replays with the exact same backoff
// schedule. All attempts/successes/exhaustions are counted in the metrics
// registry (`retry.*`) so tests can assert recovery behavior, not just
// outcomes.
#pragma once

#include <chrono>
#include <cmath>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "faults/faults.h"
#include "obs/obs.h"
#include "util/error.h"

namespace cosmo::util {

/// Retry policy knobs. Durations of std::chrono::milliseconds::max() mean
/// "unlimited"; a zero total_budget expires before the first attempt (the
/// degenerate case tests pin down explicitly).
struct RetryPolicy {
  int max_attempts = 3;
  std::chrono::milliseconds initial_backoff{1};
  double backoff_multiplier = 2.0;
  /// Ceiling on the exponential term (jitter rides on top).
  std::chrono::milliseconds max_backoff{64};
  /// Maximum deterministic jitter added to each backoff.
  std::chrono::milliseconds max_jitter{0};
  /// An attempt slower than this counts as failed even if it returned true
  /// (the caller already gave up on it).
  std::chrono::milliseconds attempt_timeout{std::chrono::milliseconds::max()};
  /// Wall-clock budget across all attempts and backoffs.
  std::chrono::milliseconds total_budget{std::chrono::milliseconds::max()};
};

/// Outcome of a Retry::run call.
struct RetryResult {
  bool success = false;
  int attempts = 0;
  /// True when the total_budget expired before the attempts were exhausted
  /// (possibly before the first attempt ever ran).
  bool budget_exhausted = false;
  /// Backoff actually applied after each failed (non-final) attempt.
  std::vector<std::chrono::milliseconds> backoffs;
  std::chrono::milliseconds total_backoff{0};
};

class Retry {
 public:
  explicit Retry(RetryPolicy policy = {}) : policy_(policy) {
    COSMO_REQUIRE(policy_.max_attempts >= 0, "negative attempt bound");
    COSMO_REQUIRE(policy_.backoff_multiplier >= 1.0,
                  "backoff must not shrink across attempts");
  }

  const RetryPolicy& policy() const { return policy_; }

  /// Backoff applied after 0-based `attempt` fails: exponential term clamped
  /// to max_backoff, plus deterministic jitter keyed on (`name`, attempt).
  /// Pure given the armed plan's seed — exposed so tests can assert the
  /// exact schedule a failing run used.
  std::chrono::milliseconds backoff_after(std::string_view name,
                                          int attempt) const {
    double ms = static_cast<double>(policy_.initial_backoff.count()) *
                std::pow(policy_.backoff_multiplier, attempt);
    ms = std::min(ms, static_cast<double>(policy_.max_backoff.count()));
    const std::uint64_t jitter = faults::jitter(
        name, static_cast<std::uint64_t>(attempt),
        static_cast<std::uint64_t>(policy_.max_jitter.count()) + 1);
    return std::chrono::milliseconds(static_cast<std::int64_t>(ms) +
                                     static_cast<std::int64_t>(jitter));
  }

  /// Runs `fn` (returning true on success) up to max_attempts times. A
  /// thrown exception counts as a failed attempt; other than that, failures
  /// are signalled by returning false. `name` labels the operation for
  /// jitter derivation and metrics.
  template <typename F>
  RetryResult run(std::string_view name, F&& fn) {
    RetryResult result;
    const auto start = std::chrono::steady_clock::now();
    const bool budgeted =
        policy_.total_budget != std::chrono::milliseconds::max();
    for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
      if (budgeted && std::chrono::steady_clock::now() - start >=
                          policy_.total_budget) {
        result.budget_exhausted = true;
        break;
      }
      ++result.attempts;
      COSMO_COUNT("retry.attempts", 1);
      const auto attempt_start = std::chrono::steady_clock::now();
      bool ok = false;
      try {
        ok = fn();
      } catch (const std::exception&) {
        ok = false;
      }
      const auto took = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - attempt_start);
      if (ok && took > policy_.attempt_timeout) {
        // The result arrived after the caller's per-attempt deadline: too
        // late to use, so it is a failure for retry purposes.
        COSMO_COUNT("retry.attempt_timeouts", 1);
        ok = false;
      }
      if (ok) {
        result.success = true;
        COSMO_COUNT("retry.successes", 1);
        return result;
      }
      if (attempt + 1 < policy_.max_attempts) {
        const auto backoff = backoff_after(name, attempt);
        result.backoffs.push_back(backoff);
        result.total_backoff += backoff;
        COSMO_COUNT("retry.backoff_ms",
                    static_cast<std::uint64_t>(backoff.count()));
        if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      }
    }
    COSMO_COUNT("retry.exhausted", 1);
    return result;
  }

 private:
  RetryPolicy policy_;
};

}  // namespace cosmo::util
