// CRC32 (ISO-HDLC polynomial, the zlib variant) for file-block integrity.
//
// The CosmoIO format stores a CRC per variable block, mirroring GenericIO's
// defence against silent corruption on large parallel filesystems.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace cosmo {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    table[i] = c;
  }
  return table;
}
inline constexpr auto kCrc32Table = make_crc32_table();
}  // namespace detail

/// Incremental CRC32. Pass the previous result as `seed` to chain buffers.
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace cosmo
