// Deterministic, fast pseudo-random number generation (xoshiro256++).
//
// Simulations and synthetic-universe generators need reproducible streams
// that can be split per rank; std::mt19937 is slower and its seeding is
// awkward to make rank-independent. splitmix64 turns (seed, stream) pairs
// into well-separated initial states.
#pragma once

#include <cmath>
#include <cstdint>

namespace cosmo {

/// splitmix64: used to expand a single 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; `stream` decorrelates per-rank streams that share
  /// a base seed.
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL,
               std::uint64_t stream = 0) {
    std::uint64_t sm = seed ^ (stream * 0x9E3779B97F4A7C15ULL + 1);
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (caches the second variate).
  double normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Poisson variate; inversion for small mean, normal approximation above.
  std::uint64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean < 30.0) {
      const double limit = std::exp(-mean);
      double prod = uniform();
      std::uint64_t n = 0;
      while (prod > limit) {
        prod *= uniform();
        ++n;
      }
      return n;
    }
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace cosmo
