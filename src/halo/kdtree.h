// Balanced k-d tree over particle positions.
//
// The workhorse of the FOF halo finder (§3.3.1): built once per rank over
// the owned+overload particle set, it supports range queries with
// bounding-box pruning, whole-subtree merges (all particles of a subtree
// closer than the linking length can be unioned at once), and k-nearest-
// neighbor queries for the subhalo finder's density estimates. x/y can be
// periodic (slab decomposition leaves z non-periodic with unwrapped ghosts).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "dpp/primitives.h"
#include "sim/particles.h"
#include "util/error.h"

namespace cosmo::halo {

/// Periodicity flags per dimension for distance computations.
struct Periodicity {
  bool x = false, y = false, z = false;
  double box = 0.0;  ///< required if any flag is set

  static Periodicity none() { return {}; }
  static Periodicity xy(double box) { return {true, true, false, box}; }
  static Periodicity all(double box) { return {true, true, true, box}; }
};

class KdTree {
 public:
  /// Builds over the subset `subset` of particles in `p` (or all of them if
  /// subset is empty and use_all is true). On the ThreadPool backend the two
  /// children of every node above kParallelBuildCutoff particles build as
  /// concurrent pool tasks; node ids are assigned from a precomputed preorder
  /// numbering (the tree shape is a pure function of size and leaf_size), so
  /// the node array and index() layout are backend-invariant.
  KdTree(const sim::ParticleSet& p, std::vector<std::uint32_t> subset,
         const Periodicity& per = {}, std::size_t leaf_size = 8,
         dpp::Backend backend = dpp::Backend::Serial)
      : p_(&p),
        per_(per),
        leaf_size_(leaf_size),
        backend_(backend),
        index_(std::move(subset)) {
    COSMO_REQUIRE(!(per.x || per.y || per.z) || per.box > 0.0,
                  "periodic tree needs a box size");
    COSMO_REQUIRE(leaf_size >= 1, "leaf size must be at least 1");
    if (!index_.empty()) {
      // Memoises every subtree size reachable from n (≤ 2 new per level),
      // so build_at only reads the table — safe under concurrent builds.
      nodes_.resize(count_subtree_nodes(index_.size()));
      build_at(0, 0, index_.size());
      root_ = 0;
    }
  }

  /// Convenience: tree over all particles.
  static KdTree over_all(const sim::ParticleSet& p,
                         const Periodicity& per = {},
                         std::size_t leaf_size = 8,
                         dpp::Backend backend = dpp::Backend::Serial) {
    std::vector<std::uint32_t> all(p.size());
    std::iota(all.begin(), all.end(), 0u);
    return KdTree(p, std::move(all), per, leaf_size, backend);
  }

  /// Children of nodes at least this large build as concurrent pool tasks.
  static constexpr std::size_t kParallelBuildCutoff = 2048;

  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  /// The (reordered) particle indices; node ranges refer to this array.
  std::span<const std::uint32_t> index() const { return index_; }

  struct Node {
    float lo[3], hi[3];        ///< bounding box of the subtree's particles
    std::uint32_t begin, end;  ///< range in index()
    std::int32_t left = -1, right = -1;
    bool leaf() const { return left < 0; }
    std::uint32_t count() const { return end - begin; }
  };

  const Node& node(std::int32_t id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  std::int32_t root() const { return root_; }

  /// Calls fn(particle_index) for every particle within radius r of (qx,qy,qz).
  template <typename Fn>
  void for_each_in_range(double qx, double qy, double qz, double r,
                         Fn&& fn) const {
    if (root_ < 0) return;
    range_recurse(root_, qx, qy, qz, r * r, fn);
  }

  /// Visitor-based traversal for the FOF subtree-merge optimisation.
  /// visit(node_id, min_dist2, max_dist2) returns:
  ///   0 = prune (ignore subtree), 1 = accept whole subtree, 2 = descend.
  /// On accept/leaf, leaf_fn(node) is called.
  template <typename Visit, typename LeafFn>
  void traverse(double qx, double qy, double qz, Visit&& visit,
                LeafFn&& leaf_fn) const {
    if (root_ < 0) return;
    traverse_recurse(root_, qx, qy, qz, visit, leaf_fn);
  }

  /// Squared min/max distance from a query point to a node's bounding box,
  /// respecting periodic dimensions.
  void box_dist2(const Node& n, double qx, double qy, double qz, double& dmin2,
                 double& dmax2) const {
    double dmin[3], dmax[3];
    axis_dist(qx, n.lo[0], n.hi[0], per_.x, dmin[0], dmax[0]);
    axis_dist(qy, n.lo[1], n.hi[1], per_.y, dmin[1], dmax[1]);
    axis_dist(qz, n.lo[2], n.hi[2], per_.z, dmin[2], dmax[2]);
    dmin2 = dmin[0] * dmin[0] + dmin[1] * dmin[1] + dmin[2] * dmin[2];
    dmax2 = dmax[0] * dmax[0] + dmax[1] * dmax[1] + dmax[2] * dmax[2];
  }

  /// Squared distance between particles a and b under the periodicity.
  double dist2(std::uint32_t a, std::uint32_t b) const {
    return point_dist2(p_->x[a], p_->y[a], p_->z[a], p_->x[b], p_->y[b],
                       p_->z[b]);
  }

  double point_dist2(double ax, double ay, double az, double bx, double by,
                     double bz) const {
    const double dx = fold(ax - bx, per_.x);
    const double dy = fold(ay - by, per_.y);
    const double dz = fold(az - bz, per_.z);
    return dx * dx + dy * dy + dz * dz;
  }

  /// Indices of the k nearest neighbors of (qx,qy,qz) (possibly including a
  /// particle at the query point itself), nearest first.
  std::vector<std::uint32_t> k_nearest(double qx, double qy, double qz,
                                       std::size_t k) const {
    // Max-heap of (dist2, index) keeps the k best seen so far.
    using Entry = std::pair<double, std::uint32_t>;
    std::priority_queue<Entry> heap;
    if (root_ >= 0) knn_recurse(root_, qx, qy, qz, k, heap);
    std::vector<std::uint32_t> out(heap.size());
    for (std::size_t i = out.size(); i-- > 0;) {
      out[i] = heap.top().second;
      heap.pop();
    }
    return out;
  }

  /// Distance to the k-th nearest neighbor (used by SPH density kernels).
  double k_nearest_dist(double qx, double qy, double qz, std::size_t k) const {
    using Entry = std::pair<double, std::uint32_t>;
    std::priority_queue<Entry> heap;
    if (root_ >= 0) knn_recurse(root_, qx, qy, qz, k, heap);
    COSMO_REQUIRE(!heap.empty(), "k_nearest_dist on empty tree");
    return std::sqrt(heap.top().first);
  }

 private:
  void axis_dist(double q, double lo, double hi, bool periodic, double& dmin,
                 double& dmax) const {
    dmin = interval_dist(q, lo, hi);
    dmax = (q < lo)   ? hi - q
           : (q > hi) ? q - lo
                      : std::max(q - lo, hi - q);
    if (periodic) {
      const double L = per_.box;
      // Nearest periodic image of the interval gives the true lower bound;
      // the direct max capped at L/2 stays a valid upper bound (periodic
      // distance never exceeds half the box per axis).
      dmin = std::min({dmin, interval_dist(q + L, lo, hi),
                       interval_dist(q - L, lo, hi)});
      dmax = std::min(dmax, 0.5 * L);
    }
  }

  static double interval_dist(double q, double lo, double hi) {
    if (q < lo) return lo - q;
    if (q > hi) return q - hi;
    return 0.0;
  }

  double fold(double d, bool periodic) const {
    if (!periodic) return d;
    const double L = per_.box;
    if (d > 0.5 * L) d -= L;
    if (d < -0.5 * L) d += L;
    return d;
  }

  /// Node count of a subtree over `count` particles — a pure function of
  /// (count, leaf_size) because the split point is always count/2.
  std::size_t count_subtree_nodes(std::size_t count) {
    const auto it = subtree_count_.find(count);
    if (it != subtree_count_.end()) return it->second;
    std::size_t total = 1;
    if (count > leaf_size_) {
      const std::size_t left = count / 2;
      total += count_subtree_nodes(left) + count_subtree_nodes(count - left);
    }
    subtree_count_.emplace(count, total);
    return total;
  }

  /// Builds the subtree over index_[begin, end) at preorder slot `id`:
  /// the left child lands at id+1, the right child after the whole left
  /// subtree — the same numbering a serial preorder push_back produces.
  /// Sibling subtrees touch disjoint node and index_ ranges, so they can
  /// build concurrently without synchronisation.
  void build_at(std::int32_t id, std::size_t begin, std::size_t end) {
    Node n;
    n.begin = static_cast<std::uint32_t>(begin);
    n.end = static_cast<std::uint32_t>(end);
    // Bounding box of the range.
    for (int d = 0; d < 3; ++d) {
      n.lo[d] = std::numeric_limits<float>::max();
      n.hi[d] = std::numeric_limits<float>::lowest();
    }
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t pi = index_[i];
      const float c[3] = {p_->x[pi], p_->y[pi], p_->z[pi]};
      for (int d = 0; d < 3; ++d) {
        n.lo[d] = std::min(n.lo[d], c[d]);
        n.hi[d] = std::max(n.hi[d], c[d]);
      }
    }
    if (end - begin <= leaf_size_) {
      nodes_[static_cast<std::size_t>(id)] = n;
      return;
    }

    // Split on the widest dimension at the median.
    int dim = 0;
    float width = n.hi[0] - n.lo[0];
    for (int d = 1; d < 3; ++d) {
      const float w = n.hi[d] - n.lo[d];
      if (w > width) {
        width = w;
        dim = d;
      }
    }
    const std::size_t mid = begin + (end - begin) / 2;
    auto coord = [&](std::uint32_t pi) {
      return dim == 0 ? p_->x[pi] : dim == 1 ? p_->y[pi] : p_->z[pi];
    };
    std::nth_element(index_.begin() + static_cast<std::ptrdiff_t>(begin),
                     index_.begin() + static_cast<std::ptrdiff_t>(mid),
                     index_.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return coord(a) < coord(b);
                     });
    const std::int32_t l = id + 1;
    const std::int32_t r =
        id + 1 +
        static_cast<std::int32_t>(subtree_count_.find(mid - begin)->second);
    n.left = l;
    n.right = r;
    nodes_[static_cast<std::size_t>(id)] = n;
    if (backend_ == dpp::Backend::ThreadPool &&
        end - begin >= kParallelBuildCutoff) {
      // Explicit grain 1: two chunks, so both children really dispatch.
      dpp::for_each_index(
          backend_, 2,
          [&](std::size_t c) {
            if (c == 0)
              build_at(l, begin, mid);
            else
              build_at(r, mid, end);
          },
          /*grain=*/1);
    } else {
      build_at(l, begin, mid);
      build_at(r, mid, end);
    }
  }

  template <typename Fn>
  void range_recurse(std::int32_t id, double qx, double qy, double qz,
                     double r2, Fn& fn) const {
    const Node& n = node(id);
    double dmin2, dmax2;
    box_dist2(n, qx, qy, qz, dmin2, dmax2);
    if (dmin2 > r2) return;
    if (n.leaf()) {
      for (std::uint32_t i = n.begin; i < n.end; ++i) {
        const std::uint32_t pi = index_[i];
        if (point_dist2(qx, qy, qz, p_->x[pi], p_->y[pi], p_->z[pi]) <= r2)
          fn(pi);
      }
      return;
    }
    range_recurse(n.left, qx, qy, qz, r2, fn);
    range_recurse(n.right, qx, qy, qz, r2, fn);
  }

  template <typename Visit, typename LeafFn>
  void traverse_recurse(std::int32_t id, double qx, double qy, double qz,
                        Visit& visit, LeafFn& leaf_fn) const {
    const Node& n = node(id);
    double dmin2, dmax2;
    box_dist2(n, qx, qy, qz, dmin2, dmax2);
    const int action = visit(id, dmin2, dmax2);
    if (action == 0) return;
    if (action == 1 || n.leaf()) {
      leaf_fn(n, action == 1);
      return;
    }
    traverse_recurse(n.left, qx, qy, qz, visit, leaf_fn);
    traverse_recurse(n.right, qx, qy, qz, visit, leaf_fn);
  }

  template <typename Heap>
  void knn_recurse(std::int32_t id, double qx, double qy, double qz,
                   std::size_t k, Heap& heap) const {
    const Node& n = node(id);
    double dmin2, dmax2;
    box_dist2(n, qx, qy, qz, dmin2, dmax2);
    if (heap.size() == k && dmin2 > heap.top().first) return;
    if (n.leaf()) {
      for (std::uint32_t i = n.begin; i < n.end; ++i) {
        const std::uint32_t pi = index_[i];
        const double d2 =
            point_dist2(qx, qy, qz, p_->x[pi], p_->y[pi], p_->z[pi]);
        if (heap.size() < k) {
          heap.emplace(d2, pi);
        } else if (d2 < heap.top().first) {
          heap.pop();
          heap.emplace(d2, pi);
        }
      }
      return;
    }
    // Visit the nearer child first for better pruning.
    double lmin2, lmax2, rmin2, rmax2;
    box_dist2(node(n.left), qx, qy, qz, lmin2, lmax2);
    box_dist2(node(n.right), qx, qy, qz, rmin2, rmax2);
    if (lmin2 <= rmin2) {
      knn_recurse(n.left, qx, qy, qz, k, heap);
      knn_recurse(n.right, qx, qy, qz, k, heap);
    } else {
      knn_recurse(n.right, qx, qy, qz, k, heap);
      knn_recurse(n.left, qx, qy, qz, k, heap);
    }
  }

  const sim::ParticleSet* p_;
  Periodicity per_;
  std::size_t leaf_size_;
  dpp::Backend backend_ = dpp::Backend::Serial;
  /// Subtree size → node count, fully populated before build_at starts.
  std::unordered_map<std::size_t, std::size_t> subtree_count_;
  std::vector<std::uint32_t> index_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace cosmo::halo
