// Friends-of-Friends halo finding (§3.3.1).
//
// An FOF halo is a connected component of the graph linking particle pairs
// closer than the linking length b. Within a rank the finder runs on a
// balanced k-d tree: bounding boxes prune subtrees entirely farther than b
// and merge subtrees entirely nearer than b without per-pair distance
// tests. Across ranks, each rank finds halos over its owned+overload
// particles; a halo is kept by exactly the rank that owns the halo's
// minimum-tag particle. Provided the overload width is at least the
// maximum halo extent, that rank has seen the halo in its entirety, so the
// assignment is both unique and complete.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "comm/comm.h"
#include "dpp/primitives.h"
#include "halo/kdtree.h"
#include "obs/obs.h"
#include "sim/decomposition.h"
#include "sim/particles.h"
#include "util/error.h"

namespace cosmo::halo {

/// Union-find with path compression and union by size.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::uint32_t{0});
  }

  std::uint32_t find(std::uint32_t v) {
    std::uint32_t root = v;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[v] != root) {
      const std::uint32_t next = parent_[v];
      parent_[v] = root;
      v = next;
    }
    return root;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

/// One found halo: indices into the particle set the finder ran over, plus
/// the halo id (the minimum particle tag — globally unique and stable
/// across rank counts).
struct FofHalo {
  std::vector<std::uint32_t> members;
  std::int64_t id = 0;
  /// Index (into the particle set the finder ran over) of the member whose
  /// tag equals `id` — tracked during grouping so distributed ownership
  /// tests need no member re-scan.
  std::uint32_t min_tag_member = 0;
};

struct FofConfig {
  double linking_length = 0.2;  ///< b, in position units (Mpc/h)
  std::size_t min_size = 40;    ///< discard smaller halos (spurious links)
  dpp::Backend backend = dpp::Backend::Serial;  ///< linking + tree build
  std::size_t grain = 0;  ///< particles per linking block (0 = auto)
};

namespace detail {

/// Runs the tree-traversal linking loop for particles [lo, hi), uniting
/// every pair within the linking length into `sets`.
inline void fof_link_range(const sim::ParticleSet& p, const KdTree& tree,
                           double ll2, std::uint32_t lo, std::uint32_t hi,
                           DisjointSets& sets) {
  for (std::uint32_t i = lo; i < hi; ++i) {
    const double qx = p.x[i], qy = p.y[i], qz = p.z[i];
    tree.traverse(
        qx, qy, qz,
        [&](std::int32_t, double dmin2, double dmax2) -> int {
          if (dmin2 > ll2) return 0;   // prune: nothing in range
          if (dmax2 <= ll2) return 1;  // accept: whole subtree within b
          return 2;                    // descend
        },
        [&](const KdTree::Node& nd, bool whole) {
          if (whole) {
            for (std::uint32_t k = nd.begin; k < nd.end; ++k)
              sets.unite(i, tree.index()[k]);
          } else {
            for (std::uint32_t k = nd.begin; k < nd.end; ++k) {
              const std::uint32_t j = tree.index()[k];
              if (tree.dist2(i, j) <= ll2) sets.unite(i, j);
            }
          }
        });
  }
}

}  // namespace detail

/// FOF over `p` under the given periodicity. Returns halos with at least
/// cfg.min_size members, largest first. On the ThreadPool backend the
/// per-particle linking loop is partitioned into blocks, each uniting into
/// a private DisjointSets; the block-local partitions are folded in
/// ascending block order. Connected components are independent of unite
/// order, so the catalog is bit-identical to Serial at every grain.
inline std::vector<FofHalo> fof_find(const sim::ParticleSet& p,
                                     const Periodicity& per,
                                     const FofConfig& cfg) {
  COSMO_REQUIRE(cfg.linking_length > 0.0, "linking length must be positive");
  const std::size_t n = p.size();
  std::vector<FofHalo> out;
  if (n == 0) return out;

  COSMO_TRACE_SPAN_CAT("halo.fof", "halo");
  KdTree tree = [&] {
    COSMO_TRACE_SPAN_CAT("halo.tree", "halo");
    return KdTree::over_all(p, per, /*leaf_size=*/8, cfg.backend);
  }();
  DisjointSets sets(n);
  const double ll2 = cfg.linking_length * cfg.linking_length;

  // Cap the block count like deposit_reduce: memory stays O(workers)
  // private DisjointSets and the ascending fold stays O(blocks · n).
  const std::size_t nw = dpp::ThreadPool::instance().workers();
  const std::size_t max_blocks = std::max<std::size_t>(std::size_t{1}, 4 * nw);
  const std::size_t min_block = (n + max_blocks - 1) / max_blocks;
  const dpp::detail::BlockDecomposition blocks(n, cfg.grain, min_block);
  if (cfg.backend != dpp::Backend::ThreadPool || blocks.num_blocks <= 1) {
    detail::fof_link_range(p, tree, ll2, 0, static_cast<std::uint32_t>(n),
                           sets);
  } else {
    std::vector<DisjointSets> partial(blocks.num_blocks, DisjointSets(n));
    dpp::for_each_index(
        cfg.backend, blocks.num_blocks,
        [&](std::size_t blk) {
          detail::fof_link_range(p, tree, ll2,
                                 static_cast<std::uint32_t>(blocks.lo(blk)),
                                 static_cast<std::uint32_t>(blocks.hi(blk, n)),
                                 partial[blk]);
        },
        /*grain=*/1);
    for (auto& part : partial)
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t r = part.find(i);
        if (r != i) sets.unite(i, r);
      }
  }

  // Group members by root.
  std::vector<std::uint32_t> root(n);
  for (std::uint32_t i = 0; i < n; ++i) root[i] = sets.find(i);
  std::vector<std::uint32_t> count(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) ++count[root[i]];
  std::vector<std::int32_t> halo_of_root(n, -1);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = root[i];
    if (count[r] < cfg.min_size) continue;
    if (halo_of_root[r] < 0) {
      halo_of_root[r] = static_cast<std::int32_t>(out.size());
      out.emplace_back();
      out.back().members.reserve(count[r]);
      out.back().id = std::numeric_limits<std::int64_t>::max();
    }
    auto& h = out[static_cast<std::size_t>(halo_of_root[r])];
    h.members.push_back(i);
    if (p.tag[i] < h.id) {
      h.id = p.tag[i];
      h.min_tag_member = i;
    }
  }
  std::sort(out.begin(), out.end(), [](const FofHalo& a, const FofHalo& b) {
    return a.members.size() != b.members.size()
               ? a.members.size() > b.members.size()
               : a.id < b.id;
  });
  COSMO_COUNT("halo.fof_halos", out.size());
  COSMO_GAUGE_SET("halo.largest_halo_frac",
                  out.empty() ? 0.0
                              : static_cast<double>(out.front().members.size()) /
                                    static_cast<double>(n));
  return out;
}

/// O(n²) reference implementation for tests.
inline std::vector<FofHalo> fof_brute_force(const sim::ParticleSet& p,
                                            const Periodicity& per,
                                            const FofConfig& cfg) {
  const std::size_t n = p.size();
  DisjointSets sets(n);
  const double ll2 = cfg.linking_length * cfg.linking_length;
  auto fold = [&](double d, bool flag) {
    if (!flag) return d;
    if (d > 0.5 * per.box) d -= per.box;
    if (d < -0.5 * per.box) d += per.box;
    return d;
  };
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = i + 1; j < n; ++j) {
      const double dx = fold(static_cast<double>(p.x[i]) - p.x[j], per.x);
      const double dy = fold(static_cast<double>(p.y[i]) - p.y[j], per.y);
      const double dz = fold(static_cast<double>(p.z[i]) - p.z[j], per.z);
      if (dx * dx + dy * dy + dz * dz <= ll2) sets.unite(i, j);
    }
  std::vector<std::uint32_t> root(n);
  for (std::uint32_t i = 0; i < n; ++i) root[i] = sets.find(i);
  std::vector<std::uint32_t> count(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) ++count[root[i]];
  std::vector<std::int32_t> halo_of_root(n, -1);
  std::vector<FofHalo> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = root[i];
    if (count[r] < cfg.min_size) continue;
    if (halo_of_root[r] < 0) {
      halo_of_root[r] = static_cast<std::int32_t>(out.size());
      out.emplace_back();
      out.back().id = std::numeric_limits<std::int64_t>::max();
    }
    auto& h = out[static_cast<std::size_t>(halo_of_root[r])];
    h.members.push_back(i);
    if (p.tag[i] < h.id) {
      h.id = p.tag[i];
      h.min_tag_member = i;
    }
  }
  std::sort(out.begin(), out.end(), [](const FofHalo& a, const FofHalo& b) {
    return a.members.size() != b.members.size()
               ? a.members.size() > b.members.size()
               : a.id < b.id;
  });
  return out;
}

/// Result of the distributed finder. Halos' member indices refer to
/// `particles` (the rank's owned+overload working set); indices below
/// `owned_count` are owned, the rest are ghosts.
struct DistributedFofResult {
  sim::ParticleSet particles;
  std::size_t owned_count = 0;
  std::vector<FofHalo> halos;  ///< halos assigned to this rank, complete
};

/// Parallel FOF across the slab decomposition. `overload_width` must be at
/// least the maximum halo extent (the paper's correctness condition).
inline DistributedFofResult fof_distributed(comm::Comm& comm,
                                            const sim::SlabDecomposition& decomp,
                                            const sim::ParticleSet& owned,
                                            const FofConfig& cfg,
                                            double overload_width) {
  DistributedFofResult out;
  if (comm.size() == 1) {
    out.particles = owned;
    out.owned_count = owned.size();
    out.halos = fof_find(out.particles, Periodicity::all(decomp.box()), cfg);
    return out;
  }
  auto ov = decomp.exchange_overload(comm, owned, overload_width);
  out.particles = std::move(ov.particles);
  out.owned_count = ov.owned_count;
  auto halos = fof_find(out.particles, Periodicity::xy(decomp.box()), cfg);
  // Keep a halo iff the minimum-tag member is one of our owned particles
  // (grouping already tracked the arg-min member alongside the id).
  for (auto& h : halos)
    if (h.min_tag_member < out.owned_count) out.halos.push_back(std::move(h));
  return out;
}

}  // namespace cosmo::halo
