// Halo center finding — Most Bound Particle (MBP) definition (§3.3.2).
//
// The center is the particle minimizing the potential
//     φ(i) = Σ_{j≠i} −m_j / (d_ij + ε),
// with a small softening ε guarding against coincident particles. Three
// implementations, mirroring the paper:
//
//  * mbp_center_brute   — the PISTON version: O(n²) data-parallel potential
//                         evaluation + argmin, one source targeting both
//                         dpp backends (the "GPU" path on ThreadPool).
//  * mbp_center_astar   — the legacy serial version: A*-style search with
//                         an optimistic tree-based lower bound per particle,
//                         evaluating exact potentials best-first until the
//                         best exact value beats every remaining bound
//                         (reported ~8x faster than serial brute force).
//  * both agree exactly on the chosen particle (ties break to lowest tag).
//
// All distances use the periodic minimum image; halos are compact, so this
// is exact for any halo smaller than half the box.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <span>
#include <vector>

#include "dpp/primitives.h"
#include "halo/kdtree.h"
#include "sim/particles.h"
#include "util/error.h"

namespace cosmo::halo {

struct CenterConfig {
  double softening = 1e-6;  ///< ε added to pair distances
  double box = 0.0;         ///< periodic box (0 = non-periodic)
};

struct CenterResult {
  std::uint32_t member_index = 0;  ///< position within the members list
  std::uint32_t particle = 0;      ///< index into the particle set
  double potential = 0.0;          ///< φ at the center
  std::uint64_t exact_evaluations = 0;  ///< # of O(n) potential sums computed
};

namespace detail {

inline double fold(double d, double box) {
  if (box <= 0.0) return d;
  if (d > 0.5 * box) d -= box;
  if (d < -0.5 * box) d += box;
  return d;
}

/// Exact potential of member k (unit masses).
inline double exact_potential(const sim::ParticleSet& p,
                              std::span<const std::uint32_t> members,
                              std::size_t k, const CenterConfig& cfg) {
  const std::uint32_t i = members[k];
  const double xi = p.x[i], yi = p.y[i], zi = p.z[i];
  double phi = 0.0;
  for (std::size_t m = 0; m < members.size(); ++m) {
    if (m == k) continue;
    const std::uint32_t j = members[m];
    const double dx = fold(xi - p.x[j], cfg.box);
    const double dy = fold(yi - p.y[j], cfg.box);
    const double dz = fold(zi - p.z[j], cfg.box);
    const double d = std::sqrt(dx * dx + dy * dy + dz * dz);
    phi -= 1.0 / (d + cfg.softening);
  }
  return phi;
}

}  // namespace detail

/// Brute-force O(n²) MBP center — the PISTON/data-parallel implementation.
/// Potentials for all members are computed in parallel on the chosen
/// backend; the minimum is taken with a deterministic tie-break (lowest
/// member index, i.e. the order in `members`).
inline CenterResult mbp_center_brute(dpp::Backend backend,
                                     const sim::ParticleSet& p,
                                     std::span<const std::uint32_t> members,
                                     const CenterConfig& cfg = {},
                                     std::size_t grain = 16) {
  COSMO_REQUIRE(!members.empty(), "center of an empty halo");
  const std::size_t n = members.size();
  std::vector<double> phi(n);
  // Each item is an O(n) potential sum — heavy and uniform-ish, but halos
  // run concurrently with other ranks' dispatches, so a small grain lets
  // the work-stealing pool interleave and balance them. Callers shrink the
  // grain further for the rare huge halos. phi is elementwise and argmin is
  // exact, so the result is grain- and backend-invariant.
  dpp::tabulate<double>(
      backend, phi,
      [&](std::size_t k) { return detail::exact_potential(p, members, k, cfg); },
      grain);
  const std::size_t best =
      dpp::argmin(backend, n, [&](std::size_t k) { return phi[k]; });
  CenterResult r;
  r.member_index = static_cast<std::uint32_t>(best);
  r.particle = members[best];
  r.potential = phi[best];
  r.exact_evaluations = n;
  return r;
}

/// A*-style MBP center. A k-d tree over the halo provides, for each
/// particle, an optimistic (lower) bound on its potential:
///     φ_lb(i) = Σ_nodes −count(node) / max(dmin(i, node), ε̃)
/// descending only where the bound is loose. Particles are then expanded
/// best-first by bound; each expansion computes one exact O(n) potential.
/// The search stops when the best exact potential is ≤ the smallest
/// remaining bound — at that point no unexpanded particle can win.
inline CenterResult mbp_center_astar(const sim::ParticleSet& p,
                                     std::span<const std::uint32_t> members,
                                     const CenterConfig& cfg = {},
                                     double open_angle = 1.2) {
  COSMO_REQUIRE(!members.empty(), "center of an empty halo");
  const std::size_t n = members.size();
  Periodicity per = cfg.box > 0.0 ? Periodicity::all(cfg.box) : Periodicity{};
  KdTree tree(p, std::vector<std::uint32_t>(members.begin(), members.end()),
              per);

  // Phase 1: optimistic bound per member.
  std::vector<double> bound(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t i = members[k];
    const double qx = p.x[i], qy = p.y[i], qz = p.z[i];
    double lb = 0.0;
    tree.traverse(
        qx, qy, qz,
        [&](std::int32_t id, double dmin2, double) -> int {
          const auto& nd = tree.node(id);
          const double diam2 =
              (nd.hi[0] - nd.lo[0]) * (nd.hi[0] - nd.lo[0]) +
              (nd.hi[1] - nd.lo[1]) * (nd.hi[1] - nd.lo[1]) +
              (nd.hi[2] - nd.lo[2]) * (nd.hi[2] - nd.lo[2]);
          // Accept when the node is far enough that the bound is tight.
          if (diam2 < open_angle * open_angle * dmin2) return 1;
          return 2;  // descend (leaves are handled in leaf_fn)
        },
        [&](const KdTree::Node& nd, bool whole) {
          if (whole) {
            double dmin2, dmax2;
            tree.box_dist2(nd, qx, qy, qz, dmin2, dmax2);
            const double dmin = std::sqrt(dmin2);
            lb -= static_cast<double>(nd.count()) / (dmin + cfg.softening);
          } else {
            for (std::uint32_t t = nd.begin; t < nd.end; ++t) {
              const std::uint32_t j = tree.index()[t];
              if (j == i) continue;
              const double d = std::sqrt(
                  tree.point_dist2(qx, qy, qz, p.x[j], p.y[j], p.z[j]));
              lb -= 1.0 / (d + cfg.softening);
            }
          }
        });
    bound[k] = lb;
  }

  // Phase 2: best-first exact evaluation.
  using Entry = std::pair<double, std::uint32_t>;  // (bound, member index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
  for (std::size_t k = 0; k < n; ++k)
    open.emplace(bound[k], static_cast<std::uint32_t>(k));

  CenterResult r;
  double best_phi = std::numeric_limits<double>::max();
  std::uint32_t best_k = 0;
  std::uint64_t evals = 0;
  while (!open.empty()) {
    const auto [lb, k] = open.top();
    if (best_phi <= lb) break;  // nothing left can beat the incumbent
    open.pop();
    const double phi = detail::exact_potential(p, members, k, cfg);
    ++evals;
    if (phi < best_phi || (phi == best_phi && k < best_k)) {
      best_phi = phi;
      best_k = k;
    }
  }
  r.member_index = best_k;
  r.particle = members[best_k];
  r.potential = best_phi;
  r.exact_evaluations = evals;
  return r;
}

/// Fills p.phi for all members with exact potentials (used by analysis
/// outputs that persist the potential, e.g. for SO seeding).
inline void fill_potentials(dpp::Backend backend, sim::ParticleSet& p,
                            std::span<const std::uint32_t> members,
                            const CenterConfig& cfg = {}) {
  std::vector<double> phi(members.size());
  dpp::tabulate<double>(
      backend, phi,
      [&](std::size_t k) { return detail::exact_potential(p, members, k, cfg); },
      /*grain=*/16);
  for (std::size_t k = 0; k < members.size(); ++k)
    p.phi[members[k]] = static_cast<float>(phi[k]);
}

}  // namespace cosmo::halo
