// Spherical-overdensity (SO) halo mass (§3.3.2, §4.1 task 5).
//
// Seeded at the halo's MBP center, the SO radius r_Δ is where the mean
// enclosed density first drops below Δ times the reference density; the SO
// mass is the enclosed mass. Fast (a sort by radius plus one sweep), which
// is why the paper runs it in-situ — but it *depends on the center*, which
// is why the halo analysis pipeline is sequential (find → center → SO).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <vector>

#include "dpp/primitives.h"
#include "sim/particles.h"
#include "util/error.h"

namespace cosmo::halo {

struct SoConfig {
  double delta = 200.0;        ///< overdensity threshold (Δ)
  double mean_density = 1.0;   ///< reference density, mass units / length³
  double particle_mass = 1.0;  ///< mass per particle
  double box = 0.0;            ///< periodic box (0 = non-periodic)
  dpp::Backend backend = dpp::Backend::Serial;  ///< r² tabulation
  std::size_t grain = 0;  ///< members per chunk (0 = auto)
};

struct SoResult {
  double radius = 0.0;        ///< r_Δ
  double mass = 0.0;          ///< M_Δ = particles_inside × particle_mass
  std::size_t count = 0;      ///< particles within r_Δ
};

/// Computes the SO mass around (cx, cy, cz) from the given member
/// particles. Walks outward in radius; returns the largest radius at which
/// the enclosed density still exceeds Δ·ρ_ref.
inline SoResult so_mass(const sim::ParticleSet& p,
                        std::span<const std::uint32_t> members, double cx,
                        double cy, double cz, const SoConfig& cfg) {
  COSMO_REQUIRE(cfg.delta > 0.0 && cfg.mean_density > 0.0,
                "SO threshold and density must be positive");
  // Elementwise, so the values are bit-identical across backends and grains.
  std::vector<double> r2(members.size());
  dpp::tabulate<double>(
      cfg.backend, r2,
      [&](std::size_t k) {
        const std::uint32_t i = members[k];
        const double dx = cx - p.x[i], dy = cy - p.y[i], dz = cz - p.z[i];
        return cfg.box > 0.0 ? sim::periodic_dist2(dx, dy, dz, cfg.box)
                             : dx * dx + dy * dy + dz * dz;
      },
      cfg.grain);
  std::sort(r2.begin(), r2.end());

  const double threshold = cfg.delta * cfg.mean_density;
  SoResult best;
  for (std::size_t k = 0; k < r2.size(); ++k) {
    const double r = std::sqrt(r2[k]);
    if (r <= 0.0) continue;
    const double volume = 4.0 / 3.0 * std::numbers::pi * r * r * r;
    const double enclosed_mass =
        static_cast<double>(k + 1) * cfg.particle_mass;
    if (enclosed_mass / volume >= threshold) {
      best.radius = r;
      best.mass = enclosed_mass;
      best.count = k + 1;
    }
  }
  return best;
}

}  // namespace cosmo::halo
