// Subhalo finding (§3.3.1, second half).
//
// Follows the density-hierarchy approach of Refs. [24, 35] as the paper
// describes it: (1) each particle's local density is estimated from its k
// nearest neighbors with an SPH kernel (neighbors found via the spatial
// tree); (2) a candidate hierarchy is built by sweeping particles in
// decreasing density order — a particle with no denser linked neighbor
// seeds a new candidate, a particle adjacent to one candidate joins it,
// and a particle bridging two candidates is a saddle: the smaller
// candidate is closed as a subhalo and absorbed; (3) candidates are
// pruned by a multi-pass unbinding that removes at most one quarter of
// the positive-energy particles per pass.
//
// Deliberately CPU-only and tree-based (the paper notes the subhalo finder
// "does not take advantage of GPUs"), which is what makes it a second
// load-imbalance driver for the workflow comparison.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <numeric>
#include <span>
#include <vector>

#include "dpp/primitives.h"
#include "halo/bh_tree.h"
#include "halo/kdtree.h"
#include "sim/particles.h"
#include "util/error.h"

namespace cosmo::halo {

/// Spatial search engine for the density estimate: the k-d tree, or the
/// Barnes-Hut octree the paper names for this task (§3.3.1).
enum class NeighborEngine { KdTree, BhTree };

struct SubhaloConfig {
  std::size_t num_neighbors = 20;   ///< k for the SPH density estimate
  std::size_t min_size = 20;        ///< smallest subhalo kept
  double particle_mass = 1.0;
  double box = 0.0;                 ///< periodic box (0 = non-periodic)
  std::size_t unbind_passes = 8;    ///< max unbinding iterations
  double velocity_scale = 1.0;      ///< converts stored velocities to the
                                    ///< potential's energy units
  NeighborEngine engine = NeighborEngine::KdTree;
  /// Execution backend for the per-member density estimates (tree queries
  /// are read-only, so members evaluate independently). ThreadPool shares
  /// the work-stealing pool with co-scheduled ranks; Serial reproduces the
  /// paper's CPU-only finder exactly as before.
  dpp::Backend backend = dpp::Backend::Serial;
  /// Members per scheduler chunk on the ThreadPool backend. Neighbor-query
  /// cost varies with local clustering, so a modest grain lets stealing
  /// even out the dense cores (0 = auto).
  std::size_t density_grain = 64;
};

struct Subhalo {
  std::vector<std::uint32_t> members;  ///< indices into the particle set
  double peak_density = 0.0;
};

namespace detail {

/// Standard cubic-spline SPH kernel W(r, h), normalized in 3-D.
inline double sph_kernel(double r, double h) {
  const double q = r / h;
  const double norm = 8.0 / (std::numbers::pi * h * h * h);
  if (q < 0.5) return norm * (1.0 - 6.0 * q * q + 6.0 * q * q * q);
  if (q < 1.0) {
    const double t = 1.0 - q;
    return norm * 2.0 * t * t * t;
  }
  return 0.0;
}

}  // namespace detail

/// SPH local density for each member: kernel-weighted mass of the k nearest
/// neighbors, with the smoothing length set to the k-th neighbor distance
/// (the estimator the paper describes: "total mass of these particles and
/// the distance to the furthest of these").
inline std::vector<double> local_densities(const sim::ParticleSet& p,
                                           std::span<const std::uint32_t> members,
                                           const SubhaloConfig& cfg) {
  const std::size_t k =
      std::min(cfg.num_neighbors + 1, members.size());  // +1: self
  std::vector<double> rho(members.size(), 0.0);

  auto estimate = [&](std::size_t m, const std::vector<std::uint32_t>& nbrs,
                      auto&& dist) {
    const std::uint32_t i = members[m];
    double h = 0.0;
    for (const auto j : nbrs) h = std::max(h, dist(i, j));
    if (h <= 0.0) h = 1e-10;
    double d = 0.0;
    for (const auto j : nbrs)
      d += cfg.particle_mass * detail::sph_kernel(dist(i, j), h);
    rho[m] = d;
  };

  if (cfg.engine == NeighborEngine::BhTree) {
    // The Barnes-Hut octree path the paper describes. Non-periodic: a
    // parent halo is compact, and the FOF pipeline hands members with
    // unwrapped coordinates.
    BhTree tree(p, std::vector<std::uint32_t>(members.begin(), members.end()));
    auto dist = [&](std::uint32_t a, std::uint32_t j) {
      const double dx = static_cast<double>(p.x[a]) - p.x[j];
      const double dy = static_cast<double>(p.y[a]) - p.y[j];
      const double dz = static_cast<double>(p.z[a]) - p.z[j];
      return std::sqrt(dx * dx + dy * dy + dz * dz);
    };
    dpp::for_each_index(
        cfg.backend, members.size(),
        [&](std::size_t m) {
          const std::uint32_t i = members[m];
          estimate(m, tree.k_nearest(p.x[i], p.y[i], p.z[i], k), dist);
        },
        cfg.density_grain);
    return rho;
  }

  Periodicity per = cfg.box > 0.0 ? Periodicity::all(cfg.box) : Periodicity{};
  KdTree tree(p, std::vector<std::uint32_t>(members.begin(), members.end()),
              per);
  auto dist = [&](std::uint32_t a, std::uint32_t j) {
    return std::sqrt(
        tree.point_dist2(p.x[a], p.y[a], p.z[a], p.x[j], p.y[j], p.z[j]));
  };
  dpp::for_each_index(
      cfg.backend, members.size(),
      [&](std::size_t m) {
        const std::uint32_t i = members[m];
        estimate(m, tree.k_nearest(p.x[i], p.y[i], p.z[i], k), dist);
      },
      cfg.density_grain);
  return rho;
}

inline void unbind(const sim::ParticleSet& p, Subhalo& s,
                   const SubhaloConfig& cfg);

/// Finds subhalos within one parent halo. Members are indices into `p`.
inline std::vector<Subhalo> find_subhalos(const sim::ParticleSet& p,
                                          std::span<const std::uint32_t> members,
                                          const SubhaloConfig& cfg) {
  const std::size_t n = members.size();
  std::vector<Subhalo> out;
  if (n < cfg.min_size) return out;

  const std::vector<double> rho = local_densities(p, members, cfg);

  // Sweep in decreasing density; link each particle to denser neighbors.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return rho[a] != rho[b] ? rho[a] > rho[b] : a < b;
  });

  Periodicity per = cfg.box > 0.0 ? Periodicity::all(cfg.box) : Periodicity{};
  KdTree tree(p, std::vector<std::uint32_t>(members.begin(), members.end()),
              per);
  // Map particle-set index -> member slot.
  std::vector<std::uint32_t> slot_of(p.size(), 0);
  for (std::size_t m = 0; m < n; ++m) slot_of[members[m]] = static_cast<std::uint32_t>(m);

  // candidate_of[m] = current candidate id, or -1 if not yet swept.
  std::vector<std::int32_t> candidate_of(n, -1);
  struct Candidate {
    std::vector<std::uint32_t> slots;  // member slots
    double peak = 0.0;
    bool closed = false;
  };
  std::vector<Candidate> cands;

  const std::size_t k_link = std::min<std::size_t>(cfg.num_neighbors, n);
  for (const auto m : order) {
    const std::uint32_t i = members[m];
    // Among this particle's nearest neighbors, collect candidates of those
    // already swept AND denser.
    auto nbrs = tree.k_nearest(p.x[i], p.y[i], p.z[i], k_link + 1);
    std::int32_t c1 = -1, c2 = -1;
    for (const auto j : nbrs) {
      const std::uint32_t mj = slot_of[j];
      if (mj == m || candidate_of[mj] < 0) continue;
      // Resolve to the candidate's current (possibly merged) root.
      std::int32_t c = candidate_of[mj];
      if (c != c1 && c1 >= 0 && c != c2 && c2 < 0)
        c2 = c;
      else if (c1 < 0)
        c1 = c;
    }
    if (c1 < 0) {
      // Local density peak: new candidate.
      candidate_of[m] = static_cast<std::int32_t>(cands.size());
      cands.push_back({{m}, rho[m], false});
    } else if (c2 < 0) {
      candidate_of[m] = c1;
      cands[static_cast<std::size_t>(c1)].slots.push_back(m);
    } else {
      // Saddle point joining two candidates: close the smaller one as a
      // subhalo (if large enough) and merge it into the larger.
      auto& a = cands[static_cast<std::size_t>(c1)];
      auto& b = cands[static_cast<std::size_t>(c2)];
      auto& small = a.slots.size() <= b.slots.size() ? a : b;
      auto& large = a.slots.size() <= b.slots.size() ? b : a;
      const std::int32_t large_id = (&large == &a) ? c1 : c2;
      if (!small.closed && small.slots.size() >= cfg.min_size) {
        Subhalo s;
        s.peak_density = small.peak;
        s.members.reserve(small.slots.size());
        for (const auto ms : small.slots) s.members.push_back(members[ms]);
        out.push_back(std::move(s));
      }
      small.closed = true;
      for (const auto ms : small.slots) candidate_of[ms] = large_id;
      large.slots.insert(large.slots.end(), small.slots.begin(),
                         small.slots.end());
      small.slots.clear();
      candidate_of[m] = large_id;
      large.slots.push_back(m);
    }
  }
  // The top-level candidate (the halo's main body) is not a subhalo; any
  // remaining unclosed candidate that is not the largest becomes one.
  std::size_t largest = 0, largest_id = 0;
  for (std::size_t c = 0; c < cands.size(); ++c)
    if (cands[c].slots.size() > largest) {
      largest = cands[c].slots.size();
      largest_id = c;
    }
  for (std::size_t c = 0; c < cands.size(); ++c) {
    if (c == largest_id || cands[c].closed) continue;
    if (cands[c].slots.size() >= cfg.min_size) {
      Subhalo s;
      s.peak_density = cands[c].peak;
      for (const auto ms : cands[c].slots) s.members.push_back(members[ms]);
      out.push_back(std::move(s));
    }
  }

  // Unbinding: iteratively strip the most energetic unbound particles.
  for (auto& s : out) unbind(p, s, cfg);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](const Subhalo& s) {
                             return s.members.size() < cfg.min_size;
                           }),
            out.end());
  std::sort(out.begin(), out.end(), [](const Subhalo& a, const Subhalo& b) {
    return a.members.size() > b.members.size();
  });
  return out;
}

/// Multi-pass unbinding: compute each member's total energy in the
/// subhalo's own frame; remove at most one quarter of the positive-energy
/// particles (the most energetic ones) per pass, as the paper specifies.
inline void unbind(const sim::ParticleSet& p, Subhalo& s,
                   const SubhaloConfig& cfg) {
  for (std::size_t pass = 0; pass < cfg.unbind_passes; ++pass) {
    const std::size_t n = s.members.size();
    if (n < cfg.min_size) return;
    // Bulk velocity of the subhalo.
    double mvx = 0, mvy = 0, mvz = 0;
    for (const auto i : s.members) {
      mvx += p.vx[i];
      mvy += p.vy[i];
      mvz += p.vz[i];
    }
    mvx /= static_cast<double>(n);
    mvy /= static_cast<double>(n);
    mvz /= static_cast<double>(n);

    // Energies: potential from all other members (unit G), kinetic in the
    // subhalo frame.
    std::vector<double> energy(n);
    for (std::size_t a = 0; a < n; ++a) {
      const auto i = s.members[a];
      double phi = 0.0;
      for (std::size_t b = 0; b < n; ++b) {
        if (a == b) continue;
        const auto j = s.members[b];
        double dx = static_cast<double>(p.x[i]) - p.x[j];
        double dy = static_cast<double>(p.y[i]) - p.y[j];
        double dz = static_cast<double>(p.z[i]) - p.z[j];
        const double d2 = cfg.box > 0.0
                              ? sim::periodic_dist2(dx, dy, dz, cfg.box)
                              : dx * dx + dy * dy + dz * dz;
        phi -= cfg.particle_mass / (std::sqrt(d2) + 1e-10);
      }
      const double wx = (p.vx[i] - mvx) * cfg.velocity_scale;
      const double wy = (p.vy[i] - mvy) * cfg.velocity_scale;
      const double wz = (p.vz[i] - mvz) * cfg.velocity_scale;
      energy[a] = 0.5 * (wx * wx + wy * wy + wz * wz) + phi;
    }

    std::vector<std::uint32_t> unbound;
    for (std::size_t a = 0; a < n; ++a)
      if (energy[a] > 0.0) unbound.push_back(static_cast<std::uint32_t>(a));
    if (unbound.empty()) return;
    // Remove at most 1/4 of the positive-energy particles, most energetic
    // first.
    std::sort(unbound.begin(), unbound.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return energy[a] > energy[b];
              });
    const std::size_t strip = std::max<std::size_t>(1, (unbound.size() + 3) / 4);
    std::vector<bool> removed(n, false);
    for (std::size_t u = 0; u < strip; ++u) removed[unbound[u]] = true;
    std::vector<std::uint32_t> kept;
    kept.reserve(n - strip);
    for (std::size_t a = 0; a < n; ++a)
      if (!removed[a]) kept.push_back(s.members[a]);
    s.members = std::move(kept);
  }
}

}  // namespace cosmo::halo
