// Barnes-Hut octree (§3.3.1): "A Barnes-Hut tree, similar to an octree but
// with support for more efficient traversals, is used for calculating the
// local densities using an SPH kernel."
//
// A pointer-free octree over a particle subset: nodes store their cube,
// particle range (indices are reordered into contiguous per-node runs, the
// "efficient traversal" property — a whole subtree is one contiguous span),
// count, and center of mass. Exact k-nearest-neighbor queries run
// best-first over nodes; ball queries accept whole subtrees when the cube
// is contained in the ball. The subhalo finder can use this engine
// interchangeably with the k-d tree (SubhaloConfig::tree).
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <span>
#include <vector>

#include "sim/particles.h"
#include "util/error.h"

namespace cosmo::halo {

class BhTree {
 public:
  /// Builds over the given particle indices. Non-periodic (subhalo hosts
  /// are compact; callers unwrap coordinates as the FOF pipeline does).
  BhTree(const sim::ParticleSet& p, std::vector<std::uint32_t> subset,
         std::size_t leaf_size = 16)
      : p_(&p), leaf_size_(std::max<std::size_t>(leaf_size, 1)),
        index_(std::move(subset)) {
    if (index_.empty()) return;
    // Root cube: bounding cube of all points.
    float lo[3] = {std::numeric_limits<float>::max(),
                   std::numeric_limits<float>::max(),
                   std::numeric_limits<float>::max()};
    float hi[3] = {std::numeric_limits<float>::lowest(),
                   std::numeric_limits<float>::lowest(),
                   std::numeric_limits<float>::lowest()};
    for (const auto i : index_) {
      lo[0] = std::min(lo[0], p.x[i]);
      hi[0] = std::max(hi[0], p.x[i]);
      lo[1] = std::min(lo[1], p.y[i]);
      hi[1] = std::max(hi[1], p.y[i]);
      lo[2] = std::min(lo[2], p.z[i]);
      hi[2] = std::max(hi[2], p.z[i]);
    }
    const float half = 0.5f * std::max({hi[0] - lo[0], hi[1] - lo[1],
                                        hi[2] - lo[2], 1e-6f});
    Node root;
    root.cx = 0.5f * (lo[0] + hi[0]);
    root.cy = 0.5f * (lo[1] + hi[1]);
    root.cz = 0.5f * (lo[2] + hi[2]);
    root.half = half * 1.0001f;  // guard against boundary rounding
    root.begin = 0;
    root.end = static_cast<std::uint32_t>(index_.size());
    nodes_.push_back(root);
    build(0);
  }

  struct Node {
    float cx, cy, cz;   ///< cube center
    float half;         ///< cube half-width
    float comx = 0, comy = 0, comz = 0;  ///< center of mass
    std::uint32_t begin = 0, end = 0;    ///< contiguous index() range
    std::int32_t first_child = -1;       ///< 8 consecutive children, or -1
    bool leaf() const { return first_child < 0; }
    std::uint32_t count() const { return end - begin; }
  };

  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }
  std::span<const std::uint32_t> index() const { return index_; }
  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(std::size_t id) const { return nodes_[id]; }

  /// Exact k nearest neighbors of a point, nearest first.
  std::vector<std::uint32_t> k_nearest(double qx, double qy, double qz,
                                       std::size_t k) const {
    using Entry = std::pair<double, std::uint32_t>;
    std::priority_queue<Entry> best;  // max-heap of the k closest so far
    if (!nodes_.empty()) knn(0, qx, qy, qz, k, best);
    std::vector<std::uint32_t> out(best.size());
    for (std::size_t i = out.size(); i-- > 0;) {
      out[i] = best.top().second;
      best.pop();
    }
    return out;
  }

  /// Calls fn(i) for every particle within r of the query point. Whole
  /// subtrees strictly inside the ball are visited without per-particle
  /// distance tests (their index range is contiguous).
  template <typename Fn>
  void for_each_in_range(double qx, double qy, double qz, double r,
                         Fn&& fn) const {
    if (nodes_.empty()) return;
    range(0, qx, qy, qz, r * r, r, fn);
  }

  /// Count of particles within r (uses whole-subtree acceptance).
  std::size_t count_in_range(double qx, double qy, double qz,
                             double r) const {
    std::size_t n = 0;
    for_each_in_range(qx, qy, qz, r, [&](std::uint32_t) { ++n; });
    return n;
  }

 private:
  void build(std::size_t id) {
    // (Copy fields: nodes_ may reallocate while splitting.)
    const Node nd = nodes_[id];
    if (nd.count() <= leaf_size_) {
      finalize_com(id);
      return;
    }
    // Partition the range into octants of the cube.
    auto octant = [&](std::uint32_t i) {
      return (p_->x[i] >= nd.cx ? 1 : 0) | (p_->y[i] >= nd.cy ? 2 : 0) |
             (p_->z[i] >= nd.cz ? 4 : 0);
    };
    std::array<std::uint32_t, 9> bounds{};
    {
      std::array<std::uint32_t, 8> counts{};
      for (std::uint32_t k = nd.begin; k < nd.end; ++k)
        ++counts[static_cast<std::size_t>(octant(index_[k]))];
      bounds[0] = nd.begin;
      for (int o = 0; o < 8; ++o)
        bounds[static_cast<std::size_t>(o + 1)] =
            bounds[static_cast<std::size_t>(o)] + counts[static_cast<std::size_t>(o)];
      // In-place bucket permutation.
      std::array<std::uint32_t, 8> cursor;
      for (int o = 0; o < 8; ++o) cursor[static_cast<std::size_t>(o)] = bounds[static_cast<std::size_t>(o)];
      for (int o = 0; o < 8; ++o) {
        auto& cur = cursor[static_cast<std::size_t>(o)];
        while (cur < bounds[static_cast<std::size_t>(o + 1)]) {
          const int dest = octant(index_[cur]);
          if (dest == o) {
            ++cur;
          } else {
            std::swap(index_[cur], index_[cursor[static_cast<std::size_t>(dest)]]);
            ++cursor[static_cast<std::size_t>(dest)];
          }
        }
      }
    }
    // Degenerate split (all coincident points): make it a leaf.
    bool degenerate = false;
    for (int o = 0; o < 8; ++o)
      if (bounds[static_cast<std::size_t>(o + 1)] - bounds[static_cast<std::size_t>(o)] == nd.count())
        degenerate = nd.half < 1e-6f;
    if (degenerate) {
      finalize_com(id);
      return;
    }

    const auto first = static_cast<std::int32_t>(nodes_.size());
    nodes_[id].first_child = first;
    const float h = nd.half * 0.5f;
    for (int o = 0; o < 8; ++o) {
      Node child;
      child.cx = nd.cx + ((o & 1) ? h : -h);
      child.cy = nd.cy + ((o & 2) ? h : -h);
      child.cz = nd.cz + ((o & 4) ? h : -h);
      child.half = h;
      child.begin = bounds[static_cast<std::size_t>(o)];
      child.end = bounds[static_cast<std::size_t>(o + 1)];
      nodes_.push_back(child);
    }
    for (int o = 0; o < 8; ++o) {
      const auto cid = static_cast<std::size_t>(first + o);
      if (nodes_[cid].count() > 0) build(cid);
    }
    finalize_com(id);
  }

  void finalize_com(std::size_t id) {
    Node& nd = nodes_[id];
    double sx = 0, sy = 0, sz = 0;
    for (std::uint32_t k = nd.begin; k < nd.end; ++k) {
      const auto i = index_[k];
      sx += p_->x[i];
      sy += p_->y[i];
      sz += p_->z[i];
    }
    const double n = std::max<double>(nd.count(), 1);
    nd.comx = static_cast<float>(sx / n);
    nd.comy = static_cast<float>(sy / n);
    nd.comz = static_cast<float>(sz / n);
  }

  double cube_dist2(const Node& nd, double qx, double qy, double qz) const {
    auto axis = [](double q, double c, double h) {
      const double d = std::abs(q - c) - h;
      return d > 0.0 ? d : 0.0;
    };
    const double dx = axis(qx, nd.cx, nd.half);
    const double dy = axis(qy, nd.cy, nd.half);
    const double dz = axis(qz, nd.cz, nd.half);
    return dx * dx + dy * dy + dz * dz;
  }

  /// True if the cube is entirely inside the ball of radius r.
  bool cube_inside(const Node& nd, double qx, double qy, double qz,
                   double r) const {
    const double dx = std::abs(qx - nd.cx) + nd.half;
    const double dy = std::abs(qy - nd.cy) + nd.half;
    const double dz = std::abs(qz - nd.cz) + nd.half;
    return dx * dx + dy * dy + dz * dz <= r * r;
  }

  template <typename Heap>
  void knn(std::size_t id, double qx, double qy, double qz, std::size_t k,
           Heap& best) const {
    const Node& nd = nodes_[id];
    if (nd.count() == 0) return;
    if (best.size() == k && cube_dist2(nd, qx, qy, qz) > best.top().first)
      return;
    if (nd.leaf()) {
      for (std::uint32_t t = nd.begin; t < nd.end; ++t) {
        const auto i = index_[t];
        const double dx = qx - p_->x[i], dy = qy - p_->y[i], dz = qz - p_->z[i];
        const double d2 = dx * dx + dy * dy + dz * dz;
        if (best.size() < k) {
          best.emplace(d2, i);
        } else if (d2 < best.top().first) {
          best.pop();
          best.emplace(d2, i);
        }
      }
      return;
    }
    // Visit children nearest-first.
    std::array<std::pair<double, std::int32_t>, 8> order;
    for (int o = 0; o < 8; ++o) {
      const auto cid = nd.first_child + o;
      order[static_cast<std::size_t>(o)] = {
          cube_dist2(nodes_[static_cast<std::size_t>(cid)], qx, qy, qz), cid};
    }
    std::sort(order.begin(), order.end());
    for (const auto& [d2, cid] : order) {
      if (best.size() == k && d2 > best.top().first) break;
      knn(static_cast<std::size_t>(cid), qx, qy, qz, k, best);
    }
  }

  template <typename Fn>
  void range(std::size_t id, double qx, double qy, double qz, double r2,
             double r, Fn& fn) const {
    const Node& nd = nodes_[id];
    if (nd.count() == 0) return;
    if (cube_dist2(nd, qx, qy, qz) > r2) return;
    if (cube_inside(nd, qx, qy, qz, r)) {
      for (std::uint32_t t = nd.begin; t < nd.end; ++t) fn(index_[t]);
      return;
    }
    if (nd.leaf()) {
      for (std::uint32_t t = nd.begin; t < nd.end; ++t) {
        const auto i = index_[t];
        const double dx = qx - p_->x[i], dy = qy - p_->y[i], dz = qz - p_->z[i];
        if (dx * dx + dy * dy + dz * dz <= r2) fn(index_[t]);
      }
      return;
    }
    for (int o = 0; o < 8; ++o)
      range(static_cast<std::size_t>(nd.first_child + o), qx, qy, qz, r2, r,
            fn);
  }

  const sim::ParticleSet* p_;
  std::size_t leaf_size_;
  std::vector<std::uint32_t> index_;
  std::vector<Node> nodes_;
};

}  // namespace cosmo::halo
