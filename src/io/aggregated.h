// Aggregated parallel output: M ranks per file, the paper's I/O layout.
//
// "For optimal I/O performance, the results from 128 nodes from Titan were
// aggregated in one file, resulting in 128 files containing 128 blocks
// each" (§4.1). Each aggregation group elects its lowest rank as the
// writer; the other ranks ship their particles to it over the
// communicator. The writer also drops a `<file>.done` trigger next to the
// finalized file — the sentinel the co-scheduling Listener polls for.
#pragma once

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "comm/comm.h"
#include "io/cosmo_io.h"
#include "obs/obs.h"
#include "sim/decomposition.h"
#include "sim/particles.h"
#include "util/error.h"

namespace cosmo::io {

struct AggregatedWriteResult {
  std::vector<std::filesystem::path> files;  ///< files this rank wrote
  std::uint64_t bytes_written = 0;           ///< by this rank
};

inline std::filesystem::path aggregated_file_path(
    const std::filesystem::path& base, int file_index) {
  return base.string() + "." + std::to_string(file_index) + ".cosmo";
}

inline std::filesystem::path trigger_path(const std::filesystem::path& file) {
  return file.string() + ".done";
}

/// Collectively writes each rank's particles, aggregating `ranks_per_file`
/// consecutive ranks into one multi-block file. Files are named
/// `<base>.<k>.cosmo`; a `.done` trigger is created after each finalize.
inline AggregatedWriteResult write_aggregated(comm::Comm& comm,
                                              const std::filesystem::path& base,
                                              const sim::ParticleSet& local,
                                              const CosmoIoInfo& info,
                                              int ranks_per_file) {
  COSMO_REQUIRE(ranks_per_file >= 1, "need at least one rank per file");
  COSMO_TRACE_SPAN_CAT("io.write_aggregated", "io");
  const int rank = comm.rank();
  const int group = rank / ranks_per_file;
  const int writer = group * ranks_per_file;
  const int group_end = std::min(writer + ranks_per_file, comm.size());

  AggregatedWriteResult result;
  constexpr int kTag = 9001;
  if (rank != writer) {
    std::vector<sim::PackedParticle> packed(local.size());
    for (std::size_t i = 0; i < local.size(); ++i)
      packed[i] = sim::pack_particle(local, i);
    COSMO_COUNT("io.aggregation_sends", 1);
    comm.send<sim::PackedParticle>(writer, kTag, packed);
    return result;
  }

  CosmoIoWriter out(aggregated_file_path(base, group), info);
  out.write_block(local, static_cast<std::uint32_t>(rank));
  for (int r = writer + 1; r < group_end; ++r) {
    auto packed = comm.recv<sim::PackedParticle>(r, kTag);
    COSMO_COUNT("io.aggregation_fanin", 1);
    sim::ParticleSet p;
    p.reserve(packed.size());
    for (const auto& w : packed) sim::unpack_particle(w, p);
    out.write_block(p, static_cast<std::uint32_t>(r));
  }
  out.finalize();
  result.bytes_written = out.bytes_written();
  result.files.push_back(aggregated_file_path(base, group));
  // Trigger file: the Listener's poll target. Created only after the data
  // file is complete, so a Listener never reads a partial file.
  std::ofstream trigger(trigger_path(result.files.back()));
  trigger << "ok\n";
  return result;
}

/// Collectively reads files written by write_aggregated: blocks are dealt
/// round-robin to ranks, then particles are redistributed to their slab
/// owners. Returns this rank's owned particles.
inline sim::ParticleSet read_aggregated(comm::Comm& comm,
                                        const std::vector<std::filesystem::path>& files,
                                        const sim::SlabDecomposition& decomp) {
  COSMO_TRACE_SPAN_CAT("io.read_aggregated", "io");
  sim::ParticleSet mine;
  std::size_t block_counter = 0;
  for (const auto& f : files) {
    CosmoIoReader reader(f);
    for (std::uint32_t b = 0; b < reader.num_blocks(); ++b, ++block_counter) {
      if (static_cast<int>(block_counter % static_cast<std::size_t>(
                               comm.size())) != comm.rank())
        continue;
      mine.append(reader.read_block(b));
    }
  }
  return decomp.redistribute(comm, std::move(mine));
}

}  // namespace cosmo::io
