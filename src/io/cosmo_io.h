// CosmoIO — the GenericIO stand-in: a block-structured particle file format.
//
// Mirrors the layout HACC used on Titan (§4.1): one file aggregates the
// output of many ranks, each rank's particles stored as one self-describing
// block. Within a block each variable (x, y, z, vx, vy, vz, phi, tag) is a
// contiguous array protected by a CRC32, so corruption on the (parallel)
// filesystem is detected at read time rather than propagating into the
// analysis.
//
// On-disk layout (little-endian, as written by this process):
//   [Header]                   magic, version, block count, box, a, total N
//   [Block 0][Block 1]...      per block: count + per-variable (crc, data)
//   [BlockTable]               per block: offset + particle count
//   Header.table_offset is patched on finalize; a file without a valid
//   table (e.g. a crashed writer) is rejected by the reader.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "faults/faults.h"
#include "obs/obs.h"
#include "sim/particles.h"
#include "util/crc32.h"
#include "util/error.h"

namespace cosmo::io {

namespace detail {
constexpr std::uint32_t kMagic = 0x4F49'4331;  // "1CIO"
constexpr std::uint32_t kVersion = 1;

struct RawHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t num_blocks = 0;
  std::uint32_t reserved = 0;
  double box = 0.0;
  double scale_factor = 0.0;
  std::uint64_t total_particles = 0;
  std::uint64_t table_offset = 0;  ///< 0 until finalize succeeds
};

struct BlockEntry {
  std::uint64_t offset = 0;
  std::uint64_t particles = 0;
  std::uint32_t writer_rank = 0;
  std::uint32_t reserved = 0;
};
}  // namespace detail

struct CosmoIoInfo {
  double box = 0.0;
  double scale_factor = 0.0;
  std::uint64_t total_particles = 0;  ///< global count (metadata)
  std::uint32_t num_blocks = 0;
};

/// Sequential block writer. Blocks are appended in call order; finalize()
/// writes the block table and patches the header (making the file valid).
class CosmoIoWriter {
 public:
  CosmoIoWriter(const std::filesystem::path& path, const CosmoIoInfo& info)
      : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
    COSMO_REQUIRE(out_.good(), "cannot open file for writing: " + path.string());
    header_.box = info.box;
    header_.scale_factor = info.scale_factor;
    header_.total_particles = info.total_particles;
    header_.table_offset = 0;  // invalid until finalize
    write_raw(&header_, sizeof(header_));
  }

  ~CosmoIoWriter() {
    if (out_.is_open() && !finalized_) {
      // Leave the file with table_offset == 0: readers will reject it.
      out_.close();
    }
  }

  /// Appends one rank's particles as a block. Returns the block index.
  std::uint32_t write_block(const sim::ParticleSet& p,
                            std::uint32_t writer_rank = 0) {
    COSMO_REQUIRE(!finalized_, "write_block after finalize");
    if (COSMO_FAULT_POINT("io.write_slow")) {
      // Contended OST: the write lands, just slowly.
      COSMO_COUNT("io.slow_writes", 1);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(COSMO_FAULT_PARAM("io.write_slow", 2)));
    }
    if (COSMO_FAULT_POINT("io.write_fail")) {
      COSMO_COUNT("io.write_faults", 1);
      throw Error("injected write failure on " + path_.string());
    }
    const bool partial = COSMO_FAULT_POINT("io.write_partial");
    detail::BlockEntry e;
    e.offset = static_cast<std::uint64_t>(out_.tellp());
    e.particles = p.size();
    e.writer_rank = writer_rank;
    COSMO_COUNT("io.blocks_written", 1);
    const std::uint64_t n = p.size();
    write_raw(&n, sizeof(n));
    write_array(p.x);
    if (partial) {
      // Process died mid-block: some arrays hit the disk, the header's
      // table_offset stays 0, and the reader will reject the file.
      COSMO_COUNT("io.write_faults", 1);
      throw Error("injected partial write on " + path_.string());
    }
    write_array(p.y);
    write_array(p.z);
    write_array(p.vx);
    write_array(p.vy);
    write_array(p.vz);
    write_array(p.phi);
    write_array(p.tag);
    table_.push_back(e);
    return static_cast<std::uint32_t>(table_.size() - 1);
  }

  /// Writes the block table, patches the header, flushes, closes.
  void finalize() {
    COSMO_REQUIRE(!finalized_, "double finalize");
    const auto table_offset = static_cast<std::uint64_t>(out_.tellp());
    for (const auto& e : table_) write_raw(&e, sizeof(e));
    header_.num_blocks = static_cast<std::uint32_t>(table_.size());
    header_.table_offset = table_offset;
    out_.seekp(0);
    write_raw(&header_, sizeof(header_));
    out_.flush();
    COSMO_REQUIRE(out_.good(), "write failure finalizing " + path_.string());
    out_.close();
    finalized_ = true;
  }

  std::uint64_t bytes_written() const {
    std::error_code ec;
    const auto sz = std::filesystem::file_size(path_, ec);
    return ec ? 0 : static_cast<std::uint64_t>(sz);
  }

 private:
  void write_raw(const void* data, std::size_t len) {
    COSMO_COUNT("io.bytes_written", len);
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(len));
    COSMO_REQUIRE(out_.good(), "write failure on " + path_.string());
  }

  template <typename T>
  void write_array(const std::vector<T>& v) {
    COSMO_COUNT("io.crc_computed", 1);
    const std::uint32_t crc = crc32(v.data(), v.size() * sizeof(T));
    write_raw(&crc, sizeof(crc));
    if (!v.empty()) write_raw(v.data(), v.size() * sizeof(T));
  }

  std::filesystem::path path_;
  std::ofstream out_;
  detail::RawHeader header_;
  std::vector<detail::BlockEntry> table_;
  bool finalized_ = false;
};

/// Block reader with CRC validation.
class CosmoIoReader {
 public:
  explicit CosmoIoReader(const std::filesystem::path& path)
      : path_(path), in_(path, std::ios::binary) {
    COSMO_REQUIRE(in_.good(), "cannot open file for reading: " + path.string());
    read_raw(&header_, sizeof(header_));
    COSMO_REQUIRE(header_.magic == detail::kMagic,
                  "not a CosmoIO file: " + path.string());
    COSMO_REQUIRE(header_.version == detail::kVersion,
                  "unsupported CosmoIO version");
    COSMO_REQUIRE(header_.table_offset != 0,
                  "file was not finalized (truncated write?): " + path.string());
    in_.seekg(static_cast<std::streamoff>(header_.table_offset));
    table_.resize(header_.num_blocks);
    for (auto& e : table_) read_raw(&e, sizeof(e));
    COSMO_REQUIRE(in_.good(), "block table truncated: " + path.string());
  }

  CosmoIoInfo info() const {
    return {header_.box, header_.scale_factor, header_.total_particles,
            header_.num_blocks};
  }
  std::uint32_t num_blocks() const { return header_.num_blocks; }
  std::uint64_t block_particles(std::uint32_t b) const {
    COSMO_REQUIRE(b < table_.size(), "block index out of range");
    return table_[b].particles;
  }
  std::uint32_t block_writer_rank(std::uint32_t b) const {
    COSMO_REQUIRE(b < table_.size(), "block index out of range");
    return table_[b].writer_rank;
  }

  /// Reads one block, validating every variable's CRC.
  sim::ParticleSet read_block(std::uint32_t b) {
    COSMO_REQUIRE(b < table_.size(), "block index out of range");
    if (COSMO_FAULT_POINT("io.read_fail")) {
      COSMO_COUNT("io.read_faults", 1);
      throw Error("injected read failure on " + path_.string());
    }
    COSMO_COUNT("io.blocks_read", 1);
    in_.seekg(static_cast<std::streamoff>(table_[b].offset));
    std::uint64_t n = 0;
    read_raw(&n, sizeof(n));
    COSMO_REQUIRE(n == table_[b].particles,
                  "block header disagrees with table: " + path_.string());
    sim::ParticleSet p(static_cast<std::size_t>(n));
    read_array(p.x);
    read_array(p.y);
    read_array(p.z);
    read_array(p.vx);
    read_array(p.vy);
    read_array(p.vz);
    read_array(p.phi);
    read_array(p.tag);
    return p;
  }

  /// Reads and concatenates all blocks.
  sim::ParticleSet read_all() {
    sim::ParticleSet all;
    for (std::uint32_t b = 0; b < num_blocks(); ++b)
      all.append(read_block(b));
    return all;
  }

 private:
  void read_raw(void* data, std::size_t len) {
    COSMO_COUNT("io.bytes_read", len);
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(len));
    COSMO_REQUIRE(in_.good(), "read failure on " + path_.string());
  }

  template <typename T>
  void read_array(std::vector<T>& v) {
    std::uint32_t stored_crc = 0;
    read_raw(&stored_crc, sizeof(stored_crc));
    if (!v.empty()) read_raw(v.data(), v.size() * sizeof(T));
    const std::uint32_t actual = crc32(v.data(), v.size() * sizeof(T));
    COSMO_COUNT("io.crc_validations", 1);
    if (actual != stored_crc) COSMO_COUNT("io.crc_failures", 1);
    COSMO_REQUIRE(actual == stored_crc,
                  "CRC mismatch — corrupt block in " + path_.string());
  }

  std::filesystem::path path_;
  std::ifstream in_;
  detail::RawHeader header_;
  std::vector<detail::BlockEntry> table_;
};

}  // namespace cosmo::io
