// Density-projection imaging — the Figure 2 data product.
//
// The paper's Fig. 2 is a rendering of the Q Continuum particle
// distribution "zoomed in to a sub-region of the volume of a single node",
// showing the halos formed at the final step. This module produces the
// same kind of product: a log-scaled 2-D projection of particle density
// over a box sub-region, written as a portable graymap (PGM — viewable
// everywhere, no image library needed).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "sim/particles.h"
#include "util/error.h"

namespace cosmo::io {

/// A grayscale image with float accumulation and log tone-mapping.
class DensityImage {
 public:
  DensityImage(std::size_t width, std::size_t height)
      : width_(width), height_(height), data_(width * height, 0.0) {
    COSMO_REQUIRE(width > 0 && height > 0, "image must be non-empty");
  }

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  double at(std::size_t x, std::size_t y) const {
    return data_[y * width_ + x];
  }

  void deposit(double fx, double fy, double weight = 1.0) {
    if (fx < 0.0 || fx >= 1.0 || fy < 0.0 || fy >= 1.0) return;
    const auto x = static_cast<std::size_t>(fx * static_cast<double>(width_));
    const auto y = static_cast<std::size_t>(fy * static_cast<double>(height_));
    data_[std::min(y, height_ - 1) * width_ + std::min(x, width_ - 1)] +=
        weight;
  }

  /// Writes an 8-bit binary PGM with log tone mapping.
  void write_pgm(const std::filesystem::path& path) const {
    double peak = 0.0;
    for (const auto v : data_) peak = std::max(peak, v);
    const double scale = peak > 0.0 ? 255.0 / std::log1p(peak) : 0.0;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    COSMO_REQUIRE(out.good(), "cannot open image file: " + path.string());
    out << "P5\n" << width_ << " " << height_ << "\n255\n";
    for (const auto v : data_) {
      const auto g = static_cast<unsigned char>(std::log1p(v) * scale);
      out.put(static_cast<char>(g));
    }
    COSMO_REQUIRE(out.good(), "failed writing image: " + path.string());
  }

  /// Coarse ASCII rendering for terminals (rows of density glyphs).
  std::string ascii_art(std::size_t cols = 64, std::size_t rows = 32) const {
    static const char* ramp = " .:-=+*#%@";
    double peak = 0.0;
    for (const auto v : data_) peak = std::max(peak, v);
    std::string out;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        // Average the image cells covered by this character cell.
        double acc = 0.0;
        std::size_t n = 0;
        const std::size_t x0 = c * width_ / cols, x1 = (c + 1) * width_ / cols;
        const std::size_t y0 = r * height_ / rows, y1 = (r + 1) * height_ / rows;
        for (std::size_t y = y0; y < std::max(y1, y0 + 1) && y < height_; ++y)
          for (std::size_t x = x0; x < std::max(x1, x0 + 1) && x < width_; ++x) {
            acc += data_[y * width_ + x];
            ++n;
          }
        const double v = n ? acc / static_cast<double>(n) : 0.0;
        const double t = peak > 0.0 ? std::log1p(v) / std::log1p(peak) : 0.0;
        out += ramp[static_cast<std::size_t>(t * 9.0)];
      }
      out += '\n';
    }
    return out;
  }

 private:
  std::size_t width_, height_;
  std::vector<double> data_;
};

/// Projects particles inside [x0,x1)×[y0,y1) (any z) along z onto an image.
inline DensityImage project_region(const sim::ParticleSet& p, double x0,
                                   double x1, double y0, double y1,
                                   std::size_t pixels = 512) {
  COSMO_REQUIRE(x1 > x0 && y1 > y0, "projection region must be non-empty");
  DensityImage img(pixels, pixels);
  const double inv_w = 1.0 / (x1 - x0), inv_h = 1.0 / (y1 - y0);
  for (std::size_t i = 0; i < p.size(); ++i)
    img.deposit((p.x[i] - x0) * inv_w, (p.y[i] - y0) * inv_h);
  return img;
}

}  // namespace cosmo::io
