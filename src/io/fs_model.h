// Parallel-filesystem cost model.
//
// The workflow comparison (Tables 3/4) charges real wall-clock for writing,
// reading, and redistributing Level 1/2 data on Titan's Lustre filesystem;
// §4.1 quotes ~10 minutes to read a 20 TB snapshot near peak bandwidth.
// Our measured local-disk times are meaningless at that scale, so the
// experiment harness converts data volumes to Titan-scale times through
// this model (and also reports the locally measured times).
#pragma once

#include <cstdint>

#include "faults/faults.h"
#include "obs/obs.h"
#include "util/error.h"

namespace cosmo::io {

struct FilesystemModel {
  double bandwidth_bytes_per_s = 30.0e9;  ///< aggregate achievable bandwidth
  double latency_s = 1.0;                 ///< per-operation setup cost

  /// Titan-era Lustre profile: ~20 TB in ~10 minutes (§4.1) ≈ 33 GB/s.
  static FilesystemModel titan_lustre() { return {33.0e9, 5.0}; }

  /// A small analysis cluster's shared filesystem.
  static FilesystemModel analysis_cluster() { return {5.0e9, 2.0}; }

  double write_seconds(std::uint64_t bytes) const {
    COSMO_REQUIRE(bandwidth_bytes_per_s > 0.0, "bandwidth must be positive");
    double seconds =
        latency_s + static_cast<double>(bytes) / bandwidth_bytes_per_s;
    if (COSMO_FAULT_POINT("fs.degraded")) {
      // Striping contention / OST failover: the operation completes at a
      // fraction of nominal bandwidth (param = slowdown factor).
      COSMO_COUNT("io.fs_degraded", 1);
      seconds *= static_cast<double>(COSMO_FAULT_PARAM("fs.degraded", 10));
    }
    return seconds;
  }

  double read_seconds(std::uint64_t bytes) const {
    return write_seconds(bytes);
  }
};

/// Interconnect model for the redistribution step (alltoallv of particle
/// data after read-in). The paper's measured redistribution of a 20 TB
/// snapshot took ~10 minutes on 16,384 nodes.
struct InterconnectModel {
  double bandwidth_bytes_per_s = 35.0e9;  ///< effective aggregate
  double latency_s = 0.5;

  static InterconnectModel titan_gemini() { return {35.0e9, 2.0}; }

  double redistribute_seconds(std::uint64_t bytes) const {
    COSMO_REQUIRE(bandwidth_bytes_per_s > 0.0, "bandwidth must be positive");
    return latency_s + static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

}  // namespace cosmo::io
