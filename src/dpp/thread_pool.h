// Persistent worker-thread pool backing the ThreadPool dpp backend.
//
// PISTON compiles one algorithm source to several Thrust backends (CUDA,
// OpenMP, TBB). Our equivalent keeps a process-wide pool of workers; the
// data-parallel primitives dispatch index ranges onto it. A pool (rather
// than thread-per-call) keeps per-primitive overhead low enough that the
// fine-grained primitives in the center finder stay profitable.
//
// Known pitfall, now measured: dispatches SERIALIZE on a single dispatch
// mutex, so concurrent parallel_for calls (e.g. several SPMD ranks running
// the center finder at once) queue up rather than share the pool. The
// "dpp.dispatch_wait_us" counter and "dpp.dispatch_wait_ms" histogram
// record that contention per rank; see ROADMAP "Open items" for the
// concurrent-dispatch redesign this data motivates.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "util/timer.h"

namespace cosmo::dpp {

/// Fixed-size pool executing blocking parallel-for style dispatches.
///
/// Thread-safe for concurrent parallel_for calls: each call claims the pool
/// under a dispatch mutex, so primitives may be invoked from multiple SPMD
/// ranks simultaneously (calls serialize; per-rank work still parallelizes
/// internally).
class ThreadPool {
 public:
  /// Process-wide pool, sized to the hardware concurrency (at least 2 so the
  /// parallel code paths are genuinely exercised even on 1-core hosts).
  static ThreadPool& instance() {
    static ThreadPool pool(default_workers());
    return pool;
  }

  static std::size_t default_workers() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 2 ? hw : 2;
  }

  explicit ThreadPool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
      threads_.emplace_back([this, w] { worker_loop(w); });
    COSMO_GAUGE_SET("dpp.pool_workers", workers);
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  std::size_t workers() const { return threads_.size(); }

  /// Splits [0, n) into one contiguous chunk per worker and runs
  /// fn(begin, end) on each; blocks until all chunks complete. fn must be
  /// safe to run concurrently on disjoint ranges.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t nw = workers();
    if (n < 2 * nw) {  // too small to amortize dispatch; run inline
      COSMO_COUNT("dpp.inline_runs", 1);
      fn(0, n);
      return;
    }
#ifndef COSMO_OBS_DISABLED
    WallTimer wait_timer;
#endif
    std::lock_guard dispatch_lock(dispatch_mutex_);
#ifndef COSMO_OBS_DISABLED
    {
      const double waited_s = wait_timer.seconds();
      COSMO_COUNT("dpp.dispatch_wait_us",
                  static_cast<std::uint64_t>(waited_s * 1e6));
      COSMO_HISTOGRAM("dpp.dispatch_wait_ms", 0.0, 50.0, 50, waited_s * 1e3);
      COSMO_COUNT("dpp.dispatches", 1);
      COSMO_COUNT("dpp.dispatch_items", n);
    }
#endif
    {
      std::lock_guard lock(mutex_);
      job_fn_ = &fn;
      job_n_ = n;
      pending_ = nw;
      ++generation_;
    }
    cv_.notify_all();
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_fn_ = nullptr;
  }

 private:
  void worker_loop(std::size_t worker_id) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
      std::size_t n = 0;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = job_fn_;
        n = job_n_;
      }
      const std::size_t nw = workers();
      const std::size_t chunk = (n + nw - 1) / nw;
      const std::size_t begin = worker_id * chunk;
      const std::size_t end = begin + chunk < n ? begin + chunk : n;
      if (begin < end) (*fn)(begin, end);
      {
        std::lock_guard lock(mutex_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex dispatch_mutex_;  // one parallel_for in flight at a time
  std::mutex mutex_;
  std::condition_variable cv_, done_cv_;
  const std::function<void(std::size_t, std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace cosmo::dpp
