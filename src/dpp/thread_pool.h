// Work-stealing task-group scheduler backing the ThreadPool dpp backend.
//
// PISTON compiles one algorithm source to several Thrust backends (CUDA,
// OpenMP, TBB). Our equivalent keeps a process-wide pool of workers; the
// data-parallel primitives dispatch index ranges onto it. A pool (rather
// than thread-per-call) keeps per-primitive overhead low enough that the
// fine-grained primitives in the center finder stay profitable.
//
// Scheduler design (the redesign the dpp.dispatch_wait data motivated):
//
//   * Every parallel_for creates a TaskGroup: the iteration space [0, n)
//     cut into fixed-size chunks (`grain` items each), claimed dynamically
//     through one atomic cursor. Dynamic chunking means a load-imbalanced
//     kernel (subhalo finding, BH-tree sums, the one monster halo in the
//     center finder) no longer pays the static one-chunk-per-worker split:
//     fast workers just claim more chunks.
//   * Groups are pushed onto per-worker deques. A worker prefers its own
//     deque and STEALS from siblings when empty ("dpp.steals"), so any
//     number of concurrent parallel_for calls — different SPMD ranks, or
//     nested inside a kernel — make progress simultaneously. There is no
//     global dispatch lock anywhere on this path.
//   * The dispatching thread help-executes: it claims chunks of its own
//     group like any worker, then blocks only for chunks still in flight
//     on other threads. "dpp.dispatch_wait_us"/"dpp.dispatch_wait_ms" now
//     measure exactly that tail (steal/straggler latency), not lock
//     queueing as before the redesign.
//   * Re-entrancy is safe by construction: a parallel_for issued from
//     inside a worker (or from a caller already helping) submits a new
//     group and help-executes it. Blocking only ever waits on chunks that
//     are actively running on other threads, so nested dispatches cannot
//     deadlock (the old design's single dispatch mutex did).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "util/timer.h"

namespace cosmo::dpp {

/// Fixed-size worker pool executing blocking parallel-for dispatches as
/// work-stealing task groups.
///
/// Thread-safe for concurrent parallel_for calls from any number of
/// threads, including from inside a dispatched function (nested
/// parallelism): concurrent groups share the workers chunk-by-chunk instead
/// of queueing behind each other.
class ThreadPool {
 public:
  /// Process-wide pool, sized to the hardware concurrency (at least 2 so the
  /// parallel code paths are genuinely exercised even on 1-core hosts).
  static ThreadPool& instance() {
    static ThreadPool pool(default_workers());
    return pool;
  }

  static std::size_t default_workers() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 2 ? hw : 2;
  }

  explicit ThreadPool(std::size_t workers) : queues_(workers) {
    for (auto& q : queues_) q = std::make_unique<WorkerQueue>();
    threads_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
      threads_.emplace_back([this, w] { worker_loop(w); });
    COSMO_GAUGE_SET("dpp.pool_workers", workers);
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard lock(idle_mutex_);
      stop_ = true;
    }
    idle_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  std::size_t workers() const { return threads_.size(); }

  /// True when called from one of this process's pool worker threads.
  static bool in_worker() { return tls_worker_id() >= 0; }

  /// Steal-aware auto-grain feedback (see auto_grain): number of times the
  /// effective auto grain has been halved. 0 = the static default.
  int grain_shift() const { return grain_shift_.load(std::memory_order_relaxed); }

  /// Resets the auto-grain feedback loop to the static default. For tests
  /// and benches that need a reproducible starting point on the shared pool.
  void reset_autotune() {
    grain_shift_.store(0, std::memory_order_relaxed);
    window_chunks_.store(0, std::memory_order_relaxed);
    window_steals_.store(0, std::memory_order_relaxed);
    COSMO_GAUGE_SET("dpp.grain_shift", 0);
  }

  /// Runs fn(begin, end) over [0, n) split into dynamic chunks of `grain`
  /// items (grain 0 = auto: ~kChunksPerWorker chunks per worker); blocks
  /// until all chunks complete. fn must be safe to run concurrently on
  /// disjoint ranges. Safe to call concurrently from many threads and
  /// re-entrantly from inside a dispatched fn.
  ///
  /// If fn throws, the first exception (in completion order) is captured and
  /// rethrown here after the whole group drains — fail-fast guards inside
  /// dispatched kernels (e.g. the PM deposit's beyond-ghost check) surface
  /// as ordinary exceptions at the dispatch site instead of terminating the
  /// process from a worker thread. Remaining chunks still run.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 0) {
    if (n == 0) return;
    const std::size_t nw = workers();
    // Too small to amortize a dispatch: run inline. An explicit grain >= n
    // also means the caller asked for a single chunk.
    if ((grain == 0 && n < 2 * nw) || grain >= n) {
      COSMO_COUNT("dpp.inline_runs", 1);
      fn(0, n);
      return;
    }
    if (grain == 0) grain = auto_grain(n, nw);
    const std::uint64_t steals_before =
        pool_steals_.load(std::memory_order_relaxed);
    auto group = std::make_shared<TaskGroup>();
    group->fn = &fn;
    group->n = n;
    group->grain = grain;
    group->num_chunks = (n + grain - 1) / grain;
    group->unfinished.store(group->num_chunks, std::memory_order_relaxed);
#ifndef COSMO_OBS_DISABLED
    COSMO_COUNT("dpp.dispatches", 1);
    COSMO_COUNT("dpp.dispatch_items", n);
    COSMO_COUNT("dpp.dispatch_chunks", group->num_chunks);
    if (in_worker()) COSMO_COUNT("dpp.nested_dispatches", 1);
#endif
    const std::size_t home = submit(group);
    // Help-execute our own group: the dispatching thread is a full
    // participant, so a dispatch always makes progress even when every
    // worker is busy with other ranks' groups.
    run_chunks(*group, /*helping=*/true);
#ifndef COSMO_OBS_DISABLED
    double waited_s = 0.0;  // no-wait dispatches record 0: one sample per
                            // dispatch keeps the histogram comparable
#endif
    if (group->unfinished.load(std::memory_order_acquire) != 0) {
#ifndef COSMO_OBS_DISABLED
      WallTimer wait_timer;
#endif
      std::unique_lock lock(group->mutex);
      group->done_cv.wait(lock, [&] { return group->done; });
#ifndef COSMO_OBS_DISABLED
      waited_s = wait_timer.seconds();
#endif
    }
#ifndef COSMO_OBS_DISABLED
    COSMO_COUNT("dpp.dispatch_wait_us",
                static_cast<std::uint64_t>(waited_s * 1e6));
    COSMO_HISTOGRAM("dpp.dispatch_wait_ms", 0.0, 50.0, 50, waited_s * 1e3);
#endif
    retire(home, group.get());
    note_dispatch(group->num_chunks,
                  pool_steals_.load(std::memory_order_relaxed) - steals_before);
    // Visibility: the error write happened before the final unfinished
    // decrement (acq_rel), which we observed either directly or through the
    // mutex-protected done flag.
    if (group->error) std::rethrow_exception(group->error);
  }

 private:
  struct TaskGroup {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t grain = 1;
    std::size_t num_chunks = 0;
    std::atomic<std::size_t> cursor{0};      // next chunk index to claim
    std::atomic<std::size_t> unfinished{0};  // chunks not yet completed
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    std::exception_ptr error;  // first chunk exception; guarded by mutex

    bool exhausted() const {
      return cursor.load(std::memory_order_relaxed) >= num_chunks;
    }
  };

  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::shared_ptr<TaskGroup>> groups;
  };

  /// ~4 claimable chunks per worker: enough slack for dynamic balancing,
  /// few enough that the atomic claim stays negligible per chunk.
  static constexpr std::size_t kChunksPerWorker = 4;

  // Steal-aware auto-grain feedback. The steal ratio of recent dispatches
  // (pool-wide steals per chunk run) tells whether the current chunking left
  // any balancing slack: a ratio near zero means chunks were drained without
  // sibling participation — an imbalanced dispatch would have nothing to
  // steal — so the effective auto grain is halved (target chunk count
  // doubled, up to kMaxGrainShift halvings). A high ratio means chunks are
  // already fine enough that workers mostly live off each other's queues;
  // back the shift off one step to keep per-chunk overhead bounded.
  // Explicit per-call grains are never overridden; only grain==0 dispatches
  // see the shift, and none of the deterministic block decompositions in
  // primitives.h consult it, so numerics are unaffected.
  static constexpr int kMaxGrainShift = 3;
  static constexpr std::uint64_t kAutotuneWindowChunks = 512;

  std::size_t auto_grain(std::size_t n, std::size_t nw) const {
    const auto shift =
        static_cast<std::size_t>(grain_shift_.load(std::memory_order_relaxed));
    const std::size_t target = (kChunksPerWorker << shift) * nw;
    const std::size_t g = (n + target - 1) / target;
    return g > 0 ? g : 1;
  }

  /// Folds one finished dispatch into the feedback window. Concurrent
  /// dispatches may attribute the same steal events to several windows —
  /// that over-counts steals, which only delays halving (the conservative
  /// direction), so relaxed atomics are enough.
  void note_dispatch(std::size_t chunks, std::uint64_t steals) {
    window_steals_.fetch_add(steals, std::memory_order_relaxed);
    const std::uint64_t total =
        window_chunks_.fetch_add(chunks, std::memory_order_relaxed) + chunks;
    if (total < kAutotuneWindowChunks) return;
    const std::uint64_t wc = window_chunks_.exchange(0, std::memory_order_relaxed);
    if (wc == 0) return;  // another dispatch claimed this window
    const std::uint64_t ws = window_steals_.exchange(0, std::memory_order_relaxed);
    const int shift = grain_shift_.load(std::memory_order_relaxed);
    if (ws * 32 < wc) {  // steal ratio < ~3%: no balancing slack left
      if (shift < kMaxGrainShift) {
        grain_shift_.store(shift + 1, std::memory_order_relaxed);
        COSMO_COUNT("dpp.autotune_halvings", 1);
        COSMO_GAUGE_SET("dpp.grain_shift", shift + 1);
      }
    } else if (ws * 2 > wc && shift > 0) {  // > 50%: chunks needlessly fine
      grain_shift_.store(shift - 1, std::memory_order_relaxed);
      COSMO_COUNT("dpp.autotune_restores", 1);
      COSMO_GAUGE_SET("dpp.grain_shift", shift - 1);
    }
  }

  static int& tls_worker_id() {
    static thread_local int id = -1;
    return id;
  }

  /// Publishes a group: onto the submitting worker's own deque (nested
  /// dispatch keeps locality) or round-robin across workers otherwise.
  /// Returns the queue index it landed on.
  std::size_t submit(const std::shared_ptr<TaskGroup>& group) {
    const int self = tls_worker_id();
    const std::size_t qi =
        self >= 0 ? static_cast<std::size_t>(self)
                  : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                        queues_.size();
    {
      std::lock_guard lock(queues_[qi]->mutex);
      queues_[qi]->groups.push_back(group);
    }
    {
      std::lock_guard lock(idle_mutex_);
      ++epoch_;
    }
    idle_cv_.notify_all();
    return qi;
  }

  /// Removes a completed group from the deque it was submitted to (workers
  /// also drop exhausted groups lazily while scanning).
  void retire(std::size_t qi, const TaskGroup* group) {
    std::lock_guard lock(queues_[qi]->mutex);
    auto& g = queues_[qi]->groups;
    for (auto it = g.begin(); it != g.end(); ++it) {
      if (it->get() == group) {
        g.erase(it);
        return;
      }
    }
  }

  /// Claims and runs chunks of `group` until its cursor is exhausted.
  void run_chunks(TaskGroup& group, bool helping) {
    for (;;) {
      const std::size_t c =
          group.cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= group.num_chunks) return;
      const std::size_t lo = c * group.grain;
      const std::size_t hi =
          lo + group.grain < group.n ? lo + group.grain : group.n;
      try {
        (*group.fn)(lo, hi);
      } catch (...) {
        std::lock_guard lock(group.mutex);
        if (!group.error) group.error = std::current_exception();
      }
#ifndef COSMO_OBS_DISABLED
      COSMO_COUNT("dpp.chunks_run", 1);
      if (helping) COSMO_COUNT("dpp.chunks_helped", 1);
#endif
      // acq_rel: our fn's writes release into the counter chain; the thread
      // observing 0 (or the waiter woken below) acquires them all.
      if (group.unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(group.mutex);
        group.done = true;
        group.done_cv.notify_all();
      }
    }
  }

  /// Finds a group with claimable chunks: own deque first (front = oldest:
  /// finish predecessors before starting new work), then steal from
  /// siblings. Exhausted groups encountered while scanning are dropped.
  std::shared_ptr<TaskGroup> find_group(std::size_t self) {
    const std::size_t nq = queues_.size();
    for (std::size_t pass = 0; pass < nq; ++pass) {
      const std::size_t qi = (self + pass) % nq;
      std::lock_guard lock(queues_[qi]->mutex);
      auto& g = queues_[qi]->groups;
      while (!g.empty() && g.front()->exhausted()) g.pop_front();
      if (!g.empty()) {
        if (pass != 0) {
          pool_steals_.fetch_add(1, std::memory_order_relaxed);
          COSMO_COUNT("dpp.steals", 1);
        }
        return g.front();
      }
    }
    return nullptr;
  }

  void worker_loop(std::size_t worker_id) {
    tls_worker_id() = static_cast<int>(worker_id);
    std::uint64_t seen_epoch = 0;
    for (;;) {
      if (auto group = find_group(worker_id)) {
        run_chunks(*group, /*helping=*/false);
        continue;
      }
      std::unique_lock lock(idle_mutex_);
      if (stop_) return;
      if (epoch_ == seen_epoch) {
        idle_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
        if (stop_) return;
      }
      seen_epoch = epoch_;
    }
  }

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> next_queue_{0};
  // Autotune state (kept pool-local so the feedback works with obs
  // compiled out; the metrics layer only mirrors it).
  std::atomic<std::uint64_t> pool_steals_{0};
  std::atomic<std::uint64_t> window_chunks_{0};
  std::atomic<std::uint64_t> window_steals_{0};
  std::atomic<int> grain_shift_{0};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace cosmo::dpp
