// Data-parallel primitives — the PISTON/Thrust stand-in.
//
// Single-source portable algorithms: every analysis kernel (MBP potential
// sums, CIC deposits, histogram reductions) is written once against these
// primitives and executed on either backend. The Backend value plays the
// role of Thrust's execution policy; Serial is the reference implementation
// and ThreadPool is the "accelerator".
//
// Grain hints: every primitive takes an optional `grain` (items per
// scheduler chunk, 0 = auto). The work-stealing pool claims chunks
// dynamically, so a small grain lets load-imbalanced kernels (heavy
// per-item cost that varies, e.g. O(n) potential sums) balance across
// workers; the auto grain targets a few chunks per worker, right for cheap
// uniform loops. Results are backend- and grain-independent for every
// deterministic primitive: the block decompositions below combine partial
// results in fixed block order, never in thread arrival order.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "dpp/thread_pool.h"
#include "obs/obs.h"
#include "util/error.h"

namespace cosmo::dpp {

enum class Backend {
  Serial,      ///< reference single-thread execution
  ThreadPool,  ///< many-core stand-in (process-wide worker pool)
};

inline const char* to_string(Backend b) {
  return b == Backend::Serial ? "serial" : "threadpool";
}

namespace detail {

template <typename Fn>
void for_each_range(Backend b, std::size_t n, Fn&& fn, std::size_t grain = 0) {
  COSMO_COUNT("dpp.primitive_calls", 1);
  COSMO_COUNT("dpp.primitive_items", n);
  if (b == Backend::Serial || n == 0) {
    if (n != 0) {
      COSMO_COUNT("dpp.serial_runs", 1);
      fn(std::size_t{0}, n);
    }
    return;
  }
  COSMO_HISTOGRAM("dpp.chunk_items_log10", 0.0, 9.0, 36,
                  n ? std::log10(static_cast<double>(n)) : 0.0);
  ThreadPool::instance().parallel_for(n, fn, grain);
}

/// Fixed block decomposition for partial-result algorithms (reduce, scan,
/// bucket_count): block boundaries depend only on (n, grain, workers), so
/// per-block partials can be combined in deterministic block order no
/// matter which thread ran which block. Blocks are dispatched as one
/// scheduler item each (grain 1 over the block index space), so stealing
/// balances blocks of uneven cost.
struct BlockDecomposition {
  std::size_t block_size = 0;
  std::size_t num_blocks = 0;

  BlockDecomposition(std::size_t n, std::size_t grain,
                     std::size_t min_block = 1) {
    const std::size_t nw = ThreadPool::instance().workers();
    std::size_t bs = grain;
    if (bs == 0) bs = (n + 4 * nw - 1) / (4 * nw);
    if (bs < min_block) bs = min_block;
    if (bs == 0) bs = 1;
    block_size = bs;
    num_blocks = n == 0 ? 0 : (n + bs - 1) / bs;
  }

  std::size_t lo(std::size_t block) const { return block * block_size; }
  std::size_t hi(std::size_t block, std::size_t n) const {
    const std::size_t h = lo(block) + block_size;
    return h < n ? h : n;
  }
};

}  // namespace detail

/// out[i] = fn(i) for i in [0, n). The index-based form subsumes
/// transform/zip/counting-iterator compositions without iterator machinery.
template <typename T, typename Fn>
void tabulate(Backend b, std::span<T> out, Fn fn, std::size_t grain = 0) {
  detail::for_each_range(
      b, out.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) out[i] = fn(i);
      },
      grain);
}

/// Calls fn(i) for each i in [0, n); fn must be data-race free across i.
template <typename Fn>
void for_each_index(Backend b, std::size_t n, Fn fn, std::size_t grain = 0) {
  detail::for_each_range(
      b, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

/// Calls fn(lo, hi) on disjoint subranges covering [0, n) — the chunked form
/// of for_each_index, for kernels that amortize per-chunk scratch (the
/// strided FFT row transforms carry one scratch buffer per chunk instead of
/// one per item). fn must be safe to run concurrently on disjoint ranges.
template <typename Fn>
void for_each_chunk(Backend b, std::size_t n, Fn fn, std::size_t grain = 0) {
  detail::for_each_range(b, n, fn, grain);
}

/// Reduction of fn(i) over [0, n) with an associative op. Partial results
/// are combined in block order, so the parallel result is deterministic
/// (and equals Serial whenever op is exactly associative).
template <typename T, typename Fn, typename Op>
T transform_reduce(Backend b, std::size_t n, T init, Op op, Fn fn,
                   std::size_t grain = 0) {
  if (b == Backend::Serial || n == 0) {
    T acc = init;
    for (std::size_t i = 0; i < n; ++i) acc = op(acc, fn(i));
    return acc;
  }
  const detail::BlockDecomposition blocks(n, grain);
  std::vector<T> partial(blocks.num_blocks, init);
  for_each_index(
      b, blocks.num_blocks,
      [&](std::size_t blk) {
        T acc = init;
        const std::size_t hi = blocks.hi(blk, n);
        for (std::size_t i = blocks.lo(blk); i < hi; ++i) acc = op(acc, fn(i));
        partial[blk] = acc;
      },
      /*grain=*/1);
  T acc = init;
  for (const auto& p : partial) acc = op(acc, p);
  return acc;
}

/// Sum reduction over a span.
template <typename T>
T reduce(Backend b, std::span<const T> in, T init = T{}) {
  return transform_reduce(
      b, in.size(), init, [](T a, T v) { return a + v; },
      [&](std::size_t i) { return in[i]; });
}

/// Index of the minimum of fn(i) over [0, n); ties break to the lowest
/// index so results are backend-independent. This is the key primitive for
/// the MBP center finder (argmin of potential). `grain` follows the cost of
/// fn: pass a small grain when single evaluations are expensive.
template <typename Fn>
std::size_t argmin(Backend b, std::size_t n, Fn fn, std::size_t grain = 0) {
  COSMO_REQUIRE(n > 0, "argmin of empty range");
  using V = decltype(fn(std::size_t{0}));
  struct Best {
    V value;
    std::size_t index;
  };
  auto better = [](const Best& a, const Best& c) {
    if (c.value < a.value) return c;
    if (c.value == a.value && c.index < a.index) return c;
    return a;
  };
  Best init{std::numeric_limits<V>::max(), std::numeric_limits<std::size_t>::max()};
  Best r = transform_reduce(
      b, n, init, better, [&](std::size_t i) { return Best{fn(i), i}; },
      grain);
  return r.index;
}

/// Exclusive prefix sum: out[i] = sum of in[0..i). Returns the total.
/// Two-pass block scan (scan-then-propagate) on the pool backend; += only
/// needs to be associative, not commutative — block offsets are combined
/// strictly left to right.
template <typename T>
T exclusive_scan(Backend b, std::span<const T> in, std::span<T> out,
                 std::size_t grain = 0) {
  COSMO_REQUIRE(in.size() == out.size(), "scan size mismatch");
  const std::size_t n = in.size();
  if (n == 0) return T{};
  if (b == Backend::Serial) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      const T v = in[i];  // allow in == out aliasing
      out[i] = acc;
      acc += v;
    }
    return acc;
  }
  const detail::BlockDecomposition blocks(n, grain);
  std::vector<T> block_sum(blocks.num_blocks, T{});
  for_each_index(
      b, blocks.num_blocks,
      [&](std::size_t blk) {
        T acc{};
        const std::size_t hi = blocks.hi(blk, n);
        for (std::size_t i = blocks.lo(blk); i < hi; ++i) acc += in[i];
        block_sum[blk] = acc;
      },
      /*grain=*/1);
  T total{};
  std::vector<T> block_off(blocks.num_blocks, T{});
  for (std::size_t blk = 0; blk < blocks.num_blocks; ++blk) {
    block_off[blk] = total;
    total += block_sum[blk];
  }
  for_each_index(
      b, blocks.num_blocks,
      [&](std::size_t blk) {
        T acc = block_off[blk];
        const std::size_t hi = blocks.hi(blk, n);
        for (std::size_t i = blocks.lo(blk); i < hi; ++i) {
          const T v = in[i];
          out[i] = acc;
          acc += v;
        }
      },
      /*grain=*/1);
  return total;
}

/// Inclusive prefix sum: out[i] = sum of in[0..i]. Returns the total.
template <typename T>
T inclusive_scan(Backend b, std::span<const T> in, std::span<T> out) {
  const T total = exclusive_scan(b, in, out);
  // out[i] currently holds the exclusive sum; add in[i] back.
  for_each_index(b, in.size(), [&](std::size_t i) { out[i] += in[i]; });
  return total;
}

/// out[i] = in[map[i]].
template <typename T, typename I>
void gather(Backend b, std::span<const T> in, std::span<const I> map,
            std::span<T> out) {
  COSMO_REQUIRE(map.size() == out.size(), "gather size mismatch");
  for_each_index(b, map.size(), [&](std::size_t i) {
    out[i] = in[static_cast<std::size_t>(map[i])];
  });
}

/// out[map[i]] = in[i]; map must be a permutation-like injection.
template <typename T, typename I>
void scatter(Backend b, std::span<const T> in, std::span<const I> map,
             std::span<T> out) {
  COSMO_REQUIRE(map.size() == in.size(), "scatter size mismatch");
  for_each_index(b, map.size(), [&](std::size_t i) {
    out[static_cast<std::size_t>(map[i])] = in[i];
  });
}

/// Stable sort of `index` (a permutation of [0,n)) by keys[index[i]].
/// Parallel backend: per-chunk sorts followed by log2 rounds of pairwise
/// inplace_merge; each run/merge is one scheduler item (grain 1) so the
/// pool steals whole runs.
template <typename K>
void sort_indices_by_key(Backend b, std::span<const K> keys,
                         std::vector<std::uint32_t>& index) {
  const std::size_t n = keys.size();
  index.resize(n);
  for (std::size_t i = 0; i < n; ++i) index[i] = static_cast<std::uint32_t>(i);
  auto cmp = [&](std::uint32_t a, std::uint32_t c) { return keys[a] < keys[c]; };
  if (b == Backend::Serial || n < 4096) {
    std::stable_sort(index.begin(), index.end(), cmp);
    return;
  }
  auto& pool = ThreadPool::instance();
  const std::size_t nw = pool.workers();
  const std::size_t chunk = (n + nw - 1) / nw;
  // Phase 1: sort each chunk independently.
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  for (std::size_t lo = 0; lo < n; lo += chunk)
    runs.emplace_back(lo, std::min(lo + chunk, n));
  for_each_index(
      b, runs.size(),
      [&](std::size_t r) {
        std::stable_sort(index.begin() + static_cast<std::ptrdiff_t>(runs[r].first),
                         index.begin() + static_cast<std::ptrdiff_t>(runs[r].second),
                         cmp);
      },
      /*grain=*/1);
  // Phase 2: pairwise merges until one run remains.
  while (runs.size() > 1) {
    std::vector<std::pair<std::size_t, std::size_t>> merged;
    const std::size_t pairs = runs.size() / 2;
    merged.reserve(pairs + 1);
    for (std::size_t p = 0; p < pairs; ++p)
      merged.emplace_back(runs[2 * p].first, runs[2 * p + 1].second);
    if (runs.size() % 2) merged.push_back(runs.back());
    for_each_index(
        b, pairs,
        [&](std::size_t p) {
          auto first = index.begin() + static_cast<std::ptrdiff_t>(runs[2 * p].first);
          auto mid = index.begin() + static_cast<std::ptrdiff_t>(runs[2 * p].second);
          auto last = index.begin() + static_cast<std::ptrdiff_t>(runs[2 * p + 1].second);
          std::inplace_merge(first, mid, last, cmp);
        },
        /*grain=*/1);
    runs = std::move(merged);
  }
}

/// Scatter-reduce ("deposit"): item i adds contributions at arbitrary
/// offsets of an accumulator the size of `dest` — the shape of the CIC
/// density deposit, where every particle scatters weights onto 8 grid
/// cells and plain parallel for_each would race on the += .
///
/// scatter(buf, i) must only ever += into `buf` (a dest-sized span).
/// Contributions are accumulated on top of dest's existing contents.
///
/// Parallel structure: the item range is cut into a bounded number of
/// contiguous blocks (at most kMaxDepositBuffers × pool-width private
/// buffers, so memory stays O(workers × dest.size()) no matter the grain).
/// Block 0 scatters directly into dest; every other block scatters into
/// its own zero-filled private buffer. The buffers are then merged into
/// dest in fixed ascending block order, sliced across disjoint dest ranges
/// so the merge itself parallelizes race-free.
///
/// Determinism contract (the PR-2 reduce/scan contract, extended to
/// scatter): block boundaries and merge order depend only on
/// (n, grain, pool width) — never on which thread ran which block — and
/// the Serial backend executes the *same* decomposition single-threaded.
/// Serial and ThreadPool results are therefore bit-identical for floating
/// point T, per call shape. (As with reduce, results for non-associative
/// += can differ across *grains*, which change the block structure.)
template <typename T, typename Scatter>
void deposit_reduce(Backend b, std::size_t n, std::span<T> dest,
                    Scatter scatter, std::size_t grain = 0) {
  COSMO_COUNT("dpp.deposit_calls", 1);
  COSMO_COUNT("dpp.deposit_items", n);
  if (n == 0) return;
  constexpr std::size_t kMaxDepositBuffers = 4;  // per pool worker
  const std::size_t nw = ThreadPool::instance().workers();
  // Two caps on the block count, both deterministic in (n, m, pool width):
  // memory stays O(workers) buffers, and merge work ((blocks−1)·m adds)
  // stays within ~8 adds per item — the CIC scatter's own cost — so the
  // reduction never dominates in the sparse items-per-cell regime.
  const std::size_t m = dest.size();
  std::size_t max_blocks = kMaxDepositBuffers * nw;
  if (m > 0) max_blocks = std::min(max_blocks, 1 + 8 * n / m);
  if (max_blocks < 1) max_blocks = 1;
  const std::size_t min_block = (n + max_blocks - 1) / max_blocks;
  const detail::BlockDecomposition blocks(n, grain, min_block);
  if (blocks.num_blocks <= 1) {
    // Single block: in-order scatter straight into dest, both backends.
    for (std::size_t i = 0; i < n; ++i) scatter(dest, i);
    return;
  }
  COSMO_COUNT("dpp.deposit_buffers", blocks.num_blocks - 1);
  std::vector<std::vector<T>> partial(blocks.num_blocks - 1);
  for_each_index(
      b, blocks.num_blocks,
      [&](std::size_t blk) {
        std::span<T> buf = dest;
        if (blk != 0) {
          auto& mine = partial[blk - 1];
          mine.assign(dest.size(), T{});
          buf = mine;
        }
        const std::size_t hi = blocks.hi(blk, n);
        for (std::size_t i = blocks.lo(blk); i < hi; ++i) scatter(buf, i);
      },
      /*grain=*/1);
  // Plane-sliced merge: each slice owns a disjoint dest range and folds the
  // private buffers in ascending block order — deterministic and race-free.
  const detail::BlockDecomposition slices(m, /*grain=*/0, /*min_block=*/1024);
  for_each_index(
      b, slices.num_blocks,
      [&](std::size_t s) {
        const std::size_t slo = slices.lo(s);
        const std::size_t shi = slices.hi(s, m);
        for (const auto& p : partial)
          for (std::size_t j = slo; j < shi; ++j) dest[j] += p[j];
      },
      /*grain=*/1);
}

/// Counts of key occurrences for keys in [0, num_buckets); the building
/// block for CIC binning and halo-id segmentation. Parallel backend uses
/// per-block count arrays merged in block order (blocks are kept coarse —
/// each one carries a num_buckets-sized scratch array).
template <typename I>
std::vector<std::uint64_t> bucket_count(Backend b, std::span<const I> keys,
                                        std::size_t num_buckets) {
  std::vector<std::uint64_t> counts(num_buckets, 0);
  if (b == Backend::Serial || keys.size() < 4096) {
    for (const auto k : keys) {
      const auto kk = static_cast<std::size_t>(k);
      COSMO_REQUIRE(kk < num_buckets, "bucket key out of range");
      ++counts[kk];
    }
    return counts;
  }
  const std::size_t n = keys.size();
  const detail::BlockDecomposition blocks(n, /*grain=*/0, /*min_block=*/4096);
  std::vector<std::vector<std::uint64_t>> partial(
      blocks.num_blocks, std::vector<std::uint64_t>(num_buckets, 0));
  for_each_index(
      b, blocks.num_blocks,
      [&](std::size_t blk) {
        auto& mine = partial[blk];
        const std::size_t hi = blocks.hi(blk, n);
        for (std::size_t i = blocks.lo(blk); i < hi; ++i) {
          const auto kk = static_cast<std::size_t>(keys[i]);
          COSMO_REQUIRE(kk < num_buckets, "bucket key out of range");
          ++mine[kk];
        }
      },
      /*grain=*/1);
  for (const auto& p : partial)
    for (std::size_t k = 0; k < num_buckets; ++k) counts[k] += p[k];
  return counts;
}

/// Compacts indices whose predicate holds, preserving order.
template <typename Pred>
std::vector<std::uint32_t> copy_if_index(Backend b, std::size_t n, Pred pred) {
  std::vector<std::uint8_t> flags(n);
  tabulate<std::uint8_t>(b, flags, [&](std::size_t i) {
    return pred(i) ? std::uint8_t{1} : std::uint8_t{0};
  });
  std::vector<std::uint32_t> offsets(n);
  std::vector<std::uint32_t> flags32(flags.begin(), flags.end());
  const std::uint32_t total = exclusive_scan<std::uint32_t>(
      b, std::span<const std::uint32_t>(flags32), std::span<std::uint32_t>(offsets));
  std::vector<std::uint32_t> out(total);
  for_each_index(b, n, [&](std::size_t i) {
    if (flags[i]) out[offsets[i]] = static_cast<std::uint32_t>(i);
  });
  return out;
}

}  // namespace cosmo::dpp
