// In-transit staging area — the burst-buffer / NVRAM model (§4.2, third
// variation).
//
// "Instead of writing out the Level 2 data ... to disk, the data is now
// stored on a separate memory device ... connected to both the main HPC
// system as well as the analysis cluster." The paper could not run this
// (no such machine existed); we provide the substrate so the in-transit
// workflow variant is executable: a thread-safe, capacity-bounded,
// named-buffer store shared between the producer (simulation ranks) and the
// consumer (co-scheduled analysis job), with blocking take semantics.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "faults/faults.h"
#include "obs/obs.h"
#include "util/error.h"

namespace cosmo::sched {

class StagingArea {
 public:
  /// capacity_bytes bounds resident data, like a real burst buffer's size.
  explicit StagingArea(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  std::uint64_t capacity() const { return capacity_; }

  std::uint64_t used_bytes() const {
    std::lock_guard lock(mutex_);
    return used_;
  }

  /// Stages a named buffer. Returns false (without storing) if it would
  /// exceed capacity, if the area is closed (dead consumer), or if the
  /// injected device fault fires — the producer must then fall back to the
  /// filesystem, exactly the overflow behaviour burst-buffer systems
  /// document.
  bool put(const std::string& name, std::vector<std::byte> data) {
    std::unique_lock lock(mutex_);
    COSMO_REQUIRE(!store_.count(name), "staging name already in use: " + name);
    bool reject = closed_ || used_ + data.size() > capacity_;
    if (!reject && COSMO_FAULT_POINT("staging.put")) {
      // Device-level failure: the buffer had room, the write still bounced.
      COSMO_COUNT("sched.staging_faults", 1);
      reject = true;
    }
    if (reject) {
      COSMO_COUNT("sched.staging_rejects", 1);
      return false;
    }
    COSMO_COUNT("sched.staging_puts", 1);
    COSMO_COUNT("sched.staging_bytes", data.size());
    used_ += data.size();
    store_.emplace(name, std::move(data));
    lock.unlock();
    cv_.notify_all();
    return true;
  }

  /// Removes and returns a staged buffer if present.
  std::optional<std::vector<std::byte>> take(const std::string& name) {
    std::lock_guard lock(mutex_);
    auto it = store_.find(name);
    if (it == store_.end()) return std::nullopt;
    std::vector<std::byte> out = std::move(it->second);
    used_ -= out.size();
    store_.erase(it);
    COSMO_COUNT("sched.staging_takes", 1);
    return out;
  }

  /// Blocks until the named buffer is staged (or timeout / area closed),
  /// then removes and returns it. The consumer side of the in-transit
  /// handoff. An injected "staging.take" fault models a lost handoff: the
  /// call returns empty even though the data may be resident (a plain
  /// take() retry can still succeed).
  std::optional<std::vector<std::byte>> take_blocking(
      const std::string& name, std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    if (COSMO_FAULT_POINT("staging.take")) {
      COSMO_COUNT("sched.staging_take_faults", 1);
      return std::nullopt;
    }
    cv_.wait_for(lock, timeout,
                 [&] { return store_.count(name) != 0 || closed_; });
    auto it = store_.find(name);
    if (it == store_.end()) return std::nullopt;
    std::vector<std::byte> out = std::move(it->second);
    used_ -= out.size();
    store_.erase(it);
    COSMO_COUNT("sched.staging_takes", 1);
    return out;
  }

  /// Marks the consumer dead: subsequent puts are rejected (producers fall
  /// back to the filesystem) and blocked takers wake immediately.
  void close() {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return;
      closed_ = true;
    }
    COSMO_COUNT("sched.staging_closed", 1);
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t staged_count() const {
    std::lock_guard lock(mutex_);
    return store_.size();
  }

 private:
  std::uint64_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, std::vector<std::byte>> store_;
  std::uint64_t used_ = 0;
  bool closed_ = false;
};

}  // namespace cosmo::sched
