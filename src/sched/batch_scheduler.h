// Discrete-event batch-cluster simulator.
//
// Co-scheduling (§3.2) is a statement about queues: analysis jobs submitted
// while the main simulation runs, subject to the facility's queue policy.
// The paper calls out Titan's policy specifically — only two jobs under 125
// nodes may run simultaneously, so co-scheduling many small analysis jobs
// there needs a queue exemption, while Rhea (the designated analysis
// cluster) keeps small-job wait times short. This simulator reproduces that
// decision structure: machines with node counts, charge factors, and
// small-job limits; FIFO dispatch with skip-ahead ("backfill") so a small
// job may start when the head of the queue doesn't fit; and conservation-
// checked core-hour accounting (Titan charges 30 core-hours per node-hour).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "faults/faults.h"
#include "obs/obs.h"
#include "util/error.h"

namespace cosmo::sched {

struct QueuePolicy {
  /// Max number of "small" jobs running at once (Titan: 2).
  int max_small_jobs_running = std::numeric_limits<int>::max();
  /// A job is "small" if it uses fewer nodes than this (Titan: 125).
  int small_job_threshold = 0;
  /// If false, a job may start ahead of earlier-submitted jobs that do not
  /// fit yet (backfill). If true, strict FIFO.
  bool strict_fifo = false;
  /// How many times a failed job (fault site "batch.job") is resubmitted
  /// before it is recorded as permanently failed.
  int max_requeues = 3;
};

struct MachineProfile {
  std::string name;
  int nodes = 1;
  /// Core-hours charged per node-hour (Titan: 30).
  double charge_per_node_hour = 1.0;
  /// Relative speed of the analysis kernels on this machine's accelerators
  /// (Titan K20X = 1.0 reference; Moonlight M2090 ≈ 1/0.55 slower).
  double analysis_speed = 1.0;
  bool has_gpus = true;
  QueuePolicy policy;

  /// Titan: 18,688 nodes, 30 core-hours/node-hour, ≤2 small (<125 node) jobs.
  static MachineProfile titan() {
    return {"Titan", 18688, 30.0, 1.0, true, {2, 125, false}};
  }
  /// Rhea: analysis cluster, CPU-only, generous small-job capacity.
  static MachineProfile rhea() {
    return {"Rhea", 512, 16.0, 1.0 / 50.0, false, {}};
  }
  /// Moonlight: LANL GPU cluster, flexible small-job queueing; the paper
  /// measured Titan ≈ 0.55× Moonlight's analysis time (Titan faster).
  static MachineProfile moonlight() {
    return {"Moonlight", 308, 16.0, 0.55, true, {}};
  }
};

using JobId = std::uint32_t;

struct JobRecord {
  std::string name;
  int nodes = 0;
  double duration_s = 0.0;   ///< runtime once started
  double submit_time = 0.0;
  double start_time = -1.0;  ///< −1 while queued
  double end_time = -1.0;
  int requeues = 0;     ///< resubmissions after injected failures
  bool failed = false;  ///< permanently failed (requeue budget exhausted)
  bool started() const { return start_time >= 0.0; }
  bool finished() const { return end_time >= 0.0; }
  double wait_s() const { return started() ? start_time - submit_time : -1.0; }
};

/// Event-driven simulation of one machine's batch queue.
class BatchScheduler {
 public:
  explicit BatchScheduler(MachineProfile profile) : profile_(std::move(profile)) {
    COSMO_REQUIRE(profile_.nodes > 0, "machine needs nodes");
  }

  const MachineProfile& profile() const { return profile_; }
  double now() const { return now_; }

  /// Submits a job at time `submit_time` (≥ current simulation time).
  JobId submit(const std::string& name, int nodes, double duration_s,
               double submit_time) {
    COSMO_REQUIRE(nodes > 0 && nodes <= profile_.nodes,
                  "job does not fit the machine: " + name);
    COSMO_REQUIRE(duration_s >= 0.0, "negative job duration");
    COSMO_REQUIRE(submit_time >= now_, "cannot submit in the past");
    JobRecord j;
    j.name = name;
    j.nodes = nodes;
    j.duration_s = duration_s;
    j.submit_time = submit_time;
    jobs_.push_back(j);
    completion_checked_.push_back(0);
    return static_cast<JobId>(jobs_.size() - 1);
  }

  /// Advances simulated time until every submitted job has finished.
  void run_to_completion() {
    for (;;) {
      // Settle the current instant: dispatching can complete zero-duration
      // jobs, and a failed completion requeues a job that may dispatch
      // again right away, so iterate until neither makes progress.
      bool progress = true;
      while (progress) {
        progress = dispatch();
        if (check_completions()) progress = true;
      }
      // Next event: the earliest future submit time or running-job
      // completion. Jobs already submitted but blocked (queue full, policy)
      // become startable only at one of those events, so they do not
      // generate events themselves.
      double next = std::numeric_limits<double>::max();
      bool blocked_now = false;
      for (const auto& j : jobs_) {
        if (j.started()) {
          if (j.end_time > now_) next = std::min(next, j.end_time);
        } else if (j.submit_time > now_) {
          next = std::min(next, j.submit_time);
        } else {
          blocked_now = true;
        }
      }
      if (next == std::numeric_limits<double>::max()) {
        COSMO_REQUIRE(!blocked_now,
                      "queue deadlock: blocked jobs but no future events");
        return;
      }
      now_ = next;
    }
  }

  const JobRecord& job(JobId id) const {
    COSMO_REQUIRE(id < jobs_.size(), "bad job id");
    return jobs_[id];
  }
  std::size_t job_count() const { return jobs_.size(); }

  /// Wall-clock when the last job finished.
  double makespan() const {
    double m = 0.0;
    for (const auto& j : jobs_) {
      COSMO_REQUIRE(j.finished(), "makespan before completion");
      m = std::max(m, j.end_time);
    }
    return m;
  }

  /// Total charged core-hours: Σ nodes × runtime × charge factor. Every
  /// attempt of a requeued job is charged — the facility bills failed runs
  /// too — so a job that ran requeues+1 times costs that multiple.
  double total_core_hours() const {
    double t = 0.0;
    for (const auto& j : jobs_) {
      COSMO_REQUIRE(j.finished(), "accounting before completion");
      t += j.nodes * (j.duration_s * (j.requeues + 1) / 3600.0) *
           profile_.charge_per_node_hour;
    }
    return t;
  }

 private:
  int nodes_in_use() const {
    int used = 0;
    for (const auto& j : jobs_)
      if (j.started() && j.end_time > now_) used += j.nodes;
    return used;
  }

  int small_jobs_running() const {
    int n = 0;
    for (const auto& j : jobs_)
      if (j.started() && j.end_time > now_ &&
          j.nodes < profile_.policy.small_job_threshold)
        ++n;
    return n;
  }

  bool dispatch() {
    bool any_started = false;
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto& j : jobs_) {
        if (j.started() || j.submit_time > now_) continue;
        const bool fits = nodes_in_use() + j.nodes <= profile_.nodes;
        const bool small =
            j.nodes < profile_.policy.small_job_threshold;
        const bool small_ok =
            !small ||
            small_jobs_running() < profile_.policy.max_small_jobs_running;
        if (fits && small_ok) {
          j.start_time = now_;
          j.end_time = now_ + j.duration_s;
          COSMO_COUNT("sched.jobs_started", 1);
          COSMO_HISTOGRAM("sched.queue_wait_s", 0.0, 3600.0, 72,
                          now_ - j.submit_time);
          COSMO_HISTOGRAM("sched.job_runtime_s", 0.0, 3600.0, 72,
                          j.duration_s);
          progress = true;
          any_started = true;
        } else if (profile_.policy.strict_fifo) {
          return any_started;  // head of queue blocks everything behind it
        }
      }
    }
    return any_started;
  }

  /// Checks each newly completed run against the "batch.job" fault site:
  /// a failed run is resubmitted at the current time until the policy's
  /// requeue budget is exhausted, after which the job is marked failed.
  /// Returns true when a requeue re-opened work at the current instant.
  bool check_completions() {
    bool requeued = false;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      auto& j = jobs_[i];
      if (!j.started() || j.end_time > now_ || completion_checked_[i]) continue;
      completion_checked_[i] = 1;
      if (!COSMO_FAULT_POINT("batch.job")) continue;
      COSMO_COUNT("sched.jobs_failed", 1);
      if (j.requeues < profile_.policy.max_requeues) {
        ++j.requeues;
        COSMO_COUNT("sched.jobs_requeued", 1);
        j.submit_time = now_;
        j.start_time = -1.0;
        j.end_time = -1.0;
        completion_checked_[i] = 0;
        requeued = true;
      } else {
        j.failed = true;
      }
    }
    return requeued;
  }

  MachineProfile profile_;
  std::vector<JobRecord> jobs_;
  std::vector<std::uint8_t> completion_checked_;
  double now_ = 0.0;
};

}  // namespace cosmo::sched
