// Halo concentration — a Level 3 product the paper names explicitly
// (Table 1: "mass functions concentrations"; §3.3.2: "The concentration is
// determined from the density profile of the halo as a function of radius —
// if the center is not exactly at the density maximum, the concentration
// will be underestimated").
//
// Estimator: fit the NFW enclosed-mass profile by matching the measured
// half-mass radius. For an NFW halo, M(<r)/M_vir = μ(c·r/r_vir)/μ(c) with
// μ(x) = ln(1+x) − x/(1+x); the half-mass condition μ(c·x_half)/μ(c) = 1/2
// is monotone in c, so the concentration follows from a bisection on c
// given the measured r_half/r_vir. Cheap, robust, and center-sensitive —
// exactly the property the paper uses to argue for accurate MBP centers.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "dpp/primitives.h"
#include "sim/particles.h"
#include "util/error.h"

namespace cosmo::stats {

namespace detail {
inline double nfw_mu(double x) { return std::log1p(x) - x / (1.0 + x); }
}  // namespace detail

struct ConcentrationResult {
  double c = 0.0;        ///< NFW concentration (0 if indeterminate)
  double r_half = 0.0;   ///< half-mass radius
  double r_outer = 0.0;  ///< outermost-member radius used as r_vir proxy
};

/// Expected half-mass radius fraction x_half = r_half/r_vir for an NFW halo
/// of concentration c (solves μ(c·x)/μ(c) = 1/2 for x).
inline double nfw_half_mass_fraction(double c) {
  COSMO_REQUIRE(c > 0.0, "concentration must be positive");
  const double target = 0.5 * detail::nfw_mu(c);
  double lo = 0.0, hi = 1.0;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    (detail::nfw_mu(c * mid) < target ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

/// Fast half-mass-radius concentration estimate: matches the measured
/// r_half/r_outer against the NFW expectation. Cheap but insensitive to
/// core flattening; prefer concentration_profile_fit for science use.
inline ConcentrationResult concentration(const sim::ParticleSet& p,
                                         std::span<const std::uint32_t> members,
                                         double cx, double cy, double cz,
                                         double box = 0.0,
                                         dpp::Backend backend =
                                             dpp::Backend::Serial,
                                         std::size_t grain = 0) {
  ConcentrationResult out;
  if (members.size() < 20) return out;
  // Elementwise, so bit-identical across backends and grains.
  std::vector<double> r2(members.size());
  dpp::tabulate<double>(
      backend, r2,
      [&](std::size_t k) {
        const auto i = members[k];
        const double dx = p.x[i] - cx, dy = p.y[i] - cy, dz = p.z[i] - cz;
        return box > 0.0 ? sim::periodic_dist2(dx, dy, dz, box)
                         : dx * dx + dy * dy + dz * dz;
      },
      grain);
  std::sort(r2.begin(), r2.end());
  out.r_outer = std::sqrt(r2.back());
  out.r_half = std::sqrt(r2[r2.size() / 2]);
  if (out.r_outer <= 0.0 || out.r_half <= 0.0) return out;
  const double x_half = out.r_half / out.r_outer;

  // x_half(c) is monotonically decreasing in c; bracket and bisect.
  double c_lo = 0.1, c_hi = 100.0;
  if (x_half >= nfw_half_mass_fraction(c_lo) ||
      x_half <= nfw_half_mass_fraction(c_hi))
    return out;  // outside the NFW family: report indeterminate
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (c_lo + c_hi);
    (nfw_half_mass_fraction(mid) > x_half ? c_lo : c_hi) = mid;
  }
  out.c = 0.5 * (c_lo + c_hi);
  return out;
}

/// Concentration from a least-squares NFW fit to the binned radial density
/// profile — "determined from the density profile of the halo as a function
/// of radius" (§3.3.2). For each candidate c the density normalization has
/// a closed form in log space (the mean log-residual), so the fit is a 1-D
/// scan over c. An inaccurate center flattens the measured inner profile
/// and drives the best-fit c down — the underestimate the paper warns
/// about, and the reason the expensive MBP center is worth computing.
inline ConcentrationResult concentration_profile_fit(
    const sim::ParticleSet& p, std::span<const std::uint32_t> members,
    double cx, double cy, double cz, double box = 0.0,
    std::size_t bins = 16, dpp::Backend backend = dpp::Backend::Serial,
    std::size_t grain = 0) {
  ConcentrationResult out;
  if (members.size() < 100) return out;
  // Elementwise, so bit-identical across backends and grains.
  std::vector<double> r(members.size());
  dpp::tabulate<double>(
      backend, r,
      [&](std::size_t k) {
        const auto i = members[k];
        const double dx = p.x[i] - cx, dy = p.y[i] - cy, dz = p.z[i] - cz;
        const double d2 = box > 0.0 ? sim::periodic_dist2(dx, dy, dz, box)
                                    : dx * dx + dy * dy + dz * dz;
        return std::sqrt(d2);
      },
      grain);
  std::sort(r.begin(), r.end());
  out.r_outer = r.back();
  out.r_half = r[r.size() / 2];
  if (out.r_outer <= 0.0) return out;

  // Log-spaced shells from r_outer/50 to r_outer.
  const double r_min = out.r_outer / 50.0;
  std::vector<double> log_rho(bins), log_r(bins);
  std::vector<bool> valid(bins, false);
  const double lgmin = std::log(r_min), lgmax = std::log(out.r_outer);
  const double dlg = (lgmax - lgmin) / static_cast<double>(bins);
  std::size_t idx = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    const double r_lo = std::exp(lgmin + dlg * static_cast<double>(b));
    const double r_hi = std::exp(lgmin + dlg * static_cast<double>(b + 1));
    while (idx < r.size() && r[idx] < r_lo) ++idx;
    std::size_t count = 0;
    while (idx < r.size() && r[idx] < r_hi) {
      ++count;
      ++idx;
    }
    if (count < 3) continue;
    const double vol =
        4.0 / 3.0 * 3.14159265358979323846 * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    log_rho[b] = std::log(static_cast<double>(count) / vol);
    log_r[b] = 0.5 * (std::log(r_lo) + std::log(r_hi));
    valid[b] = true;
  }

  // 1-D scan over c; per-c the normalization is the mean log residual.
  double best_sse = 1e300, best_c = 0.0;
  for (double c = 1.0; c <= 40.0; c *= 1.05) {
    const double rs = out.r_outer / c;
    double mean_resid = 0.0;
    int n_valid = 0;
    for (std::size_t b = 0; b < bins; ++b) {
      if (!valid[b]) continue;
      const double x = std::exp(log_r[b]) / rs;
      const double shape = -std::log(x) - 2.0 * std::log1p(x);
      mean_resid += log_rho[b] - shape;
      ++n_valid;
    }
    if (n_valid < 4) continue;
    mean_resid /= n_valid;
    double sse = 0.0;
    for (std::size_t b = 0; b < bins; ++b) {
      if (!valid[b]) continue;
      const double x = std::exp(log_r[b]) / rs;
      const double model = mean_resid - std::log(x) - 2.0 * std::log1p(x);
      const double d = log_rho[b] - model;
      sse += d * d;
    }
    if (sse < best_sse) {
      best_sse = sse;
      best_c = c;
    }
  }
  out.c = best_c;
  return out;
}

}  // namespace cosmo::stats
