// Halo merger trees — tracking halos across timesteps.
//
// The paper's introduction frames the analysis goal: "analysis tasks are
// carried out to not only capture these structures within one time snapshot
// but also to track their evolution to the end of the simulation. Over
// time, halos merge and accrete mass." This module links halo catalogs from
// consecutive snapshots by particle-tag overlap (tags are conserved
// Lagrangian identities): a halo's descendant is the next-step halo holding
// the plurality of its particles; a halo with several progenitors is a
// merger.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "dpp/primitives.h"
#include "halo/fof.h"
#include "util/error.h"

namespace cosmo::stats {

/// A halo's identity at one step: catalog id + the member particle tags.
struct TrackedHalo {
  std::int64_t id = 0;
  std::vector<std::int64_t> tags;
};

/// Extracts tracked halos (id + member tags) from a rank's FOF result.
inline std::vector<TrackedHalo> tracked_halos(
    const halo::DistributedFofResult& fof) {
  std::vector<TrackedHalo> out;
  out.reserve(fof.halos.size());
  for (const auto& h : fof.halos) {
    TrackedHalo t;
    t.id = h.id;
    t.tags.reserve(h.members.size());
    for (const auto m : h.members) t.tags.push_back(fof.particles.tag[m]);
    out.push_back(std::move(t));
  }
  return out;
}

struct MergerLink {
  std::size_t step = 0;            ///< progenitor's step
  std::int64_t progenitor = 0;     ///< halo id at `step`
  std::int64_t descendant = 0;     ///< halo id at `step + 1`
  std::size_t shared_particles = 0;
};

/// Builds descendant links between consecutive snapshots.
class MergerTreeBuilder {
 public:
  /// Snapshots must be added in increasing step order.
  void add_snapshot(std::size_t step, std::vector<TrackedHalo> halos) {
    COSMO_REQUIRE(snapshots_.empty() || step > snapshots_.rbegin()->first,
                  "snapshots must be added in increasing step order");
    snapshots_.emplace(step, std::move(halos));
  }

  std::size_t snapshot_count() const { return snapshots_.size(); }

  /// Computes all links; call once after adding every snapshot. The
  /// per-progenitor overlap counts are independent (the owner map is
  /// read-only), so they fan out as one pool task per progenitor halo;
  /// links land in a preallocated slot per halo and are appended in halo
  /// order, so the result is identical on both backends.
  void build(dpp::Backend backend = dpp::Backend::Serial) {
    links_.clear();
    auto it = snapshots_.begin();
    if (it == snapshots_.end()) return;
    for (auto next = std::next(it); next != snapshots_.end(); ++it, ++next) {
      // Tag → next-step halo id.
      std::unordered_map<std::int64_t, std::int64_t> owner;
      for (const auto& h : next->second)
        for (const auto t : h.tags) owner[t] = h.id;
      const auto& prev = it->second;
      // shared_particles == 0 marks "no descendant" (dissolved / below cut).
      std::vector<MergerLink> cand(prev.size());
      dpp::for_each_index(
          backend, prev.size(),
          [&](std::size_t k) {
            const auto& h = prev[k];
            // Count overlap per candidate descendant.
            std::map<std::int64_t, std::size_t> overlap;
            for (const auto t : h.tags) {
              auto f = owner.find(t);
              if (f != owner.end()) ++overlap[f->second];
            }
            if (overlap.empty()) return;
            auto best = overlap.begin();
            for (auto o = overlap.begin(); o != overlap.end(); ++o)
              if (o->second > best->second) best = o;
            cand[k] = {it->first, h.id, best->first, best->second};
          },
          /*grain=*/1);
      for (const auto& l : cand)
        if (l.shared_particles > 0) links_.push_back(l);
    }
  }

  const std::vector<MergerLink>& links() const { return links_; }

  /// Progenitors of halo `id` at step `step` (ids at step-1's snapshot).
  std::vector<std::int64_t> progenitors(std::size_t step,
                                        std::int64_t id) const {
    std::vector<std::int64_t> out;
    for (const auto& l : links_)
      if (l.step + 1 == step && l.descendant == id)
        out.push_back(l.progenitor);
    return out;
  }

  /// Descendant of halo `id` at step `step`, or -1 if it dissolved.
  std::int64_t descendant(std::size_t step, std::int64_t id) const {
    for (const auto& l : links_)
      if (l.step == step && l.progenitor == id) return l.descendant;
    return -1;
  }

  /// Main branch: follow the descendant chain from (step, id) to the end.
  std::vector<std::pair<std::size_t, std::int64_t>> main_branch(
      std::size_t step, std::int64_t id) const {
    std::vector<std::pair<std::size_t, std::int64_t>> branch{{step, id}};
    std::int64_t cur = id;
    for (std::size_t s = step;; ++s) {
      const std::int64_t d = descendant(s, cur);
      if (d < 0) break;
      branch.emplace_back(s + 1, d);
      cur = d;
    }
    return branch;
  }

  /// Number of mergers (halos with ≥2 progenitors) arriving at `step`.
  std::size_t mergers_at(std::size_t step) const {
    std::map<std::int64_t, std::size_t> progenitor_count;
    for (const auto& l : links_)
      if (l.step + 1 == step) ++progenitor_count[l.descendant];
    std::size_t m = 0;
    for (const auto& [id, n] : progenitor_count)
      if (n >= 2) ++m;
    return m;
  }

 private:
  std::map<std::size_t, std::vector<TrackedHalo>> snapshots_;
  std::vector<MergerLink> links_;
};

}  // namespace cosmo::stats
