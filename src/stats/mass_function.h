// Halo mass function — the Fig. 3 data product.
//
// Log-binned halo counts as a function of mass (particle count), split at
// the in-situ/off-line threshold: the paper's red histogram (halos fully
// analyzed in-situ) vs the blue one (halos off-loaded for off-line center
// finding).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/catalog.h"
#include "util/histogram.h"

namespace cosmo::stats {

struct MassFunction {
  std::vector<double> bin_lo;             ///< particle-count bin edges
  std::vector<double> bin_hi;
  std::vector<std::uint64_t> in_situ;     ///< halos ≤ threshold per bin
  std::vector<std::uint64_t> off_loaded;  ///< halos > threshold per bin
  std::uint64_t total_halos = 0;
  std::uint64_t total_off_loaded = 0;
};

/// Builds the split mass function from a halo catalog.
inline MassFunction mass_function(const HaloCatalog& catalog,
                                  std::uint64_t split_threshold,
                                  std::size_t bins = 24, double lo = 10.0,
                                  double hi = 1e8) {
  LogHistogram small(lo, hi, bins), large(lo, hi, bins);
  MassFunction mf;
  for (const auto& h : catalog) {
    ++mf.total_halos;
    if (h.count > split_threshold) {
      ++mf.total_off_loaded;
      large.add(static_cast<double>(h.count));
    } else {
      small.add(static_cast<double>(h.count));
    }
  }
  for (std::size_t b = 0; b < bins; ++b) {
    if (small.count(b) == 0 && large.count(b) == 0) continue;
    mf.bin_lo.push_back(small.bin_lo(b));
    mf.bin_hi.push_back(small.bin_hi(b));
    mf.in_situ.push_back(small.count(b));
    mf.off_loaded.push_back(large.count(b));
  }
  return mf;
}

}  // namespace cosmo::stats
