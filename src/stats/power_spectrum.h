// Density fluctuation power spectrum — the paper's flagship "efficient
// in-situ task" (§1): CIC density estimation on a uniform grid plus a very
// large FFT, both well load-balanced, so it ran every few timesteps of the
// production simulations.
//
// Uses the same discrete conventions as the IC generator (ic.h):
// P_meas(k) = ⟨|δ̂_k|²⟩ V / N², binned in spherical |k| shells, with the
// CIC window deconvolved and (optionally) the 1/n̄ shot noise subtracted.
#pragma once

#include <cmath>
#include <cstddef>
#include <numbers>
#include <vector>

#include "comm/comm.h"
#include "dpp/primitives.h"
#include "fft/distributed_fft.h"
#include "fft/fft.h"
#include "sim/particles.h"
#include "sim/pm_solver.h"
#include "util/error.h"

namespace cosmo::stats {

struct PowerSpectrumConfig {
  std::size_t grid = 64;          ///< FFT grid per dimension
  std::size_t bins = 16;          ///< |k| bins between k_fund and k_Nyquist
  bool subtract_shot_noise = true;
  bool deconvolve_cic = true;
  /// Backend for the CIC deposit (dpp::deposit_reduce via PmSolver): the
  /// measured spectrum is bit-identical either way, so an in-situ
  /// measurement can share the pool with co-scheduled analysis ranks.
  dpp::Backend backend = dpp::Backend::Serial;
  /// Transpose exchange strategy for the measurement FFT. The binned
  /// spectrum is bit-identical across modes (the transposes are pure data
  /// movement), so in-situ callers default to the overlapping path.
  fft::DistributedFft::ExchangeMode fft_exchange =
      fft::DistributedFft::ExchangeMode::Pipelined;
};

struct PowerSpectrum {
  std::vector<double> k;        ///< bin-averaged |k| (h/Mpc)
  std::vector<double> power;    ///< P(k) in (Mpc/h)³
  std::vector<std::uint64_t> modes;  ///< modes per bin
};

/// Measures P(k) of the rank-distributed particle set. Collective call.
/// `particles` must already be distributed by the slab decomposition
/// matching the communicator.
inline PowerSpectrum measure_power_spectrum(comm::Comm& comm,
                                            const sim::ParticleSet& particles,
                                            double box,
                                            std::uint64_t total_particles,
                                            const PowerSpectrumConfig& cfg) {
  COSMO_REQUIRE(total_particles > 0, "power spectrum of an empty universe");
  const std::size_t ng = cfg.grid;
  fft::DistributedFft dfft(comm, ng);
  dfft.set_backend(cfg.backend);
  dfft.set_exchange_mode(cfg.fft_exchange);
  const std::size_t nzl = dfft.slab_thickness();

  // CIC overdensity on the slab (reuse the PM deposit machinery — the
  // parallel scatter-reduce deposit included, per cfg.backend).
  sim::Cosmology cosmo;  // deposit only needs geometry, not parameters
  sim::PmSolver pm(comm, cosmo, ng, box);
  pm.set_backend(cfg.backend);
  const double mean_per_cell =
      static_cast<double>(total_particles) /
      (static_cast<double>(ng) * static_cast<double>(ng) * static_cast<double>(ng));
  sim::SlabField delta = pm.deposit_density(particles, mean_per_cell);

  std::vector<fft::Complex> slab(dfft.local_size());
  for (long zl = 0; zl < static_cast<long>(nzl); ++zl)
    for (std::size_t y = 0; y < ng; ++y)
      for (std::size_t x = 0; x < ng; ++x)
        slab[(static_cast<std::size_t>(zl) * ng + y) * ng + x] =
            fft::Complex(delta.at(x, y, zl), 0.0);
  dfft.forward(slab);

  const double volume = box * box * box;
  const double n_total = static_cast<double>(ng) * static_cast<double>(ng) *
                         static_cast<double>(ng);
  const double kfun = 2.0 * std::numbers::pi / box;
  const double knyq = kfun * static_cast<double>(ng) / 2.0;
  const double shot = volume / static_cast<double>(total_particles);

  std::vector<double> psum(cfg.bins, 0.0);
  std::vector<double> ksum(cfg.bins, 0.0);
  std::vector<std::uint64_t> count(cfg.bins, 0);

  const std::size_t ky0 = dfft.slab_start();
  for (std::size_t kyl = 0; kyl < nzl; ++kyl) {
    const long my = fft::freq_index(ky0 + kyl, ng);
    for (std::size_t kx = 0; kx < ng; ++kx) {
      const long mx = fft::freq_index(kx, ng);
      for (std::size_t kz = 0; kz < ng; ++kz) {
        const long mz = fft::freq_index(kz, ng);
        if (mx == 0 && my == 0 && mz == 0) continue;
        const double kxv = kfun * static_cast<double>(mx);
        const double kyv = kfun * static_cast<double>(my);
        const double kzv = kfun * static_cast<double>(mz);
        const double k = std::sqrt(kxv * kxv + kyv * kyv + kzv * kzv);
        if (k < kfun || k >= knyq) continue;
        const auto b = static_cast<std::size_t>((k - kfun) / (knyq - kfun) *
                                                static_cast<double>(cfg.bins));
        if (b >= cfg.bins) continue;
        double p = std::norm(slab[(kyl * ng + kx) * ng + kz]) * volume /
                   (n_total * n_total);
        if (cfg.deconvolve_cic) {
          // CIC window: W(k) = Π sinc²(π m / (2·n_g/2)) per axis, squared in
          // power → divide by W².
          auto sinc = [](double x) { return x == 0.0 ? 1.0 : std::sin(x) / x; };
          const double half = std::numbers::pi / static_cast<double>(ng);
          const double w = sinc(half * static_cast<double>(mx)) *
                           sinc(half * static_cast<double>(my)) *
                           sinc(half * static_cast<double>(mz));
          const double w2 = w * w;
          p /= (w2 * w2);  // CIC = squared NGP window
        }
        if (cfg.subtract_shot_noise) p -= shot;
        psum[b] += p;
        ksum[b] += k;
        ++count[b];
      }
    }
  }

  // Combine across ranks.
  auto psum_all = comm.allreduce<double>(psum, comm::ReduceOp::Sum);
  auto ksum_all = comm.allreduce<double>(ksum, comm::ReduceOp::Sum);
  auto count_all = comm.allreduce<std::uint64_t>(count, comm::ReduceOp::Sum);

  PowerSpectrum out;
  for (std::size_t b = 0; b < cfg.bins; ++b) {
    if (count_all[b] == 0) continue;
    out.k.push_back(ksum_all[b] / static_cast<double>(count_all[b]));
    out.power.push_back(psum_all[b] / static_cast<double>(count_all[b]));
    out.modes.push_back(count_all[b]);
  }
  return out;
}

}  // namespace cosmo::stats
