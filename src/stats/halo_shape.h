// Halo shapes — the third Level 3 property the paper names ("properties of
// halos, including halo centers, shapes, and subhalo populations", §3).
//
// Shape is the standard reduced-inertia-tensor measure: the eigenvalues of
// I_jk = Σ x_j x_k (about the halo center, minimum-image) give the squared
// principal axes a ≥ b ≥ c; the axis ratios b/a and c/a quantify
// triaxiality (1,1 = sphere; →0 = filamentary). Eigenvalues come from a
// cyclic Jacobi rotation — exact for a symmetric 3×3 and dependency-free.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "dpp/primitives.h"
#include "sim/particles.h"
#include "util/error.h"

namespace cosmo::stats {

/// Symmetric 3×3 eigen-solver (cyclic Jacobi). Returns eigenvalues in
/// descending order. Exposed for testing.
inline std::array<double, 3> symmetric_eigenvalues_3x3(double a00, double a01,
                                                       double a02, double a11,
                                                       double a12, double a22) {
  double m[3][3] = {{a00, a01, a02}, {a01, a11, a12}, {a02, a12, a22}};
  for (int sweep = 0; sweep < 50; ++sweep) {
    // Largest off-diagonal element.
    double off = std::abs(m[0][1]);
    int p = 0, q = 1;
    if (std::abs(m[0][2]) > off) {
      off = std::abs(m[0][2]);
      p = 0;
      q = 2;
    }
    if (std::abs(m[1][2]) > off) {
      off = std::abs(m[1][2]);
      p = 1;
      q = 2;
    }
    if (off < 1e-14 * (std::abs(m[0][0]) + std::abs(m[1][1]) + std::abs(m[2][2]) + 1e-300))
      break;
    // Jacobi rotation annihilating m[p][q].
    const double theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
    const double t = (theta >= 0 ? 1.0 : -1.0) /
                     (std::abs(theta) + std::sqrt(theta * theta + 1.0));
    const double c = 1.0 / std::sqrt(t * t + 1.0);
    const double s = t * c;
    const double mpp = m[p][p], mqq = m[q][q], mpq = m[p][q];
    m[p][p] = c * c * mpp - 2.0 * s * c * mpq + s * s * mqq;
    m[q][q] = s * s * mpp + 2.0 * s * c * mpq + c * c * mqq;
    m[p][q] = m[q][p] = 0.0;
    const int r = 3 - p - q;
    const double mrp = m[r][p], mrq = m[r][q];
    m[r][p] = m[p][r] = c * mrp - s * mrq;
    m[r][q] = m[q][r] = s * mrp + c * mrq;
  }
  std::array<double, 3> ev{m[0][0], m[1][1], m[2][2]};
  std::sort(ev.begin(), ev.end(), std::greater<>());
  return ev;
}

struct HaloShape {
  double a = 0, b = 0, c = 0;  ///< principal axis lengths, a ≥ b ≥ c
  double b_over_a = 0;
  double c_over_a = 0;
  /// Triaxiality T = (a²−b²)/(a²−c²); 0 = oblate, 1 = prolate.
  double triaxiality = 0;
};

/// Computes the shape of a halo's members about (cx, cy, cz). The inertia
/// tensor accumulates per block of the same deterministic decomposition on
/// both backends (Serial walks the identical blocks sequentially), with
/// partials folded in ascending block order — so the tensor, and therefore
/// the axis ratios, are bit-identical Serial ≡ ThreadPool at every grain.
inline HaloShape halo_shape(const sim::ParticleSet& p,
                            std::span<const std::uint32_t> members, double cx,
                            double cy, double cz, double box = 0.0,
                            dpp::Backend backend = dpp::Backend::Serial,
                            std::size_t grain = 0) {
  COSMO_REQUIRE(members.size() >= 4, "shape needs at least four particles");
  auto fold = [&](double d) {
    if (box <= 0.0) return d;
    if (d > 0.5 * box) d -= box;
    if (d < -0.5 * box) d += box;
    return d;
  };
  struct Tensor {
    double i00 = 0, i01 = 0, i02 = 0, i11 = 0, i12 = 0, i22 = 0;
  };
  const dpp::detail::BlockDecomposition blocks(members.size(), grain);
  std::vector<Tensor> partial(blocks.num_blocks);
  dpp::for_each_index(
      backend, blocks.num_blocks,
      [&](std::size_t blk) {
        Tensor t;
        const std::size_t hi = blocks.hi(blk, members.size());
        for (std::size_t k = blocks.lo(blk); k < hi; ++k) {
          const std::uint32_t i = members[k];
          const double dx = fold(p.x[i] - cx);
          const double dy = fold(p.y[i] - cy);
          const double dz = fold(p.z[i] - cz);
          t.i00 += dx * dx;
          t.i01 += dx * dy;
          t.i02 += dx * dz;
          t.i11 += dy * dy;
          t.i12 += dy * dz;
          t.i22 += dz * dz;
        }
        partial[blk] = t;
      },
      /*grain=*/1);
  Tensor sum;
  for (const auto& t : partial) {
    sum.i00 += t.i00;
    sum.i01 += t.i01;
    sum.i02 += t.i02;
    sum.i11 += t.i11;
    sum.i12 += t.i12;
    sum.i22 += t.i22;
  }
  const double n = static_cast<double>(members.size());
  auto ev = symmetric_eigenvalues_3x3(sum.i00 / n, sum.i01 / n, sum.i02 / n,
                                      sum.i11 / n, sum.i12 / n, sum.i22 / n);
  HaloShape s;
  s.a = std::sqrt(std::max(ev[0], 0.0));
  s.b = std::sqrt(std::max(ev[1], 0.0));
  s.c = std::sqrt(std::max(ev[2], 0.0));
  if (s.a > 0.0) {
    s.b_over_a = s.b / s.a;
    s.c_over_a = s.c / s.a;
    const double denom = s.a * s.a - s.c * s.c;
    s.triaxiality = denom > 1e-30 ? (s.a * s.a - s.b * s.b) / denom : 0.0;
  }
  return s;
}

}  // namespace cosmo::stats
