// Halo catalogs — the Level 3 data product — and their reconciliation.
//
// The combined workflow produces halo properties from two places: centers of
// small/medium halos computed in-situ, and centers of off-loaded large halos
// computed off-line (on "Moonlight"). The final step of Fig. 1 merges the
// two partial catalogs into one complete, de-duplicated catalog; this module
// provides the record type, (de)serialization for transport/files, and the
// merge with its disjointness checks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/error.h"

namespace cosmo::stats {

/// One halo's Level 3 properties. Trivially copyable for transport.
struct HaloRecord {
  std::int64_t id = 0;          ///< minimum particle tag (global, stable)
  std::uint64_t count = 0;      ///< FOF particle count
  float cx = 0, cy = 0, cz = 0; ///< MBP center position
  float potential = 0;          ///< potential at the center
  float so_mass = 0;            ///< spherical-overdensity mass (0 if not run)
  float so_radius = 0;
  float concentration = 0;      ///< NFW concentration (0 if not run)
  float b_over_a = 0;           ///< shape axis ratios (0 if not run)
  float c_over_a = 0;
  std::uint32_t subhalos = 0;   ///< subhalo count (0 if not run)
};
static_assert(std::is_trivially_copyable_v<HaloRecord>);

using HaloCatalog = std::vector<HaloRecord>;

/// Sorts by halo id (the canonical catalog order).
inline void sort_catalog(HaloCatalog& c) {
  std::sort(c.begin(), c.end(),
            [](const HaloRecord& a, const HaloRecord& b) { return a.id < b.id; });
}

/// Merges the in-situ and off-line partial catalogs into the complete one.
/// The parts must be disjoint by id (each halo is analyzed exactly once —
/// the invariant the in-situ/off-line split is built on).
inline HaloCatalog reconcile_catalogs(const HaloCatalog& in_situ_part,
                                      const HaloCatalog& off_line_part) {
  HaloCatalog merged;
  merged.reserve(in_situ_part.size() + off_line_part.size());
  merged.insert(merged.end(), in_situ_part.begin(), in_situ_part.end());
  merged.insert(merged.end(), off_line_part.begin(), off_line_part.end());
  sort_catalog(merged);
  for (std::size_t i = 1; i < merged.size(); ++i)
    COSMO_REQUIRE(merged[i].id != merged[i - 1].id,
                  "halo analyzed by both the in-situ and off-line paths");
  return merged;
}

/// Serializes to bytes (for CosmoIO blocks and staging buffers).
inline std::vector<std::byte> catalog_to_bytes(const HaloCatalog& c) {
  std::vector<std::byte> out(c.size() * sizeof(HaloRecord));
  if (!c.empty()) std::memcpy(out.data(), c.data(), out.size());
  return out;
}

inline HaloCatalog catalog_from_bytes(std::span<const std::byte> bytes) {
  COSMO_REQUIRE(bytes.size() % sizeof(HaloRecord) == 0,
                "catalog byte stream has invalid length");
  HaloCatalog c(bytes.size() / sizeof(HaloRecord));
  if (!c.empty()) std::memcpy(c.data(), bytes.data(), bytes.size());
  return c;
}

/// Summary statistics used by the experiment harness.
struct CatalogSummary {
  std::uint64_t halos = 0;
  std::uint64_t particles_in_halos = 0;
  std::uint64_t largest = 0;
};

inline CatalogSummary summarize(const HaloCatalog& c) {
  CatalogSummary s;
  s.halos = c.size();
  for (const auto& h : c) {
    s.particles_in_halos += h.count;
    s.largest = std::max(s.largest, h.count);
  }
  return s;
}

}  // namespace cosmo::stats
