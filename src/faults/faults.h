// Deterministic fault injection: a process-wide, seeded fault plan.
//
// Production co-scheduling workflows fail in many small ways — a dropped
// message, a partial Lustre write, a poll the Listener missed, a batch job
// that dies and must be requeued. The recovery policies layered on top
// (retry, fallback-to-filesystem, workflow degradation) are only trustworthy
// if the failure paths are exercised, and only testable if the failures are
// reproducible. This module provides both:
//
//   * `faults::Plan` — a seeded plan combining per-site probabilities with an
//     explicit schedule of (site, rank, occurrence) injections. Decisions are
//     pure hashes of (seed, site, rank, occurrence), never a shared
//     sequential RNG stream, so they are independent of thread interleaving:
//     a site whose per-rank call sequence is deterministic injects the exact
//     same faults on every run with the same seed.
//   * `COSMO_FAULT_POINT("site")` — the hot-path query, compiled out to a
//     constant `false` under COSMO_FAULTS_DISABLED (mirroring the obs
//     macros), so release builds pay nothing.
//
// A plan is configured first, then armed with `ScopedPlan`; every injection
// is logged as (site, rank, occurrence) and counted under `faults.injected`,
// which is what makes failing runs replayable from their seed.
//
// Occurrence counters are keyed per (site, rank): rank identity comes from
// obs::current_rank() (SPMD rank threads), with -1 for rank-less threads
// (main thread, the Listener). Sites queried only from deterministic per-rank
// call sequences — comm sends, io writes, staging puts — replay bit-
// identically; wall-clock-paced sites (listener.poll) have deterministic
// *behavior* per decision but timing-dependent occurrence counts, so replay
// assertions should stick to scheduled injections there.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/context.h"
#include "obs/obs.h"
#include "util/error.h"

namespace cosmo::faults {

/// Wildcard rank for scheduled injections: fires at the given occurrence on
/// every rank's counter. (Rank -1 is the real identity of rank-less threads,
/// so the wildcard must live outside the valid rank range.)
inline constexpr int kAnyRank = -2;

namespace detail {

/// FNV-1a over the site name; stable across runs and platforms.
inline constexpr std::uint64_t site_hash(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// splitmix64-style finalizer; decorrelates nearby inputs.
inline constexpr std::uint64_t mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// The per-decision coin: a pure function of plan seed + injection site +
/// rank + occurrence index, so the outcome is independent of when (or on
/// which thread) the decision is evaluated.
inline constexpr std::uint64_t decision_hash(std::uint64_t seed,
                                             std::uint64_t site,
                                             int rank,
                                             std::uint64_t occurrence) {
  std::uint64_t h = mix(seed ^ site);
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(rank)));
  return mix(h ^ occurrence);
}

}  // namespace detail

/// One injected fault, as recorded in the plan's log.
struct Injection {
  std::string site;
  int rank = -1;
  std::uint64_t occurrence = 0;

  friend bool operator==(const Injection&, const Injection&) = default;
  friend auto operator<=>(const Injection&, const Injection&) = default;
};

/// Key for an explicitly scheduled injection: "fail the `occurrence`-th
/// query of `site` on `rank`" (kAnyRank = on every rank).
struct FaultKey {
  std::string site;
  std::uint64_t occurrence = 0;
  int rank = kAnyRank;
};

/// Convenience builder mirroring the obs macro style:
/// `plan.schedule(faults::at("comm.send", 3, 0))`.
inline FaultKey at(std::string site, std::uint64_t occurrence,
                   int rank = kAnyRank) {
  return FaultKey{std::move(site), occurrence, rank};
}

/// A seeded fault plan. Configure (set_rate / set_param / schedule), then arm
/// it with ScopedPlan; configuration must not change while armed.
class Plan {
 public:
  explicit Plan(std::uint64_t seed = 0) : seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Inject at `site` with the given probability per query; `max_injections`
  /// caps the total fired at that site (default: unlimited). Note the cap is
  /// claimed in query order, so a capped probabilistic site shared by
  /// concurrent threads is not replay-deterministic — prefer uncapped rates
  /// or scheduled keys when asserting exact logs.
  void set_rate(std::string_view site, double probability,
                std::uint64_t max_injections = ~std::uint64_t{0}) {
    COSMO_REQUIRE(probability >= 0.0 && probability <= 1.0,
                  "fault probability outside [0, 1]");
    std::lock_guard<std::mutex> lock(mutex_);
    auto& st = sites_[std::string(site)];
    st.probability = probability;
    st.max_injections = max_injections;
  }

  /// Attach an integer parameter to a site (e.g. a delay in ms or a slowdown
  /// factor), read back at the fault point via COSMO_FAULT_PARAM.
  void set_param(std::string_view site, std::uint64_t value) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& st = sites_[std::string(site)];
    st.param = value;
    st.has_param = true;
  }

  /// Schedule an explicit injection.
  void schedule(const FaultKey& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    sites_[key.site].scheduled.insert({key.rank, key.occurrence});
  }

  /// The hot-path query: bumps the caller's (site, rank) occurrence counter
  /// and decides — scheduled hit, or probability coin from the decision
  /// hash. Called via COSMO_FAULT_POINT, never directly from library code.
  bool should_inject(std::string_view site) {
    const int rank = obs::current_rank();
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    auto& st = it->second;
    const std::uint64_t occ = st.next_occurrence[rank]++;
    bool fire = st.scheduled.count({rank, occ}) != 0 ||
                st.scheduled.count({kAnyRank, occ}) != 0;
    if (!fire && st.probability > 0.0) {
      const std::uint64_t coin =
          detail::decision_hash(seed_, detail::site_hash(site), rank, occ);
      fire = static_cast<double>(coin) * 0x1.0p-64 < st.probability;
    }
    if (!fire || st.injected >= st.max_injections) return false;
    ++st.injected;
    log_.push_back(Injection{std::string(site), rank, occ});
    COSMO_COUNT("faults.injected", 1);
    return true;
  }

  /// Site parameter, or `fallback` if the site has none configured.
  std::uint64_t param(std::string_view site, std::uint64_t fallback) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sites_.find(site);
    if (it == sites_.end() || !it->second.has_param) return fallback;
    return it->second.param;
  }

  /// Total faults fired so far.
  std::uint64_t injected_total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return log_.size();
  }

  /// Sorted snapshot of the injection log: the replay artifact. Two runs of
  /// a deterministic workload under equal plans produce equal logs.
  std::vector<Injection> injections() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Injection> out = log_;
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Pure jitter helper: hash of (seed, name, attempt) reduced modulo
  /// `bound`. Used by util::Retry so backoff jitter replays with the plan.
  static std::uint64_t jitter_for(std::uint64_t seed, std::string_view name,
                                  std::uint64_t attempt, std::uint64_t bound) {
    if (bound <= 1) return 0;
    return detail::mix(detail::decision_hash(seed, detail::site_hash(name),
                                             kAnyRank, attempt)) %
           bound;
  }

 private:
  struct SiteState {
    double probability = 0.0;
    std::uint64_t max_injections = ~std::uint64_t{0};
    std::uint64_t param = 0;
    bool has_param = false;
    std::uint64_t injected = 0;
    // (rank, occurrence) pairs scheduled to fire; kAnyRank matches all.
    std::set<std::pair<int, std::uint64_t>> scheduled;
    std::map<int, std::uint64_t> next_occurrence;
  };

  mutable std::mutex mutex_;
  std::uint64_t seed_;
  std::map<std::string, SiteState, std::less<>> sites_;
  std::vector<Injection> log_;
};

namespace detail {
inline std::atomic<Plan*>& active_slot() {
  static std::atomic<Plan*> slot{nullptr};
  return slot;
}
}  // namespace detail

/// The armed plan, or nullptr (the common case: zero faults).
inline Plan* active_plan() {
  return detail::active_slot().load(std::memory_order_acquire);
}

/// Arms a plan for the current scope; restores the previous plan (usually
/// none) on destruction. The plan must outlive the scope and must not be
/// reconfigured while armed.
class ScopedPlan {
 public:
  explicit ScopedPlan(Plan& plan)
      : previous_(detail::active_slot().exchange(&plan,
                                                std::memory_order_acq_rel)) {}

  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;

  ~ScopedPlan() {
    detail::active_slot().store(previous_, std::memory_order_release);
  }

 private:
  Plan* previous_;
};

/// Free-function form of the fault-point query (null-plan fast path).
inline bool should_inject(std::string_view site) {
  Plan* plan = active_plan();
  return plan != nullptr && plan->should_inject(site);
}

/// Free-function form of the parameter lookup.
inline std::uint64_t site_param(std::string_view site, std::uint64_t fallback) {
  const Plan* plan = active_plan();
  return plan != nullptr ? plan->param(site, fallback) : fallback;
}

/// Deterministic jitter in [0, bound) from the armed plan's seed (seed 0
/// when no plan is armed, so the sequence is still reproducible).
inline std::uint64_t jitter(std::string_view name, std::uint64_t attempt,
                            std::uint64_t bound) {
  const Plan* plan = active_plan();
  return Plan::jitter_for(plan != nullptr ? plan->seed() : 0, name, attempt,
                          bound);
}

}  // namespace cosmo::faults

// Fault-point macros. Injection sites in library code use these, never the
// free functions directly, so COSMO_FAULTS_DISABLED can compile every site
// down to a constant and dead-code-eliminate the failure branches.
#ifndef COSMO_FAULTS_DISABLED

/// True when the armed plan injects a fault at `site` for this query.
#define COSMO_FAULT_POINT(site) (::cosmo::faults::should_inject(site))

/// Integer parameter attached to `site` in the armed plan, else `fallback`.
#define COSMO_FAULT_PARAM(site, fallback) \
  (::cosmo::faults::site_param(site, (fallback)))

#else

#define COSMO_FAULT_POINT(site) (false)
#define COSMO_FAULT_PARAM(site, fallback) \
  (static_cast<std::uint64_t>(fallback))

#endif  // COSMO_FAULTS_DISABLED
