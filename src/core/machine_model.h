// Machine models and the Q Continuum cost accounting (§4.1).
//
// The paper's headline number — the combined workflow is 6.5× cheaper than
// a pure in-situ/off-line analysis of the Q Continuum's final snapshot —
// comes from an explicit accounting over machine parameters (Titan's
// 30 core-hours/node-hour charge, the 0.55 Titan/Moonlight speed ratio, the
// ~50× GPU/CPU center-finder speedup) and measured per-task times. This
// module encodes that accounting as a deterministic calculation so the
// bench can regenerate it from the published parameters and from our own
// calibrated kernel costs.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/split_tuner.h"
#include "sched/batch_scheduler.h"
#include "util/error.h"

namespace cosmo::core {

/// Parameters of the Q Continuum final-snapshot analysis (§4.1).
struct QContinuumScenario {
  std::uint64_t particles = 549755813888ull;  ///< 8192³
  int sim_nodes = 16384;
  double charge_per_node_hour = 30.0;   ///< Titan
  double halo_finding_hours = 1.0;      ///< "approximately one hour"
  double small_center_minutes = 1.1;    ///< "just over one minute"
  double offline_node_hours_moonlight = 1770.0;
  double titan_over_moonlight = 0.55;   ///< Titan time = 0.55 × Moonlight
  double slowest_block_hours = 5.9;     ///< drives the full in-situ cost
  double small_medium_core_hours = 0.5e6;  ///< halo finding + small centers
  double io_redistribute_core_hours = 0.16e6;  ///< per analysis step
};

struct QContinuumAccounting {
  double combined_core_hours = 0.0;   ///< the workflow the paper ran
  double insitu_only_core_hours = 0.0;  ///< slowest-block-bound alternative
  double cost_ratio = 0.0;            ///< in-situ-only / combined (≈ 6.5)
  double offline_core_hours = 0.0;    ///< Titan-equivalent off-load cost
};

/// Reproduces the §4.1 arithmetic.
inline QContinuumAccounting qcontinuum_accounting(const QContinuumScenario& s) {
  QContinuumAccounting a;
  // Off-loaded center finding: 1770 Moonlight node-hours → ×0.55 on Titan
  // → ~985 node-hours → ~30k core-hours at 30 cores*/node-hour.
  const double titan_node_hours =
      s.offline_node_hours_moonlight * s.titan_over_moonlight;
  a.offline_core_hours = titan_node_hours * s.charge_per_node_hour;
  // Combined = 0.5M (halo finding + small/medium centers) + off-load.
  a.combined_core_hours = s.small_medium_core_hours + a.offline_core_hours;
  // Full in-situ (or off-line): bounded by the slowest block, plus halo
  // identification, on all 16,384 nodes.
  a.insitu_only_core_hours = (s.slowest_block_hours + s.halo_finding_hours) *
                             s.sim_nodes * s.charge_per_node_hour;
  a.cost_ratio = a.insitu_only_core_hours / a.combined_core_hours;
  return a;
}

/// Projects a measured local kernel time onto a target machine: the paper's
/// machine-to-machine scalings are pure multiplicative factors
/// (GPU ≈ 50× CPU for the PISTON center finder; Titan = 0.55 × Moonlight).
struct SpeedupModel {
  double gpu_over_cpu = 50.0;      ///< §4.1: "approximately a factor of fifty"
  double astar_over_brute = 8.0;   ///< §3.3.2: A* ≈ 8× serial brute force

  double project(double local_seconds, double local_speed,
                 double target_speed) const {
    COSMO_REQUIRE(local_speed > 0.0 && target_speed > 0.0,
                  "machine speeds must be positive");
    return local_seconds * local_speed / target_speed;
  }
};

}  // namespace cosmo::core
