// Multi-timestep analysis campaigns — the production shape of the combined
// co-scheduled workflow.
//
// Table 4's caption is explicit: in production "a 4-node job for each
// timestep [is] queued as data is available", overlapping both the
// simulation and each other; the paper's full runs stored 100 snapshots.
// The CampaignRunner executes that loop for real: the simulation job steps
// through a sequence of snapshots (clustering grows step to step), the
// in-situ part runs inside each step and emits the step's Level 2 file +
// trigger, the Listener fires mid-run, and each trigger launches a real
// analysis job on its own thread — analysis of step k overlaps simulation
// of step k+1, exactly the co-scheduling overlap the paper is after.
// "Pile-up" (§3.2) is tolerated and measured: triggers can outpace analysis.
#pragma once

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/workflows.h"
#include "obs/obs.h"
#include "sched/listener.h"
#include "util/timer.h"

namespace cosmo::core {

struct CampaignConfig {
  WorkflowProblem base;            ///< analysis settings + rank counts
  std::size_t timesteps = 4;
  /// Clustering growth: the max halo mass multiplies by this every step
  /// (structure forms over time, so later steps have heavier tails).
  double growth_per_step = 1.6;
};

struct StepOutcome {
  std::size_t step = 0;
  stats::HaloCatalog catalog;       ///< complete reconciled catalog
  double insitu_analysis_s = 0.0;   ///< max over ranks
  double offline_analysis_s = 0.0;
  std::uint64_t deferred_halos = 0;
  double trigger_to_done_s = 0.0;   ///< analysis-job turnaround
  /// True when the co-scheduled analysis never delivered (dead-lettered
  /// submit or failed job) and the step fell back to in-situ analysis.
  bool degraded = false;
};

struct CampaignResult {
  std::vector<StepOutcome> steps;
  double wall_clock_s = 0.0;          ///< whole campaign, overlapped
  double sim_job_s = 0.0;             ///< simulation job duration
  std::uint64_t listener_triggers = 0;
  std::uint64_t listener_polls = 0;
  std::size_t max_concurrent_analysis = 0;  ///< observed overlap/pile-up
  // Recovery bookkeeping (zero on a fault-free campaign).
  std::uint64_t degraded_steps = 0;
  std::uint64_t dead_letter_submits = 0;
  std::uint64_t analysis_job_failures = 0;
};

/// Runs a co-scheduled campaign. The per-step universe uses the base seed
/// plus the step index, with max_particles growing by growth_per_step — a
/// stand-in for evolving one simulation through its output cadence.
inline CampaignResult run_campaign(const CampaignConfig& cfg) {
  namespace fs = std::filesystem;
  COSMO_REQUIRE(cfg.timesteps >= 1, "campaign needs at least one step");
  COSMO_REQUIRE(cfg.base.threshold > 0,
                "campaign runs the combined workflow; set a split threshold");
  fs::create_directories(cfg.base.workdir);

  CampaignResult result;
  result.steps.resize(cfg.timesteps);
  std::mutex result_mutex;

  // Per-step universe configs (deterministic).
  std::vector<sim::SyntheticConfig> universes(cfg.timesteps);
  for (std::size_t s = 0; s < cfg.timesteps; ++s) {
    universes[s] = cfg.base.universe;
    universes[s].seed = cfg.base.universe.seed + s;
    universes[s].max_particles = static_cast<std::size_t>(
        static_cast<double>(cfg.base.universe.max_particles) *
        std::pow(cfg.growth_per_step,
                 static_cast<double>(s) -
                     static_cast<double>(cfg.timesteps - 1)));
    if (universes[s].max_particles < universes[s].min_particles)
      universes[s].max_particles = universes[s].min_particles;
  }

  // The analysis side: one real job per trigger, each on its own thread.
  std::vector<std::thread> analysis_jobs;
  std::mutex jobs_mutex;
  std::atomic<int> running_analysis{0};
  std::atomic<std::size_t> peak_running{0};
  obs::TimedSpan campaign_timer("campaign.wall_clock", "campaign");

  // Tracks which steps the co-scheduled path actually delivered; anything
  // still pending after the drain is absorbed by the in-situ fallback.
  std::vector<std::uint8_t> offline_done(cfg.timesteps, 0);
  std::atomic<std::uint64_t> job_failures{0};

  // Off-line analysis of one step's Level 2 files on `ranks` ranks with the
  // given backend — the co-scheduled job normally, the in-situ fallback
  // when a step degrades. Returns (catalog part, worst-rank seconds).
  auto offline_analysis_for_step = [&](std::size_t step, int ranks,
                                       dpp::Backend backend) {
    const auto problem = [&] {
      WorkflowProblem p = cfg.base;
      p.universe = universes[step];
      return p;
    }();
    stats::HaloCatalog offline;
    double offline_s = 0.0;
    comm::run_spmd(ranks, [&](comm::Comm& c) {
      std::vector<sim::ParticleSet> halos;
      bool read_failed = false;
      try {
        for (int src = 0; src < problem.ranks; ++src) {
          if (src % c.size() != c.rank()) continue;
          const auto path = io::aggregated_file_path(
              problem.workdir / ("level2.step" + std::to_string(step)), src);
          io::CosmoIoReader reader(path);
          for (std::uint32_t b = 0; b < reader.num_blocks(); ++b)
            halos.push_back(reader.read_block(b));
        }
      } catch (const std::exception&) {
        // A rank that lost its reads must not abandon its peers mid-
        // collective (they would block forever in the allgather below).
        // Record the failure and agree on it first; then every rank throws
        // together and the job dies cleanly.
        read_failed = true;
        halos.clear();
      }
      const int any_failed =
          c.allreduce_value(read_failed ? 1 : 0, comm::ReduceOp::Max);
      COSMO_REQUIRE(any_failed == 0,
                    "Level 2 read failed on an analysis rank");
      // Share all halos (Level 2 "redistribution").
      std::vector<std::size_t> counts;
      const auto buf = detail::pack_halos(halos);
      auto gathered = c.allgatherv<std::byte>(buf, &counts);
      std::vector<sim::ParticleSet> all;
      std::size_t off = 0;
      for (const auto len : counts) {
        auto seg = std::span<const std::byte>(gathered).subspan(off, len);
        for (auto& h : detail::unpack_halos(seg)) all.push_back(std::move(h));
        off += len;
      }
      obs::TimedSpan t("campaign.offline_analysis", "campaign");
      auto part = detail::analyze_level2(
          c, problem, backend, all,
          sim::synthetic_total_particles(problem.universe), nullptr);
      const double mine = t.finish();
      const double worst = c.allreduce_value(mine, comm::ReduceOp::Max);
      if (c.rank() == 0) {
        offline = std::move(part);
        offline_s = worst;
      }
    });
    return std::make_pair(std::move(offline), offline_s);
  };

  auto analysis_job = [&](std::size_t step) {
    const int now_running = ++running_analysis;
    std::size_t expected = peak_running.load();
    while (static_cast<std::size_t>(now_running) > expected &&
           !peak_running.compare_exchange_weak(
               expected, static_cast<std::size_t>(now_running))) {
    }
    obs::TimedSpan turnaround("campaign.analysis_job", "campaign");
    COSMO_COUNT("campaign.analysis_jobs", 1);
    try {
      auto [offline, offline_s] = offline_analysis_for_step(
          step, cfg.base.analysis_ranks, cfg.base.analysis_backend);
      std::lock_guard lock(result_mutex);
      auto& out = result.steps[step];
      out.offline_analysis_s = offline_s;
      out.trigger_to_done_s = turnaround.finish();
      out.catalog = stats::reconcile_catalogs(out.catalog, offline);
      offline_done[step] = 1;
    } catch (const std::exception&) {
      // The co-scheduled job died (injected I/O failure, lost delivery…).
      // Leave the step unreconciled; the post-drain fallback absorbs it.
      COSMO_COUNT("campaign.analysis_job_failures", 1);
      ++job_failures;
    }
    --running_analysis;
  };

  // Listener: trigger file name encodes the step.
  sched::Listener listener(
      {cfg.base.workdir, ".alldone", std::chrono::milliseconds(3)},
      [&](const fs::path& trigger) {
        // File: level2.step<k>.alldone
        const std::string name = trigger.filename().string();
        const auto pos = name.find("step");
        COSMO_REQUIRE(pos != std::string::npos, "unexpected trigger name");
        const std::size_t step = std::stoul(name.substr(pos + 4));
        std::lock_guard lock(jobs_mutex);
        analysis_jobs.emplace_back(analysis_job, step);
      });
  listener.start();

  // The simulation job: all timesteps in one SPMD run.
  obs::TimedSpan sim_timer("campaign.sim_job", "campaign");
  comm::run_spmd(cfg.base.ranks, [&](comm::Comm& c) {
    for (std::size_t s = 0; s < cfg.timesteps; ++s) {
      WorkflowProblem p = cfg.base;
      p.universe = universes[s];
      sim::Cosmology cosmo;
      auto u = sim::generate_synthetic(c, cosmo, p.universe);
      obs::TimedSpan t_analysis("campaign.insitu_analysis", "campaign");
      auto out = detail::run_insitu_pipeline(c, p, p.threshold, u.local,
                                             u.total_particles);
      const double analysis_s = t_analysis.finish();

      // Emit the step's Level 2 (one file per rank, one block per halo).
      // Retried whole-file on injected write failures: a partial file is
      // unfinalized and simply rewritten from the in-memory halos.
      const auto base = p.workdir / ("level2.step" + std::to_string(s));
      {
        util::Retry retry;
        const auto outcome = retry.run("campaign.level2_write", [&] {
          io::CosmoIoWriter w(io::aggregated_file_path(base, c.rank()),
                              {p.universe.box, 1.0, 0, 0});
          for (const auto& h : out.deferred)
            w.write_block(h, static_cast<std::uint32_t>(c.rank()));
          w.finalize();
          return true;
        });
        COSMO_REQUIRE(outcome.success, "Level 2 write failed after retries");
      }
      // All ranks' files must exist before the step trigger fires.
      c.barrier();
      const double worst = c.allreduce_value(analysis_s, comm::ReduceOp::Max);
      const auto deferred = c.allreduce_value<std::uint64_t>(
          out.deferred.size(), comm::ReduceOp::Sum);
      auto catalog = detail::gather_catalog(c, out.catalog_part);
      if (c.rank() == 0) {
        {
          std::lock_guard lock(result_mutex);
          auto& step_out = result.steps[s];
          step_out.step = s;
          step_out.insitu_analysis_s = worst;
          step_out.deferred_halos = deferred;
          step_out.catalog = std::move(catalog);  // in-situ part
        }
        std::ofstream(base.string() + ".alldone") << "ok\n";
      }
      c.barrier();
    }
  });
  result.sim_job_s = sim_timer.finish();

  // Drain: final listener sweep + join every analysis job.
  listener.wait_for_triggers(cfg.timesteps, std::chrono::milliseconds(10000));
  listener.stop();
  for (;;) {
    std::unique_lock lock(jobs_mutex);
    if (analysis_jobs.empty()) break;
    auto t = std::move(analysis_jobs.back());
    analysis_jobs.pop_back();
    lock.unlock();
    t.join();
  }
  result.listener_triggers = listener.stats().triggers;
  result.listener_polls = listener.stats().polls;
  result.dead_letter_submits = listener.stats().dead_letters;
  result.analysis_job_failures = job_failures.load();
  result.max_concurrent_analysis = peak_running.load();

  // Graceful degradation: any step the co-scheduled path never delivered
  // (dead-lettered submit, missed trigger, or failed analysis job) falls
  // back to in-situ analysis on the simulation job's own resources — the
  // paper's decision structure — and the downgrade is recorded.
  for (std::size_t s = 0; s < cfg.timesteps; ++s) {
    const bool done = [&] {
      std::lock_guard lock(result_mutex);
      return offline_done[s] != 0;
    }();
    if (done) continue;
    COSMO_COUNT("workflow.degraded", 1);
    COSMO_TRACE_SPAN_CAT("workflow.degraded_step", "faults");
    ++result.degraded_steps;
    auto [offline, offline_s] =
        offline_analysis_for_step(s, cfg.base.ranks, cfg.base.backend);
    std::lock_guard lock(result_mutex);
    auto& out = result.steps[s];
    out.degraded = true;
    out.offline_analysis_s = offline_s;
    out.catalog = stats::reconcile_catalogs(out.catalog, offline);
  }

  result.wall_clock_s = campaign_timer.finish();
  for (auto& s : result.steps) stats::sort_catalog(s.catalog);
  return result;
}

}  // namespace cosmo::core
