// Static (CRTP-style) analysis pipeline — the paper's §3.1 footnote made
// real.
//
// "There is a very small overhead for the virtual function calls, which
// could in principle be avoided by using the Curiously Recurring Template
// Pattern." This header provides that alternative: algorithms implement the
// same SetParameters / ShouldExecute / Execute interface as compile-time
// members (no virtual dispatch); StaticPipeline<Algos...> stores them by
// value in a tuple and unrolls the per-step loop at compile time. Any
// InSituAlgorithm subclass already satisfies the implicit interface, so the
// two styles can share algorithm implementations.
//
// The ablation bench (bench/ablation_dispatch.cpp) measures the difference
// the paper alludes to.
#pragma once

#include <cstddef>
#include <tuple>
#include <utility>

#include "core/cosmotools.h"

namespace cosmo::core {

/// Compile-time analysis pipeline over a fixed algorithm list.
template <typename... Algorithms>
class StaticPipeline {
 public:
  StaticPipeline() = default;
  explicit StaticPipeline(Algorithms... algorithms)
      : algorithms_(std::move(algorithms)...) {}

  static constexpr std::size_t size() { return sizeof...(Algorithms); }

  /// Configures each algorithm from its own config section (by Name()).
  void configure(const CosmoToolsConfig& config) {
    std::apply(
        [&](auto&... algorithm) {
          (algorithm.SetParameters(config.section(algorithm.Name())), ...);
        },
        algorithms_);
  }

  /// Runs every due algorithm in declaration order; statically dispatched.
  void execute_step(const sim::StepContext& step, AnalysisContext& ctx) {
    std::apply(
        [&](auto&... algorithm) {
          (run_one(algorithm, step, ctx), ...);
        },
        algorithms_);
  }

  /// Access an algorithm by type (for reading results back).
  template <typename T>
  T& get() {
    return std::get<T>(algorithms_);
  }
  template <typename T>
  const T& get() const {
    return std::get<T>(algorithms_);
  }

 private:
  template <typename T>
  static void run_one(T& algorithm, const sim::StepContext& step,
                      AnalysisContext& ctx) {
    if (algorithm.ShouldExecute(step)) algorithm.Execute(step, ctx);
  }

  std::tuple<Algorithms...> algorithms_;
};

}  // namespace cosmo::core
