// CosmoTools — the in-situ analysis framework (§3.1).
//
// Design principles as stated in the paper: minimally intrusive (the
// simulation's main loop makes one call per timestep), lightweight
// (algorithms operate directly on the simulation's distributed SoA arrays —
// "zero copy", no deep copies or redistribution), extensible (a pure
// abstract base class), and configurable from the problem setup.
//
// Every analysis task derives from InSituAlgorithm and implements:
//   SetParameters()  — configuration from the CosmoTools config section
//   ShouldExecute()  — cadence/trigger decision per timestep
//   Execute()        — the analysis itself
// The InSituAnalysisManager holds the registered algorithms and is the one
// object the simulation interacts with. The same algorithms are reusable
// from the stand-alone driver (workflows.h) for the off-line/co-scheduled
// paths, as the paper describes.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/comm.h"
#include "core/params.h"
#include "dpp/primitives.h"
#include "halo/fof.h"
#include "sim/decomposition.h"
#include "sim/particles.h"
#include "sim/simulation.h"
#include "stats/catalog.h"
#include "stats/power_spectrum.h"
#include "util/error.h"
#include "util/timer.h"

namespace cosmo::core {

/// Shared state handed to every algorithm at Execute time. `particles` is a
/// live, mutable view of the simulation's rank-local particle arrays
/// (zero-copy); algorithms may also publish results onto the blackboard
/// fields for downstream algorithms in the same step (the paper's halo
/// pipeline is sequential: find → center → SO → subhalos).
struct AnalysisContext {
  comm::Comm* comm = nullptr;
  const sim::SlabDecomposition* decomp = nullptr;
  sim::ParticleSet* particles = nullptr;  ///< rank-local Level 1 data (live)
  double box = 0.0;
  std::uint64_t total_particles = 0;
  dpp::Backend backend = dpp::Backend::ThreadPool;

  // ---- blackboard (outputs of earlier algorithms in this step) ----
  /// FOF result over owned+overload particles (set by HaloFinderAlgorithm).
  std::shared_ptr<halo::DistributedFofResult> fof;
  /// Halo id → index into fof->halos (set alongside fof), so the property
  /// algorithms match catalog records to member lists in O(1).
  std::unordered_map<std::int64_t, std::uint32_t> fof_index;
  /// Partial Level 3 catalog accumulated in-situ this step.
  stats::HaloCatalog catalog;
  /// Member lists (into fof->particles) of halos deferred for off-line
  /// analysis, plus their ids.
  std::vector<std::vector<std::uint32_t>> deferred_members;
  std::vector<std::int64_t> deferred_ids;
  /// Power spectra measured this step.
  std::vector<stats::PowerSpectrum> spectra;
};

/// Pure abstract base class for in-situ analysis tasks (§3.1).
class InSituAlgorithm {
 public:
  virtual ~InSituAlgorithm() = default;

  /// Configures the algorithm from its config-file section.
  virtual void SetParameters(const ParameterMap& params) = 0;

  /// True if the analysis should run at this timestep.
  virtual bool ShouldExecute(const sim::StepContext& step) const = 0;

  /// Performs the analysis. Collective across ranks.
  virtual void Execute(const sim::StepContext& step, AnalysisContext& ctx) = 0;

  /// Stable name; also the config section this algorithm reads.
  virtual std::string Name() const = 0;
};

/// Convenience base handling the common "enabled + cadence" parameters:
/// run when enabled and (step % cadence == 0 or final step).
class CadencedAlgorithm : public InSituAlgorithm {
 public:
  void SetParameters(const ParameterMap& params) override {
    enabled_ = params.get_bool("enabled", true);
    cadence_ = static_cast<std::size_t>(params.get_int("cadence", 1));
    COSMO_REQUIRE(cadence_ >= 1, "cadence must be at least 1");
    SetToolParameters(params);
  }

  bool ShouldExecute(const sim::StepContext& step) const override {
    if (!enabled_) return false;
    return step.step % cadence_ == 0 || step.step == step.total_steps;
  }

 protected:
  virtual void SetToolParameters(const ParameterMap& params) = 0;

 private:
  bool enabled_ = true;
  std::size_t cadence_ = 1;
};

/// Per-algorithm, per-step timing: the manager's ledger.
struct AlgorithmTiming {
  std::string name;
  std::size_t step = 0;
  double seconds = 0.0;  ///< this rank's execution time
};

/// The primary object interacting with the simulation code (§3.1): holds
/// the registered algorithms, configures them from the CosmoTools config,
/// and runs them inside the timestep loop.
class InSituAnalysisManager {
 public:
  InSituAnalysisManager(comm::Comm& comm, const sim::SlabDecomposition& decomp,
                        double box, std::uint64_t total_particles,
                        dpp::Backend backend = dpp::Backend::ThreadPool)
      : comm_(&comm),
        decomp_(&decomp),
        box_(box),
        total_particles_(total_particles),
        backend_(backend) {}

  /// Registers an algorithm (order = execution order within a step).
  void add(std::unique_ptr<InSituAlgorithm> algorithm) {
    algorithms_.push_back(std::move(algorithm));
  }

  std::size_t algorithm_count() const { return algorithms_.size(); }

  /// Configures every registered algorithm from its config section.
  void configure(const CosmoToolsConfig& config) {
    for (auto& a : algorithms_) a->SetParameters(config.section(a->Name()));
  }

  /// The single call the simulation makes per timestep. Returns the
  /// context holding this step's analysis products.
  AnalysisContext execute_step(const sim::StepContext& step,
                               sim::ParticleSet& particles) {
    AnalysisContext ctx;
    ctx.comm = comm_;
    ctx.decomp = decomp_;
    ctx.particles = &particles;
    ctx.box = box_;
    ctx.total_particles = total_particles_;
    ctx.backend = backend_;
    for (auto& a : algorithms_) {
      if (!a->ShouldExecute(step)) continue;
      WallTimer t;
      a->Execute(step, ctx);
      timings_.push_back({a->Name(), step.step, t.seconds()});
    }
    return ctx;
  }

  const std::vector<AlgorithmTiming>& timings() const { return timings_; }

  /// Total in-situ analysis seconds on this rank.
  double total_seconds() const {
    double s = 0.0;
    for (const auto& t : timings_) s += t.seconds;
    return s;
  }

 private:
  comm::Comm* comm_;
  const sim::SlabDecomposition* decomp_;
  double box_;
  std::uint64_t total_particles_;
  dpp::Backend backend_;
  std::vector<std::unique_ptr<InSituAlgorithm>> algorithms_;
  std::vector<AlgorithmTiming> timings_;
};

}  // namespace cosmo::core
