// Automated in-situ/off-line split selection and co-scheduling job sizing
// (§4.1, final paragraphs).
//
// The paper chose the 300,000-particle threshold manually and sketched how
// to automate it:
//   1. estimate t_io, the I/O (+redistribution) time an off-line analysis
//      would pay, from the total particle count;
//   2. invert the center-finder cost model t(n) = c·n² to find m_max_io,
//      the largest halo analyzable in less than t_io;
//   3. if the largest halo found in-situ exceeds m_max_io, save out all
//      halos above the threshold for off-line center finding;
//   4. size the co-scheduled job as T / t_max ranks (total work over the
//      largest single halo's work) and distribute halos so each rank gets
//      roughly equal workload.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "io/fs_model.h"
#include "sim/particles.h"
#include "util/error.h"

namespace cosmo::core {

/// Center-finder cost model: t(n) = coeff · n² seconds. The coefficient is
/// machine- and implementation-specific; calibrate_center_cost() measures
/// it for this build.
struct CenterCostModel {
  double coeff = 1e-9;

  double seconds(std::uint64_t n) const {
    return coeff * static_cast<double>(n) * static_cast<double>(n);
  }

  /// Largest halo analyzable within `budget_s` seconds.
  std::uint64_t max_halo_within(double budget_s) const {
    COSMO_REQUIRE(coeff > 0.0, "cost coefficient must be positive");
    if (budget_s <= 0.0) return 0;
    return static_cast<std::uint64_t>(std::sqrt(budget_s / coeff));
  }
};

struct SplitDecision {
  double t_io_s = 0.0;            ///< estimated off-line I/O+redistribution
  std::uint64_t m_max_io = 0;     ///< threshold implied by t_io
  std::uint64_t largest_halo = 0;
  bool all_in_situ = false;       ///< m_max_sim ≤ m_max_io → no split needed
  std::uint64_t threshold = 0;    ///< halos above this go off-line
  double total_offline_work_s = 0.0;  ///< T
  double largest_halo_work_s = 0.0;   ///< t_max
  std::size_t coschedule_ranks = 0;   ///< ceil(T / t_max)
};

/// Decides the split for one snapshot's halo population.
inline SplitDecision tune_split(std::uint64_t total_particles,
                                const std::vector<std::uint64_t>& halo_sizes,
                                const io::FilesystemModel& fs,
                                const io::InterconnectModel& net,
                                const CenterCostModel& cost) {
  SplitDecision d;
  const std::uint64_t level1_bytes =
      total_particles * sim::ParticleSet::kBytesPerParticle;
  // Off-line analysis pays: write by the sim, read by the analysis job,
  // then redistribution.
  d.t_io_s = fs.write_seconds(level1_bytes) + fs.read_seconds(level1_bytes) +
             net.redistribute_seconds(level1_bytes);
  d.m_max_io = cost.max_halo_within(d.t_io_s);
  for (const auto n : halo_sizes) d.largest_halo = std::max(d.largest_halo, n);
  d.all_in_situ = d.largest_halo <= d.m_max_io;
  d.threshold = d.m_max_io;
  if (d.all_in_situ) return d;

  for (const auto n : halo_sizes) {
    if (n <= d.threshold) continue;
    d.total_offline_work_s += cost.seconds(n);
  }
  d.largest_halo_work_s = cost.seconds(d.largest_halo);
  d.coschedule_ranks = static_cast<std::size_t>(
      std::ceil(d.total_offline_work_s / d.largest_halo_work_s));
  if (d.coschedule_ranks == 0) d.coschedule_ranks = 1;
  return d;
}

/// LPT (longest-processing-time) assignment of halos to ranks so "each rank
/// has roughly the same workload (estimated again from halo masses)".
/// Returns per-rank lists of indices into halo_sizes.
inline std::vector<std::vector<std::uint32_t>> balance_halos(
    const std::vector<std::uint64_t>& halo_sizes, std::size_t ranks,
    const CenterCostModel& cost) {
  COSMO_REQUIRE(ranks >= 1, "need at least one rank");
  std::vector<std::uint32_t> order(halo_sizes.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return halo_sizes[a] > halo_sizes[b];
  });
  std::vector<std::vector<std::uint32_t>> assignment(ranks);
  std::vector<double> load(ranks, 0.0);
  for (const auto h : order) {
    const auto r = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[r].push_back(h);
    load[r] += cost.seconds(halo_sizes[h]);
  }
  return assignment;
}

/// Measures the O(n²) center-finder coefficient on this machine by timing a
/// single potential sweep (see bench/ for full calibration).
template <typename TimeOneHalo>
CenterCostModel calibrate_center_cost(TimeOneHalo&& time_one_halo,
                                      std::uint64_t sample_size) {
  CenterCostModel m;
  const double t = time_one_halo(sample_size);
  m.coeff = t / (static_cast<double>(sample_size) *
                 static_cast<double>(sample_size));
  COSMO_REQUIRE(m.coeff > 0.0, "calibration produced a non-positive cost");
  return m;
}

}  // namespace cosmo::core
