// Concrete CosmoTools algorithms — the analysis tasks of §4.1:
// power spectrum, halo identification, halo center finding (with the
// in-situ/off-line split threshold), spherical-overdensity masses, and
// subhalo finding.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/cosmotools.h"
#include "halo/center_finder.h"
#include "halo/fof.h"
#include "halo/so_mass.h"
#include "halo/subhalo.h"
#include "stats/concentration.h"
#include "stats/halo_shape.h"
#include "stats/power_spectrum.h"
#include "util/error.h"

namespace cosmo::core {

/// CIC density + large FFT → P(k). The paper's canonical well-balanced
/// in-situ task ("takes only a few minutes, a small fraction of ... a
/// single time step").
class PowerSpectrumAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "powerspectrum"; }

  void SetToolParameters(const ParameterMap& p) override {
    cfg_.grid = static_cast<std::size_t>(p.get_int("grid", 32));
    cfg_.bins = static_cast<std::size_t>(p.get_int("bins", 16));
    cfg_.subtract_shot_noise = p.get_bool("subtract_shot_noise", false);
    const std::string be = p.get_string("backend", "serial");
    COSMO_REQUIRE(be == "serial" || be == "threadpool",
                  "powerspectrum backend must be serial or threadpool");
    cfg_.backend = be == "threadpool" ? dpp::Backend::ThreadPool
                                      : dpp::Backend::Serial;
    COSMO_REQUIRE(fft::is_pow2(cfg_.grid), "power spectrum grid must be 2^n");
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    ctx.spectra.push_back(stats::measure_power_spectrum(
        *ctx.comm, *ctx.particles, ctx.box, ctx.total_particles, cfg_));
  }

 private:
  stats::PowerSpectrumConfig cfg_;
};

/// Distributed FOF halo identification — well load-balanced (Table 2's Find
/// column varies little across nodes).
class HaloFinderAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "halofinder"; }

  void SetToolParameters(const ParameterMap& p) override {
    cfg_.linking_length = p.get_double("linking_length", 0.2);
    cfg_.min_size = static_cast<std::size_t>(p.get_int("min_size", 40));
    overload_ = p.get_double("overload", 4.0 * cfg_.linking_length);
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    ctx.fof = std::make_shared<halo::DistributedFofResult>(
        halo::fof_distributed(*ctx.comm, *ctx.decomp, *ctx.particles, cfg_,
                              overload_));
  }

  const halo::FofConfig& config() const { return cfg_; }

 private:
  halo::FofConfig cfg_;
  double overload_ = 1.0;
};

/// MBP center finding with the in-situ/off-line split (§4.1): halos at or
/// below the threshold are centered here; larger halos' member lists are
/// deferred to the off-line path (their particles become Level 2 data).
/// Threshold 0 disables the split (everything is computed in-situ).
class CenterFinderAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "centerfinder"; }

  void SetToolParameters(const ParameterMap& p) override {
    threshold_ = static_cast<std::uint64_t>(p.get_int("threshold", 0));
    softening_ = p.get_double("softening", 1e-6);
    method_ = p.get_string("method", "brute");
    COSMO_REQUIRE(method_ == "brute" || method_ == "astar",
                  "centerfinder method must be 'brute' or 'astar'");
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    COSMO_REQUIRE(ctx.fof != nullptr,
                  "centerfinder requires the halofinder to run first");
    halo::CenterConfig ccfg;
    ccfg.softening = softening_;
    ccfg.box = ctx.box;
    const auto& particles = ctx.fof->particles;
    for (const auto& h : ctx.fof->halos) {
      if (threshold_ != 0 && h.members.size() > threshold_) {
        ctx.deferred_members.push_back(h.members);
        ctx.deferred_ids.push_back(h.id);
        continue;
      }
      const halo::CenterResult r =
          method_ == "astar"
              ? halo::mbp_center_astar(particles, h.members, ccfg)
              : halo::mbp_center_brute(ctx.backend, particles, h.members,
                                       ccfg);
      stats::HaloRecord rec;
      rec.id = h.id;
      rec.count = h.members.size();
      rec.cx = particles.x[r.particle];
      rec.cy = particles.y[r.particle];
      rec.cz = particles.z[r.particle];
      rec.potential = static_cast<float>(r.potential);
      ctx.catalog.push_back(rec);
    }
  }

  std::uint64_t threshold() const { return threshold_; }

 private:
  std::uint64_t threshold_ = 0;
  double softening_ = 1e-6;
  std::string method_ = "brute";
};

/// SO mass around each in-situ-centered halo. Very fast, but "it relies on
/// information obtained by the center finder" — the pipeline dependency
/// the paper highlights.
class SoMassAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "somass"; }

  void SetToolParameters(const ParameterMap& p) override {
    delta_ = p.get_double("delta", 200.0);
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    COSMO_REQUIRE(ctx.fof != nullptr,
                  "somass requires the halofinder to run first");
    // Index halos by id to match catalog records to member lists.
    const auto& particles = ctx.fof->particles;
    halo::SoConfig scfg;
    scfg.delta = delta_;
    scfg.particle_mass = 1.0;
    scfg.mean_density = static_cast<double>(ctx.total_particles) /
                        (ctx.box * ctx.box * ctx.box);
    scfg.box = ctx.box;
    for (auto& rec : ctx.catalog) {
      const halo::FofHalo* h = nullptr;
      for (const auto& cand : ctx.fof->halos)
        if (cand.id == rec.id) {
          h = &cand;
          break;
        }
      if (!h) continue;  // centered in a previous step / off-line part
      const auto so = halo::so_mass(particles, h->members, rec.cx, rec.cy,
                                    rec.cz, scfg);
      rec.so_mass = static_cast<float>(so.mass);
      rec.so_radius = static_cast<float>(so.radius);
    }
  }

 private:
  double delta_ = 200.0;
};

/// Halo shapes — the paper's third named Level 3 property ("halo centers,
/// shapes, and subhalo populations", §3): reduced-inertia-tensor axis
/// ratios about the MBP center.
class ShapeAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "shapes"; }

  void SetToolParameters(const ParameterMap& p) override {
    min_size_ = static_cast<std::size_t>(p.get_int("min_size", 100));
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    COSMO_REQUIRE(ctx.fof != nullptr,
                  "shapes require the halofinder to run first");
    const auto& particles = ctx.fof->particles;
    for (auto& rec : ctx.catalog) {
      if (rec.count < min_size_) continue;
      const halo::FofHalo* h = nullptr;
      for (const auto& cand : ctx.fof->halos)
        if (cand.id == rec.id) {
          h = &cand;
          break;
        }
      if (!h) continue;
      const auto s = stats::halo_shape(particles, h->members, rec.cx, rec.cy,
                                       rec.cz, ctx.box);
      rec.b_over_a = static_cast<float>(s.b_over_a);
      rec.c_over_a = static_cast<float>(s.c_over_a);
    }
  }

 private:
  std::size_t min_size_ = 100;
};

/// NFW concentration for each centered halo — another Level 3 product the
/// paper lists (Table 1). Depends on the MBP center: "if the center is not
/// exactly at the density maximum, the concentration will be
/// underestimated" (§3.3.2), which is why the accurate-but-expensive MBP
/// definition is worth its cost.
class ConcentrationAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "concentration"; }

  void SetToolParameters(const ParameterMap& p) override {
    min_size_ = static_cast<std::size_t>(p.get_int("min_size", 100));
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    COSMO_REQUIRE(ctx.fof != nullptr,
                  "concentration requires the halofinder to run first");
    const auto& particles = ctx.fof->particles;
    for (auto& rec : ctx.catalog) {
      if (rec.count < min_size_) continue;
      const halo::FofHalo* h = nullptr;
      for (const auto& cand : ctx.fof->halos)
        if (cand.id == rec.id) {
          h = &cand;
          break;
        }
      if (!h) continue;
      const auto r =
          rec.count >= 200
              ? stats::concentration_profile_fit(particles, h->members,
                                                 rec.cx, rec.cy, rec.cz,
                                                 ctx.box)
              : stats::concentration(particles, h->members, rec.cx, rec.cy,
                                     rec.cz, ctx.box);
      rec.concentration = static_cast<float>(r.c);
    }
  }

 private:
  std::size_t min_size_ = 100;
};

/// Subhalo finding for halos above a host-size floor ("subhalos were found
/// for halos with more than 5000 particles"). CPU-only by construction,
/// badly load-imbalanced — the paper's second off-load candidate.
class SubhaloAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "subhalos"; }

  void SetToolParameters(const ParameterMap& p) override {
    min_host_ = static_cast<std::size_t>(p.get_int("min_host", 5000));
    cfg_.num_neighbors =
        static_cast<std::size_t>(p.get_int("num_neighbors", 20));
    cfg_.min_size = static_cast<std::size_t>(p.get_int("min_size", 20));
    cfg_.velocity_scale = p.get_double("velocity_scale", 0.0);
    const std::string engine = p.get_string("engine", "kd");
    COSMO_REQUIRE(engine == "kd" || engine == "bh",
                  "subhalos engine must be 'kd' or 'bh'");
    cfg_.engine = engine == "bh" ? halo::NeighborEngine::BhTree
                                 : halo::NeighborEngine::KdTree;
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    COSMO_REQUIRE(ctx.fof != nullptr,
                  "subhalos require the halofinder to run first");
    cfg_.box = ctx.box;
    const auto& particles = ctx.fof->particles;
    for (auto& rec : ctx.catalog) {
      if (rec.count <= min_host_) continue;
      const halo::FofHalo* h = nullptr;
      for (const auto& cand : ctx.fof->halos)
        if (cand.id == rec.id) {
          h = &cand;
          break;
        }
      if (!h) continue;
      const auto subs = halo::find_subhalos(particles, h->members, cfg_);
      rec.subhalos = static_cast<std::uint32_t>(subs.size());
    }
  }

 private:
  std::size_t min_host_ = 5000;
  halo::SubhaloConfig cfg_;
};

/// Builds the standard halo-analysis pipeline in execution order.
inline void register_halo_pipeline(InSituAnalysisManager& manager) {
  manager.add(std::make_unique<HaloFinderAlgorithm>());
  manager.add(std::make_unique<CenterFinderAlgorithm>());
  manager.add(std::make_unique<SoMassAlgorithm>());
  manager.add(std::make_unique<SubhaloAlgorithm>());
}

}  // namespace cosmo::core
