// Concrete CosmoTools algorithms — the analysis tasks of §4.1:
// power spectrum, halo identification, halo center finding (with the
// in-situ/off-line split threshold), spherical-overdensity masses, and
// subhalo finding.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/cosmotools.h"
#include "halo/center_finder.h"
#include "halo/fof.h"
#include "halo/so_mass.h"
#include "halo/subhalo.h"
#include "obs/obs.h"
#include "stats/concentration.h"
#include "stats/halo_shape.h"
#include "stats/power_spectrum.h"
#include "util/error.h"

namespace cosmo::core {

namespace detail {

/// Grain hint for one halo's O(n²) MBP potential tabulation: finer chunks
/// for the rare huge halos so the work-stealing pool can spread the one
/// monster across every worker while small-halo tasks fill the gaps. The
/// potential tabulation is elementwise and the argmin exact, so the grain
/// never changes the chosen center.
inline std::size_t center_grain(std::size_t members) {
  return members >= 8192 ? 4 : 16;
}

/// Catalog record → FOF halo via the id index the halo finder publishes;
/// falls back to a linear scan if the index is absent (e.g. a hand-built
/// context). Returns nullptr for records centered in a previous step or
/// owned by the off-line path.
inline const halo::FofHalo* find_fof_halo(const AnalysisContext& ctx,
                                          std::int64_t id) {
  const auto it = ctx.fof_index.find(id);
  if (it != ctx.fof_index.end()) return &ctx.fof->halos[it->second];
  for (const auto& cand : ctx.fof->halos)
    if (cand.id == id) return &cand;
  return nullptr;
}

}  // namespace detail

/// CIC density + large FFT → P(k). The paper's canonical well-balanced
/// in-situ task ("takes only a few minutes, a small fraction of ... a
/// single time step").
class PowerSpectrumAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "powerspectrum"; }

  void SetToolParameters(const ParameterMap& p) override {
    cfg_.grid = static_cast<std::size_t>(p.get_int("grid", 32));
    cfg_.bins = static_cast<std::size_t>(p.get_int("bins", 16));
    cfg_.subtract_shot_noise = p.get_bool("subtract_shot_noise", false);
    const std::string be = p.get_string("backend", "serial");
    COSMO_REQUIRE(be == "serial" || be == "threadpool",
                  "powerspectrum backend must be serial or threadpool");
    cfg_.backend = be == "threadpool" ? dpp::Backend::ThreadPool
                                      : dpp::Backend::Serial;
    COSMO_REQUIRE(fft::is_pow2(cfg_.grid), "power spectrum grid must be 2^n");
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    ctx.spectra.push_back(stats::measure_power_spectrum(
        *ctx.comm, *ctx.particles, ctx.box, ctx.total_particles, cfg_));
  }

 private:
  stats::PowerSpectrumConfig cfg_;
};

/// Distributed FOF halo identification — well load-balanced (Table 2's Find
/// column varies little across nodes).
class HaloFinderAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "halofinder"; }

  void SetToolParameters(const ParameterMap& p) override {
    cfg_.linking_length = p.get_double("linking_length", 0.2);
    cfg_.min_size = static_cast<std::size_t>(p.get_int("min_size", 40));
    overload_ = p.get_double("overload", 4.0 * cfg_.linking_length);
    cfg_.grain = static_cast<std::size_t>(p.get_int("grain", 0));
    backend_ = p.get_string("backend", "auto");
    COSMO_REQUIRE(
        backend_ == "auto" || backend_ == "serial" || backend_ == "threadpool",
        "halofinder backend must be auto, serial, or threadpool");
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    cfg_.backend = backend_ == "auto"
                       ? ctx.backend
                       : (backend_ == "threadpool" ? dpp::Backend::ThreadPool
                                                   : dpp::Backend::Serial);
    ctx.fof = std::make_shared<halo::DistributedFofResult>(
        halo::fof_distributed(*ctx.comm, *ctx.decomp, *ctx.particles, cfg_,
                              overload_));
    ctx.fof_index.clear();
    for (std::uint32_t i = 0; i < ctx.fof->halos.size(); ++i)
      ctx.fof_index.emplace(ctx.fof->halos[i].id, i);
  }

  const halo::FofConfig& config() const { return cfg_; }

 private:
  halo::FofConfig cfg_;
  double overload_ = 1.0;
  std::string backend_ = "auto";
};

/// MBP center finding with the in-situ/off-line split (§4.1): halos at or
/// below the threshold are centered here; larger halos' member lists are
/// deferred to the off-line path (their particles become Level 2 data).
/// Threshold 0 disables the split (everything is computed in-situ).
class CenterFinderAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "centerfinder"; }

  void SetToolParameters(const ParameterMap& p) override {
    threshold_ = static_cast<std::uint64_t>(p.get_int("threshold", 0));
    softening_ = p.get_double("softening", 1e-6);
    method_ = p.get_string("method", "brute");
    COSMO_REQUIRE(method_ == "brute" || method_ == "astar",
                  "centerfinder method must be 'brute' or 'astar'");
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    COSMO_REQUIRE(ctx.fof != nullptr,
                  "centerfinder requires the halofinder to run first");
    COSMO_TRACE_SPAN_CAT("halo.centers", "halo");
    halo::CenterConfig ccfg;
    ccfg.softening = softening_;
    ccfg.box = ctx.box;
    const auto& particles = ctx.fof->particles;
    // Split pass: defer the monsters to the off-line path, keep the rest.
    std::vector<std::uint32_t> work;  // indices into fof->halos
    work.reserve(ctx.fof->halos.size());
    for (std::uint32_t hi = 0; hi < ctx.fof->halos.size(); ++hi) {
      const auto& h = ctx.fof->halos[hi];
      if (threshold_ != 0 && h.members.size() > threshold_) {
        ctx.deferred_members.push_back(h.members);
        ctx.deferred_ids.push_back(h.id);
      } else {
        work.push_back(hi);
      }
    }
    // One task per halo. fof->halos is sorted largest-first and the pool's
    // chunk cursor claims tasks in index order, so the expensive halos
    // dispatch first; results land in preallocated slots and append in
    // halo order, so the catalog is identical on both backends.
    std::vector<halo::CenterResult> results(work.size());
    dpp::for_each_index(
        ctx.backend, work.size(),
        [&](std::size_t k) {
          const auto& h = ctx.fof->halos[work[k]];
          results[k] =
              method_ == "astar"
                  ? halo::mbp_center_astar(particles, h.members, ccfg)
                  : halo::mbp_center_brute(
                        ctx.backend, particles, h.members, ccfg,
                        detail::center_grain(h.members.size()));
        },
        /*grain=*/1);
    for (std::size_t k = 0; k < work.size(); ++k) {
      const auto& h = ctx.fof->halos[work[k]];
      const auto& r = results[k];
      stats::HaloRecord rec;
      rec.id = h.id;
      rec.count = h.members.size();
      rec.cx = particles.x[r.particle];
      rec.cy = particles.y[r.particle];
      rec.cz = particles.z[r.particle];
      rec.potential = static_cast<float>(r.potential);
      ctx.catalog.push_back(rec);
    }
  }

  std::uint64_t threshold() const { return threshold_; }

 private:
  std::uint64_t threshold_ = 0;
  double softening_ = 1e-6;
  std::string method_ = "brute";
};

/// SO mass around each in-situ-centered halo. Very fast, but "it relies on
/// information obtained by the center finder" — the pipeline dependency
/// the paper highlights.
class SoMassAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "somass"; }

  void SetToolParameters(const ParameterMap& p) override {
    delta_ = p.get_double("delta", 200.0);
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    COSMO_REQUIRE(ctx.fof != nullptr,
                  "somass requires the halofinder to run first");
    COSMO_TRACE_SPAN_CAT("halo.properties", "halo");
    const auto& particles = ctx.fof->particles;
    halo::SoConfig scfg;
    scfg.delta = delta_;
    scfg.particle_mass = 1.0;
    scfg.mean_density = static_cast<double>(ctx.total_particles) /
                        (ctx.box * ctx.box * ctx.box);
    scfg.box = ctx.box;
    scfg.backend = ctx.backend;
    // One task per record; each task writes only its own record's fields.
    dpp::for_each_index(
        ctx.backend, ctx.catalog.size(),
        [&](std::size_t ri) {
          auto& rec = ctx.catalog[ri];
          const halo::FofHalo* h = detail::find_fof_halo(ctx, rec.id);
          if (!h) return;  // centered in a previous step / off-line part
          const auto so = halo::so_mass(particles, h->members, rec.cx, rec.cy,
                                        rec.cz, scfg);
          rec.so_mass = static_cast<float>(so.mass);
          rec.so_radius = static_cast<float>(so.radius);
        },
        /*grain=*/1);
  }

 private:
  double delta_ = 200.0;
};

/// Halo shapes — the paper's third named Level 3 property ("halo centers,
/// shapes, and subhalo populations", §3): reduced-inertia-tensor axis
/// ratios about the MBP center.
class ShapeAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "shapes"; }

  void SetToolParameters(const ParameterMap& p) override {
    min_size_ = static_cast<std::size_t>(p.get_int("min_size", 100));
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    COSMO_REQUIRE(ctx.fof != nullptr,
                  "shapes require the halofinder to run first");
    COSMO_TRACE_SPAN_CAT("halo.properties", "halo");
    const auto& particles = ctx.fof->particles;
    dpp::for_each_index(
        ctx.backend, ctx.catalog.size(),
        [&](std::size_t ri) {
          auto& rec = ctx.catalog[ri];
          if (rec.count < min_size_) return;
          const halo::FofHalo* h = detail::find_fof_halo(ctx, rec.id);
          if (!h) return;
          const auto s = stats::halo_shape(particles, h->members, rec.cx,
                                           rec.cy, rec.cz, ctx.box,
                                           ctx.backend);
          rec.b_over_a = static_cast<float>(s.b_over_a);
          rec.c_over_a = static_cast<float>(s.c_over_a);
        },
        /*grain=*/1);
  }

 private:
  std::size_t min_size_ = 100;
};

/// NFW concentration for each centered halo — another Level 3 product the
/// paper lists (Table 1). Depends on the MBP center: "if the center is not
/// exactly at the density maximum, the concentration will be
/// underestimated" (§3.3.2), which is why the accurate-but-expensive MBP
/// definition is worth its cost.
class ConcentrationAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "concentration"; }

  void SetToolParameters(const ParameterMap& p) override {
    min_size_ = static_cast<std::size_t>(p.get_int("min_size", 100));
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    COSMO_REQUIRE(ctx.fof != nullptr,
                  "concentration requires the halofinder to run first");
    COSMO_TRACE_SPAN_CAT("halo.properties", "halo");
    const auto& particles = ctx.fof->particles;
    dpp::for_each_index(
        ctx.backend, ctx.catalog.size(),
        [&](std::size_t ri) {
          auto& rec = ctx.catalog[ri];
          if (rec.count < min_size_) return;
          const halo::FofHalo* h = detail::find_fof_halo(ctx, rec.id);
          if (!h) return;
          const auto r =
              rec.count >= 200
                  ? stats::concentration_profile_fit(particles, h->members,
                                                     rec.cx, rec.cy, rec.cz,
                                                     ctx.box, 16, ctx.backend)
                  : stats::concentration(particles, h->members, rec.cx,
                                         rec.cy, rec.cz, ctx.box,
                                         ctx.backend);
          rec.concentration = static_cast<float>(r.c);
        },
        /*grain=*/1);
  }

 private:
  std::size_t min_size_ = 100;
};

/// Subhalo finding for halos above a host-size floor ("subhalos were found
/// for halos with more than 5000 particles"). CPU-only by construction,
/// badly load-imbalanced — the paper's second off-load candidate.
class SubhaloAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "subhalos"; }

  void SetToolParameters(const ParameterMap& p) override {
    min_host_ = static_cast<std::size_t>(p.get_int("min_host", 5000));
    cfg_.num_neighbors =
        static_cast<std::size_t>(p.get_int("num_neighbors", 20));
    cfg_.min_size = static_cast<std::size_t>(p.get_int("min_size", 20));
    cfg_.velocity_scale = p.get_double("velocity_scale", 0.0);
    const std::string engine = p.get_string("engine", "kd");
    COSMO_REQUIRE(engine == "kd" || engine == "bh",
                  "subhalos engine must be 'kd' or 'bh'");
    cfg_.engine = engine == "bh" ? halo::NeighborEngine::BhTree
                                 : halo::NeighborEngine::KdTree;
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    COSMO_REQUIRE(ctx.fof != nullptr,
                  "subhalos require the halofinder to run first");
    COSMO_TRACE_SPAN_CAT("halo.properties", "halo");
    cfg_.box = ctx.box;
    const auto& particles = ctx.fof->particles;
    dpp::for_each_index(
        ctx.backend, ctx.catalog.size(),
        [&](std::size_t ri) {
          auto& rec = ctx.catalog[ri];
          if (rec.count <= min_host_) return;
          const halo::FofHalo* h = detail::find_fof_halo(ctx, rec.id);
          if (!h) return;
          const auto subs = halo::find_subhalos(particles, h->members, cfg_);
          rec.subhalos = static_cast<std::uint32_t>(subs.size());
        },
        /*grain=*/1);
  }

 private:
  std::size_t min_host_ = 5000;
  halo::SubhaloConfig cfg_;
};

/// Fused per-halo property chain: each halo's center → SO mass → shape →
/// concentration (→ optional subhalos) runs as ONE pool task, so the whole
/// sub-chain of a halo stays on one worker (cache-warm member list) while
/// work-stealing balances the rare monsters against many small halos. The
/// records it appends are identical to running CenterFinder + SoMass +
/// Shape + Concentration (+ Subhalo) sequentially: every per-halo quantity
/// is computed by the same calls with the same deterministic kernels.
class HaloPropertiesAlgorithm : public CadencedAlgorithm {
 public:
  std::string Name() const override { return "haloproperties"; }

  void SetToolParameters(const ParameterMap& p) override {
    threshold_ = static_cast<std::uint64_t>(p.get_int("threshold", 0));
    softening_ = p.get_double("softening", 1e-6);
    method_ = p.get_string("method", "brute");
    COSMO_REQUIRE(method_ == "brute" || method_ == "astar",
                  "haloproperties method must be 'brute' or 'astar'");
    delta_ = p.get_double("delta", 200.0);
    shape_min_size_ =
        static_cast<std::size_t>(p.get_int("shape_min_size", 100));
    conc_min_size_ = static_cast<std::size_t>(p.get_int("conc_min_size", 100));
    subhalos_ = p.get_bool("subhalos", false);
    min_host_ = static_cast<std::size_t>(p.get_int("min_host", 5000));
    sub_cfg_.num_neighbors =
        static_cast<std::size_t>(p.get_int("num_neighbors", 20));
    sub_cfg_.min_size = static_cast<std::size_t>(p.get_int("min_size", 20));
    sub_cfg_.velocity_scale = p.get_double("velocity_scale", 0.0);
  }

  void Execute(const sim::StepContext&, AnalysisContext& ctx) override {
    COSMO_REQUIRE(ctx.fof != nullptr,
                  "haloproperties requires the halofinder to run first");
    COSMO_TRACE_SPAN_CAT("halo.properties", "halo");
    halo::CenterConfig ccfg;
    ccfg.softening = softening_;
    ccfg.box = ctx.box;
    halo::SoConfig scfg;
    scfg.delta = delta_;
    scfg.particle_mass = 1.0;
    scfg.mean_density = static_cast<double>(ctx.total_particles) /
                        (ctx.box * ctx.box * ctx.box);
    scfg.box = ctx.box;
    scfg.backend = ctx.backend;
    sub_cfg_.box = ctx.box;
    const auto& particles = ctx.fof->particles;
    // Same in-situ/off-line split as the center finder.
    std::vector<std::uint32_t> work;  // indices into fof->halos
    work.reserve(ctx.fof->halos.size());
    for (std::uint32_t hi = 0; hi < ctx.fof->halos.size(); ++hi) {
      const auto& h = ctx.fof->halos[hi];
      if (threshold_ != 0 && h.members.size() > threshold_) {
        ctx.deferred_members.push_back(h.members);
        ctx.deferred_ids.push_back(h.id);
      } else {
        work.push_back(hi);
      }
    }
    std::vector<stats::HaloRecord> records(work.size());
    dpp::for_each_index(
        ctx.backend, work.size(),
        [&](std::size_t k) {
          const auto& h = ctx.fof->halos[work[k]];
          stats::HaloRecord rec;
          rec.id = h.id;
          rec.count = h.members.size();
          const halo::CenterResult r =
              method_ == "astar"
                  ? halo::mbp_center_astar(particles, h.members, ccfg)
                  : halo::mbp_center_brute(
                        ctx.backend, particles, h.members, ccfg,
                        detail::center_grain(h.members.size()));
          rec.cx = particles.x[r.particle];
          rec.cy = particles.y[r.particle];
          rec.cz = particles.z[r.particle];
          rec.potential = static_cast<float>(r.potential);
          const auto so = halo::so_mass(particles, h.members, rec.cx, rec.cy,
                                        rec.cz, scfg);
          rec.so_mass = static_cast<float>(so.mass);
          rec.so_radius = static_cast<float>(so.radius);
          if (rec.count >= shape_min_size_) {
            const auto s =
                stats::halo_shape(particles, h.members, rec.cx, rec.cy,
                                  rec.cz, ctx.box, ctx.backend);
            rec.b_over_a = static_cast<float>(s.b_over_a);
            rec.c_over_a = static_cast<float>(s.c_over_a);
          }
          if (rec.count >= conc_min_size_) {
            const auto c =
                rec.count >= 200
                    ? stats::concentration_profile_fit(
                          particles, h.members, rec.cx, rec.cy, rec.cz,
                          ctx.box, 16, ctx.backend)
                    : stats::concentration(particles, h.members, rec.cx,
                                           rec.cy, rec.cz, ctx.box,
                                           ctx.backend);
            rec.concentration = static_cast<float>(c.c);
          }
          if (subhalos_ && rec.count > min_host_) {
            const auto subs =
                halo::find_subhalos(particles, h.members, sub_cfg_);
            rec.subhalos = static_cast<std::uint32_t>(subs.size());
          }
          records[k] = rec;
        },
        /*grain=*/1);
    for (auto& rec : records) ctx.catalog.push_back(rec);
  }

 private:
  std::uint64_t threshold_ = 0;
  double softening_ = 1e-6;
  std::string method_ = "brute";
  double delta_ = 200.0;
  std::size_t shape_min_size_ = 100;
  std::size_t conc_min_size_ = 100;
  bool subhalos_ = false;
  std::size_t min_host_ = 5000;
  halo::SubhaloConfig sub_cfg_;
};

/// Builds the standard halo-analysis pipeline in execution order.
inline void register_halo_pipeline(InSituAnalysisManager& manager) {
  manager.add(std::make_unique<HaloFinderAlgorithm>());
  manager.add(std::make_unique<CenterFinderAlgorithm>());
  manager.add(std::make_unique<SoMassAlgorithm>());
  manager.add(std::make_unique<SubhaloAlgorithm>());
}

/// Full Level 3 chain as separate sequential steps (centers, SO masses,
/// shapes, concentrations).
inline void register_full_halo_pipeline(InSituAnalysisManager& manager) {
  manager.add(std::make_unique<HaloFinderAlgorithm>());
  manager.add(std::make_unique<CenterFinderAlgorithm>());
  manager.add(std::make_unique<SoMassAlgorithm>());
  manager.add(std::make_unique<ShapeAlgorithm>());
  manager.add(std::make_unique<ConcentrationAlgorithm>());
}

/// Same chain with the per-halo sub-chains fused into one task per halo.
inline void register_fused_halo_pipeline(InSituAnalysisManager& manager) {
  manager.add(std::make_unique<HaloFinderAlgorithm>());
  manager.add(std::make_unique<HaloPropertiesAlgorithm>());
}

}  // namespace cosmo::core
