// The workflow runner — Fig. 1 made executable.
//
// Five analysis workflows over the same simulation snapshot:
//
//   in-situ           all analysis in the simulation job; no I/O, no queue.
//   off-line          simulation writes Level 1; a separate full-size job
//                     reads, redistributes, and analyzes everything.
//   combined simple   in-situ halo finding + centers for halos ≤ threshold;
//                     particles of larger halos written as Level 2; a small
//                     off-line job centers them; catalogs are reconciled.
//   combined co-scheduled
//                     same data path, but the off-line job is submitted by
//                     the Listener the moment the Level 2 trigger file
//                     appears, overlapping the simulation.
//   combined in-transit
//                     Level 2 goes through the shared staging area (burst
//                     buffer) instead of the filesystem.
//
// Every variant runs as a sequence of real jobs (each an SPMD run over its
// own communicator — exactly like separate batch jobs), moves data through
// real files / staging buffers, and fills a phase ledger with measured
// wall-clock maxima across ranks: Sim / Analysis / Write on the simulation
// job and Read / Redistribute / Analysis / Write on the post-processing
// job — the rows of Table 4.
#pragma once

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "comm/comm.h"
#include "core/algorithms.h"
#include "core/cosmotools.h"
#include "core/split_tuner.h"
#include "faults/faults.h"
#include "io/aggregated.h"
#include "io/cosmo_io.h"
#include "obs/obs.h"
#include "sched/listener.h"
#include "sched/staging.h"
#include "sim/synthetic.h"
#include "stats/catalog.h"
#include "util/retry.h"
#include "util/timer.h"

namespace cosmo::core {

enum class WorkflowKind {
  InSitu,
  OffLine,
  CombinedSimple,
  CombinedCoScheduled,
  CombinedInTransit,
};

inline const char* to_string(WorkflowKind k) {
  switch (k) {
    case WorkflowKind::InSitu:
      return "in-situ";
    case WorkflowKind::OffLine:
      return "off-line";
    case WorkflowKind::CombinedSimple:
      return "in-situ/off-line (simple)";
    case WorkflowKind::CombinedCoScheduled:
      return "in-situ/off-line (co-scheduled)";
    case WorkflowKind::CombinedInTransit:
      return "in-situ/off-line (in-transit)";
  }
  return "?";
}

struct WorkflowProblem {
  sim::SyntheticConfig universe;       ///< the snapshot under analysis
  int ranks = 4;                       ///< "simulation" job size
  int analysis_ranks = 2;              ///< combined post-processing job size
  int ranks_per_file = 2;              ///< Level 1 aggregation factor
  dpp::Backend backend = dpp::Backend::ThreadPool;
  /// Backend for the combined variants' off-line analysis job — the
  /// analysis cluster's hardware. ThreadPool models a GPU cluster
  /// (Moonlight/Titan); Serial models a CPU-only cluster (Rhea), which the
  /// paper found "slowed down the center finding considerably" (§4.2).
  dpp::Backend analysis_backend = dpp::Backend::ThreadPool;
  double linking_length = 0.25;
  std::size_t min_halo_size = 40;
  double overload = 2.0;               ///< must exceed the largest halo extent
  std::uint64_t threshold = 300000;    ///< in-situ/off-line split (combined)
  bool compute_so_mass = true;
  bool compute_subhalos = false;
  std::size_t subhalo_min_host = 5000;
  std::filesystem::path workdir;       ///< scratch for Level 1/2/3 files
  std::uint64_t staging_capacity = 1ull << 30;
  /// How long the in-transit consumer waits for a staged buffer before
  /// treating the handoff as failed and falling back.
  std::chrono::milliseconds staging_take_timeout{10000};
};

struct PhaseTimes {
  // Simulation job (per-phase wall-clock, max over ranks).
  double sim = 0, analysis = 0, write = 0;
  // Post-processing job.
  double read = 0, redistribute = 0, post_analysis = 0, post_write = 0;
  // Per-rank in-situ breakdown (Table 2 / Fig. 4 / §4.2 inputs).
  // `other_per_rank` holds the remaining pipeline algorithms (SO mass,
  // subhalos) — with SO disabled it is the per-rank subhalo time.
  std::vector<double> find_per_rank, center_per_rank, other_per_rank;
  std::vector<double> post_center_per_rank;

  double sim_total() const { return sim + analysis + write; }
  double post_total() const {
    return read + redistribute + post_analysis + post_write;
  }
};

struct WorkflowResult {
  WorkflowKind kind = WorkflowKind::InSitu;
  stats::HaloCatalog catalog;  ///< the complete, reconciled Level 3 product
  PhaseTimes times;
  std::uint64_t level1_bytes = 0, level2_bytes = 0, level3_bytes = 0;
  std::uint64_t total_halos = 0, deferred_halos = 0;
  std::uint64_t listener_triggers = 0, listener_polls = 0;
  // Recovery bookkeeping (all zero on a fault-free run).
  std::uint64_t degraded_steps = 0;      ///< steps that fell back to in-situ
  std::uint64_t staging_fallbacks = 0;   ///< ranks routed Level 2 via files
  std::uint64_t dead_letter_submits = 0; ///< listener submits that gave up
  std::uint64_t submit_retries = 0;      ///< extra listener submit attempts
};

namespace detail {

/// Serialized form of a set of halos: [u64 n_halos] then per halo
/// [u64 count][PackedParticle × count]. Used for Level 2 staging buffers.
inline std::vector<std::byte> pack_halos(
    const std::vector<sim::ParticleSet>& halos) {
  std::uint64_t bytes = sizeof(std::uint64_t);
  for (const auto& h : halos)
    bytes += sizeof(std::uint64_t) + h.size() * sizeof(sim::PackedParticle);
  std::vector<std::byte> out(bytes);
  std::byte* p = out.data();
  const std::uint64_t n = halos.size();
  std::memcpy(p, &n, sizeof(n));
  p += sizeof(n);
  for (const auto& h : halos) {
    const std::uint64_t c = h.size();
    std::memcpy(p, &c, sizeof(c));
    p += sizeof(c);
    for (std::size_t i = 0; i < h.size(); ++i) {
      const sim::PackedParticle w = sim::pack_particle(h, i);
      std::memcpy(p, &w, sizeof(w));
      p += sizeof(w);
    }
  }
  return out;
}

inline std::vector<sim::ParticleSet> unpack_halos(
    std::span<const std::byte> bytes) {
  const std::byte* p = bytes.data();
  const std::byte* end = p + bytes.size();
  auto need = [&](std::size_t n) {
    COSMO_REQUIRE(p + n <= end, "truncated staged halo buffer");
  };
  std::uint64_t n = 0;
  need(sizeof(n));
  std::memcpy(&n, p, sizeof(n));
  p += sizeof(n);
  std::vector<sim::ParticleSet> halos(n);
  for (auto& h : halos) {
    std::uint64_t c = 0;
    need(sizeof(c));
    std::memcpy(&c, p, sizeof(c));
    p += sizeof(c);
    h.reserve(c);
    for (std::uint64_t i = 0; i < c; ++i) {
      sim::PackedParticle w;
      need(sizeof(w));
      std::memcpy(&w, p, sizeof(w));
      p += sizeof(w);
      sim::unpack_particle(w, h);
    }
  }
  return halos;
}

/// Builds the CosmoTools config text for a workflow's analysis settings.
inline CosmoToolsConfig analysis_config(const WorkflowProblem& p,
                                        std::uint64_t threshold) {
  std::string text;
  text += "[halofinder]\n";
  text += "linking_length " + std::to_string(p.linking_length) + "\n";
  text += "min_size " + std::to_string(p.min_halo_size) + "\n";
  text += "overload " + std::to_string(p.overload) + "\n";
  text += "[centerfinder]\n";
  text += "threshold " + std::to_string(threshold) + "\n";
  text += "[somass]\n";
  text += std::string("enabled ") + (p.compute_so_mass ? "true" : "false") +
          "\n";
  text += "[subhalos]\n";
  text += std::string("enabled ") + (p.compute_subhalos ? "true" : "false") +
          "\n";
  text += "min_host " + std::to_string(p.subhalo_min_host) + "\n";
  return CosmoToolsConfig::parse(text);
}

/// Output of the simulation-side job on one rank.
struct SimJobOutput {
  stats::HaloCatalog catalog_part;            ///< in-situ Level 3 part
  std::vector<sim::ParticleSet> deferred;     ///< Level 2 halo particle sets
  std::vector<std::int64_t> deferred_ids;
  double find_s = 0, center_s = 0, other_s = 0;
};

/// Runs generation + the in-situ pipeline on one rank. threshold == 0 means
/// "center everything in-situ"; nonzero defers larger halos.
inline SimJobOutput run_insitu_pipeline(comm::Comm& c,
                                        const WorkflowProblem& p,
                                        std::uint64_t threshold,
                                        sim::ParticleSet& local,
                                        std::uint64_t total_particles) {
  sim::SlabDecomposition decomp(c.size(), p.universe.box);
  InSituAnalysisManager manager(c, decomp, p.universe.box, total_particles,
                                p.backend);
  register_halo_pipeline(manager);
  manager.configure(analysis_config(p, threshold));
  sim::StepContext step{1, 1, 1.0, 0.0};
  AnalysisContext ctx = manager.execute_step(step, local);

  SimJobOutput out;
  out.catalog_part = std::move(ctx.catalog);
  for (std::size_t d = 0; d < ctx.deferred_members.size(); ++d)
    out.deferred.push_back(
        ctx.fof->particles.select(ctx.deferred_members[d]));
  out.deferred_ids = std::move(ctx.deferred_ids);
  for (const auto& t : manager.timings()) {
    if (t.name == "halofinder")
      out.find_s += t.seconds;
    else if (t.name == "centerfinder")
      out.center_s += t.seconds;
    else
      out.other_s += t.seconds;
  }
  return out;
}

/// Off-line analysis of Level 2 halo particle sets (the "Moonlight" job):
/// LPT-balanced center finding (+ SO/subhalos when enabled). Returns the
/// off-line catalog part; fills per-rank center seconds. `backend` is the
/// executing cluster's hardware — normally p.analysis_backend, but a
/// degraded step runs on the simulation side's backend instead.
inline stats::HaloCatalog analyze_level2(
    comm::Comm& c, const WorkflowProblem& p, dpp::Backend backend,
    const std::vector<sim::ParticleSet>& halos, std::uint64_t total_particles,
    std::vector<double>* center_seconds_per_rank) {
  // Balance halos across analysis ranks by the n² cost model.
  std::vector<std::uint64_t> sizes(halos.size());
  for (std::size_t h = 0; h < halos.size(); ++h) sizes[h] = halos[h].size();
  CenterCostModel cost;  // relative weights only; coeff cancels in LPT
  auto assignment = balance_halos(sizes, static_cast<std::size_t>(c.size()),
                                  cost);

  halo::CenterConfig ccfg;
  ccfg.box = p.universe.box;
  halo::SoConfig scfg;
  scfg.particle_mass = 1.0;
  scfg.mean_density = static_cast<double>(total_particles) /
                      (p.universe.box * p.universe.box * p.universe.box);
  scfg.box = p.universe.box;
  halo::SubhaloConfig sub_cfg;
  sub_cfg.box = p.universe.box;

  WallTimer timer;
  const auto& my_halos = assignment[static_cast<std::size_t>(c.rank())];
  // One task per assigned halo (the LPT assignment balances across ranks;
  // the fan-out balances within the rank), appended in assignment order so
  // the catalog is identical on both backends.
  stats::HaloCatalog mine(my_halos.size());
  {
    COSMO_TRACE_SPAN_CAT("halo.centers", "halo");
    dpp::for_each_index(
        backend, my_halos.size(),
        [&](std::size_t k) {
          const sim::ParticleSet& h = halos[my_halos[k]];
          std::vector<std::uint32_t> members(h.size());
          std::iota(members.begin(), members.end(), 0u);
          const auto r = halo::mbp_center_brute(backend, h, members, ccfg);
          stats::HaloRecord rec;
          // Halo id = minimum particle tag (the FOF id definition),
          // recoverable from the Level 2 block itself.
          rec.id = *std::min_element(h.tag.begin(), h.tag.end());
          rec.count = h.size();
          rec.cx = h.x[r.particle];
          rec.cy = h.y[r.particle];
          rec.cz = h.z[r.particle];
          rec.potential = static_cast<float>(r.potential);
          if (p.compute_so_mass) {
            const auto so =
                halo::so_mass(h, members, rec.cx, rec.cy, rec.cz, scfg);
            rec.so_mass = static_cast<float>(so.mass);
            rec.so_radius = static_cast<float>(so.radius);
          }
          if (p.compute_subhalos && h.size() > p.subhalo_min_host)
            rec.subhalos = static_cast<std::uint32_t>(
                halo::find_subhalos(h, members, sub_cfg).size());
          mine[k] = rec;
        },
        /*grain=*/1);
  }
  const double my_seconds = timer.seconds();
  if (center_seconds_per_rank)
    *center_seconds_per_rank = c.allgather_value(my_seconds);

  // Gather the off-line catalog onto rank 0.
  auto bytes = stats::catalog_to_bytes(mine);
  auto all = c.gatherv<std::byte>(bytes, 0);
  return c.rank() == 0 ? stats::catalog_from_bytes(all) : stats::HaloCatalog{};
}

/// Gathers per-rank catalog parts onto rank 0.
inline stats::HaloCatalog gather_catalog(comm::Comm& c,
                                         const stats::HaloCatalog& part) {
  auto bytes = stats::catalog_to_bytes(part);
  auto all = c.gatherv<std::byte>(bytes, 0);
  return c.rank() == 0 ? stats::catalog_from_bytes(all) : stats::HaloCatalog{};
}

inline void write_level3(const std::filesystem::path& path,
                         const stats::HaloCatalog& catalog,
                         std::uint64_t* bytes_out) {
  const auto bytes = stats::catalog_to_bytes(catalog);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  COSMO_REQUIRE(f.good(), "failed writing Level 3 catalog");
  if (bytes_out) *bytes_out = bytes.size();
}

}  // namespace detail

/// Runs the requested workflow end to end; returns the complete catalog and
/// the measured phase ledger. `problem.workdir` must exist and be writable.
WorkflowResult run_workflow(WorkflowKind kind, const WorkflowProblem& problem);

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

namespace detail {

/// Maximum of a local phase time across ranks, recorded on rank 0.
inline double phase_max(comm::Comm& c, double local) {
  return c.allreduce_value(local, comm::ReduceOp::Max);
}

struct Shared {
  std::mutex mutex;
  WorkflowResult result;
};

/// The simulation-side job, common to all variants. For OffLine it writes
/// Level 1 and does no analysis; otherwise it runs the in-situ pipeline
/// with the given threshold and emits Level 2 for deferred halos via
/// `emit_level2` (filesystem or staging, variant-dependent).
template <typename EmitLevel2>
void simulation_job(const WorkflowProblem& p, WorkflowKind kind,
                    std::uint64_t threshold, Shared& shared,
                    EmitLevel2&& emit_level2) {
  comm::run_spmd(p.ranks, [&](comm::Comm& c) {
    obs::TimedSpan t_sim("phase.sim", to_string(kind));
    sim::Cosmology cosmo;
    auto universe = sim::generate_synthetic(c, cosmo, p.universe);
    const double sim_s = t_sim.finish();

    double analysis_s = 0.0, write_s = 0.0;
    SimJobOutput out;
    std::uint64_t level2_local = 0;

    if (kind == WorkflowKind::OffLine) {
      obs::TimedSpan t_write("phase.write", to_string(kind));
      auto wr = io::write_aggregated(
          c, p.workdir / "level1", universe.local,
          {p.universe.box, 1.0, universe.total_particles, 0},
          p.ranks_per_file);
      write_s = t_write.finish();
      std::lock_guard lock(shared.mutex);
      shared.result.level1_bytes += wr.bytes_written;
    } else {
      obs::TimedSpan t_analysis("phase.analysis", to_string(kind));
      out = run_insitu_pipeline(c, p, threshold, universe.local,
                                universe.total_particles);
      analysis_s = t_analysis.finish();
      obs::TimedSpan t_write("phase.write", to_string(kind));
      for (const auto& h : out.deferred)
        level2_local += h.bytes();
      emit_level2(c, out);
      write_s = t_write.finish();
    }

    // Gather the in-situ catalog part and per-rank timings.
    auto catalog = gather_catalog(c, out.catalog_part);
    auto find_all = c.allgather_value(out.find_s);
    auto center_all = c.allgather_value(out.center_s);
    auto other_all = c.allgather_value(out.other_s);
    const double sim_max = phase_max(c, sim_s);
    const double analysis_max = phase_max(c, analysis_s);
    const double write_max = phase_max(c, write_s);
    const auto deferred_total = c.allreduce_value<std::uint64_t>(
        out.deferred.size(), comm::ReduceOp::Sum);
    const auto level2_total =
        c.allreduce_value<std::uint64_t>(level2_local, comm::ReduceOp::Sum);

    if (c.rank() == 0) {
      std::lock_guard lock(shared.mutex);
      auto& r = shared.result;
      r.times.sim = sim_max;
      r.times.analysis = analysis_max;
      r.times.write += write_max;
      r.times.find_per_rank = find_all;
      r.times.center_per_rank = center_all;
      r.times.other_per_rank = other_all;
      r.catalog = std::move(catalog);  // in-situ part; post job may extend
      r.deferred_halos = deferred_total;
      r.level2_bytes = level2_total;
    }
  });
}

}  // namespace detail

inline WorkflowResult run_workflow(WorkflowKind kind,
                                   const WorkflowProblem& problem) {
  namespace fs = std::filesystem;
  COSMO_REQUIRE(!problem.workdir.empty(), "workflow needs a workdir");
  fs::create_directories(problem.workdir);
  detail::Shared shared;
  shared.result.kind = kind;

  const std::uint64_t threshold =
      kind == WorkflowKind::InSitu || kind == WorkflowKind::OffLine
          ? 0
          : problem.threshold;

  // --- variant-specific Level 2 emission ---------------------------------
  auto staging = std::make_shared<sched::StagingArea>(problem.staging_capacity);
  // Producer ranks whose staging put failed and were routed through the
  // filesystem instead; the consumer reads their Level 2 from files.
  // Guarded by shared.mutex.
  std::set<int> staging_fallback_ranks;

  // One Level 2 file per rank, one block per deferred halo; halo id is
  // recoverable as the block's minimum tag. Trigger file marks readiness.
  // A failed or partial write leaves an unfinalized file the reader would
  // reject, so the whole file is retried from scratch (the deferred halos
  // are still in memory).
  auto write_level2_files = [&](int rank,
                                const std::vector<sim::ParticleSet>& deferred) {
    const auto path =
        io::aggregated_file_path(problem.workdir / "level2", rank);
    util::Retry retry;
    const auto outcome = retry.run("workflow.level2_write", [&] {
      io::CosmoIoWriter w(path, {problem.universe.box, 1.0, 0, 0});
      for (const auto& h : deferred)
        w.write_block(h, static_cast<std::uint32_t>(rank));
      w.finalize();
      return true;
    });
    COSMO_REQUIRE(outcome.success,
                  "Level 2 write failed after retries: " + path.string());
    if (outcome.attempts > 1)
      COSMO_COUNT("workflow.write_retries",
                  static_cast<std::uint64_t>(outcome.attempts - 1));
    std::ofstream trigger(io::trigger_path(path));
    trigger << "ok\n";
  };

  auto emit_to_files = [&](comm::Comm& c, detail::SimJobOutput& out) {
    if (threshold == 0) return;
    write_level2_files(c.rank(), out.deferred);
  };

  auto emit_to_staging = [&](comm::Comm& c, detail::SimJobOutput& out) {
    if (threshold == 0) return;
    const auto buf = detail::pack_halos(out.deferred);
    if (staging->put("level2.rank" + std::to_string(c.rank()), buf)) return;
    // Burst buffer unavailable (capacity exhausted, closed, or injected
    // device failure): fall back to the filesystem — the overflow behaviour
    // the staging area documents — and tell the consumer where to look.
    COSMO_COUNT("workflow.staging_fallbacks", 1);
    write_level2_files(c.rank(), out.deferred);
    std::lock_guard lock(shared.mutex);
    ++shared.result.staging_fallbacks;
    staging_fallback_ranks.insert(c.rank());
  };

  // --- co-scheduling listener (real, watching the workdir) ---------------
  std::unique_ptr<sched::Listener> listener;
  std::atomic<int> jobs_submitted{0};
  if (kind == WorkflowKind::CombinedCoScheduled) {
    listener = std::make_unique<sched::Listener>(
        sched::ListenerConfig{problem.workdir, ".done",
                              std::chrono::milliseconds(5)},
        [&](const fs::path&) { ++jobs_submitted; });
    listener->start();
  }

  // --- simulation job ------------------------------------------------------
  if (kind == WorkflowKind::CombinedInTransit)
    detail::simulation_job(problem, kind, threshold, shared, emit_to_staging);
  else
    detail::simulation_job(problem, kind, threshold, shared, emit_to_files);

  bool degraded = false;
  if (listener) {
    listener->wait_for_triggers(static_cast<std::uint64_t>(problem.ranks),
                                std::chrono::milliseconds(5000));
    listener->stop();
    const auto stats = listener->stats();
    shared.result.listener_triggers = stats.triggers;
    shared.result.listener_polls = stats.polls;
    shared.result.dead_letter_submits = stats.dead_letters;
    shared.result.submit_retries = stats.submit_retries;
    // Co-scheduled analysis is unavailable when any trigger's submission
    // dead-lettered (failed permanently after retries) or triggers never
    // surfaced at all: degrade the step — the paper's own decision
    // structure — by running the deferred analysis on the simulation job's
    // resources instead.
    degraded = stats.dead_letters > 0 ||
               stats.triggers < static_cast<std::uint64_t>(problem.ranks);
  }
  if (kind == WorkflowKind::CombinedInTransit &&
      COSMO_FAULT_POINT("workflow.intransit_consumer")) {
    // The co-scheduled consumer died before the handoff; the staged data is
    // drained by the fallback job on the simulation side's resources.
    COSMO_COUNT("workflow.consumer_faults", 1);
    degraded = true;
  }

  // --- post-processing job -------------------------------------------------
  if (kind == WorkflowKind::OffLine) {
    comm::run_spmd(problem.ranks, [&](comm::Comm& c) {
      sim::SlabDecomposition decomp(c.size(), problem.universe.box);
      // Read this rank's share of blocks.
      obs::TimedSpan t_read("phase.read", to_string(kind));
      std::vector<fs::path> files;
      const int groups =
          (problem.ranks + problem.ranks_per_file - 1) / problem.ranks_per_file;
      for (int g = 0; g < groups; ++g)
        files.push_back(io::aggregated_file_path(problem.workdir / "level1", g));
      sim::ParticleSet mine;
      std::uint64_t total_particles = 0;
      std::size_t block_counter = 0;
      for (const auto& f : files) {
        io::CosmoIoReader reader(f);
        total_particles = reader.info().total_particles;
        for (std::uint32_t b = 0; b < reader.num_blocks();
             ++b, ++block_counter) {
          if (static_cast<int>(block_counter %
                               static_cast<std::size_t>(c.size())) != c.rank())
            continue;
          mine.append(reader.read_block(b));
        }
      }
      const double read_s = t_read.finish();
      obs::TimedSpan t_redist("phase.redistribute", to_string(kind));
      sim::ParticleSet owned = decomp.redistribute(c, std::move(mine));
      const double redist_s = t_redist.finish();

      obs::TimedSpan t_analysis("phase.post_analysis", to_string(kind));
      auto out = detail::run_insitu_pipeline(c, problem, 0, owned,
                                             total_particles);
      const double analysis_s = t_analysis.finish();
      auto catalog = detail::gather_catalog(c, out.catalog_part);
      auto center_all = c.allgather_value(out.center_s);

      const double read_max = detail::phase_max(c, read_s);
      const double redist_max = detail::phase_max(c, redist_s);
      const double analysis_max = detail::phase_max(c, analysis_s);
      if (c.rank() == 0) {
        obs::TimedSpan t_write("phase.post_write", to_string(kind));
        std::uint64_t l3 = 0;
        stats::sort_catalog(catalog);
        detail::write_level3(problem.workdir / "level3.catalog", catalog, &l3);
        std::lock_guard lock(shared.mutex);
        auto& r = shared.result;
        r.times.read = read_max;
        r.times.redistribute = redist_max;
        r.times.post_analysis = analysis_max;
        r.times.post_write = t_write.finish();
        r.times.post_center_per_rank = center_all;
        r.catalog = std::move(catalog);
        r.level3_bytes = l3;
      }
    });
  } else if (kind != WorkflowKind::InSitu) {
    // Combined variants: small analysis job over Level 2. A degraded step
    // runs the same job shape on the simulation job's ranks and backend —
    // in-situ fallback — and records the downgrade.
    const int post_ranks = degraded ? problem.ranks : problem.analysis_ranks;
    const dpp::Backend post_backend =
        degraded ? problem.backend : problem.analysis_backend;
    std::optional<obs::ScopedSpan> degraded_span;
    if (degraded) {
      COSMO_COUNT("workflow.degraded", 1);
      shared.result.degraded_steps = 1;
      degraded_span.emplace("workflow.degraded_step", "faults");
    }
    comm::run_spmd(post_ranks, [&](comm::Comm& c) {
      obs::TimedSpan t_read("phase.read", to_string(kind));
      std::vector<sim::ParticleSet> halos;
      bool read_failed = false;
      auto read_level2_file = [&](int src) {
        const auto path =
            io::aggregated_file_path(problem.workdir / "level2", src);
        io::CosmoIoReader reader(path);
        for (std::uint32_t b = 0; b < reader.num_blocks(); ++b)
          halos.push_back(reader.read_block(b));
      };
      try {
      if (kind == WorkflowKind::CombinedInTransit) {
        // Take every producer rank's staged buffer (blocking handoff),
        // dealt round-robin across analysis ranks. Ranks whose put fell
        // back to the filesystem are read from their Level 2 file instead.
        for (int src = 0; src < problem.ranks; ++src) {
          if (src % c.size() != c.rank()) continue;
          const bool fell_back = [&] {
            std::lock_guard lock(shared.mutex);
            return staging_fallback_ranks.count(src) != 0;
          }();
          std::optional<std::vector<std::byte>> buf;
          if (!fell_back) {
            const std::string name = "level2.rank" + std::to_string(src);
            buf = staging->take_blocking(name, problem.staging_take_timeout);
            if (!buf) {
              // Lost handoff (injected or timed out): the data may still be
              // resident — retry the take once before giving up.
              buf = staging->take(name);
              if (buf) COSMO_COUNT("workflow.staging_take_retries", 1);
            }
          }
          if (buf) {
            for (auto& h : detail::unpack_halos(*buf))
              halos.push_back(std::move(h));
          } else {
            COSMO_REQUIRE(fell_back, "staged Level 2 buffer missing: rank " +
                                         std::to_string(src));
            read_level2_file(src);
          }
        }
      } else {
        for (int src = 0; src < problem.ranks; ++src) {
          if (src % c.size() != c.rank()) continue;
          read_level2_file(src);
        }
      }
      } catch (const std::exception&) {
        // Keep collectives matched: a rank whose Level 2 acquisition failed
        // must not bail out while its peers wait in the allgather below.
        // Agree on the failure first, then all ranks throw together.
        read_failed = true;
        halos.clear();
      }
      const int any_read_failed =
          c.allreduce_value(read_failed ? 1 : 0, comm::ReduceOp::Max);
      COSMO_REQUIRE(any_read_failed == 0,
                    "Level 2 acquisition failed on a post-processing rank");
      const double read_s = t_read.finish();

      // "Redistribute": collect all halos onto every rank (they are then
      // LPT-assigned inside analyze_level2). Halo particle sets are shipped
      // whole — Level 2 communication.
      obs::TimedSpan t_redist("phase.redistribute", to_string(kind));
      std::vector<sim::ParticleSet> all_halos;
      {
        const auto buf = detail::pack_halos(halos);
        std::vector<std::size_t> counts;
        auto gathered = c.allgatherv<std::byte>(buf, &counts);
        // Segments concatenate in rank order; each is self-contained.
        std::size_t offset = 0;
        for (const auto len : counts) {
          auto segment = std::span<const std::byte>(gathered).subspan(offset, len);
          for (auto& h : detail::unpack_halos(segment))
            all_halos.push_back(std::move(h));
          offset += len;
        }
      }
      const double redist_s = t_redist.finish();

      obs::TimedSpan t_analysis("phase.post_analysis", to_string(kind));
      std::vector<double> center_per_rank;
      auto offline_catalog = detail::analyze_level2(
          c, problem, post_backend, all_halos,
          sim::synthetic_total_particles(problem.universe), &center_per_rank);
      const double analysis_s = t_analysis.finish();

      const double read_max = detail::phase_max(c, read_s);
      const double redist_max = detail::phase_max(c, redist_s);
      const double analysis_max = detail::phase_max(c, analysis_s);
      if (c.rank() == 0) {
        std::lock_guard lock(shared.mutex);
        auto& r = shared.result;
        obs::TimedSpan t_write("phase.post_write", to_string(kind));
        r.catalog = stats::reconcile_catalogs(r.catalog, offline_catalog);
        std::uint64_t l3 = 0;
        detail::write_level3(problem.workdir / "level3.catalog", r.catalog,
                             &l3);
        r.times.read = read_max;
        r.times.redistribute = redist_max;
        r.times.post_analysis = analysis_max;
        r.times.post_write = t_write.finish();
        r.times.post_center_per_rank = center_per_rank;
        r.level3_bytes = l3;
      }
    });
  } else {
    // Pure in-situ: rank 0 writes the Level 3 catalog (timed as write).
    obs::TimedSpan t_write("phase.write", to_string(kind));
    stats::sort_catalog(shared.result.catalog);
    std::uint64_t l3 = 0;
    detail::write_level3(problem.workdir / "level3.catalog",
                         shared.result.catalog, &l3);
    shared.result.times.write += t_write.finish();
    shared.result.level3_bytes = l3;
  }

  if (kind == WorkflowKind::InSitu || kind == WorkflowKind::OffLine)
    stats::sort_catalog(shared.result.catalog);
  shared.result.total_halos = shared.result.catalog.size();
  return shared.result;
}

}  // namespace cosmo::core
