// Computational steering: live reconfiguration of the in-situ analysis.
//
// The paper's CosmoTools is "easily configurable in the problem setup, even
// while the simulation is running for computational steering" (§3.1). The
// SteeringFile watches the CosmoTools config file between timesteps; when
// the scientist edits it (changing a cadence, enabling a tool, moving the
// split threshold), the manager is reconfigured before the next analysis
// step — no restart of the simulation.
#pragma once

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/cosmotools.h"
#include "util/error.h"

namespace cosmo::core {

class SteeringFile {
 public:
  explicit SteeringFile(std::filesystem::path path) : path_(std::move(path)) {}

  const std::filesystem::path& path() const { return path_; }
  std::uint64_t reload_count() const { return reloads_; }

  /// Checks the file's modification time; if it changed since the last
  /// check (or this is the first check and the file exists), re-parses it
  /// and reconfigures the manager. Returns true when a reload happened.
  /// A malformed edit throws — the simulation should surface the error and
  /// keep running with the previous configuration, so the parse happens
  /// before any state is touched.
  bool poll(InSituAnalysisManager& manager) {
    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(path_, ec);
    if (ec) return false;  // file absent: keep the current configuration
    if (seen_any_ && mtime == last_mtime_) return false;
    std::ifstream in(path_);
    COSMO_REQUIRE(in.good(), "cannot read steering file: " + path_.string());
    std::stringstream buffer;
    buffer << in.rdbuf();
    // Parse first (throws on malformed input), reconfigure second.
    CosmoToolsConfig config = CosmoToolsConfig::parse(buffer.str());
    manager.configure(config);
    last_mtime_ = mtime;
    seen_any_ = true;
    ++reloads_;
    return true;
  }

 private:
  std::filesystem::path path_;
  std::filesystem::file_time_type last_mtime_{};
  bool seen_any_ = false;
  std::uint64_t reloads_ = 0;
};

}  // namespace cosmo::core
