// CosmoTools configuration: typed parameter maps and the sectioned config
// file the simulation's input deck points at (§3, "that file has all the
// details about the separate analysis tools, at which time steps to run
// them, and which parameters to use for each").
//
// Format:  "[section]" headers, "key value" lines, '#' comments.
#pragma once

#include <istream>
#include <map>
#include <sstream>
#include <string>

#include "util/error.h"

namespace cosmo::core {

/// String-keyed parameters with checked typed access.
class ParameterMap {
 public:
  void set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get_string(const std::string& key) const {
    auto it = values_.find(key);
    COSMO_REQUIRE(it != values_.end(), "missing parameter: " + key);
    return it->second;
  }

  std::string get_string(const std::string& key,
                         const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double get_double(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (...) {
      throw Error("parameter '" + key + "' is not a number: " + it->second);
    }
  }

  long long get_int(const std::string& key, long long fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stoll(it->second);
    } catch (...) {
      throw Error("parameter '" + key + "' is not an integer: " + it->second);
    }
  }

  bool get_bool(const std::string& key, bool fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
    if (v == "false" || v == "0" || v == "no" || v == "off") return false;
    throw Error("parameter '" + key + "' is not a boolean: " + v);
  }

  std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

/// The parsed CosmoTools configuration: one ParameterMap per tool section.
class CosmoToolsConfig {
 public:
  /// Parses the sectioned key-value format. Lines before any section header
  /// go into the "" (global) section.
  static CosmoToolsConfig parse(std::istream& in) {
    CosmoToolsConfig cfg;
    std::string line, section;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ls(line);
      std::string first;
      if (!(ls >> first)) continue;  // blank
      if (first.front() == '[') {
        COSMO_REQUIRE(first.back() == ']',
                      "malformed section header at line " +
                          std::to_string(lineno) + ": " + first);
        section = first.substr(1, first.size() - 2);
        continue;
      }
      std::string value;
      std::getline(ls, value);
      const auto start = value.find_first_not_of(" \t");
      COSMO_REQUIRE(start != std::string::npos,
                    "parameter without value at line " +
                        std::to_string(lineno) + ": " + first);
      const auto end = value.find_last_not_of(" \t");
      cfg.sections_[section].set(first, value.substr(start, end - start + 1));
    }
    return cfg;
  }

  static CosmoToolsConfig parse(const std::string& text) {
    std::istringstream in(text);
    return parse(in);
  }

  bool has_section(const std::string& name) const {
    return sections_.count(name) != 0;
  }

  const ParameterMap& section(const std::string& name) const {
    static const ParameterMap empty;
    auto it = sections_.find(name);
    return it == sections_.end() ? empty : it->second;
  }

 private:
  std::map<std::string, ParameterMap> sections_;
};

}  // namespace cosmo::core
