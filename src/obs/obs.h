// cosmo::obs — the observability layer: span tracing + metrics.
//
// Include this one header to instrument code. Two surfaces:
//   * RAII spans (trace.h): COSMO_TRACE_SPAN("io.read") scopes a timed,
//     rank-tagged span; exportable as Chrome trace JSON + summary table.
//   * Metrics (metrics.h): COSMO_COUNT("comm.bytes_sent", n) and friends
//     update named counters/gauges/histograms, sharded per rank and
//     aggregatable across ranks with communicator reductions
//     (obs/aggregate.h — include separately, it depends on comm).
//
// Compile-out: defining COSMO_OBS_DISABLED (per target, e.g.
// `target_compile_definitions(tgt PRIVATE COSMO_OBS_DISABLED)`) turns every
// macro below into a no-op and strips TimedSpan down to its wall timer, so
// instrumented hot paths carry zero observability cost. The flag is a
// whole-binary switch: mixing enabled and disabled translation units in one
// binary is not supported (it would violate the one-definition rule for
// TimedSpan).
#pragma once

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#define COSMO_OBS_CONCAT_IMPL(a, b) a##b
#define COSMO_OBS_CONCAT(a, b) COSMO_OBS_CONCAT_IMPL(a, b)

#ifndef COSMO_OBS_DISABLED

/// Scoped span for the rest of the enclosing block.
#define COSMO_TRACE_SPAN(name)                                        \
  ::cosmo::obs::ScopedSpan COSMO_OBS_CONCAT(cosmo_obs_span_,          \
                                            __COUNTER__) { (name) }

/// Scoped span with an explicit category (shown as `cat` in Chrome traces).
#define COSMO_TRACE_SPAN_CAT(name, cat)                               \
  ::cosmo::obs::ScopedSpan COSMO_OBS_CONCAT(cosmo_obs_span_,          \
                                            __COUNTER__) { (name), (cat) }

/// Adds `n` to the named counter. `name` must be a stable string literal:
/// the registry lookup happens once (function-local static), the steady
/// state is one relaxed atomic add.
#define COSMO_COUNT(name, n)                                          \
  do {                                                                \
    static ::cosmo::obs::Counter& cosmo_obs_counter_ =                \
        ::cosmo::obs::MetricsRegistry::instance().counter(name);      \
    cosmo_obs_counter_.add(static_cast<std::uint64_t>(n));            \
  } while (0)

/// Sets the named gauge to `v`.
#define COSMO_GAUGE_SET(name, v)                                      \
  do {                                                                \
    static ::cosmo::obs::Gauge& cosmo_obs_gauge_ =                    \
        ::cosmo::obs::MetricsRegistry::instance().gauge(name);        \
    cosmo_obs_gauge_.set(static_cast<double>(v));                     \
  } while (0)

/// Records `x` into the named histogram ([lo, hi) with `bins` bins; the
/// binning is fixed by the first registration of the name).
#define COSMO_HISTOGRAM(name, lo, hi, bins, x)                        \
  do {                                                                \
    static ::cosmo::obs::HistogramMetric& cosmo_obs_hist_ =           \
        ::cosmo::obs::MetricsRegistry::instance().histogram(          \
            name, lo, hi, bins);                                      \
    cosmo_obs_hist_.observe(static_cast<double>(x));                  \
  } while (0)

#else  // COSMO_OBS_DISABLED: everything compiles to nothing.

#define COSMO_TRACE_SPAN(name) \
  do {                         \
  } while (0)
#define COSMO_TRACE_SPAN_CAT(name, cat) \
  do {                                  \
  } while (0)
#define COSMO_COUNT(name, n) \
  do {                       \
  } while (0)
#define COSMO_GAUGE_SET(name, v) \
  do {                           \
  } while (0)
#define COSMO_HISTOGRAM(name, lo, hi, bins, x) \
  do {                                         \
  } while (0)

#endif  // COSMO_OBS_DISABLED
