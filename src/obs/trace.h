// Span tracing — the per-phase, per-rank timing substrate.
//
// The paper's Tables 2–4 are per-phase wall-clock ledgers with per-node
// (here: per-rank) resolution. This tracer records RAII scoped spans into
// per-thread ring buffers (bounded memory, oldest spans dropped under
// pressure) and exports them two ways:
//   * Chrome trace-event JSON (load in chrome://tracing or ui.perfetto.dev),
//     one track per rank thread, nesting preserved;
//   * a plaintext summary table (count / total / mean / max per span name),
//     the shape of the paper's phase tables.
// Spans carry the producing rank (via obs/context.h), a thread index, a
// nesting depth, and an optional category (the workflow variant for phase
// spans). TimedSpan doubles as the workflow phase timer: finish() ends the
// span and returns its duration, so the ledger the workflow reports and the
// span the tracer stores are the *same measurement*.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/context.h"
#include "util/table.h"
#include "util/timer.h"

namespace cosmo::obs {

/// True when instrumentation is compiled in (COSMO_OBS_DISABLED unset).
#ifdef COSMO_OBS_DISABLED
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

/// One completed span. Times are microseconds since the process epoch.
struct Span {
  std::string name;
  std::string cat;          ///< optional category (e.g. workflow variant)
  double start_us = 0.0;
  double end_us = 0.0;
  int rank = -1;            ///< SPMD rank of the producing thread (-1: none)
  int tid = 0;              ///< tracer-assigned thread index
  int depth = 0;            ///< nesting depth within the thread

  double seconds() const { return (end_us - start_us) * 1e-6; }
};

/// Per-name aggregate for the plaintext summary.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  double total_s = 0.0;
  double max_s = 0.0;
  double mean_s() const {
    return count ? total_s / static_cast<double>(count) : 0.0;
  }
};

namespace detail {

inline std::chrono::steady_clock::time_point process_epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

inline double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - process_epoch())
      .count();
}

/// Fixed-capacity span store owned by one thread; oldest entries are
/// overwritten when full so a long run cannot exhaust memory.
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity, int tid)
      : capacity_(capacity ? capacity : 1), tid_(tid) {}

  int tid() const { return tid_; }

  void push(Span span) {
    std::lock_guard lock(mutex_);
    if (spans_.size() < capacity_) {
      spans_.push_back(std::move(span));
    } else {
      spans_[head_] = std::move(span);
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  void append_to(std::vector<Span>& out) const {
    std::lock_guard lock(mutex_);
    out.insert(out.end(), spans_.begin(), spans_.end());
  }

  std::uint64_t dropped() const {
    std::lock_guard lock(mutex_);
    return dropped_;
  }

  void clear() {
    std::lock_guard lock(mutex_);
    spans_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  int tid_;
  std::vector<Span> spans_;
  std::size_t head_ = 0;         ///< oldest entry once the ring is full
  std::uint64_t dropped_ = 0;
};

/// Minimal JSON string escaping (span names are code-controlled, but keep
/// the export valid for any input).
inline void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace detail

/// Process-wide span collector. Thread-safe; rank threads write into their
/// own rings, export merges all rings.
class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 65536;

  static Tracer& instance() {
    static Tracer tracer;
    return tracer;
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Ring capacity for threads that have not recorded a span yet (existing
  /// rings keep their size; spans already stored are never reallocated).
  void set_ring_capacity(std::size_t capacity) {
    std::lock_guard lock(mutex_);
    ring_capacity_ = capacity ? capacity : 1;
  }

  /// The calling thread's ring, created and registered on first use.
  detail::SpanRing& thread_ring() {
    thread_local std::shared_ptr<detail::SpanRing> ring = register_ring();
    return *ring;
  }

  /// All recorded spans, merged and sorted by start time.
  std::vector<Span> snapshot() const {
    std::vector<Span> all;
    {
      std::lock_guard lock(mutex_);
      for (const auto& r : rings_) r->append_to(all);
    }
    std::sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
      return a.start_us < b.start_us;
    });
    return all;
  }

  /// Total spans dropped to ring overflow across all threads.
  std::uint64_t dropped() const {
    std::lock_guard lock(mutex_);
    std::uint64_t d = 0;
    for (const auto& r : rings_) d += r->dropped();
    return d;
  }

  /// Discards every recorded span (thread registrations survive).
  void clear() {
    std::lock_guard lock(mutex_);
    for (const auto& r : rings_) r->clear();
  }

  /// Chrome trace-event JSON ("X" complete events, ts/dur in microseconds).
  /// Loadable in chrome://tracing and ui.perfetto.dev.
  void export_chrome_trace(std::ostream& os) const {
    const auto spans = snapshot();
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto& s : spans) {
      if (!first) os << ",";
      first = false;
      os << "\n{\"name\":\"";
      detail::json_escape(os, s.name);
      os << "\",\"cat\":\"";
      detail::json_escape(os, s.cat.empty() ? std::string("cosmo") : s.cat);
      // pid groups tracks by rank; rank-less threads share pid 0.
      os << "\",\"ph\":\"X\",\"ts\":" << s.start_us
         << ",\"dur\":" << (s.end_us - s.start_us)
         << ",\"pid\":" << (s.rank < 0 ? 0 : s.rank + 1)
         << ",\"tid\":" << s.tid << ",\"args\":{\"rank\":" << s.rank
         << ",\"depth\":" << s.depth << "}}";
    }
    os << "\n]}\n";
  }

  /// Writes the Chrome trace to a file; returns false on I/O failure.
  bool export_chrome_trace_file(const std::filesystem::path& path) const {
    std::ofstream f(path, std::ios::trunc);
    if (!f.good()) return false;
    export_chrome_trace(f);
    return f.good();
  }

  /// Per-name aggregates, sorted by total time descending.
  std::vector<SpanStats> summary() const {
    std::map<std::string, SpanStats> by_name;
    for (const auto& s : snapshot()) {
      auto& st = by_name[s.name];
      st.name = s.name;
      ++st.count;
      const double sec = s.seconds();
      st.total_s += sec;
      if (sec > st.max_s) st.max_s = sec;
    }
    std::vector<SpanStats> out;
    out.reserve(by_name.size());
    for (auto& [_, st] : by_name) out.push_back(std::move(st));
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      return a.total_s > b.total_s;
    });
    return out;
  }

  /// Plaintext summary table — the at-a-glance phase ledger.
  void print_summary(std::ostream& os) const {
    TextTable t({"span", "count", "total s", "mean s", "max s"});
    for (const auto& st : summary())
      t.add_row({st.name, std::to_string(st.count), TextTable::num(st.total_s, 4),
                 TextTable::num(st.mean_s(), 5), TextTable::num(st.max_s, 4)});
    t.print(os);
    const auto d = dropped();
    if (d) os << "(" << d << " spans dropped to ring overflow)\n";
  }

 private:
  Tracer() = default;

  std::shared_ptr<detail::SpanRing> register_ring() {
    std::lock_guard lock(mutex_);
    auto ring = std::make_shared<detail::SpanRing>(ring_capacity_,
                                                   next_tid_++);
    rings_.push_back(ring);
    return ring;
  }

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<detail::SpanRing>> rings_;
  std::size_t ring_capacity_ = kDefaultRingCapacity;
  int next_tid_ = 0;
  std::atomic<bool> enabled_{true};
};

namespace detail {
inline int& thread_depth_slot() {
  thread_local int depth = 0;
  return depth;
}
}  // namespace detail

/// RAII scoped span: records on destruction, including exception unwind.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, std::string cat = {}) {
    auto& tracer = Tracer::instance();
    if (!tracer.enabled()) return;
    active_ = true;
    span_.name = std::move(name);
    span_.cat = std::move(cat);
    span_.rank = current_rank();
    span_.depth = detail::thread_depth_slot()++;
    span_.start_us = detail::now_us();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { finish(); }

  /// Elapsed seconds so far (the span keeps running).
  double seconds() const {
    return (detail::now_us() - span_.start_us) * 1e-6;
  }

  /// Ends the span now and records it; returns its duration in seconds.
  /// Subsequent finish() calls (and the destructor) are no-ops.
  double finish() {
    if (!active_) return 0.0;
    active_ = false;
    span_.end_us = detail::now_us();
    --detail::thread_depth_slot();
    auto& ring = Tracer::instance().thread_ring();
    span_.tid = ring.tid();
    const double sec = span_.seconds();
    ring.push(std::move(span_));
    return sec;
  }

 private:
  Span span_;
  bool active_ = false;
};

/// Phase timer + span in one object. Always measures wall-clock (the
/// workflow ledger needs numbers even with instrumentation compiled out);
/// when observability is enabled the same interval is recorded as a span,
/// so the ledger and the trace cannot disagree.
#ifndef COSMO_OBS_DISABLED
class TimedSpan {
 public:
  explicit TimedSpan(std::string name, std::string cat = {})
      : span_(std::move(name), std::move(cat)) {}

  /// Elapsed seconds (span keeps running).
  double seconds() const { return timer_.seconds(); }

  /// Ends the span and returns the measured duration. The returned value is
  /// the span's recorded duration — ledger entries and trace entries match.
  double finish() {
    const double from_span = span_.finish();
    return from_span > 0.0 ? from_span : timer_.seconds();
  }

 private:
  WallTimer timer_;
  ScopedSpan span_;
};
#else
class TimedSpan {
 public:
  explicit TimedSpan(const std::string&, const std::string& = {}) {}
  double seconds() const { return timer_.seconds(); }
  double finish() { return timer_.seconds(); }

 private:
  WallTimer timer_;
};
#endif

}  // namespace cosmo::obs
