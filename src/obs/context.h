// Thread-local observability context: which SPMD rank this thread is.
//
// The SPMD runtime runs ranks as threads, so rank identity is thread
// identity. The runtime (comm::run_spmd) installs a RankScope at rank-thread
// entry; spans and metric shards read it so every recorded event carries the
// rank that produced it — the basis of the paper's per-node ledgers. Threads
// outside any rank (the main thread, pool workers, the Listener) report
// rank -1.
//
// This header is always active, even under COSMO_OBS_DISABLED: it is a
// single thread-local int, and the runtime needs it to stay well-defined.
#pragma once

namespace cosmo::obs {

namespace detail {
inline int& thread_rank_slot() {
  thread_local int rank = -1;
  return rank;
}
}  // namespace detail

/// Rank of the calling thread, or -1 outside any SPMD rank.
inline int current_rank() { return detail::thread_rank_slot(); }

inline void set_current_rank(int rank) { detail::thread_rank_slot() = rank; }

/// RAII rank binding for one thread (restores the previous value).
class RankScope {
 public:
  explicit RankScope(int rank) : prev_(current_rank()) {
    set_current_rank(rank);
  }
  ~RankScope() { set_current_rank(prev_); }
  RankScope(const RankScope&) = delete;
  RankScope& operator=(const RankScope&) = delete;

 private:
  int prev_;
};

}  // namespace cosmo::obs
