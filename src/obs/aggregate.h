// Cross-rank metric aggregation via communicator reductions.
//
// Separated from obs/metrics.h because it depends on comm::Comm (and comm
// itself is instrumented with obs, so obs core must stay below comm in the
// dependency order: util → obs → dpp → comm → ...).
//
// Every function here is COLLECTIVE: all ranks of the communicator must
// call it in matching order, exactly like the reductions it is built on.
// Each rank contributes its local shard (Counter::local / histogram
// local_counts) — the same contract MPI codes follow, where cross-rank
// totals only exist after an explicit reduction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "comm/comm.h"
#include "obs/metrics.h"

namespace cosmo::obs {

struct CounterAggregate {
  std::uint64_t sum = 0;  ///< total over ranks
  std::uint64_t min = 0;  ///< lightest rank
  std::uint64_t max = 0;  ///< heaviest rank — the imbalance signal
};

/// Reduces one counter's per-rank contributions. Visible on all ranks.
inline CounterAggregate aggregate_counter(comm::Comm& c,
                                          const std::string& name) {
  const std::uint64_t local =
      MetricsRegistry::instance().counter(name).local(c.rank());
  CounterAggregate a;
  a.sum = c.allreduce_value<std::uint64_t>(local, comm::ReduceOp::Sum);
  a.min = c.allreduce_value<std::uint64_t>(local, comm::ReduceOp::Min);
  a.max = c.allreduce_value<std::uint64_t>(local, comm::ReduceOp::Max);
  return a;
}

/// Element-wise sum of a histogram's per-rank bin counts; layout matches
/// HistogramMetric::local_counts ([bins..., underflow, overflow]).
inline std::vector<std::uint64_t> aggregate_histogram(comm::Comm& c,
                                                      const std::string& name,
                                                      double lo, double hi,
                                                      std::size_t bins) {
  const auto local = MetricsRegistry::instance()
                         .histogram(name, lo, hi, bins)
                         .local_counts(c.rank());
  return c.allreduce<std::uint64_t>(
      std::span<const std::uint64_t>(local), comm::ReduceOp::Sum);
}

struct NamedCounterAggregate {
  std::string name;
  CounterAggregate agg;
};

/// Reduces every counter registered at the moment rank 0 snapshots the
/// registry. The name list is broadcast from rank 0 rather than read
/// per-rank: the collectives below are themselves instrumented and
/// register counters lazily (comm.reduce, comm.msgs_sent, ...), so
/// per-rank snapshots taken microseconds apart can disagree — and a
/// disagreement means mismatched collective call counts, i.e. deadlock.
inline std::vector<NamedCounterAggregate> aggregate_all_counters(
    comm::Comm& c) {
  std::vector<char> joined;
  if (c.rank() == 0) {
    for (const auto& name : MetricsRegistry::instance().counter_names()) {
      joined.insert(joined.end(), name.begin(), name.end());
      joined.push_back('\n');
    }
  }
  c.bcast(joined, 0);
  std::vector<NamedCounterAggregate> out;
  std::string name;
  for (const char ch : joined) {
    if (ch == '\n') {
      out.push_back({name, aggregate_counter(c, name)});
      name.clear();
    } else {
      name.push_back(ch);
    }
  }
  return out;
}

}  // namespace cosmo::obs
