// Metrics registry — named counters, gauges, and histograms.
//
// Counters shard by SPMD rank (obs/context.h): each rank-thread accumulates
// into its own atomic slot, so both the process total and any single rank's
// contribution are recoverable. That mirrors MPI reality — every rank owns
// its local count and cross-rank views are built with communicator
// reductions (obs/aggregate.h) — while staying contention-free in this
// repo's ranks-as-threads runtime. Histograms reuse util/histogram.h's
// LinearHistogram, per rank shard, so bin counts aggregate across ranks by
// element-wise sum.
//
// Lookup is by name under a mutex; hot paths cache the returned reference
// in a function-local static (see COSMO_COUNT in obs/obs.h), so the steady
// state is one relaxed atomic add per event.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/context.h"
#include "util/error.h"
#include "util/histogram.h"
#include "util/table.h"

namespace cosmo::obs {

namespace detail {
/// Counter slots: slot 0 for rank-less threads, slots 1..64 for ranks
/// (ranks beyond 63 wrap — totals stay exact, per-rank views merge).
inline constexpr std::size_t kRankSlots = 65;

inline std::size_t slot_for_rank(int rank) {
  return rank < 0 ? 0 : 1 + static_cast<std::size_t>(rank) % (kRankSlots - 1);
}

inline std::size_t current_slot() { return slot_for_rank(current_rank()); }
}  // namespace detail

/// Monotonic counter, sharded by rank.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    slots_[detail::current_slot()].fetch_add(n, std::memory_order_relaxed);
  }

  /// Process-wide total across every rank (and rank-less threads).
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& s : slots_) t += s.load(std::memory_order_relaxed);
    return t;
  }

  /// One rank's contribution (rank -1: all rank-less threads).
  std::uint64_t local(int rank) const {
    return slots_[detail::slot_for_rank(rank)].load(std::memory_order_relaxed);
  }

  void reset() {
    for (auto& s : slots_) s.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, detail::kRankSlots> slots_{};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { bits_.store(encode(v), std::memory_order_relaxed); }
  double value() const { return decode(bits_.load(std::memory_order_relaxed)); }
  void reset() { set(0.0); }

 private:
  static std::uint64_t encode(double v) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double decode(std::uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-binning histogram metric, one LinearHistogram shard per rank.
/// Binning is set by the first registration of the name (first-wins).
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), bins_(bins) {
    COSMO_REQUIRE(hi > lo && bins > 0, "bad histogram metric binning");
  }

  void observe(double x) {
    std::lock_guard lock(mutex_);
    shard(detail::current_slot()).add(x);
  }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return bins_; }

  /// Merged view over every rank.
  LinearHistogram merged() const {
    std::lock_guard lock(mutex_);
    LinearHistogram out(lo_, hi_, bins_);
    for (const auto& [_, h] : shards_) merge_into(out, h);
    return out;
  }

  /// One rank's bin counts, laid out [bin 0 .. bin N-1, underflow,
  /// overflow] — the aggregation payload (element-wise summable).
  std::vector<std::uint64_t> local_counts(int rank) const {
    std::lock_guard lock(mutex_);
    std::vector<std::uint64_t> out(bins_ + 2, 0);
    const auto it = shards_.find(detail::slot_for_rank(rank));
    if (it == shards_.end()) return out;
    for (std::size_t b = 0; b < bins_; ++b) out[b] = it->second.count(b);
    out[bins_] = it->second.underflow();
    out[bins_ + 1] = it->second.overflow();
    return out;
  }

  std::uint64_t total() const { return merged().total(); }

  void reset() {
    std::lock_guard lock(mutex_);
    shards_.clear();
  }

 private:
  LinearHistogram& shard(std::size_t slot) {
    auto it = shards_.find(slot);
    if (it == shards_.end())
      it = shards_.emplace(slot, LinearHistogram(lo_, hi_, bins_)).first;
    return it->second;
  }

  static void merge_into(LinearHistogram& acc, const LinearHistogram& h) {
    // Replays bin contents by center; under/overflow transfer via sentinels.
    for (std::size_t b = 0; b < h.bins(); ++b)
      for (std::uint64_t c = 0; c < h.count(b); ++c) acc.add(h.bin_center(b));
    for (std::uint64_t c = 0; c < h.underflow(); ++c) acc.add(acc.bin_lo(0) - 1.0);
    for (std::uint64_t c = 0; c < h.overflow(); ++c)
      acc.add(acc.bin_lo(0) + (acc.width() * static_cast<double>(acc.bins())) + 1.0);
  }

  double lo_, hi_;
  std::size_t bins_;
  mutable std::mutex mutex_;
  std::map<std::size_t, LinearHistogram> shards_;
};

/// Process-wide registry of named metrics. References returned are stable
/// for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance() {
    static MetricsRegistry registry;
    return registry;
  }

  Counter& counter(const std::string& name) {
    std::lock_guard lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
  }

  Gauge& gauge(const std::string& name) {
    std::lock_guard lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
  }

  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins) {
    std::lock_guard lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<HistogramMetric>(lo, hi, bins);
    return *slot;
  }

  bool has_counter(const std::string& name) const {
    std::lock_guard lock(mutex_);
    return counters_.count(name) != 0;
  }
  bool has_histogram(const std::string& name) const {
    std::lock_guard lock(mutex_);
    return histograms_.count(name) != 0;
  }

  std::vector<std::string> counter_names() const {
    std::lock_guard lock(mutex_);
    std::vector<std::string> out;
    out.reserve(counters_.size());
    for (const auto& [name, _] : counters_) out.push_back(name);
    return out;  // std::map iteration: already sorted
  }

  std::vector<std::string> histogram_names() const {
    std::lock_guard lock(mutex_);
    std::vector<std::string> out;
    out.reserve(histograms_.size());
    for (const auto& [name, _] : histograms_) out.push_back(name);
    return out;
  }

  /// Zeroes every metric (names and binnings survive). For tests/benches.
  void reset() {
    std::lock_guard lock(mutex_);
    for (auto& [_, c] : counters_) c->reset();
    for (auto& [_, g] : gauges_) g->reset();
    for (auto& [_, h] : histograms_) h->reset();
  }

  /// Plaintext dump of every counter/gauge and histogram totals.
  void print(std::ostream& os) const {
    TextTable t({"metric", "kind", "value"});
    {
      std::lock_guard lock(mutex_);
      for (const auto& [name, c] : counters_)
        t.add_row({name, "counter", std::to_string(c->total())});
      for (const auto& [name, g] : gauges_)
        t.add_row({name, "gauge", TextTable::num(g->value(), 4)});
      for (const auto& [name, h] : histograms_)
        t.add_row({name, "histogram", std::to_string(h->total()) + " samples"});
    }
    t.print(os);
  }

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace cosmo::obs
