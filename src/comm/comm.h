// SPMD message-passing runtime — the MPI stand-in.
//
// The distributed analysis algorithms (parallel FOF merge, particle
// redistribution, distributed FFT transposes) are written against this
// communicator exactly as they would be against MPI: ranks execute the same
// program, exchange typed messages, and call collectives in matching order.
// Here a "rank" is a thread and the transport is an in-process mailbox, but
// the semantics mirror MPI's guarantees:
//   * point-to-point messages between a (source, tag) pair are
//     non-overtaking (FIFO),
//   * collectives must be invoked in the same order by every rank,
//   * recv blocks until a matching message arrives.
// Collectives are layered on point-to-point sends with reserved negative
// tags, so the whole stack is exercised through one code path.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "faults/faults.h"
#include "obs/obs.h"
#include "util/error.h"
#include "util/timer.h"

namespace cosmo::comm {

namespace detail {

struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// One mailbox per destination rank; recv matches on (source, tag) and
/// takes the earliest match to preserve non-overtaking order.
class Mailbox {
 public:
  void put(Message msg) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  Message take(int source, int tag) {
    std::unique_lock lock(mutex_);
    for (;;) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->source == source && it->tag == tag) {
          Message msg = std::move(*it);
          queue_.erase(it);
          return msg;
        }
      }
      cv_.wait(lock);
    }
  }

  /// Takes the earliest message with `tag` whose source has wanted[source]
  /// set — the any-source matching the incremental all-to-all session drains
  /// with. Per-source FIFO still holds: for any single source the earliest
  /// overall match is also that source's earliest message. Non-blocking when
  /// `block` is false (returns nullopt if nothing matches right now).
  std::optional<Message> take_any(int tag, std::span<const std::uint8_t> wanted,
                                  bool block) {
    std::unique_lock lock(mutex_);
    for (;;) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->tag == tag && wanted[static_cast<std::size_t>(it->source)]) {
          Message msg = std::move(*it);
          queue_.erase(it);
          return msg;
        }
      }
      if (!block) return std::nullopt;
      cv_.wait(lock);
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace detail

/// Shared state for one SPMD world: the mailboxes of all ranks.
class World {
 public:
  explicit World(int nranks) : boxes_(static_cast<std::size_t>(nranks)) {
    COSMO_REQUIRE(nranks > 0, "world needs at least one rank");
    for (auto& b : boxes_) b = std::make_unique<detail::Mailbox>();
  }

  int size() const { return static_cast<int>(boxes_.size()); }
  detail::Mailbox& box(int rank) { return *boxes_[static_cast<std::size_t>(rank)]; }

  /// Takes a payload buffer for an outgoing message, recycling a retired one
  /// when available — every send used to heap-allocate a fresh vector, which
  /// dominated small-message cost in the transpose-heavy phases. Reuses are
  /// counted as comm.payload_reuse.
  std::vector<std::byte> acquire_payload(std::size_t bytes) {
    std::vector<std::byte> buf;
    {
      std::lock_guard lock(payload_mutex_);
      if (!payload_pool_.empty()) {
        buf = std::move(payload_pool_.back());
        payload_pool_.pop_back();
      }
    }
    if (buf.capacity() != 0) COSMO_COUNT("comm.payload_reuse", 1);
    buf.resize(bytes);
    return buf;
  }

  /// Returns a consumed message payload to the free-list. Oversized buffers
  /// are dropped so the pool never pins more than
  /// kMaxPooledPayloads × kMaxPooledPayloadBytes of idle memory.
  void release_payload(std::vector<std::byte>&& buf) {
    if (buf.capacity() == 0 || buf.capacity() > kMaxPooledPayloadBytes) return;
    std::lock_guard lock(payload_mutex_);
    if (payload_pool_.size() < kMaxPooledPayloads)
      payload_pool_.push_back(std::move(buf));
  }

 private:
  static constexpr std::size_t kMaxPooledPayloads = 32;
  static constexpr std::size_t kMaxPooledPayloadBytes = std::size_t{8} << 20;

  std::vector<std::unique_ptr<detail::Mailbox>> boxes_;
  std::mutex payload_mutex_;
  std::vector<std::vector<std::byte>> payload_pool_;
};

/// Reduction operators for reduce/allreduce/scan.
enum class ReduceOp { Sum, Min, Max };

/// Per-rank communicator handle. Not thread-safe within one rank (as with
/// MPI, a rank issues its communication calls sequentially).
class Comm {
 public:
  /// Retransmission budget when a payload delivery is dropped (fault
  /// injection site "comm.send"; each retry re-checks "comm.redeliver").
  static constexpr int kMaxRedeliveries = 3;

  Comm(World& world, int rank) : world_(&world), rank_(rank) {
    COSMO_REQUIRE(rank >= 0 && rank < world.size(), "rank out of range");
  }

  int rank() const { return rank_; }
  int size() const { return world_->size(); }

  // ---- point-to-point ----------------------------------------------------

  /// Sends a typed buffer; T must be trivially copyable. Non-blocking in the
  /// MPI "buffered send" sense: the payload is copied into the mailbox.
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    COSMO_REQUIRE(tag >= 0, "negative tags are reserved for collectives");
    send_raw(dest, tag, data);
  }

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send(dest, tag, std::span<const T>(&value, 1));
  }

  /// Blocks until a message with matching (source, tag) arrives.
  template <typename T>
  std::vector<T> recv(int source, int tag) {
    COSMO_REQUIRE(tag >= 0, "negative tags are reserved for collectives");
    return recv_raw<T>(source, tag);
  }

  template <typename T>
  T recv_value(int source, int tag) {
    auto v = recv<T>(source, tag);
    COSMO_REQUIRE(v.size() == 1, "recv_value expected a single element");
    return v[0];
  }

  // ---- collectives (must be called in matching order on every rank) ------

  void barrier() {
    COSMO_COUNT("comm.barrier", 1);
    // Linear fan-in to rank 0, then fan-out. O(P) messages, trivially correct.
    std::uint8_t token = 1;
    if (rank_ == 0) {
      for (int r = 1; r < size(); ++r) recv_raw<std::uint8_t>(r, kTagBarrierIn);
      for (int r = 1; r < size(); ++r)
        send_raw(r, kTagBarrierOut, std::span<const std::uint8_t>(&token, 1));
    } else {
      send_raw(0, kTagBarrierIn, std::span<const std::uint8_t>(&token, 1));
      recv_raw<std::uint8_t>(0, kTagBarrierOut);
    }
  }

  /// Broadcasts root's buffer to all ranks (buffer is resized on receivers).
  template <typename T>
  void bcast(std::vector<T>& data, int root = 0) {
    COSMO_COUNT("comm.bcast", 1);
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r)
        if (r != root) send_raw(r, kTagBcast, std::span<const T>(data));
    } else {
      data = recv_raw<T>(root, kTagBcast);
    }
  }

  /// Element-wise reduction of equal-length vectors onto root.
  template <typename T>
  std::vector<T> reduce(std::span<const T> local, ReduceOp op, int root = 0) {
    COSMO_COUNT("comm.reduce", 1);
    if (rank_ != root) {
      send_raw(root, kTagReduce, local);
      return {};
    }
    std::vector<T> acc(local.begin(), local.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      auto other = recv_raw<T>(r, kTagReduce);
      COSMO_REQUIRE(other.size() == acc.size(), "reduce length mismatch");
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = combine(acc[i], other[i], op);
    }
    return acc;
  }

  /// Element-wise reduction visible on all ranks.
  template <typename T>
  std::vector<T> allreduce(std::span<const T> local, ReduceOp op) {
    std::vector<T> result = reduce(local, op, 0);
    bcast(result, 0);
    return result;
  }

  /// Scalar convenience overload.
  template <typename T>
  T allreduce_value(T value, ReduceOp op) {
    return allreduce(std::span<const T>(&value, 1), op)[0];
  }

  /// Gathers variable-length buffers onto root, concatenated in rank order.
  /// `counts` (root only) receives each rank's element count.
  template <typename T>
  std::vector<T> gatherv(std::span<const T> local, int root = 0,
                         std::vector<std::size_t>* counts = nullptr) {
    COSMO_COUNT("comm.gatherv", 1);
    if (rank_ != root) {
      send_raw(root, kTagGather, local);
      return {};
    }
    std::vector<T> all;
    if (counts) counts->assign(static_cast<std::size_t>(size()), 0);
    for (int r = 0; r < size(); ++r) {
      std::vector<T> part;
      if (r == root)
        part.assign(local.begin(), local.end());
      else
        part = recv_raw<T>(r, kTagGather);
      if (counts) (*counts)[static_cast<std::size_t>(r)] = part.size();
      all.insert(all.end(), part.begin(), part.end());
    }
    return all;
  }

  /// Allgather of variable-length buffers, concatenated in rank order.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> local,
                            std::vector<std::size_t>* counts = nullptr) {
    std::vector<std::size_t> root_counts;
    std::vector<T> all = gatherv(local, 0, &root_counts);
    bcast(all, 0);
    if (counts) {
      *counts = std::move(root_counts);
      bcast(*counts, 0);
    } else if (rank_ == 0) {
      // nothing further to distribute
    }
    return all;
  }

  /// Allgather of one scalar per rank.
  template <typename T>
  std::vector<T> allgather_value(T value) {
    return allgatherv(std::span<const T>(&value, 1));
  }

  /// Personalized all-to-all: send[dest] goes to rank dest; returns one
  /// buffer per source rank. This is the redistribution workhorse (particle
  /// exchange, FFT transpose).
  template <typename T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& send) {
    COSMO_REQUIRE(static_cast<int>(send.size()) == size(),
                  "alltoallv needs one buffer per destination rank");
    COSMO_COUNT("comm.alltoallv", 1);
    // Stagger destinations so mailboxes fill roughly evenly.
    for (int step = 0; step < size(); ++step) {
      const int dest = (rank_ + step) % size();
      if (dest == rank_) continue;
      send_raw(dest, kTagAllToAll,
               std::span<const T>(send[static_cast<std::size_t>(dest)]));
    }
    std::vector<std::vector<T>> recv_bufs(static_cast<std::size_t>(size()));
    recv_bufs[static_cast<std::size_t>(rank_)] =
        send[static_cast<std::size_t>(rank_)];
    for (int src = 0; src < size(); ++src) {
      if (src == rank_) continue;
      recv_bufs[static_cast<std::size_t>(src)] = recv_raw<T>(src, kTagAllToAll);
    }
    return recv_bufs;
  }

  /// Personalized all-to-all over ONE contiguous buffer with precomputed
  /// counts and displacements — the batched redistribution path (distributed
  /// FFT transposes). `send` is laid out destination-major: rank d's block
  /// starts at sum(send_counts[0..d)). `recv_counts[s]` must equal the
  /// element count rank s sends to this rank (callers with a regular
  /// decomposition know it by symmetry). Returns the received elements
  /// source-major in one contiguous buffer. Compared to alltoallv, this
  /// skips the per-destination vector allocations and the per-source
  /// payload-to-vector copy, and the self block never touches the mailbox.
  template <typename T>
  std::vector<T> alltoallv_flat(std::span<const T> send,
                                std::span<const std::size_t> send_counts,
                                std::span<const std::size_t> recv_counts) {
    const int P = size();
    COSMO_REQUIRE(static_cast<int>(send_counts.size()) == P &&
                      static_cast<int>(recv_counts.size()) == P,
                  "alltoallv_flat needs one count per rank");
    std::vector<std::size_t> sdisp(static_cast<std::size_t>(P) + 1, 0);
    std::vector<std::size_t> rdisp(static_cast<std::size_t>(P) + 1, 0);
    for (int r = 0; r < P; ++r) {
      sdisp[static_cast<std::size_t>(r) + 1] =
          sdisp[static_cast<std::size_t>(r)] +
          send_counts[static_cast<std::size_t>(r)];
      rdisp[static_cast<std::size_t>(r) + 1] =
          rdisp[static_cast<std::size_t>(r)] +
          recv_counts[static_cast<std::size_t>(r)];
    }
    COSMO_REQUIRE(sdisp[static_cast<std::size_t>(P)] == send.size(),
                  "alltoallv_flat send buffer size does not match counts");
    COSMO_COUNT("comm.alltoallv", 1);
    COSMO_COUNT("comm.alltoallv_flat", 1);
    // Stagger destinations so mailboxes fill roughly evenly.
    for (int step = 1; step < P; ++step) {
      const int dest = (rank_ + step) % P;
      send_raw(dest, kTagAllToAll,
               std::span<const T>(
                   send.data() + sdisp[static_cast<std::size_t>(dest)],
                   send_counts[static_cast<std::size_t>(dest)]));
    }
    std::vector<T> recv(rdisp[static_cast<std::size_t>(P)]);
    COSMO_REQUIRE(send_counts[static_cast<std::size_t>(rank_)] ==
                      recv_counts[static_cast<std::size_t>(rank_)],
                  "alltoallv_flat self-block count mismatch");
    std::copy_n(send.data() + sdisp[static_cast<std::size_t>(rank_)],
                send_counts[static_cast<std::size_t>(rank_)],
                recv.data() + rdisp[static_cast<std::size_t>(rank_)]);
    for (int src = 0; src < P; ++src) {
      if (src == rank_) continue;
      recv_raw_into(src, kTagAllToAll,
                    recv.data() + rdisp[static_cast<std::size_t>(src)],
                    recv_counts[static_cast<std::size_t>(src)]);
    }
    return recv;
  }

  /// Inclusive scan of a scalar across ranks (rank r gets op over ranks 0..r).
  template <typename T>
  T scan_value(T value, ReduceOp op) {
    COSMO_COUNT("comm.scan", 1);
    // Linear chain: receive prefix from rank-1, combine, forward.
    T acc = value;
    if (rank_ > 0) {
      const T prefix = recv_raw<T>(rank_ - 1, kTagScan)[0];
      acc = combine(prefix, value, op);
    }
    if (rank_ + 1 < size())
      send_raw(rank_ + 1, kTagScan, std::span<const T>(&acc, 1));
    return acc;
  }

 private:
  template <typename U>
  friend class AlltoallvFlatSession;

  static constexpr int kTagBarrierIn = -1;
  static constexpr int kTagBarrierOut = -2;
  static constexpr int kTagBcast = -3;
  static constexpr int kTagReduce = -4;
  static constexpr int kTagGather = -5;
  static constexpr int kTagAllToAll = -6;
  static constexpr int kTagScan = -7;
  static constexpr int kTagAllToAllPipe = -8;

  template <typename T>
  static T combine(T a, T b, ReduceOp op) {
    switch (op) {
      case ReduceOp::Sum:
        return a + b;
      case ReduceOp::Min:
        return b < a ? b : a;
      case ReduceOp::Max:
        return a < b ? b : a;
    }
    return a;
  }

  template <typename T>
  void send_raw(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    COSMO_REQUIRE(dest >= 0 && dest < size(), "destination rank out of range");
    COSMO_COUNT("comm.msgs_sent", 1);
    COSMO_COUNT("comm.bytes_sent", data.size_bytes());
    if (COSMO_FAULT_POINT("comm.delay")) {
      // Congested link: the payload arrives, just late.
      COSMO_COUNT("comm.delayed_sends", 1);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(COSMO_FAULT_PARAM("comm.delay", 1)));
    }
    // A dropped first delivery is retransmitted up to kMaxRedeliveries
    // times; each retransmission can itself be dropped ("comm.redeliver").
    // Exhausting the redelivery budget is a hard transport failure.
    bool delivered = !COSMO_FAULT_POINT("comm.send");
    if (!delivered) {
      COSMO_COUNT("comm.delivery_drops", 1);
      for (int redelivery = 0; redelivery < kMaxRedeliveries; ++redelivery) {
        COSMO_COUNT("comm.redeliveries", 1);
        if (!COSMO_FAULT_POINT("comm.redeliver")) {
          delivered = true;
          break;
        }
        COSMO_COUNT("comm.delivery_drops", 1);
      }
    }
    COSMO_REQUIRE(delivered, "payload delivery failed after " +
                                 std::to_string(kMaxRedeliveries) +
                                 " redeliveries");
    detail::Message msg;
    msg.source = rank_;
    msg.tag = tag;
    msg.payload = world_->acquire_payload(data.size_bytes());
    if (!data.empty())
      std::memcpy(msg.payload.data(), data.data(), data.size_bytes());
    world_->box(dest).put(std::move(msg));
  }

  /// recv_raw variant writing straight into caller storage (no intermediate
  /// vector): the received payload must be exactly `count` elements.
  template <typename T>
  void recv_raw_into(int source, int tag, T* dst, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    COSMO_REQUIRE(source >= 0 && source < size(), "source rank out of range");
#ifndef COSMO_OBS_DISABLED
    WallTimer wait_timer;
#endif
    detail::Message msg = world_->box(rank_).take(source, tag);
#ifndef COSMO_OBS_DISABLED
    COSMO_COUNT("comm.recv_wait_us",
                static_cast<std::uint64_t>(wait_timer.seconds() * 1e6));
    COSMO_COUNT("comm.msgs_recv", 1);
    COSMO_COUNT("comm.bytes_recv", msg.payload.size());
#endif
    COSMO_REQUIRE(msg.payload.size() == count * sizeof(T),
                  "message size does not match expected element count");
    if (count != 0) std::memcpy(dst, msg.payload.data(), msg.payload.size());
    world_->release_payload(std::move(msg.payload));
  }

  template <typename T>
  std::vector<T> recv_raw(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    COSMO_REQUIRE(source >= 0 && source < size(), "source rank out of range");
#ifndef COSMO_OBS_DISABLED
    WallTimer wait_timer;
#endif
    detail::Message msg = world_->box(rank_).take(source, tag);
#ifndef COSMO_OBS_DISABLED
    COSMO_COUNT("comm.recv_wait_us",
                static_cast<std::uint64_t>(wait_timer.seconds() * 1e6));
    COSMO_COUNT("comm.msgs_recv", 1);
    COSMO_COUNT("comm.bytes_recv", msg.payload.size());
#endif
    COSMO_REQUIRE(msg.payload.size() % sizeof(T) == 0,
                  "message size not a multiple of element size");
    std::vector<T> out(msg.payload.size() / sizeof(T));
    if (!out.empty())
      std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
    world_->release_payload(std::move(msg.payload));
    return out;
  }

  World* world_;
  int rank_;
};

/// Incremental personalized all-to-all — the pipelined counterpart of
/// alltoallv_flat. Where the batched collective requires the whole send
/// buffer up front and delivers the whole receive buffer at once, a session
/// lets the caller
///   * post_block(d, span)  — ship destination d's block the moment it is
///     ready (producers overlap packing with the exchange),
///   * prefetch()           — non-blocking: move every landed block out of
///     the mailbox into the session (payload moves only — cheap enough to
///     call between packs without delaying the caller's own posts),
///   * poll(on_block)       — non-blocking: deliver every block already
///     landed or prefetched (consumers overlap unpacking with later packs),
///   * finish(on_block)     — block until every remaining source block has
///     arrived (payload moves only — no unpack compute runs while peers are
///     still packing), then deliver everything in arrival order.
/// on_block(src, span<const T>) is invoked exactly once per source rank, in
/// arrival order; callers that need a deterministic result must write each
/// block to a source-addressed (disjoint) region, as the FFT transposes do.
///
/// Matching mirrors the collectives' contract: every rank opens sessions in
/// the same order, each session consumes exactly one block per source (the
/// mailbox's per-source FIFO keeps back-to-back sessions from stealing each
/// other's blocks), and the self block never touches the mailbox. Blocks
/// that prefetch/poll found already landed are counted as
/// comm.a2a_blocks_overlapped — the hidden fraction of the exchange.
template <typename T>
class AlltoallvFlatSession {
 public:
  /// `recv_counts[s]` = elements rank s will send to this rank (element
  /// count of each on_block span). One session per collective exchange.
  AlltoallvFlatSession(Comm& comm, std::span<const std::size_t> recv_counts)
      : comm_(&comm),
        recv_counts_(recv_counts.begin(), recv_counts.end()),
        wanted_(static_cast<std::size_t>(comm.size()), std::uint8_t{0}),
        posted_(static_cast<std::size_t>(comm.size()), std::uint8_t{0}),
        peers_remaining_(static_cast<std::size_t>(comm.size()) - 1) {
    static_assert(std::is_trivially_copyable_v<T>);
    COSMO_REQUIRE(static_cast<int>(recv_counts_.size()) == comm.size(),
                  "session needs one recv count per rank");
    // Mailbox matching starts wanting every peer; the self block is
    // delivered out of band at the first poll/finish after its post.
    for (int r = 0; r < comm.size(); ++r)
      wanted_[static_cast<std::size_t>(r)] = r != comm.rank();
    COSMO_COUNT("comm.alltoallv_sessions", 1);
  }

  AlltoallvFlatSession(const AlltoallvFlatSession&) = delete;
  AlltoallvFlatSession& operator=(const AlltoallvFlatSession&) = delete;

  /// Ships destination `dest`'s block. Buffered-send semantics: the data is
  /// copied out immediately, so the caller may reuse the span's storage for
  /// the next block. Each destination must be posted exactly once.
  void post_block(int dest, std::span<const T> block) {
    COSMO_REQUIRE(dest >= 0 && dest < comm_->size(), "destination out of range");
    COSMO_REQUIRE(!posted_[static_cast<std::size_t>(dest)],
                  "session block posted twice");
    posted_[static_cast<std::size_t>(dest)] = 1;
    ++posted_count_;
    if (dest == comm_->rank()) {
      self_.assign(block.begin(), block.end());
      self_pending_ = true;
    } else {
      comm_->send_raw(dest, Comm::kTagAllToAllPipe, block);
    }
  }

  /// Non-blocking drain: delivers every source block already landed (and the
  /// self block once posted). Returns the number of blocks delivered.
  template <typename F>
  std::size_t poll(F&& on_block) {
    return drain(/*block_until_done=*/false, on_block);
  }

  /// Non-blocking receive WITHOUT delivery: moves every landed source block
  /// out of the mailbox into the session's stash (payload pointer moves, no
  /// copy). Cheap enough to call between packs — unlike poll, it never runs
  /// the caller's unpack in the middle of the producing loop, so the
  /// caller's own posts are not delayed behind consume work. Stashed blocks
  /// are delivered first (in arrival order) by the next poll/finish.
  /// Returns the number of blocks stashed.
  std::size_t prefetch() {
    std::size_t taken = 0;
    while (peers_remaining_ > stash_.size()) {
      auto msg = comm_->world_->box(comm_->rank())
                     .take_any(Comm::kTagAllToAllPipe, wanted_, false);
      if (!msg) break;
      COSMO_COUNT("comm.a2a_blocks_overlapped", 1);
      COSMO_COUNT("comm.msgs_recv", 1);
      COSMO_COUNT("comm.bytes_recv", msg->payload.size());
      wanted_[static_cast<std::size_t>(msg->source)] = 0;
      stash_.push_back(std::move(*msg));
      ++taken;
    }
    return taken;
  }

  /// Blocking drain of every outstanding source block. All destinations must
  /// have been posted first (a rank that blocked here without sending would
  /// deadlock its peers). Every outstanding block is received (payload moves
  /// only) BEFORE any on_block runs, so the unpack compute of early arrivals
  /// never steals cycles from the stragglers still packing. After finish the
  /// session is complete.
  template <typename F>
  void finish(F&& on_block) {
    COSMO_REQUIRE(posted_count_ == comm_->size(),
                  "session finish before every block was posted");
    drain(/*block_until_done=*/true, on_block);
  }

  /// Blocks (self included) not yet delivered to on_block.
  std::size_t remaining() const {
    return peers_remaining_ + (self_delivered_ ? 0 : 1);
  }

 private:
  template <typename F>
  std::size_t drain(bool block_until_done, F& on_block) {
    std::size_t delivered = 0;
    // Blocking drain: pull EVERY outstanding block into the stash before
    // running any unpack compute. While this rank waits, the stragglers it
    // waits on are still packing — interposing consume work between takes
    // would slow exactly those peers whenever cores are shared (the
    // co-scheduled regime), lengthening everyone's wait. Payload moves are
    // the only work inside the timed window, so comm.recv_wait_us measures
    // pure block availability, comparable across exchange modes.
    if (block_until_done) {
      while (stash_.size() < peers_remaining_) {
#ifndef COSMO_OBS_DISABLED
        WallTimer wait_timer;
#endif
        auto msg = comm_->world_->box(comm_->rank())
                       .take_any(Comm::kTagAllToAllPipe, wanted_, true);
#ifndef COSMO_OBS_DISABLED
        COSMO_COUNT("comm.recv_wait_us",
                    static_cast<std::uint64_t>(wait_timer.seconds() * 1e6));
#endif
        COSMO_COUNT("comm.msgs_recv", 1);
        COSMO_COUNT("comm.bytes_recv", msg->payload.size());
        wanted_[static_cast<std::size_t>(msg->source)] = 0;
        stash_.push_back(std::move(*msg));
      }
    }
    if (self_pending_) {
      self_pending_ = false;
      self_delivered_ = true;
      on_block(comm_->rank(), std::span<const T>(self_));
      self_.clear();
      self_.shrink_to_fit();
      ++delivered;
    }
    // Stashed blocks in arrival order.
    while (!stash_.empty()) {
      detail::Message msg = std::move(stash_.front());
      stash_.erase(stash_.begin());
      deliver(std::move(msg), on_block);
      ++delivered;
    }
    while (!block_until_done && peers_remaining_ > 0) {
      auto msg = comm_->world_->box(comm_->rank())
                     .take_any(Comm::kTagAllToAllPipe, wanted_, false);
      if (!msg) break;
      COSMO_COUNT("comm.a2a_blocks_overlapped", 1);
      COSMO_COUNT("comm.msgs_recv", 1);
      COSMO_COUNT("comm.bytes_recv", msg->payload.size());
      wanted_[static_cast<std::size_t>(msg->source)] = 0;
      deliver(std::move(*msg), on_block);
      ++delivered;
    }
    return delivered;
  }

  template <typename F>
  void deliver(detail::Message&& msg, F& on_block) {
    const int src = msg.source;
    const std::size_t count = recv_counts_[static_cast<std::size_t>(src)];
    COSMO_REQUIRE(msg.payload.size() == count * sizeof(T),
                  "session block size does not match recv count");
    on_block(src,
             std::span<const T>(
                 reinterpret_cast<const T*>(msg.payload.data()), count));
    comm_->world_->release_payload(std::move(msg.payload));
    --peers_remaining_;
  }

  Comm* comm_;
  std::vector<std::size_t> recv_counts_;
  std::vector<std::uint8_t> wanted_;  // mailbox sources still outstanding
  std::vector<std::uint8_t> posted_;  // destinations already posted
  std::vector<T> self_;               // copy of the self block until delivery
  bool self_pending_ = false;
  bool self_delivered_ = false;
  int posted_count_ = 0;
  std::size_t peers_remaining_;  // mailbox blocks not yet delivered
  std::vector<detail::Message> stash_;  // prefetched, undelivered blocks
};

/// Runs `body` as an SPMD program on `nranks` rank-threads and joins them.
/// The first exception thrown by any rank is rethrown to the caller.
inline void run_spmd(int nranks, const std::function<void(Comm&)>& body) {
  World world(nranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &body, &errors, r] {
      // Bind this thread's rank for the observability layer: spans and
      // metric shards recorded anywhere below carry the right rank.
      obs::RankScope rank_scope(r);
      try {
        Comm comm(world, r);
        COSMO_TRACE_SPAN("spmd.rank");
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace cosmo::comm
