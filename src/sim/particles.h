// Particle container — the Level 1 data structure.
//
// Structure-of-arrays layout matching HACC's: per-particle payload is
// 36 bytes (x, y, z, vx, vy, vz, phi as float; a 64-bit tag), the figure
// Table 1 uses to size Level 1 data. SoA keeps the analysis kernels
// (potential sums, CIC deposits) on contiguous, predictable memory.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace cosmo::sim {

/// SoA particle set. All arrays always have equal length.
class ParticleSet {
 public:
  /// HACC's per-particle storage cost (Table 1): 7 floats + int64 tag.
  static constexpr std::size_t kBytesPerParticle = 36;

  ParticleSet() = default;
  explicit ParticleSet(std::size_t n) { resize(n); }

  std::size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }
  std::uint64_t bytes() const { return size() * kBytesPerParticle; }

  void resize(std::size_t n) {
    x.resize(n);
    y.resize(n);
    z.resize(n);
    vx.resize(n);
    vy.resize(n);
    vz.resize(n);
    phi.resize(n);
    tag.resize(n);
  }

  void reserve(std::size_t n) {
    x.reserve(n);
    y.reserve(n);
    z.reserve(n);
    vx.reserve(n);
    vy.reserve(n);
    vz.reserve(n);
    phi.reserve(n);
    tag.reserve(n);
  }

  void clear() { resize(0); }

  void push_back(float px, float py, float pz, float pvx, float pvy, float pvz,
                 std::int64_t ptag, float pphi = 0.0f) {
    x.push_back(px);
    y.push_back(py);
    z.push_back(pz);
    vx.push_back(pvx);
    vy.push_back(pvy);
    vz.push_back(pvz);
    phi.push_back(pphi);
    tag.push_back(ptag);
  }

  /// Appends all of `other`.
  void append(const ParticleSet& other) {
    x.insert(x.end(), other.x.begin(), other.x.end());
    y.insert(y.end(), other.y.begin(), other.y.end());
    z.insert(z.end(), other.z.begin(), other.z.end());
    vx.insert(vx.end(), other.vx.begin(), other.vx.end());
    vy.insert(vy.end(), other.vy.begin(), other.vy.end());
    vz.insert(vz.end(), other.vz.begin(), other.vz.end());
    phi.insert(phi.end(), other.phi.begin(), other.phi.end());
    tag.insert(tag.end(), other.tag.begin(), other.tag.end());
  }

  /// Copies particle j of `other` onto the end of this set.
  void push_from(const ParticleSet& other, std::size_t j) {
    push_back(other.x[j], other.y[j], other.z[j], other.vx[j], other.vy[j],
              other.vz[j], other.tag[j], other.phi[j]);
  }

  /// New set holding the given particle indices, in order.
  template <typename IndexRange>
  ParticleSet select(const IndexRange& indices) const {
    ParticleSet out;
    out.reserve(indices.size());
    for (const auto i : indices) out.push_from(*this, static_cast<std::size_t>(i));
    return out;
  }

  /// Wraps all positions into [0, box) (periodic boundary conditions).
  /// Non-finite coordinates fail fast: a NaN would sail through any
  /// comparison-based wrap and corrupt slab routing in redistribute()
  /// much later, and −inf made the old while-loop wrap spin forever
  /// (−inf + box == −inf).
  void wrap_positions(float box) {
    COSMO_REQUIRE(box > 0.0f, "box size must be positive");
    auto wrap = [box](float& v) {
      v = std::fmod(v, box);
      if (v < 0.0f) v += box;
      // fmod(-ε, box) + box can round up to exactly box; fold it to 0.
      if (v >= box) v -= box;
    };
    for (std::size_t i = 0; i < size(); ++i) {
      COSMO_REQUIRE(
          std::isfinite(x[i]) && std::isfinite(y[i]) && std::isfinite(z[i]),
          "non-finite particle position — the integrator diverged");
      wrap(x[i]);
      wrap(y[i]);
      wrap(z[i]);
    }
  }

  std::vector<float> x, y, z;
  std::vector<float> vx, vy, vz;
  std::vector<float> phi;  ///< potential (filled by center finders)
  std::vector<std::int64_t> tag;
};

/// Minimum-image distance-squared helper for periodic boxes.
inline double periodic_dist2(double dx, double dy, double dz, double box) {
  auto fold = [box](double d) {
    if (d > 0.5 * box) d -= box;
    if (d < -0.5 * box) d += box;
    return d;
  };
  dx = fold(dx);
  dy = fold(dy);
  dz = fold(dz);
  return dx * dx + dy * dy + dz * dz;
}

}  // namespace cosmo::sim
