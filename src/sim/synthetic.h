// Synthetic clustered universe generator.
//
// The paper's workflow results are driven by one statistical property of the
// particle data: a halo population whose mass function has a long tail of
// rare, very large objects (the Q Continuum's handful of ~25M-particle halos
// among billions of 40-particle ones). Running a real N-body simulation to
// that regime is impossible here, so this generator plants an explicit halo
// catalog — masses drawn from a power-law mass function, NFW radial
// profiles, optional sub-clumps — plus a uniform background. It produces
// Level 1 particle data with the right clustering *shape* at laptop sizes,
// and returns the ground-truth catalog so analysis results are verifiable.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "comm/comm.h"
#include "sim/cosmology.h"
#include "sim/decomposition.h"
#include "sim/particles.h"
#include "util/error.h"
#include "util/rng.h"

namespace cosmo::sim {

struct SyntheticConfig {
  double box = 64.0;            ///< Mpc/h
  std::uint64_t seed = 2015;
  std::size_t halo_count = 200;         ///< number of planted halos
  std::size_t min_particles = 40;       ///< smallest halo (FOF floor)
  std::size_t max_particles = 100000;   ///< largest halo (the rare monster)
  double mass_slope = 1.9;              ///< dn/dm ∝ m^-slope
  std::size_t background_particles = 20000;  ///< uniform unclustered field
  double concentration = 5.0;           ///< NFW c = r_vir / r_s
  double subclump_fraction = 0.1;       ///< mass fraction in subhalos
  std::size_t subclump_min_host = 5000; ///< plant subclumps above this size
};

/// Ground truth for one planted halo.
struct TruthHalo {
  double cx, cy, cz;           ///< center (Mpc/h)
  std::size_t particles;       ///< particle count (mass ∝ this)
  double r_vir;                ///< virial-ish radius used for sampling
  std::int64_t first_tag;      ///< tags are [first_tag, first_tag+particles)
  std::size_t subclumps;       ///< planted substructure count
};

struct SyntheticUniverse {
  ParticleSet local;               ///< this rank's slab of Level 1 particles
  std::vector<TruthHalo> truth;    ///< global catalog (same on every rank)
  std::uint64_t total_particles;   ///< global particle count
};

namespace detail {

/// NFW enclosed-mass profile μ(x) = ln(1+x) − x/(1+x).
inline double nfw_mu(double x) { return std::log1p(x) - x / (1.0 + x); }

/// Inverts μ on [0, c] by bisection to sample an NFW radius.
inline double nfw_sample_x(double u, double c) {
  const double target = u * nfw_mu(c);
  double lo = 0.0, hi = c;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    (nfw_mu(mid) < target ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

/// Power-law mass sample via inverse CDF: pdf ∝ m^-slope on [mmin, mmax].
inline double powerlaw_mass(Rng& rng, double mmin, double mmax, double slope) {
  const double g = 1.0 - slope;
  if (std::abs(g) < 1e-9) {
    // slope == 1: log-uniform.
    return mmin * std::pow(mmax / mmin, rng.uniform());
  }
  const double lo = std::pow(mmin, g), hi = std::pow(mmax, g);
  return std::pow(lo + rng.uniform() * (hi - lo), 1.0 / g);
}

/// Isotropic unit vector.
inline void random_direction(Rng& rng, double& ux, double& uy, double& uz) {
  const double cz = rng.uniform(-1.0, 1.0);
  const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double s = std::sqrt(1.0 - cz * cz);
  ux = s * std::cos(phi);
  uy = s * std::sin(phi);
  uz = cz;
}

/// Samples `count` NFW-distributed particles around a center and appends
/// them. σ_v scales like sqrt(M/r) (arbitrary normalization — analysis
/// kernels only need a sensible velocity structure, not calibrated orbits).
inline void sample_nfw_blob(Rng& rng, ParticleSet& out, double cx, double cy,
                            double cz, double r_vir, double conc,
                            std::size_t count, std::int64_t tag0,
                            double sigma_v) {
  const double r_s = r_vir / conc;
  for (std::size_t i = 0; i < count; ++i) {
    const double x = nfw_sample_x(rng.uniform(), conc);
    const double r = x * r_s;
    double ux, uy, uz;
    random_direction(rng, ux, uy, uz);
    out.push_back(static_cast<float>(cx + r * ux),
                  static_cast<float>(cy + r * uy),
                  static_cast<float>(cz + r * uz),
                  static_cast<float>(rng.normal(0.0, sigma_v)),
                  static_cast<float>(rng.normal(0.0, sigma_v)),
                  static_cast<float>(rng.normal(0.0, sigma_v)),
                  tag0 + static_cast<std::int64_t>(i));
  }
}

}  // namespace detail

/// Virial-style radius for a halo of n equal-mass particles: chosen so the
/// mean density inside r_vir is 200× the cosmic mean. This makes planted
/// halos compact relative to any sensible FOF linking length.
inline double synthetic_halo_radius(const Cosmology& cosmo, double box,
                                    std::uint64_t total_particles,
                                    std::size_t n) {
  const double m_p = cosmo.mean_density() * box * box * box /
                     static_cast<double>(total_particles);
  const double m = m_p * static_cast<double>(n);
  const double rho = 200.0 * cosmo.mean_density();
  return std::cbrt(3.0 * m / (4.0 * std::numbers::pi * rho));
}

/// Total particle count implied by a config, without generating particles
/// (replays the catalog pass — deterministic, rank-independent).
inline std::uint64_t synthetic_total_particles(const SyntheticConfig& cfg) {
  Rng cat_rng(cfg.seed, 0);
  std::uint64_t halo_particles = 0;
  for (std::size_t h = 0; h < cfg.halo_count; ++h) {
    halo_particles += static_cast<std::size_t>(detail::powerlaw_mass(
        cat_rng, static_cast<double>(cfg.min_particles),
        static_cast<double>(cfg.max_particles) + 0.999, cfg.mass_slope));
    cat_rng.uniform(0.0, cfg.box);
    cat_rng.uniform(0.0, cfg.box);
    cat_rng.uniform(0.0, cfg.box);
  }
  return halo_particles + cfg.background_particles;
}

/// Builds the universe. The halo catalog is generated identically on every
/// rank (same seed); each rank samples particles only for halos whose
/// centers it owns, then everything is redistributed to its owner slab.
inline SyntheticUniverse generate_synthetic(comm::Comm& comm,
                                            const Cosmology& cosmo,
                                            const SyntheticConfig& cfg) {
  COSMO_REQUIRE(cfg.min_particles >= 2, "halos need at least two particles");
  COSMO_REQUIRE(cfg.max_particles >= cfg.min_particles,
                "max_particles below min_particles");
  SlabDecomposition decomp(comm.size(), cfg.box);

  // Pass 1 (identical on all ranks): the halo catalog.
  Rng cat_rng(cfg.seed, 0);
  SyntheticUniverse u;
  u.truth.reserve(cfg.halo_count);
  std::uint64_t halo_particles = 0;
  for (std::size_t h = 0; h < cfg.halo_count; ++h) {
    TruthHalo t{};
    t.particles = static_cast<std::size_t>(detail::powerlaw_mass(
        cat_rng, static_cast<double>(cfg.min_particles),
        static_cast<double>(cfg.max_particles) + 0.999, cfg.mass_slope));
    t.cx = cat_rng.uniform(0.0, cfg.box);
    t.cy = cat_rng.uniform(0.0, cfg.box);
    t.cz = cat_rng.uniform(0.0, cfg.box);
    t.first_tag = static_cast<std::int64_t>(halo_particles);
    halo_particles += t.particles;
    u.truth.push_back(t);
  }
  u.total_particles = halo_particles + cfg.background_particles;

  // Radii need the global particle count, so fill them in a second sweep.
  for (auto& t : u.truth) {
    t.r_vir = synthetic_halo_radius(cosmo, cfg.box, u.total_particles,
                                    t.particles);
    t.subclumps = (t.particles >= cfg.subclump_min_host &&
                   cfg.subclump_fraction > 0.0)
                      ? 2 + t.particles / (4 * cfg.subclump_min_host)
                      : 0;
  }

  // Pass 2: sample particles for the halos this rank owns.
  ParticleSet mine;
  for (std::size_t h = 0; h < u.truth.size(); ++h) {
    const TruthHalo& t = u.truth[h];
    if (decomp.owner_of(t.cz) != comm.rank()) continue;
    Rng rng(cfg.seed, 1000 + h);  // per-halo stream: rank-count independent
    const double sigma_v =
        0.05 * std::sqrt(static_cast<double>(t.particles) / t.r_vir);
    std::size_t remaining = t.particles;
    std::int64_t tag = t.first_tag;
    // Substructure: carve off subclump_fraction of the mass into smaller
    // NFW blobs inside the host — the subhalo finder's targets.
    if (t.subclumps > 0) {
      const auto sub_total = static_cast<std::size_t>(
          cfg.subclump_fraction * static_cast<double>(t.particles));
      for (std::size_t s = 0; s < t.subclumps && remaining > 0; ++s) {
        std::size_t sub_n = sub_total / t.subclumps;
        if (sub_n < 50) sub_n = 50;
        if (sub_n > remaining) sub_n = remaining;
        // Place the clump at an NFW-weighted radius inside the host.
        const double xr = detail::nfw_sample_x(rng.uniform(), cfg.concentration);
        double ux, uy, uz;
        detail::random_direction(rng, ux, uy, uz);
        const double r_host = xr * (t.r_vir / cfg.concentration);
        const double sub_r = synthetic_halo_radius(cosmo, cfg.box,
                                                   u.total_particles, sub_n);
        detail::sample_nfw_blob(rng, mine, t.cx + r_host * ux,
                                t.cy + r_host * uy, t.cz + r_host * uz, sub_r,
                                cfg.concentration, sub_n, tag,
                                0.3 * sigma_v);
        tag += static_cast<std::int64_t>(sub_n);
        remaining -= sub_n;
      }
    }
    detail::sample_nfw_blob(rng, mine, t.cx, t.cy, t.cz, t.r_vir,
                            cfg.concentration, remaining, tag, sigma_v);
  }

  // Background field: split evenly across ranks (per-rank streams).
  {
    Rng rng(cfg.seed, 500000 + static_cast<std::uint64_t>(comm.rank()));
    const auto P = static_cast<std::size_t>(comm.size());
    const auto r = static_cast<std::size_t>(comm.rank());
    std::size_t n_bg = cfg.background_particles / P +
                       (r < cfg.background_particles % P ? 1 : 0);
    std::int64_t tag = static_cast<std::int64_t>(halo_particles) +
                       static_cast<std::int64_t>(
                           r * (cfg.background_particles / P) +
                           std::min<std::size_t>(r, cfg.background_particles % P));
    for (std::size_t i = 0; i < n_bg; ++i)
      mine.push_back(static_cast<float>(rng.uniform(0.0, cfg.box)),
                     static_cast<float>(rng.uniform(0.0, cfg.box)),
                     static_cast<float>(rng.uniform(0.0, cfg.box)),
                     static_cast<float>(rng.normal(0.0, 1.0)),
                     static_cast<float>(rng.normal(0.0, 1.0)),
                     static_cast<float>(rng.normal(0.0, 1.0)),
                     tag + static_cast<std::int64_t>(i));
  }

  u.local = decomp.redistribute(comm, std::move(mine));
  return u;
}

}  // namespace cosmo::sim
