// Slab domain decomposition with overload (ghost) regions.
//
// HACC decomposes the periodic box across ranks and defines "overload
// regions" at rank boundaries: each neighbor receives a copy of the
// particles within the overload width, sized so that every FOF halo is
// found whole by at least one rank (§3.3.1). We use z-slabs, which also
// match the distributed FFT's real-space layout, so the PM solver and the
// analysis share one decomposition.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "comm/comm.h"
#include "sim/particles.h"
#include "util/error.h"

namespace cosmo::sim {

/// Wire format for particle exchange (trivially copyable).
struct PackedParticle {
  float x, y, z, vx, vy, vz, phi;
  std::int64_t tag;
};
static_assert(std::is_trivially_copyable_v<PackedParticle>);

inline PackedParticle pack_particle(const ParticleSet& p, std::size_t i) {
  return PackedParticle{p.x[i],  p.y[i],  p.z[i],   p.vx[i],
                        p.vy[i], p.vz[i], p.phi[i], p.tag[i]};
}

inline void unpack_particle(const PackedParticle& w, ParticleSet& p) {
  p.push_back(w.x, w.y, w.z, w.vx, w.vy, w.vz, w.tag, w.phi);
}

/// Periodic z-slab decomposition of an L^3 box across the communicator.
class SlabDecomposition {
 public:
  SlabDecomposition(int nranks, double box) : nranks_(nranks), box_(box) {
    COSMO_REQUIRE(nranks > 0, "need at least one rank");
    COSMO_REQUIRE(box > 0.0, "box must be positive");
  }

  double box() const { return box_; }
  int nranks() const { return nranks_; }
  double slab_thickness() const { return box_ / nranks_; }
  double z_lo(int rank) const { return slab_thickness() * rank; }
  double z_hi(int rank) const { return slab_thickness() * (rank + 1); }

  /// Rank owning position z (z is wrapped into [0, box) first).
  int owner_of(double zpos) const {
    double zz = zpos;
    while (zz < 0.0) zz += box_;
    while (zz >= box_) zz -= box_;
    int r = static_cast<int>(zz / slab_thickness());
    if (r >= nranks_) r = nranks_ - 1;
    return r;
  }

  /// Moves every particle to its owner rank (alltoallv). Positions are
  /// wrapped into the box before routing.
  ParticleSet redistribute(comm::Comm& comm, ParticleSet local) const {
    COSMO_REQUIRE(comm.size() == nranks_, "communicator/decomposition mismatch");
    local.wrap_positions(static_cast<float>(box_));
    std::vector<std::vector<PackedParticle>> send(
        static_cast<std::size_t>(nranks_));
    for (std::size_t i = 0; i < local.size(); ++i)
      send[static_cast<std::size_t>(owner_of(local.z[i]))].push_back(
          pack_particle(local, i));
    auto recv = comm.alltoallv(send);
    ParticleSet owned;
    std::size_t total = 0;
    for (const auto& buf : recv) total += buf.size();
    owned.reserve(total);
    for (const auto& buf : recv)
      for (const auto& w : buf) unpack_particle(w, owned);
    return owned;
  }

  /// Result of an overload exchange: the rank's owned particles followed by
  /// ghost copies received from neighbors. `owned_count` marks the split.
  struct Overloaded {
    ParticleSet particles;
    std::size_t owned_count = 0;
  };

  /// Exchanges ghost copies of particles within `width` of the slab faces
  /// with both periodic neighbors. Ghost z-positions are kept unwrapped
  /// (they may lie slightly outside [0, box)) so distance computations near
  /// the boundary need no minimum-image logic inside a slab's neighborhood.
  Overloaded exchange_overload(comm::Comm& comm, const ParticleSet& owned,
                               double width) const {
    COSMO_REQUIRE(comm.size() == nranks_, "communicator/decomposition mismatch");
    COSMO_REQUIRE(width >= 0.0 && width < slab_thickness(),
                  "overload width must be smaller than the slab thickness");
    Overloaded out;
    out.particles = owned;
    out.owned_count = owned.size();
    if (nranks_ == 1) {
      // Self-ghosts across the periodic boundary: replicate boundary
      // particles shifted by ±box so single-rank FOF sees the wrap.
      if (width > 0.0) append_periodic_self_ghosts(out.particles, width);
      return out;
    }

    const int rank = comm.rank();
    const int lo_nbr = (rank + nranks_ - 1) % nranks_;
    const int hi_nbr = (rank + 1) % nranks_;
    const double zlo = z_lo(rank), zhi = z_hi(rank);

    std::vector<std::vector<PackedParticle>> send(
        static_cast<std::size_t>(nranks_));
    for (std::size_t i = 0; i < owned.size(); ++i) {
      const double zz = owned.z[i];
      if (zz < zlo + width) {
        PackedParticle w = pack_particle(owned, i);
        // Crossing the periodic seam: shift so the ghost is contiguous with
        // the receiver's slab.
        if (rank == 0) w.z += static_cast<float>(box_);
        send[static_cast<std::size_t>(lo_nbr)].push_back(w);
      }
      if (zz >= zhi - width) {
        PackedParticle w = pack_particle(owned, i);
        if (rank == nranks_ - 1) w.z -= static_cast<float>(box_);
        send[static_cast<std::size_t>(hi_nbr)].push_back(w);
      }
    }
    auto recv = comm.alltoallv(send);
    for (const auto& buf : recv)
      for (const auto& w : buf) unpack_particle(w, out.particles);
    return out;
  }

 private:
  void append_periodic_self_ghosts(ParticleSet& p, double width) const {
    const std::size_t n = p.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (p.z[i] < width) {
        PackedParticle w = pack_particle(p, i);
        w.z += static_cast<float>(box_);
        unpack_particle(w, p);
      } else if (p.z[i] >= box_ - width) {
        PackedParticle w = pack_particle(p, i);
        w.z -= static_cast<float>(box_);
        unpack_particle(w, p);
      }
    }
  }

  int nranks_;
  double box_;
};

}  // namespace cosmo::sim
