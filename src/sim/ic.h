// Zel'dovich initial conditions.
//
// A Gaussian random field with the linear power spectrum is generated in
// k space on the distributed grid; the displacement field ψ = (ik/k²) δ̂ is
// inverse-transformed, and particles start on a uniform lattice displaced
// by D(a_i) ψ with Zel'dovich-consistent momenta. The particle lattice
// matches the force grid (np == ng, as the paper notes is typical for HACC).
//
// Discrete Fourier conventions used throughout (also by the power-spectrum
// analysis so generation and measurement agree):
//   δ(x) = (1/N) Σ_k δ̂_k e^{ikx},  ⟨|δ̂_k|²⟩ = (N²/V) P(k),  N = ng³, V = L³.
#pragma once

#include <cmath>
#include <cstddef>
#include <numbers>
#include <vector>

#include "comm/comm.h"
#include "fft/distributed_fft.h"
#include "fft/fft.h"
#include "sim/cosmology.h"
#include "sim/decomposition.h"
#include "sim/particles.h"
#include "util/error.h"
#include "util/rng.h"

namespace cosmo::sim {

struct IcConfig {
  std::size_t ng = 32;    ///< particles and grid points per dimension
  double box = 64.0;      ///< Mpc/h
  double z_init = 50.0;   ///< starting redshift
  std::uint64_t seed = 12345;
};

/// Generates this rank's slab of Zel'dovich-displaced particles. Momenta are
/// stored in the PM code units (p = a²ẋ, grid units, t in 1/H0), matching
/// PmSolver::step.
inline ParticleSet zeldovich_ics(comm::Comm& comm, const Cosmology& cosmo,
                                 const IcConfig& cfg) {
  const std::size_t ng = cfg.ng;
  fft::DistributedFft dfft(comm, ng);
  const std::size_t nzl = dfft.slab_thickness();
  const std::size_t z0 = dfft.slab_start();

  // White noise in real space, seeded per *global plane* so the field is
  // independent of the rank count.
  std::vector<fft::Complex> noise(dfft.local_size());
  for (std::size_t zl = 0; zl < nzl; ++zl) {
    Rng rng(cfg.seed, z0 + zl);
    for (std::size_t i = 0; i < ng * ng; ++i)
      noise[zl * ng * ng + i] = fft::Complex(rng.normal(), 0.0);
  }
  dfft.forward(noise);

  // Scale to the target spectrum: δ̂ = ŵ sqrt(N P(k) / V).
  const double n_total = static_cast<double>(ng) * static_cast<double>(ng) *
                         static_cast<double>(ng);
  const double volume = cfg.box * cfg.box * cfg.box;
  const double two_pi = 2.0 * std::numbers::pi;
  const double kfun = two_pi / cfg.box;  // fundamental mode, h/Mpc

  // Three displacement components share the forward transform of the noise;
  // build each ψ̂_j and inverse-transform.
  std::vector<fft::Complex> psi_hat[3];
  for (auto& v : psi_hat) v.resize(dfft.local_size());
  for (std::size_t kyl = 0; kyl < nzl; ++kyl) {
    const long my = fft::freq_index(z0 + kyl, ng);
    for (std::size_t kx = 0; kx < ng; ++kx) {
      const long mx = fft::freq_index(kx, ng);
      for (std::size_t kz = 0; kz < ng; ++kz) {
        const long mz = fft::freq_index(kz, ng);
        const std::size_t idx = (kyl * ng + kx) * ng + kz;
        const double kxv = kfun * static_cast<double>(mx);
        const double kyv = kfun * static_cast<double>(my);
        const double kzv = kfun * static_cast<double>(mz);
        const double k2 = kxv * kxv + kyv * kyv + kzv * kzv;
        if (k2 <= 0.0) {
          for (auto& v : psi_hat) v[idx] = fft::Complex(0, 0);
          continue;
        }
        const double k = std::sqrt(k2);
        const double amp = std::sqrt(n_total * cosmo.linear_power(k) / volume);
        const fft::Complex delta = noise[idx] * amp;
        // ψ̂_j = (i k_j / k²) δ̂
        const fft::Complex ik_over_k2(0.0, 1.0 / k2);
        psi_hat[0][idx] = ik_over_k2 * kxv * delta;
        psi_hat[1][idx] = ik_over_k2 * kyv * delta;
        psi_hat[2][idx] = ik_over_k2 * kzv * delta;
      }
    }
  }
  for (auto& v : psi_hat) dfft.inverse(v);

  // Displace the uniform lattice. At a_i: x = q + D ψ, and the PM momentum
  // p = a³ E(a) dD/da ψ / cell  with dD/da ≈ D f / a  (grid units).
  const double a_i = Cosmology::a_of_z(cfg.z_init);
  const double d = cosmo.growth(a_i);
  const double f = cosmo.growth_rate(a_i);
  const double e = cosmo.efunc(a_i);
  const double mom_fac = a_i * a_i * e * f * d;  // a³E·(Df/a) = a²EfD
  const double cellsz = cfg.box / static_cast<double>(ng);

  ParticleSet p;
  p.reserve(nzl * ng * ng);
  for (std::size_t zl = 0; zl < nzl; ++zl)
    for (std::size_t y = 0; y < ng; ++y)
      for (std::size_t x = 0; x < ng; ++x) {
        const std::size_t idx = (zl * ng + y) * ng + x;
        const double px = psi_hat[0][idx].real();
        const double py = psi_hat[1][idx].real();
        const double pz = psi_hat[2][idx].real();
        const double qx = (static_cast<double>(x) + 0.5) * cellsz;
        const double qy = (static_cast<double>(y) + 0.5) * cellsz;
        const double qz = (static_cast<double>(z0 + zl) + 0.5) * cellsz;
        const auto tag = static_cast<std::int64_t>(
            ((z0 + zl) * ng + y) * ng + x);
        p.push_back(static_cast<float>(qx + d * px),
                    static_cast<float>(qy + d * py),
                    static_cast<float>(qz + d * pz),
                    static_cast<float>(mom_fac * px / cellsz),
                    static_cast<float>(mom_fac * py / cellsz),
                    static_cast<float>(mom_fac * pz / cellsz), tag);
      }
  p.wrap_positions(static_cast<float>(cfg.box));
  // Displacements can cross slab boundaries; hand particles to their owners.
  SlabDecomposition decomp(comm.size(), cfg.box);
  return decomp.redistribute(comm, std::move(p));
}

}  // namespace cosmo::sim
