// The simulation driver: the HACC main loop.
//
// Evolves Zel'dovich initial conditions with the PM solver and invokes a
// per-step hook after each timestep — the attachment point for CosmoTools'
// InSituAnalysisManager (core/cosmotools.h). The hook receives a mutable
// reference to the rank's owned particles ("zero-copy": analysis operates
// directly on the simulation's SoA arrays, §3.1).
#pragma once

#include <cstddef>
#include <functional>

#include "comm/comm.h"
#include "sim/cosmology.h"
#include "sim/ic.h"
#include "sim/particles.h"
#include "sim/pm_solver.h"
#include "util/error.h"

namespace cosmo::sim {

struct SimulationConfig {
  IcConfig ic;
  double z_final = 0.0;
  std::size_t steps = 16;
};

/// Per-step context handed to in-situ hooks.
struct StepContext {
  std::size_t step;       ///< 1-based step index; `steps` is the final one
  std::size_t total_steps;
  double a;               ///< scale factor after the step
  double z;               ///< redshift after the step
};

class Simulation {
 public:
  Simulation(comm::Comm& comm, const Cosmology& cosmo,
             const SimulationConfig& cfg)
      : comm_(&comm),
        cosmo_(&cosmo),
        cfg_(cfg),
        solver_(comm, cosmo, cfg.ic.ng, cfg.ic.box) {
    COSMO_REQUIRE(cfg.steps > 0, "simulation needs at least one step");
    COSMO_REQUIRE(cfg.z_final < cfg.ic.z_init, "z_final must be after z_init");
  }

  using StepHook = std::function<void(const StepContext&, ParticleSet&)>;

  /// Global particle count (np == ng lattice).
  double global_particles() const {
    const auto ng = static_cast<double>(cfg_.ic.ng);
    return ng * ng * ng;
  }

  const PmSolver& solver() const { return solver_; }
  const SimulationConfig& config() const { return cfg_; }

  /// Runs ICs + `steps` leapfrog steps, calling `hook` after each step.
  /// Returns the rank's final particle slab.
  ParticleSet run(const StepHook& hook = {}) {
    ParticleSet particles = zeldovich_ics(*comm_, *cosmo_, cfg_.ic);
    const double a_init = Cosmology::a_of_z(cfg_.ic.z_init);
    const double a_final = Cosmology::a_of_z(cfg_.z_final);
    const double da = (a_final - a_init) / static_cast<double>(cfg_.steps);
    double a = a_init;
    for (std::size_t s = 1; s <= cfg_.steps; ++s) {
      particles = solver_.step(std::move(particles), a, da, global_particles());
      a += da;
      if (hook) {
        StepContext ctx{s, cfg_.steps, a, Cosmology::z_of_a(a)};
        hook(ctx, particles);
      }
    }
    return particles;
  }

 private:
  comm::Comm* comm_;
  const Cosmology* cosmo_;
  SimulationConfig cfg_;
  PmSolver solver_;
};

}  // namespace cosmo::sim
