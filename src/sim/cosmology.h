// Background cosmology: expansion history, linear growth, and the linear
// matter power spectrum used to seed initial conditions.
//
// The transfer function is BBKS (Bardeen–Bond–Kaiser–Szalay 1986) with the
// Sugiyama (1995) shape-parameter baryon correction — accurate to a few
// percent, which is ample for generating realistically clustered particle
// loads (the workflows under study consume the clustering statistics, not
// percent-level cosmology).
#pragma once

#include <cmath>
#include <cstddef>

#include "util/error.h"

namespace cosmo::sim {

/// Flat ΛCDM parameters (defaults near the paper-era WMAP-7 values HACC ran).
struct CosmologyParams {
  double omega_m = 0.265;   ///< total matter density
  double omega_b = 0.0448;  ///< baryon density
  double h = 0.71;          ///< H0 / (100 km/s/Mpc)
  double ns = 0.963;        ///< scalar spectral index
  double sigma8 = 0.8;      ///< power normalization at 8 Mpc/h
};

class Cosmology {
 public:
  explicit Cosmology(const CosmologyParams& p = {}) : p_(p) {
    COSMO_REQUIRE(p.omega_m > 0.0 && p.omega_m <= 1.0, "bad omega_m");
    COSMO_REQUIRE(p.h > 0.0, "bad h");
    sigma8_norm_ = 1.0;
    const double s8 = sigma_r_unnormalized(8.0);
    sigma8_norm_ = (p_.sigma8 * p_.sigma8) / (s8 * s8);
  }

  const CosmologyParams& params() const { return p_; }

  static double a_of_z(double z) { return 1.0 / (1.0 + z); }
  static double z_of_a(double a) { return 1.0 / a - 1.0; }

  /// Dimensionless Hubble rate E(a) = H(a)/H0 for flat ΛCDM.
  double efunc(double a) const {
    const double omega_l = 1.0 - p_.omega_m;
    return std::sqrt(p_.omega_m / (a * a * a) + omega_l);
  }

  /// Matter density parameter at scale factor a.
  double omega_m_a(double a) const {
    const double e = efunc(a);
    return p_.omega_m / (a * a * a * e * e);
  }

  /// Linear growth factor D(a), normalized to D(1) = 1.
  /// Carroll–Press–Turner (1992) fitting form, good to <1% for flat ΛCDM.
  double growth(double a) const { return growth_unnorm(a) / growth_unnorm(1.0); }

  /// Logarithmic growth rate f = dlnD/dlna ≈ Ω_m(a)^0.55.
  double growth_rate(double a) const { return std::pow(omega_m_a(a), 0.55); }

  /// BBKS transfer function; k in h/Mpc.
  double transfer(double k) const {
    // Sugiyama-corrected shape parameter.
    const double gamma =
        p_.omega_m * p_.h *
        std::exp(-p_.omega_b * (1.0 + std::sqrt(2.0 * p_.h) / p_.omega_m));
    const double q = k / gamma;
    if (q < 1e-12) return 1.0;
    const double t1 = std::log(1.0 + 2.34 * q) / (2.34 * q);
    const double poly = 1.0 + 3.89 * q + std::pow(16.1 * q, 2) +
                        std::pow(5.46 * q, 3) + std::pow(6.71 * q, 4);
    return t1 * std::pow(poly, -0.25);
  }

  /// Linear matter power spectrum at z=0, (Mpc/h)^3; k in h/Mpc.
  double linear_power(double k) const {
    if (k <= 0.0) return 0.0;
    const double t = transfer(k);
    return sigma8_norm_ * std::pow(k, p_.ns) * t * t;
  }

  /// Linear power at redshift z: P(k, z) = D(z)^2 P(k, 0).
  double linear_power(double k, double z) const {
    const double d = growth(a_of_z(z));
    return d * d * linear_power(k);
  }

  /// RMS linear fluctuation in spheres of radius r Mpc/h at z=0.
  double sigma_r(double r) const {
    return std::sqrt(sigma8_norm_) * sigma_r_unnormalized(r);
  }

  /// Mean comoving matter density in M_sun/h / (Mpc/h)^3.
  double mean_density() const {
    // rho_crit = 2.775e11 h^2 M_sun / Mpc^3 = 2.775e11 M_sun/h / (Mpc/h)^3.
    return 2.775e11 * p_.omega_m;
  }

  /// Mass of one simulation particle for np^3 particles in an L^3 box
  /// (L in Mpc/h), in M_sun/h.
  double particle_mass(double box, std::size_t np) const {
    const double n = static_cast<double>(np);
    return mean_density() * (box * box * box) / (n * n * n);
  }

 private:
  double growth_unnorm(double a) const {
    const double om = omega_m_a(a);
    const double ol = 1.0 - p_.omega_m;
    const double e = efunc(a);
    const double ol_a = ol / (e * e);
    // CPT approximation: D ∝ a * g(a) with
    // g = (5/2)Ω_m / (Ω_m^{4/7} − Ω_Λ + (1+Ω_m/2)(1+Ω_Λ/70)).
    const double g = 2.5 * om /
                     (std::pow(om, 4.0 / 7.0) - ol_a +
                      (1.0 + 0.5 * om) * (1.0 + ol_a / 70.0));
    return a * g;
  }

  /// σ(r) with the normalization constant set to 1; trapezoid in ln k.
  double sigma_r_unnormalized(double r) const {
    const int steps = 512;
    const double lnk_lo = std::log(1e-4), lnk_hi = std::log(1e2);
    const double dlnk = (lnk_hi - lnk_lo) / steps;
    double sum = 0.0;
    for (int i = 0; i <= steps; ++i) {
      const double lnk = lnk_lo + i * dlnk;
      const double k = std::exp(lnk);
      const double kr = k * r;
      // Top-hat window.
      double w;
      if (kr < 1e-3) {
        w = 1.0 - kr * kr / 10.0;
      } else {
        w = 3.0 * (std::sin(kr) - kr * std::cos(kr)) / (kr * kr * kr);
      }
      const double t = transfer(k);
      const double integrand =
          std::pow(k, p_.ns) * t * t * w * w * k * k * k / (2.0 * M_PI * M_PI);
      const double weight = (i == 0 || i == steps) ? 0.5 : 1.0;
      sum += weight * integrand * dlnk;
    }
    return std::sqrt(sum);
  }

  CosmologyParams p_;
  double sigma8_norm_;
};

}  // namespace cosmo::sim
