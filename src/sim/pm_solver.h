// Distributed particle-mesh (PM) gravity solver.
//
// The HACC stand-in: Cloud-In-Cell density deposit onto a slab-decomposed
// grid, FFT Poisson solve with the comoving Green's function, and CIC force
// interpolation back to the particles. Follows the standard PM code-unit
// scheme (Kravtsov's PM notes): positions in grid cells, the scale factor a
// as the time variable, momentum p = a² dx/dt (t in 1/H0 units), and
//
//   ∇²φ = (3/2) (Ω_m / a) δ,     δ = ρ/ρ̄ − 1.
//
// Leapfrog (KDK across one Δa):
//   p += −∇φ · f(a) Δa            with f(a) = 1 / (a E(a))
//   x += p / a² · f(a) Δa.
//
// The slab decomposition matches DistributedFft's, so deposits and force
// reads only ever touch one ghost plane on each side of a rank's slab.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numbers>
#include <span>
#include <vector>

#include "comm/comm.h"
#include "dpp/primitives.h"
#include "fft/distributed_fft.h"
#include "fft/fft.h"
#include "obs/obs.h"
#include "sim/cosmology.h"
#include "sim/decomposition.h"
#include "sim/particles.h"
#include "util/error.h"

namespace cosmo::sim {

/// Scalar field on this rank's z-slab with one ghost plane on each side.
/// Plane 0 is the ghost below, planes 1..nzl the owned region, plane nzl+1
/// the ghost above. Values are indexed in grid units.
class SlabField {
 public:
  SlabField(std::size_t ng, std::size_t nzl)
      : ng_(ng), nzl_(nzl), data_((nzl + 2) * ng * ng, 0.0) {}

  std::size_t ng() const { return ng_; }
  std::size_t nzl() const { return nzl_; }

  /// zl in [-1, nzl]: −1 and nzl address the ghost planes.
  double& at(std::size_t x, std::size_t y, long zl) {
    return data_[static_cast<std::size_t>(zl + 1) * ng_ * ng_ + y * ng_ + x];
  }
  double at(std::size_t x, std::size_t y, long zl) const {
    return data_[static_cast<std::size_t>(zl + 1) * ng_ * ng_ + y * ng_ + x];
  }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Whole storage including both ghost planes, in plane-major order —
  /// the accumulator layout the parallel deposit scatters into.
  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  std::span<double> plane(long zl) {
    return {data_.data() + static_cast<std::size_t>(zl + 1) * ng_ * ng_,
            ng_ * ng_};
  }

 private:
  std::size_t ng_, nzl_;
  std::vector<double> data_;
};

class PmSolver {
 public:
  /// ng: grid points per dimension (power of two, divisible by ranks).
  PmSolver(comm::Comm& comm, const Cosmology& cosmo, std::size_t ng,
           double box)
      : comm_(&comm),
        cosmo_(&cosmo),
        fft_(comm, ng),
        decomp_(comm.size(), box),
        ng_(ng),
        box_(box) {
    COSMO_REQUIRE(box > 0.0, "box must be positive");
  }

  std::size_t ng() const { return ng_; }
  double box() const { return box_; }
  double cell() const { return box_ / static_cast<double>(ng_); }
  std::size_t nzl() const { return fft_.slab_thickness(); }
  std::size_t z0() const { return fft_.slab_start(); }
  const SlabDecomposition& decomposition() const { return decomp_; }

  /// Execution backend for every grid/particle loop of the solver: Green's
  /// function multiply, force interpolation, and (since the scatter-reduce
  /// primitive landed) the CIC deposit itself. Safe to share the pool with
  /// co-scheduled analysis ranks — the work-stealing scheduler interleaves
  /// dispatches; results are bit-identical to Serial either way (the
  /// deposit goes through dpp::deposit_reduce's fixed block-order merge).
  void set_backend(dpp::Backend b) {
    backend_ = b;
    fft_.set_backend(b);  // the FFT's row transforms + pack/unpack follow
  }
  dpp::Backend backend() const { return backend_; }

  /// Transpose exchange strategy for the solver's distributed FFT
  /// (pipelined overlaps pack with the all-to-all; batched is the
  /// reference path). The potential field is bit-identical either way.
  void set_fft_exchange_mode(fft::DistributedFft::ExchangeMode m) {
    fft_.set_exchange_mode(m);
  }
  fft::DistributedFft::ExchangeMode fft_exchange_mode() const {
    return fft_.exchange_mode();
  }

  /// Deposit chunk size in particles (0 = auto). The δ field is
  /// backend-invariant for any fixed grain; different grains change the
  /// private-buffer block structure and hence the summation order.
  void set_deposit_grain(std::size_t g) { deposit_grain_ = g; }
  std::size_t deposit_grain() const { return deposit_grain_; }

  /// CIC deposit of the rank's owned particles. Returns the local density
  /// slab as δ = ρ/ρ̄ − 1 (ghost contributions folded back onto owners).
  /// `mean_per_cell` is the global mean particle count per grid cell.
  SlabField deposit_density(const ParticleSet& p, double mean_per_cell) const {
    COSMO_REQUIRE(mean_per_cell > 0.0, "mean particle count must be positive");
    COSMO_TRACE_SPAN_CAT("sim.deposit", "sim");
    SlabField rho(ng_, nzl());
    const double inv_cell = 1.0 / cell();
    const auto zslab0 = static_cast<double>(z0());
    dpp::deposit_reduce<double>(
        backend_, p.size(), rho.data(),
        [&](std::span<double> buf, std::size_t i) {
          const double gx = p.x[i] * inv_cell;
          const double gy = p.y[i] * inv_cell;
          const double gz = p.z[i] * inv_cell - zslab0;  // slab-local plane
          deposit_cic(buf, gx, gy, gz, 1.0);
        },
        deposit_grain_);
    fold_ghost_planes(rho);
    // Normalize to overdensity — pure per-element map, one item per plane.
    dpp::for_each_index(backend_, nzl(), [&](std::size_t zl) {
      for (auto& v : rho.plane(static_cast<long>(zl)))
        v = v / mean_per_cell - 1.0;
    });
    return rho;
  }

  /// Solves ∇²φ = (3/2)(Ω_m/a) δ on the slab; fills φ's ghost planes.
  SlabField solve_potential(const SlabField& delta, double a) const {
    COSMO_TRACE_SPAN_CAT("sim.solve", "sim");
    std::vector<fft::Complex> slab(fft_.local_size());
    for (long zl = 0; zl < static_cast<long>(nzl()); ++zl)
      for (std::size_t y = 0; y < ng_; ++y)
        for (std::size_t x = 0; x < ng_; ++x)
          slab[(static_cast<std::size_t>(zl) * ng_ + y) * ng_ + x] =
              fft::Complex(delta.at(x, y, zl), 0.0);
    fft_.forward(slab);

    // Green's function in grid angular frequencies k_j = 2π m_j / ng
    // (lengths in grid units, matching the code-unit Poisson equation).
    const double prefac = -1.5 * cosmo_->params().omega_m / a;
    const double two_pi = 2.0 * std::numbers::pi;
    const std::size_t ky0 = fft_.slab_start();
    // One item per (kyl, kx) pencil — each runs a contiguous kz sweep of ng
    // multiplies, so a few pencils per chunk is already coarse enough to
    // amortize dispatch while leaving slack for the pool to steal.
    dpp::for_each_index(
        backend_, nzl() * ng_,
        [&](std::size_t t) {
          const std::size_t kyl = t / ng_;
          const std::size_t kx = t % ng_;
          const double ky = two_pi *
                            static_cast<double>(fft::freq_index(ky0 + kyl, ng_)) /
                            static_cast<double>(ng_);
          const double kxv = two_pi *
                             static_cast<double>(fft::freq_index(kx, ng_)) /
                             static_cast<double>(ng_);
          for (std::size_t kz = 0; kz < ng_; ++kz) {
            const double kzv = two_pi *
                               static_cast<double>(fft::freq_index(kz, ng_)) /
                               static_cast<double>(ng_);
            const double k2 = kxv * kxv + ky * ky + kzv * kzv;
            auto& v = slab[(kyl * ng_ + kx) * ng_ + kz];
            v = (k2 > 0.0) ? v * (prefac / k2) : fft::Complex(0.0, 0.0);
          }
        },
        /*grain=*/8);
    fft_.inverse(slab);

    SlabField phi(ng_, nzl());
    for (long zl = 0; zl < static_cast<long>(nzl()); ++zl)
      for (std::size_t y = 0; y < ng_; ++y)
        for (std::size_t x = 0; x < ng_; ++x)
          phi.at(x, y, zl) =
              slab[(static_cast<std::size_t>(zl) * ng_ + y) * ng_ + x].real();
    exchange_ghost_planes(phi);
    return phi;
  }

  /// CIC-interpolated acceleration −∇φ at each particle (grid units).
  /// φ must have valid ghost planes (solve_potential provides them).
  ///
  /// The gradient is first evaluated by central differences on the owned
  /// planes (which only needs φ's single ghost layer), the gradient fields'
  /// own ghost planes are exchanged, and then each field is CIC-interpolated
  /// — so particles in the top half-cell of a slab read a valid plane.
  void accelerations(const SlabField& phi, const ParticleSet& p,
                     std::vector<double>& ax, std::vector<double>& ay,
                     std::vector<double>& az) const {
    COSMO_TRACE_SPAN_CAT("sim.accel", "sim");
    SlabField fx(ng_, nzl()), fy(ng_, nzl()), fz(ng_, nzl());
    // One item per (zl, y) grid row; rows write disjoint cells of fx/fy/fz
    // and only read phi, so the dispatch is race-free.
    dpp::for_each_index(
        backend_, nzl() * ng_,
        [&](std::size_t t) {
          const long zl = static_cast<long>(t / ng_);
          const std::size_t y = t % ng_;
          for (std::size_t x = 0; x < ng_; ++x) {
            fx.at(x, y, zl) =
                -0.5 * (phi.at(wrap(static_cast<long>(x) + 1), y, zl) -
                        phi.at(wrap(static_cast<long>(x) - 1), y, zl));
            fy.at(x, y, zl) =
                -0.5 * (phi.at(x, wrap(static_cast<long>(y) + 1), zl) -
                        phi.at(x, wrap(static_cast<long>(y) - 1), zl));
            fz.at(x, y, zl) =
                -0.5 * (phi.at(x, y, zl + 1) - phi.at(x, y, zl - 1));
          }
        },
        /*grain=*/8);
    exchange_ghost_planes(fx);
    exchange_ghost_planes(fy);
    exchange_ghost_planes(fz);

    ax.assign(p.size(), 0.0);
    ay.assign(p.size(), 0.0);
    az.assign(p.size(), 0.0);
    const double inv_cell = 1.0 / cell();
    const auto zslab0 = static_cast<double>(z0());
    // Per-particle gather (24 reads per field) — light items, so a coarse
    // grain keeps chunk-claim traffic negligible relative to the work.
    dpp::for_each_index(
        backend_, p.size(),
        [&](std::size_t i) {
          const double gx = p.x[i] * inv_cell;
          const double gy = p.y[i] * inv_cell;
          const double gz = p.z[i] * inv_cell - zslab0;
          ax[i] = interp_field(fx, gx, gy, gz);
          ay[i] = interp_field(fy, gx, gy, gz);
          az[i] = interp_field(fz, gx, gy, gz);
        },
        /*grain=*/1024);
  }

  /// One KDK leapfrog step from a to a+da for the rank's owned particles.
  /// Positions are in Mpc/h; velocities store the code momentum p = a²ẋ in
  /// grid units. Re-redistributes particles to their owner slabs at the end.
  ParticleSet step(ParticleSet particles, double a, double da,
                   double global_particle_count) {
    COSMO_TRACE_SPAN_CAT("sim.step", "sim");
    const double mean_per_cell = global_particle_count /
                                 (static_cast<double>(ng_) *
                                  static_cast<double>(ng_) *
                                  static_cast<double>(ng_));
    auto kick_drift = [&](ParticleSet& p, double a_force, double dt_kick,
                          double a_drift, double dt_drift) {
      SlabField delta = deposit_density(p, mean_per_cell);
      SlabField phi = solve_potential(delta, a_force);
      std::vector<double> ax, ay, az;
      accelerations(phi, p, ax, ay, az);
      const double fk = dt_kick / (a_force * cosmo_->efunc(a_force));
      const double fd =
          dt_drift / (a_drift * a_drift * a_drift * cosmo_->efunc(a_drift));
      const auto cellsz = static_cast<float>(cell());
      for (std::size_t i = 0; i < p.size(); ++i) {
        p.vx[i] += static_cast<float>(ax[i] * fk);
        p.vy[i] += static_cast<float>(ay[i] * fk);
        p.vz[i] += static_cast<float>(az[i] * fk);
        p.x[i] += static_cast<float>(p.vx[i] * fd) * cellsz;
        p.y[i] += static_cast<float>(p.vy[i] * fd) * cellsz;
        p.z[i] += static_cast<float>(p.vz[i] * fd) * cellsz;
      }
    };
    // KDK with the kick evaluated at a and the drift at the midpoint.
    kick_drift(particles, a, da, a + 0.5 * da, da);
    return decomp_.redistribute(*comm_, std::move(particles));
  }

 private:
  /// CIC deposit of weight w at grid position (gx, gy, gz-local) into a
  /// slab-shaped accumulator (SlabField::data() layout: ghost plane, nzl
  /// owned planes, ghost plane). Takes the raw span so the parallel
  /// deposit can scatter into per-block private buffers.
  void deposit_cic(std::span<double> slab, double gx, double gy, double gz,
                   double w) const {
    const long ix = static_cast<long>(std::floor(gx));
    const long iy = static_cast<long>(std::floor(gy));
    const long iz = static_cast<long>(std::floor(gz));
    const double dx = gx - static_cast<double>(ix);
    const double dy = gy - static_cast<double>(iy);
    const double dz = gz - static_cast<double>(iz);
    for (int cz = 0; cz < 2; ++cz) {
      const long zz = iz + cz;
      // Owned planes are [0, nzl); deposits may spill one plane either way.
      COSMO_REQUIRE(zz >= -1 && zz <= static_cast<long>(nzl()),
                    "particle deposits beyond ghost planes — redistribute first");
      const double wz = cz ? dz : 1.0 - dz;
      for (int cy = 0; cy < 2; ++cy) {
        const std::size_t yy = wrap(iy + cy);
        const double wy = cy ? dy : 1.0 - dy;
        for (int cx = 0; cx < 2; ++cx) {
          const std::size_t xx = wrap(ix + cx);
          const double wx = cx ? dx : 1.0 - dx;
          slab[static_cast<std::size_t>(zz + 1) * ng_ * ng_ + yy * ng_ + xx] +=
              w * wx * wy * wz;
        }
      }
    }
  }

  /// CIC interpolation of a slab field at grid position (gx, gy, gz-local).
  /// Reads planes [0, nzl] — the upper ghost plane must be valid.
  double interp_field(const SlabField& f, double gx, double gy,
                      double gz) const {
    const long ix = static_cast<long>(std::floor(gx));
    const long iy = static_cast<long>(std::floor(gy));
    const long iz = static_cast<long>(std::floor(gz));
    // Reads planes iz and iz+1; the slab (with ghosts) holds [-1, nzl].
    // A particle that drifted outside the slab would otherwise silently
    // read out-of-bounds heap — the deposit's matching guard fails fast.
    COSMO_REQUIRE(iz >= -1 && iz + 1 <= static_cast<long>(f.nzl()),
                  "particle reads beyond ghost planes — redistribute first");
    const double dx = gx - static_cast<double>(ix);
    const double dy = gy - static_cast<double>(iy);
    const double dz = gz - static_cast<double>(iz);
    double acc = 0.0;
    for (int cz = 0; cz < 2; ++cz) {
      const long zz = iz + cz;
      const double wz = cz ? dz : 1.0 - dz;
      for (int cy = 0; cy < 2; ++cy) {
        const std::size_t yy = wrap(iy + cy);
        const double wy = cy ? dy : 1.0 - dy;
        for (int cx = 0; cx < 2; ++cx) {
          const std::size_t xx = wrap(ix + cx);
          const double wx = cx ? dx : 1.0 - dx;
          acc += wx * wy * wz * f.at(xx, yy, zz);
        }
      }
    }
    return acc;
  }

  std::size_t wrap(long i) const {
    const auto n = static_cast<long>(ng_);
    long r = i % n;
    if (r < 0) r += n;
    return static_cast<std::size_t>(r);
  }

  /// Sends the ghost planes' accumulated deposits back to their owners.
  void fold_ghost_planes(SlabField& rho) const {
    if (comm_->size() == 1) {
      // Periodic self-fold.
      auto lo = rho.plane(-1);
      auto top = rho.plane(static_cast<long>(nzl()) - 1);
      for (std::size_t i = 0; i < lo.size(); ++i) top[i] += lo[i];
      auto hi = rho.plane(static_cast<long>(nzl()));
      auto bot = rho.plane(0);
      for (std::size_t i = 0; i < hi.size(); ++i) bot[i] += hi[i];
      return;
    }
    const int P = comm_->size();
    const int rank = comm_->rank();
    const int lo_nbr = (rank + P - 1) % P;
    const int hi_nbr = (rank + 1) % P;
    std::vector<std::vector<double>> send(static_cast<std::size_t>(P));
    auto lo = rho.plane(-1);
    auto hi = rho.plane(static_cast<long>(nzl()));
    // Append (not assign): with P == 2 both planes go to the same neighbor
    // and must concatenate in [lower spill, upper spill] order.
    auto& blo = send[static_cast<std::size_t>(lo_nbr)];
    blo.insert(blo.end(), lo.begin(), lo.end());
    auto& bhi = send[static_cast<std::size_t>(hi_nbr)];
    bhi.insert(bhi.end(), hi.begin(), hi.end());
    auto recv = comm_->alltoallv(send);
    // What the lower neighbor spilled upward lands on our plane 0; what the
    // upper neighbor spilled downward lands on our top plane.
    // With P == 2 both contributions come from the same neighbor rank; the
    // mailbox preserves order, but alltoallv concatenates both planes into
    // one buffer, so split by position.
    if (P == 2) {
      const auto& buf = recv[static_cast<std::size_t>(lo_nbr)];
      COSMO_REQUIRE(buf.size() == 2 * ng_ * ng_, "ghost fold size mismatch");
      auto bot = rho.plane(0);
      auto top = rho.plane(static_cast<long>(nzl()) - 1);
      // Neighbor sent [its lower spill, its upper spill] — its lower spill
      // targets our top plane, its upper spill targets our bottom plane...
      // unless the neighbor is both above and below (P == 2), in which case
      // order in `send` above was: lo_nbr gets plane(-1), hi_nbr gets
      // plane(nzl). Both are the same rank, and alltoallv concatenates in
      // the order sends were issued: [plane(-1), plane(nzl)].
      for (std::size_t i = 0; i < ng_ * ng_; ++i) top[i] += buf[i];
      for (std::size_t i = 0; i < ng_ * ng_; ++i) bot[i] += buf[ng_ * ng_ + i];
      return;
    }
    {
      const auto& from_below = recv[static_cast<std::size_t>(lo_nbr)];
      COSMO_REQUIRE(from_below.size() == ng_ * ng_, "ghost fold size mismatch");
      auto bot = rho.plane(0);
      for (std::size_t i = 0; i < bot.size(); ++i) bot[i] += from_below[i];
    }
    {
      const auto& from_above = recv[static_cast<std::size_t>(hi_nbr)];
      COSMO_REQUIRE(from_above.size() == ng_ * ng_, "ghost fold size mismatch");
      auto top = rho.plane(static_cast<long>(nzl()) - 1);
      for (std::size_t i = 0; i < top.size(); ++i) top[i] += from_above[i];
    }
  }

  /// Fills φ's ghost planes with copies of the neighbors' boundary planes.
  void exchange_ghost_planes(SlabField& phi) const {
    if (comm_->size() == 1) {
      auto bot = phi.plane(0);
      auto top = phi.plane(static_cast<long>(nzl()) - 1);
      auto glo = phi.plane(-1);
      auto ghi = phi.plane(static_cast<long>(nzl()));
      std::copy(top.begin(), top.end(), glo.begin());
      std::copy(bot.begin(), bot.end(), ghi.begin());
      return;
    }
    const int P = comm_->size();
    const int rank = comm_->rank();
    const int lo_nbr = (rank + P - 1) % P;
    const int hi_nbr = (rank + 1) % P;
    std::vector<std::vector<double>> send(static_cast<std::size_t>(P));
    auto bot = phi.plane(0);
    auto top = phi.plane(static_cast<long>(nzl()) - 1);
    // Append (not assign): with P == 2 both planes go to the same neighbor
    // and must concatenate in [bottom plane, top plane] order.
    auto& blo = send[static_cast<std::size_t>(lo_nbr)];
    blo.insert(blo.end(), bot.begin(), bot.end());
    auto& bhi = send[static_cast<std::size_t>(hi_nbr)];
    bhi.insert(bhi.end(), top.begin(), top.end());
    auto recv = comm_->alltoallv(send);
    if (P == 2) {
      const auto& buf = recv[static_cast<std::size_t>(lo_nbr)];
      COSMO_REQUIRE(buf.size() == 2 * ng_ * ng_, "ghost exchange size mismatch");
      auto ghi = phi.plane(static_cast<long>(nzl()));
      auto glo = phi.plane(-1);
      // Neighbor sent [its bottom plane, its top plane]: its bottom plane is
      // the plane above our slab; its top plane is the plane below ours.
      std::copy(buf.begin(), buf.begin() + static_cast<long>(ng_ * ng_),
                ghi.begin());
      std::copy(buf.begin() + static_cast<long>(ng_ * ng_), buf.end(),
                glo.begin());
      return;
    }
    {
      const auto& from_below = recv[static_cast<std::size_t>(lo_nbr)];
      COSMO_REQUIRE(from_below.size() == ng_ * ng_, "ghost exchange mismatch");
      auto glo = phi.plane(-1);
      std::copy(from_below.begin(), from_below.end(), glo.begin());
    }
    {
      const auto& from_above = recv[static_cast<std::size_t>(hi_nbr)];
      COSMO_REQUIRE(from_above.size() == ng_ * ng_, "ghost exchange mismatch");
      auto ghi = phi.plane(static_cast<long>(nzl()));
      std::copy(from_above.begin(), from_above.end(), ghi.begin());
    }
  }

  comm::Comm* comm_;
  const Cosmology* cosmo_;
  mutable fft::DistributedFft fft_;
  SlabDecomposition decomp_;
  std::size_t ng_;
  double box_;
  dpp::Backend backend_ = dpp::Backend::Serial;
  std::size_t deposit_grain_ = 0;
};

}  // namespace cosmo::sim
