// Checkpoint / restart for the simulation.
//
// The paper's data-volume accounting explicitly sets aside "check-point
// restart files" (§1) — production HACC runs write them constantly, and the
// off-line analysis workflow's wait times only make sense because the
// simulation itself survives queue boundaries. Checkpoints reuse the
// CosmoIO block format: each rank's particles are one block, the scale
// factor rides in the header, so a restart reproduces the exact state (the
// leapfrog is deterministic given particles + a).
#pragma once

#include <filesystem>

#include "comm/comm.h"
#include "io/aggregated.h"
#include "io/cosmo_io.h"
#include "sim/decomposition.h"
#include "sim/particles.h"
#include "util/error.h"

namespace cosmo::sim {

struct CheckpointState {
  ParticleSet particles;  ///< this rank's owned slab
  double a = 0.0;         ///< scale factor at the checkpoint
  std::uint64_t total_particles = 0;
};

/// Collectively writes a checkpoint (one aggregated file set under `base`).
inline void write_checkpoint(comm::Comm& comm,
                             const std::filesystem::path& base,
                             const ParticleSet& owned, double box, double a,
                             std::uint64_t total_particles,
                             int ranks_per_file = 4) {
  io::CosmoIoInfo info{box, a, total_particles, 0};
  io::write_aggregated(comm, base, owned, info, ranks_per_file);
}

/// Collectively reads a checkpoint written by write_checkpoint with any
/// rank layout; particles land on their owner slabs for the *current*
/// communicator (restart on a different rank count is supported, as with
/// real HACC restarts).
inline CheckpointState read_checkpoint(comm::Comm& comm,
                                       const std::filesystem::path& base,
                                       double box, int writer_ranks,
                                       int ranks_per_file = 4) {
  CheckpointState state;
  SlabDecomposition decomp(comm.size(), box);
  const int files = (writer_ranks + ranks_per_file - 1) / ranks_per_file;
  std::vector<std::filesystem::path> paths;
  for (int g = 0; g < files; ++g)
    paths.push_back(io::aggregated_file_path(base, g));
  // Read header info from the first file.
  {
    io::CosmoIoReader reader(paths.front());
    state.a = reader.info().scale_factor;
    state.total_particles = reader.info().total_particles;
    COSMO_REQUIRE(reader.info().box == box, "checkpoint box mismatch");
  }
  state.particles = io::read_aggregated(comm, paths, decomp);
  return state;
}

}  // namespace cosmo::sim
