// Quickstart: run a small cosmological simulation with in-situ analysis.
//
// This is the paper's basic setup (§3): HACC's timestep loop instrumented
// with CosmoTools. We build a 32³ particle-mesh simulation on 2 ranks,
// register the halo pipeline and the power-spectrum tool, configure them
// from a CosmoTools config string (in production this file is referenced
// from the simulation's input deck), and let the driver call the analysis
// manager at the requested cadence.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "comm/comm.h"
#include "core/algorithms.h"
#include "core/cosmotools.h"
#include "sim/cosmology.h"
#include "sim/simulation.h"

using namespace cosmo;

int main() {
  const int ranks = 2;
  std::printf("quickstart: 32^3 PM simulation on %d ranks, z=20 -> z=0, "
              "in-situ analysis every 4 steps\n\n", ranks);

  comm::run_spmd(ranks, [&](comm::Comm& c) {
    sim::Cosmology cosmo;  // WMAP-7-like ΛCDM

    sim::SimulationConfig scfg;
    scfg.ic.ng = 32;
    scfg.ic.box = 64.0;       // Mpc/h
    scfg.ic.z_init = 20.0;
    scfg.ic.seed = 2015;
    scfg.z_final = 0.0;
    scfg.steps = 16;
    sim::Simulation simulation(c, cosmo, scfg);

    // CosmoTools: the manager is the one object the simulation talks to.
    sim::SlabDecomposition decomp(c.size(), scfg.ic.box);
    core::InSituAnalysisManager manager(
        c, decomp, scfg.ic.box,
        static_cast<std::uint64_t>(simulation.global_particles()));
    manager.add(std::make_unique<core::PowerSpectrumAlgorithm>());
    core::register_halo_pipeline(manager);
    manager.configure(core::CosmoToolsConfig::parse(R"(
[powerspectrum]
cadence 4
grid 32
bins 8

[halofinder]
cadence 4
linking_length 0.4
min_size 20
overload 2.0

[centerfinder]
cadence 4
threshold 0

[somass]
cadence 4
delta 200

[subhalos]
enabled false
)"));

    // The simulation drives; CosmoTools analyzes in place (zero copy).
    simulation.run([&](const sim::StepContext& step,
                       sim::ParticleSet& particles) {
      auto ctx = manager.execute_step(step, particles);
      if (ctx.spectra.empty()) return;  // nothing ran this step

      const auto halos = c.allreduce_value<std::uint64_t>(
          ctx.catalog.size(), comm::ReduceOp::Sum);
      std::uint64_t biggest = 0;
      for (const auto& rec : ctx.catalog) biggest = std::max(biggest, rec.count);
      biggest = c.allreduce_value(biggest, comm::ReduceOp::Max);

      if (c.rank() == 0) {
        std::printf("step %2zu  z=%5.2f  halos=%llu  largest=%llu\n",
                    step.step, step.z,
                    static_cast<unsigned long long>(halos),
                    static_cast<unsigned long long>(biggest));
        const auto& ps = ctx.spectra.back();
        std::printf("         P(k): ");
        for (std::size_t b = 0; b < ps.k.size() && b < 4; ++b)
          std::printf("P(%.2f)=%.1f  ", ps.k[b], ps.power[b]);
        std::printf("\n");
      }
    });

    if (c.rank() == 0) {
      std::printf("\ntotal in-situ analysis time on rank 0: %.2f s\n",
                  manager.total_seconds());
      std::printf("structure grew: halo counts and P(k) amplitude rise "
                  "toward z=0, as they should.\n");
    }
  });
  return 0;
}
