// Scenario: tracking halo evolution across simulation outputs.
//
// "Over time, halos merge and accrete mass" (§3): this example evolves a
// real PM simulation, runs the distributed FOF finder on a cadence of
// outputs, links the catalogs into a merger tree by particle-tag overlap,
// and prints the assembly history of the final snapshot's largest halo —
// the Level 3 time-series product the paper's analysis pipeline feeds.
//
// Build & run:  ./build/examples/merger_history
#include <algorithm>
#include <cstdio>

#include "comm/comm.h"
#include "halo/fof.h"
#include "sim/cosmology.h"
#include "sim/simulation.h"
#include "stats/merger_tree.h"

using namespace cosmo;

int main() {
  comm::run_spmd(2, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    sim::SimulationConfig cfg;
    cfg.ic.ng = 16;  // small but genuinely nonlinear by z=0
    cfg.ic.box = 16.0;
    cfg.ic.z_init = 20.0;
    cfg.ic.seed = 8;
    cfg.z_final = 0.0;
    cfg.steps = 12;

    halo::FofConfig fof_cfg;
    fof_cfg.linking_length = 0.28;
    fof_cfg.min_size = 20;
    sim::SlabDecomposition decomp(c.size(), cfg.ic.box);

    stats::MergerTreeBuilder tree;
    std::vector<std::pair<std::size_t, double>> snapshot_z;
    std::map<std::size_t, std::map<std::int64_t, std::size_t>> sizes;

    sim::Simulation simulation(c, cosmo, cfg);
    std::size_t snap = 0;
    simulation.run([&](const sim::StepContext& step,
                       sim::ParticleSet& particles) {
      if (step.step % 3 != 0) return;  // output cadence
      auto fof = halo::fof_distributed(c, decomp, particles, fof_cfg, 1.6);
      auto mine = stats::tracked_halos(fof);
      // Gather tracked halos to rank 0 (tags + ids flattened).
      std::vector<std::int64_t> flat;
      for (const auto& h : mine) {
        flat.push_back(h.id);
        flat.push_back(static_cast<std::int64_t>(h.tags.size()));
        flat.insert(flat.end(), h.tags.begin(), h.tags.end());
      }
      auto all = c.gatherv<std::int64_t>(flat, 0);
      if (c.rank() == 0) {
        std::vector<stats::TrackedHalo> halos;
        for (std::size_t i = 0; i < all.size();) {
          stats::TrackedHalo h;
          h.id = all[i++];
          const auto n = static_cast<std::size_t>(all[i++]);
          h.tags.assign(all.begin() + static_cast<long>(i),
                        all.begin() + static_cast<long>(i + n));
          i += n;
          sizes[snap][h.id] = n;
          halos.push_back(std::move(h));
        }
        std::printf("snapshot %zu (z=%.2f): %zu halos\n", snap, step.z,
                    halos.size());
        tree.add_snapshot(snap, std::move(halos));
        snapshot_z.emplace_back(snap, step.z);
      }
      ++snap;
    });

    if (c.rank() != 0) return;
    tree.build();

    // Assembly history of the final snapshot's largest halo.
    const std::size_t last = snapshot_z.back().first;
    std::int64_t biggest = -1;
    std::size_t biggest_n = 0;
    for (const auto& [id, n] : sizes[last])
      if (n > biggest_n) {
        biggest_n = n;
        biggest = id;
      }
    if (biggest < 0) {
      std::printf("no halos formed — increase steps or box resolution\n");
      return;
    }
    std::printf("\nassembly history of the final largest halo (id %lld, %zu "
                "particles):\n",
                static_cast<long long>(biggest), biggest_n);
    // Walk backwards through progenitors, reporting the main progenitor.
    std::int64_t cur = biggest;
    for (std::size_t s = last; s > 0; --s) {
      auto progs = tree.progenitors(s, cur);
      if (progs.empty()) {
        std::printf("  snapshot %zu: halo forms\n", s);
        break;
      }
      std::int64_t main_prog = progs.front();
      std::size_t main_n = 0;
      for (const auto p : progs) {
        const auto n = sizes[s - 1][p];
        if (n > main_n) {
          main_n = n;
          main_prog = p;
        }
      }
      std::printf("  snapshot %zu -> %zu: %zu progenitor(s)%s, main branch "
                  "%lld (%zu -> %zu particles)\n",
                  s - 1, s, progs.size(),
                  progs.size() > 1 ? " [merger]" : "",
                  static_cast<long long>(main_prog), main_n,
                  sizes[s][cur]);
      cur = main_prog;
    }
    std::printf("\ntotal mergers onto any halo at the final snapshot: %zu\n",
                tree.mergers_at(last));
  });
  return 0;
}
