// Scenario: planning an analysis campaign for a simulation with rare,
// massive clusters (the paper's Q Continuum situation, downscaled).
//
// The public workflow API runs the same snapshot through the pure in-situ,
// pure off-line, and combined in-situ/off-line strategies; then the split
// auto-tuner (§4.1) recommends the threshold and the co-scheduled job size
// from this machine's measured center-finder cost model.
//
// Build & run:  ./build/examples/workflow_compare
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "core/machine_model.h"
#include "core/split_tuner.h"
#include "core/workflows.h"
#include "halo/center_finder.h"
#include "util/timer.h"

using namespace cosmo;
using core::WorkflowKind;

int main() {
  core::WorkflowProblem p;
  p.universe.box = 48.0;
  p.universe.seed = 99;
  p.universe.halo_count = 50;
  p.universe.min_particles = 60;
  p.universe.max_particles = 15000;  // one rare monster cluster
  p.universe.background_particles = 8000;
  p.universe.subclump_fraction = 0.0;
  p.ranks = 4;
  p.analysis_ranks = 2;
  p.linking_length = 0.32;
  p.overload = 3.0;
  p.threshold = 800;
  p.workdir = std::filesystem::temp_directory_path() /
              ("wf_compare_" + std::to_string(::getpid()));

  std::printf("comparing workflows on a %llu-particle snapshot "
              "(one rare massive cluster)...\n\n",
              static_cast<unsigned long long>(
                  sim::synthetic_total_particles(p.universe)));

  for (const auto kind :
       {WorkflowKind::InSitu, WorkflowKind::OffLine,
        WorkflowKind::CombinedSimple}) {
    auto r = core::run_workflow(kind, p);
    const auto& ph = r.times;
    std::printf("%-28s analysis %6.2fs  io(w/r) %5.2f/%5.2fs  redist %5.2fs  "
                "post %6.2fs  halos %llu (deferred %llu)\n",
                core::to_string(kind), ph.analysis, ph.write, ph.read,
                ph.redistribute, ph.post_analysis,
                static_cast<unsigned long long>(r.total_halos),
                static_cast<unsigned long long>(r.deferred_halos));
  }
  std::filesystem::remove_all(p.workdir);

  // Would the auto-tuner have picked a similar split?
  std::printf("\nsplit auto-tuner recommendation:\n");
  auto cost = core::calibrate_center_cost(
      [&](std::uint64_t n) {
        Rng rng(1);
        sim::ParticleSet halo;
        for (std::uint64_t i = 0; i < n; ++i)
          halo.push_back(static_cast<float>(rng.normal(5, 0.3)),
                         static_cast<float>(rng.normal(5, 0.3)),
                         static_cast<float>(rng.normal(5, 0.3)), 0, 0, 0,
                         static_cast<std::int64_t>(i));
        std::vector<std::uint32_t> members(halo.size());
        std::iota(members.begin(), members.end(), 0u);
        WallTimer t;
        halo::mbp_center_brute(dpp::Backend::ThreadPool, halo, members, {});
        return t.seconds();
      },
      3000);
  std::vector<std::uint64_t> sizes{100, 300, 900, 2500, 15000};
  auto d = core::tune_split(sim::synthetic_total_particles(p.universe), sizes,
                            io::FilesystemModel::analysis_cluster(),
                            io::InterconnectModel{1e9, 0.1}, cost);
  std::printf("  t_io=%.2fs  m_max_io=%llu  largest=%llu  -> %s\n", d.t_io_s,
              static_cast<unsigned long long>(d.m_max_io),
              static_cast<unsigned long long>(d.largest_halo),
              d.all_in_situ ? "analyze everything in-situ"
                            : "off-load the largest halos");
  if (!d.all_in_situ)
    std::printf("  co-scheduled job size: %llu ranks\n",
                static_cast<unsigned long long>(d.coschedule_ranks));
  return 0;
}
