// Scenario: the co-scheduling machinery end to end (§3.2).
//
// A "simulation" produces a snapshot file (plus .done trigger) every few
// hundred milliseconds. The Bellerophon-style Listener polls the output
// directory at a much higher rate; each new trigger instantiates a batch
// script from a template and submits an analysis job. A Titan-profile
// batch simulator accounts for the queueing: the small analysis jobs run
// two-at-a-time (Titan's <125-node policy) while the main job occupies its
// partition — exactly the pile-up behaviour the paper discusses.
//
// Build & run:  ./build/examples/coscheduled_listener
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "io/aggregated.h"
#include "io/cosmo_io.h"
#include "sched/batch_scheduler.h"
#include "sched/listener.h"
#include "sim/particles.h"
#include "util/rng.h"

using namespace cosmo;
using namespace std::chrono_literals;
namespace fs = std::filesystem;

int main() {
  const fs::path outdir =
      fs::temp_directory_path() / ("cosched_demo_" + std::to_string(::getpid()));
  fs::create_directories(outdir);

  sched::BatchScheduler titan(sched::MachineProfile::titan());
  const double sim_walltime = 3600.0;
  titan.submit("main-simulation", 16384, sim_walltime, 0.0);

  sched::JobTemplate tmpl(
      "#!/bin/bash\n"
      "#PBS -l nodes=4\n"
      "analysis_driver --input {file} --step {step}\n");

  std::mutex mtx;
  int step_counter = 0;
  sched::Listener listener(
      {outdir, ".done", 10ms},
      [&](const fs::path& trigger) {
        std::lock_guard lock(mtx);
        const int step = step_counter++;
        const auto script = tmpl.instantiate(
            {{"file", trigger.stem().string()},
             {"step", std::to_string(step)}});
        // Submit mid-simulation: trigger time maps onto the sim's timeline.
        const double submit_t = 300.0 * (step + 1);
        titan.submit("analysis-step" + std::to_string(step), 4, 900.0,
                     submit_t);
        std::printf("listener: trigger %s -> submitted 4-node job at "
                    "t=%.0fs\n  script: %s",
                    trigger.filename().c_str(), submit_t, script.c_str());
      });
  listener.start();

  // The "simulation": write a real snapshot + trigger per timestep.
  Rng rng(7);
  for (int step = 0; step < 5; ++step) {
    const auto file = outdir / ("snap." + std::to_string(step) + ".cosmo");
    sim::ParticleSet p;
    for (int i = 0; i < 1000; ++i)
      p.push_back(static_cast<float>(rng.uniform(0, 64)),
                  static_cast<float>(rng.uniform(0, 64)),
                  static_cast<float>(rng.uniform(0, 64)), 0, 0, 0, i);
    io::CosmoIoWriter w(file, {64.0, 1.0, 1000, 0});
    w.write_block(p, 0);
    w.finalize();
    std::ofstream(io::trigger_path(file)) << "ok\n";
    std::this_thread::sleep_for(60ms);
  }
  listener.wait_for_triggers(5, 5000ms);
  listener.stop();

  titan.run_to_completion();
  std::printf("\nqueue outcome on Titan (policy: max 2 jobs under 125 "
              "nodes):\n");
  for (std::size_t j = 0; j < titan.job_count(); ++j) {
    const auto& job = titan.job(static_cast<sched::JobId>(j));
    std::printf("  %-22s %6d nodes  submit %6.0f  start %6.0f  wait %6.0f\n",
                job.name.c_str(), job.nodes, job.submit_time, job.start_time,
                job.wait_s());
  }
  std::printf("\nlistener stats: %llu polls, %llu triggers (poll rate >> "
              "output rate, as §3.2 prescribes)\n",
              static_cast<unsigned long long>(listener.stats().polls),
              static_cast<unsigned long long>(listener.stats().triggers));
  std::printf("note the pile-up: jobs 3+ wait for a small-job slot while "
              "the simulation is still running.\n");
  fs::remove_all(outdir);
  return 0;
}
