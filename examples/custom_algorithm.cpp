// Scenario: extending CosmoTools with a new in-situ analysis algorithm.
//
// The paper's framework is "extensible to support new analysis algorithms"
// (§3.1): a new tool derives from InSituAlgorithm (here via the
// CadencedAlgorithm convenience base), implements SetParameters /
// ShouldExecute / Execute, and registers with the manager — no changes to
// the simulation code. This example adds a velocity-dispersion monitor that
// piggybacks on the halo finder's blackboard output to report the hottest
// halo each step, something an astrophysicist might bolt on mid-campaign
// for computational steering.
//
// Build & run:  ./build/examples/custom_algorithm
#include <cmath>
#include <cstdio>

#include "comm/comm.h"
#include "core/algorithms.h"
#include "core/cosmotools.h"
#include "sim/synthetic.h"

using namespace cosmo;

namespace {

/// A user-defined analysis task: per-halo 3-D velocity dispersion.
class VelocityDispersionAlgorithm : public core::CadencedAlgorithm {
 public:
  std::string Name() const override { return "veldisp"; }

  void SetToolParameters(const core::ParameterMap& p) override {
    min_halo_ = static_cast<std::size_t>(p.get_int("min_halo", 100));
  }

  void Execute(const sim::StepContext&, core::AnalysisContext& ctx) override {
    COSMO_REQUIRE(ctx.fof != nullptr, "veldisp needs the halofinder first");
    const auto& p = ctx.fof->particles;
    hottest_sigma_ = 0.0;
    hottest_id_ = -1;
    for (const auto& h : ctx.fof->halos) {
      if (h.members.size() < min_halo_) continue;
      double mx = 0, my = 0, mz = 0;
      for (const auto i : h.members) {
        mx += p.vx[i];
        my += p.vy[i];
        mz += p.vz[i];
      }
      const auto n = static_cast<double>(h.members.size());
      mx /= n;
      my /= n;
      mz /= n;
      double var = 0.0;
      for (const auto i : h.members) {
        const double dx = p.vx[i] - mx, dy = p.vy[i] - my, dz = p.vz[i] - mz;
        var += dx * dx + dy * dy + dz * dz;
      }
      const double sigma = std::sqrt(var / n);
      if (sigma > hottest_sigma_) {
        hottest_sigma_ = sigma;
        hottest_id_ = h.id;
      }
    }
  }

  double hottest_sigma() const { return hottest_sigma_; }
  std::int64_t hottest_id() const { return hottest_id_; }

 private:
  std::size_t min_halo_ = 100;
  double hottest_sigma_ = 0.0;
  std::int64_t hottest_id_ = -1;
};

}  // namespace

int main() {
  comm::run_spmd(2, [&](comm::Comm& c) {
    sim::Cosmology cosmo;
    sim::SyntheticConfig ucfg;
    ucfg.box = 32.0;
    ucfg.halo_count = 12;
    ucfg.min_particles = 150;
    ucfg.max_particles = 3000;
    ucfg.background_particles = 500;
    ucfg.subclump_fraction = 0.0;
    auto u = sim::generate_synthetic(c, cosmo, ucfg);

    sim::SlabDecomposition decomp(c.size(), ucfg.box);
    core::InSituAnalysisManager manager(c, decomp, ucfg.box,
                                        u.total_particles);
    // Built-in finder + the custom tool, configured like any other section.
    manager.add(std::make_unique<core::HaloFinderAlgorithm>());
    auto veldisp = std::make_unique<VelocityDispersionAlgorithm>();
    auto* probe = veldisp.get();
    manager.add(std::move(veldisp));
    manager.configure(core::CosmoToolsConfig::parse(R"(
[halofinder]
linking_length 0.35
min_size 60
overload 2.5

[veldisp]
min_halo 150
)"));

    sim::StepContext step{1, 1, 1.0, 0.0};
    manager.execute_step(step, u.local);

    const double hottest =
        c.allreduce_value(probe->hottest_sigma(), comm::ReduceOp::Max);
    if (c.rank() == 0)
      std::printf("hottest halo velocity dispersion: sigma = %.3f "
                  "(rank-local id %lld)\n",
                  hottest, static_cast<long long>(probe->hottest_id()));
    // Per-algorithm timing comes for free from the manager's ledger.
    for (const auto& t : manager.timings())
      if (c.rank() == 0)
        std::printf("  [%s] step %zu: %.4f s\n", t.name.c_str(), t.step,
                    t.seconds);
  });
  return 0;
}
