# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_dpp[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_halo[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_workflows[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_campaign[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_bh_shape[1]_include.cmake")
include("/root/repo/build/tests/test_physics[1]_include.cmake")
