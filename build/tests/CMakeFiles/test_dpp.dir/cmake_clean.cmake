file(REMOVE_RECURSE
  "CMakeFiles/test_dpp.dir/test_dpp.cpp.o"
  "CMakeFiles/test_dpp.dir/test_dpp.cpp.o.d"
  "test_dpp"
  "test_dpp.pdb"
  "test_dpp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
