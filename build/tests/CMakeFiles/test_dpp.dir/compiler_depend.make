# Empty compiler generated dependencies file for test_dpp.
# This may be replaced when dependencies are built.
