file(REMOVE_RECURSE
  "CMakeFiles/test_physics.dir/test_physics.cpp.o"
  "CMakeFiles/test_physics.dir/test_physics.cpp.o.d"
  "test_physics"
  "test_physics.pdb"
  "test_physics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
