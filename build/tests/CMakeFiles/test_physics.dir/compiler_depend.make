# Empty compiler generated dependencies file for test_physics.
# This may be replaced when dependencies are built.
