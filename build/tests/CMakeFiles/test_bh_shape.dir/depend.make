# Empty dependencies file for test_bh_shape.
# This may be replaced when dependencies are built.
