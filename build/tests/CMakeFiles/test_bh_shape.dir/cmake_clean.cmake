file(REMOVE_RECURSE
  "CMakeFiles/test_bh_shape.dir/test_bh_shape.cpp.o"
  "CMakeFiles/test_bh_shape.dir/test_bh_shape.cpp.o.d"
  "test_bh_shape"
  "test_bh_shape.pdb"
  "test_bh_shape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bh_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
