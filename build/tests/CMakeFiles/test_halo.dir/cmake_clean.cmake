file(REMOVE_RECURSE
  "CMakeFiles/test_halo.dir/test_halo.cpp.o"
  "CMakeFiles/test_halo.dir/test_halo.cpp.o.d"
  "test_halo"
  "test_halo.pdb"
  "test_halo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
