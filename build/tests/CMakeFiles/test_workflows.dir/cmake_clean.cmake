file(REMOVE_RECURSE
  "CMakeFiles/test_workflows.dir/test_workflows.cpp.o"
  "CMakeFiles/test_workflows.dir/test_workflows.cpp.o.d"
  "test_workflows"
  "test_workflows.pdb"
  "test_workflows[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
