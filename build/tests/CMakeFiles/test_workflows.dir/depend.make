# Empty dependencies file for test_workflows.
# This may be replaced when dependencies are built.
