# Empty dependencies file for coscheduled_listener.
# This may be replaced when dependencies are built.
