file(REMOVE_RECURSE
  "CMakeFiles/coscheduled_listener.dir/coscheduled_listener.cpp.o"
  "CMakeFiles/coscheduled_listener.dir/coscheduled_listener.cpp.o.d"
  "coscheduled_listener"
  "coscheduled_listener.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coscheduled_listener.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
