file(REMOVE_RECURSE
  "CMakeFiles/merger_history.dir/merger_history.cpp.o"
  "CMakeFiles/merger_history.dir/merger_history.cpp.o.d"
  "merger_history"
  "merger_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merger_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
