# Empty compiler generated dependencies file for merger_history.
# This may be replaced when dependencies are built.
