# Empty dependencies file for workflow_compare.
# This may be replaced when dependencies are built.
