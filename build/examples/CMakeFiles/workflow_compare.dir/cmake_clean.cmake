file(REMOVE_RECURSE
  "CMakeFiles/workflow_compare.dir/workflow_compare.cpp.o"
  "CMakeFiles/workflow_compare.dir/workflow_compare.cpp.o.d"
  "workflow_compare"
  "workflow_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
