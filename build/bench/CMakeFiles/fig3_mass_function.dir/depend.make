# Empty dependencies file for fig3_mass_function.
# This may be replaced when dependencies are built.
