file(REMOVE_RECURSE
  "CMakeFiles/fig3_mass_function.dir/fig3_mass_function.cpp.o"
  "CMakeFiles/fig3_mass_function.dir/fig3_mass_function.cpp.o.d"
  "fig3_mass_function"
  "fig3_mass_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mass_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
