file(REMOVE_RECURSE
  "CMakeFiles/table1_data_levels.dir/table1_data_levels.cpp.o"
  "CMakeFiles/table1_data_levels.dir/table1_data_levels.cpp.o.d"
  "table1_data_levels"
  "table1_data_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_data_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
