# Empty compiler generated dependencies file for table1_data_levels.
# This may be replaced when dependencies are built.
