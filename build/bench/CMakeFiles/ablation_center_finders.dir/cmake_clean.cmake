file(REMOVE_RECURSE
  "CMakeFiles/ablation_center_finders.dir/ablation_center_finders.cpp.o"
  "CMakeFiles/ablation_center_finders.dir/ablation_center_finders.cpp.o.d"
  "ablation_center_finders"
  "ablation_center_finders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_center_finders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
