# Empty compiler generated dependencies file for ablation_center_finders.
# This may be replaced when dependencies are built.
