# Empty compiler generated dependencies file for ablation_analysis_cluster.
# This may be replaced when dependencies are built.
