file(REMOVE_RECURSE
  "CMakeFiles/ablation_analysis_cluster.dir/ablation_analysis_cluster.cpp.o"
  "CMakeFiles/ablation_analysis_cluster.dir/ablation_analysis_cluster.cpp.o.d"
  "ablation_analysis_cluster"
  "ablation_analysis_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_analysis_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
