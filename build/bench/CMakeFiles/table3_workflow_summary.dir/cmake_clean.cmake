file(REMOVE_RECURSE
  "CMakeFiles/table3_workflow_summary.dir/table3_workflow_summary.cpp.o"
  "CMakeFiles/table3_workflow_summary.dir/table3_workflow_summary.cpp.o.d"
  "table3_workflow_summary"
  "table3_workflow_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_workflow_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
