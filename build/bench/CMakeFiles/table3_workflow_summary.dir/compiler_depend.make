# Empty compiler generated dependencies file for table3_workflow_summary.
# This may be replaced when dependencies are built.
