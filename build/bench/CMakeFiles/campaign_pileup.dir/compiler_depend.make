# Empty compiler generated dependencies file for campaign_pileup.
# This may be replaced when dependencies are built.
