file(REMOVE_RECURSE
  "CMakeFiles/campaign_pileup.dir/campaign_pileup.cpp.o"
  "CMakeFiles/campaign_pileup.dir/campaign_pileup.cpp.o.d"
  "campaign_pileup"
  "campaign_pileup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_pileup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
