file(REMOVE_RECURSE
  "CMakeFiles/table2_find_center.dir/table2_find_center.cpp.o"
  "CMakeFiles/table2_find_center.dir/table2_find_center.cpp.o.d"
  "table2_find_center"
  "table2_find_center.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_find_center.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
