# Empty dependencies file for table2_find_center.
# This may be replaced when dependencies are built.
