file(REMOVE_RECURSE
  "CMakeFiles/fig2_visualization.dir/fig2_visualization.cpp.o"
  "CMakeFiles/fig2_visualization.dir/fig2_visualization.cpp.o.d"
  "fig2_visualization"
  "fig2_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
