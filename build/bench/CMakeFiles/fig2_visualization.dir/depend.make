# Empty dependencies file for fig2_visualization.
# This may be replaced when dependencies are built.
