file(REMOVE_RECURSE
  "CMakeFiles/qcontinuum_projection.dir/qcontinuum_projection.cpp.o"
  "CMakeFiles/qcontinuum_projection.dir/qcontinuum_projection.cpp.o.d"
  "qcontinuum_projection"
  "qcontinuum_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcontinuum_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
