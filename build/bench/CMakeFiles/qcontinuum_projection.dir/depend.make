# Empty dependencies file for qcontinuum_projection.
# This may be replaced when dependencies are built.
