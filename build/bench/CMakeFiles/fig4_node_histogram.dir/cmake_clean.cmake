file(REMOVE_RECURSE
  "CMakeFiles/fig4_node_histogram.dir/fig4_node_histogram.cpp.o"
  "CMakeFiles/fig4_node_histogram.dir/fig4_node_histogram.cpp.o.d"
  "fig4_node_histogram"
  "fig4_node_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_node_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
