# Empty compiler generated dependencies file for fig4_node_histogram.
# This may be replaced when dependencies are built.
