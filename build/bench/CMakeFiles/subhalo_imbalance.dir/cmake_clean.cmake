file(REMOVE_RECURSE
  "CMakeFiles/subhalo_imbalance.dir/subhalo_imbalance.cpp.o"
  "CMakeFiles/subhalo_imbalance.dir/subhalo_imbalance.cpp.o.d"
  "subhalo_imbalance"
  "subhalo_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subhalo_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
