# Empty dependencies file for subhalo_imbalance.
# This may be replaced when dependencies are built.
