# Empty dependencies file for table4_workflow_detail.
# This may be replaced when dependencies are built.
