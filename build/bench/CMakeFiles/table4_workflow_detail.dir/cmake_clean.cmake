file(REMOVE_RECURSE
  "CMakeFiles/table4_workflow_detail.dir/table4_workflow_detail.cpp.o"
  "CMakeFiles/table4_workflow_detail.dir/table4_workflow_detail.cpp.o.d"
  "table4_workflow_detail"
  "table4_workflow_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_workflow_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
